#![forbid(unsafe_code)]
//! The comparison Steiner topology algorithms of §IV-A.
//!
//! The paper compares its cost-distance algorithm against three
//! established routines, each of which "first computes a Steiner topology
//! in the plane, considering total length instead of congestion cost",
//! and is then embedded optimally into the global routing graph by
//! `cds-embed`:
//!
//! * **L1** — a short rectilinear Steiner tree (`cds-rsmt`);
//! * **SL** — shallow-light Steiner arborescences ([`shallow_light`],
//!   after Held & Rotter \[14\] / SALT \[6\]): start from the short tree,
//!   reconnect sinks whose delay exceeds `(1+ε)` times their budget
//!   during a DFS, then try to re-activate deleted arcs in a reverse
//!   traversal when that saves length;
//! * **PD** — the Prim–Dijkstra trade-off ([`prim_dijkstra`], after
//!   Alpert et al. \[2\], \[3\]): grow the tree from the root, each step
//!   inserting the sink whose best attachment — possibly a new Steiner
//!   vertex on an existing arc — minimizes a weighted sum of added length
//!   and source–sink delay.
//!
//! Both SL and PD incorporate bifurcation delay penalties, redistributed
//! with the paper's flexible λ model (Eq. (2)) rather than the historical
//! fixed `η = 0.5`.
//!
//! # Examples
//!
//! ```
//! use cds_baselines::{prim_dijkstra, PlaneCostModel};
//! use cds_geom::Point;
//! use cds_topo::BifurcationConfig;
//!
//! let model = PlaneCostModel {
//!     cost_per_unit: 1.0,
//!     delay_per_unit: 0.5,
//!     bif: BifurcationConfig::ZERO,
//! };
//! let sinks = [Point::new(5, 0), Point::new(5, 3)];
//! let topo = prim_dijkstra(Point::new(0, 0), &sinks, &[1.0, 1.0], &model);
//! assert!(topo.is_bifurcation_compatible());
//! assert_eq!(topo.sink_nodes().len(), 2);
//! ```

pub mod pd;
pub mod sl;

pub use pd::prim_dijkstra;
pub use sl::{shallow_light, SlParams};

use cds_topo::BifurcationConfig;

/// The plane cost model the baselines optimize against: length priced at
/// `cost_per_unit`, delay at `delay_per_unit` per gcell (the fastest
/// layer/wire-type combination, as the embedding can always achieve it),
/// plus bifurcation penalties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneCostModel {
    /// Congestion-cost proxy per gcell of length.
    pub cost_per_unit: f64,
    /// Delay per gcell (ps).
    pub delay_per_unit: f64,
    /// Bifurcation penalties.
    pub bif: BifurcationConfig,
}
