//! The Prim–Dijkstra topology algorithm with Steiner insertion and
//! bifurcation penalties.
//!
//! Paper §IV-A: "sinks are iteratively added into the root-component. A
//! sink s and an edge e in the root component are chosen to insert a new
//! Steiner vertex into e connecting s such that a weighted sum of total
//! length and path length to s is minimized. … We can distribute the
//! delay penalty to the two branches, when selecting the edge of the root
//! component."

use crate::PlaneCostModel;
use cds_geom::Point;
use cds_topo::penalty::beta;
use cds_topo::{NodeId, NodeKind, Topology};

/// One candidate way of attaching a sink to the growing tree.
#[derive(Debug, Clone, Copy)]
enum Attachment {
    /// Under an existing node (through an `attach_slot`).
    AtNode(NodeId),
    /// Via a new Steiner vertex at `steiner` splitting the arc into
    /// `child`.
    OnArc { child: NodeId, steiner: Point },
}

/// Builds a Prim–Dijkstra topology for `root` and `sinks`.
///
/// Each iteration scans all unplaced sinks against all attachment
/// candidates and commits the pair minimizing
///
/// ```text
/// cost_per_unit·Δlength + w(s)·delay(s) + β(w(s), W_sibling)
/// ```
///
/// where `delay(s)` is the root–sink delay through the attachment point
/// (including existing λ penalties on that path) and the β term prices
/// the new bifurcation under the optimal λ split.
///
/// The result is bifurcation compatible.
///
/// # Panics
///
/// Panics if `sinks` is empty or `weights` has a different length.
pub fn prim_dijkstra(
    root: Point,
    sinks: &[Point],
    weights: &[f64],
    model: &PlaneCostModel,
) -> Topology {
    assert!(!sinks.is_empty(), "a net needs at least one sink");
    assert_eq!(sinks.len(), weights.len(), "one weight per sink");
    let mut topo = Topology::new(root);
    let mut placed = vec![false; sinks.len()];
    for _ in 0..sinks.len() {
        let node_delay = topo.node_delays(weights, model.delay_per_unit, &model.bif);
        let sub_w = topo.subtree_weights(weights);
        let mut best: Option<(f64, usize, Attachment)> = None;
        for (s, &pos) in sinks.iter().enumerate() {
            if placed[s] {
                continue;
            }
            let w_s = weights[s];
            // candidate: attach under any existing non-sink node
            for v in 0..topo.num_nodes() as NodeId {
                if matches!(topo.node_kind(v), NodeKind::Sink(_)) {
                    continue;
                }
                let vp = topo.position(v);
                let dist = vp.l1(pos) as f64;
                let sibling_w = sub_w[v as usize];
                let penalty = if topo.children(v).is_empty() {
                    0.0
                } else {
                    beta(w_s, sibling_w, &model.bif)
                };
                let j = model.cost_per_unit * dist
                    + w_s * (node_delay[v as usize] + model.delay_per_unit * dist)
                    + penalty;
                if best.as_ref().is_none_or(|b| j < b.0) {
                    best = Some((j, s, Attachment::AtNode(v)));
                }
            }
            // candidate: split an arc (p -> c) at the projection of s
            for c in 1..topo.num_nodes() as NodeId {
                let Some(p) = topo.parent(c) else { continue };
                let (pp, cp) = (topo.position(p), topo.position(c));
                let z = pos.clamp_to_rect(pp, cp);
                // Δlength: the split is detour-free only if z lies on
                // some monotone p–c staircase; clamping guarantees the
                // bounding box, so the detour is 0 in L1.
                let dist = z.l1(pos) as f64;
                let penalty = beta(w_s, sub_w[c as usize], &model.bif);
                let delay_to_z = node_delay[p as usize] + model.delay_per_unit * pp.l1(z) as f64;
                let j = model.cost_per_unit * dist
                    + w_s * (delay_to_z + model.delay_per_unit * dist)
                    + penalty;
                if best.as_ref().is_none_or(|b| j < b.0) {
                    best = Some((j, s, Attachment::OnArc { child: c, steiner: z }));
                }
            }
        }
        // INVARIANT: the scan above visits every placed node and the root is always placed, so at least one candidate was recorded.
        let (_, s, at) = best.expect("an unplaced sink always has candidates");
        placed[s] = true;
        match at {
            Attachment::AtNode(v) => {
                let slot = topo.attach_slot(v);
                topo.add_sink(s, sinks[s], slot);
            }
            Attachment::OnArc { child, steiner } => {
                let z = topo.split_arc(child, steiner);
                topo.add_sink(s, sinks[s], z);
            }
        }
    }
    debug_assert!(topo.validate().is_ok());
    topo.binarize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_topo::BifurcationConfig;
    use proptest::prelude::*;

    fn model(delay_weight: f64) -> PlaneCostModel {
        PlaneCostModel {
            cost_per_unit: 1.0,
            delay_per_unit: delay_weight,
            bif: BifurcationConfig::ZERO,
        }
    }

    #[test]
    fn single_sink_direct_connection() {
        let t = prim_dijkstra(Point::new(0, 0), &[Point::new(3, 4)], &[1.0], &model(1.0));
        assert_eq!(t.length(), 7);
        t.validate().unwrap();
    }

    #[test]
    fn steiner_insertion_shares_trunk() {
        // sinks at (8,0) and (8,2): with low delay pricing the second sink
        // should tap the first arc near (8,0)…(0,0) instead of running
        // its own trunk from the root.
        let sinks = [Point::new(8, 0), Point::new(8, 2)];
        let t = prim_dijkstra(Point::new(0, 0), &sinks, &[0.01, 0.01], &model(1.0));
        assert!(t.length() <= 8 + 2, "length {} should share the trunk", t.length());
    }

    #[test]
    fn high_delay_weight_gives_star() {
        // with huge delay weights, each sink connects (near-)directly
        let sinks = [Point::new(6, 0), Point::new(0, 6), Point::new(6, 6)];
        let t = prim_dijkstra(Point::new(0, 0), &sinks, &[100.0, 100.0, 100.0], &model(1.0));
        let d: std::collections::HashMap<usize, f64> = t
            .sink_delays(&[100.0, 100.0, 100.0], 1.0, &BifurcationConfig::ZERO)
            .into_iter()
            .collect();
        assert_eq!(d[&0], 6.0);
        assert_eq!(d[&1], 6.0);
        assert_eq!(d[&2], 12.0);
    }

    #[test]
    fn bifurcation_penalty_discourages_branch_on_critical_path() {
        // One critical sink far right, several light sinks nearby below
        // the trunk. With a large dbif, light sinks should avoid tapping
        // the critical trunk (fewer bifurcations on the critical path).
        let sinks = [Point::new(10, 0), Point::new(3, 1), Point::new(5, 1), Point::new(7, 1)];
        let w = [50.0, 0.1, 0.1, 0.1];
        let no_pen = PlaneCostModel {
            cost_per_unit: 1.0,
            delay_per_unit: 1.0,
            bif: BifurcationConfig::ZERO,
        };
        let with_pen = PlaneCostModel {
            cost_per_unit: 1.0,
            delay_per_unit: 1.0,
            bif: BifurcationConfig::new(40.0, 0.25),
        };
        let t0 = prim_dijkstra(Point::new(0, 0), &sinks, &w, &no_pen);
        let t1 = prim_dijkstra(Point::new(0, 0), &sinks, &w, &with_pen);
        let bif_on_crit = |t: &Topology| {
            let (_, node) = t.sink_nodes().into_iter().find(|&(s, _)| s == 0).unwrap();
            // count binary nodes on root→sink path
            let mut cnt = 0;
            let mut cur = t.parent(node);
            while let Some(v) = cur {
                if t.children(v).len() == 2 {
                    cnt += 1;
                }
                cur = t.parent(v);
            }
            cnt
        };
        assert!(
            bif_on_crit(&t1) <= bif_on_crit(&t0),
            "penalties must not increase critical-path bifurcations"
        );
    }

    proptest! {
        /// PD output is always a valid bifurcation-compatible topology
        /// containing every sink, with length at least the HPWL/2 bound
        /// and at most the star length.
        #[test]
        fn pd_invariants(
            raw in proptest::collection::vec((0i32..30, 0i32..30), 1..10),
            wsel in proptest::collection::vec(0.1f64..10.0, 10)
        ) {
            let sinks: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let w = &wsel[..sinks.len()];
            let t = prim_dijkstra(Point::new(0, 0), &sinks, w, &model(0.5));
            t.validate().unwrap();
            prop_assert!(t.is_bifurcation_compatible());
            prop_assert_eq!(t.sink_nodes().len(), sinks.len());
            let star: i64 = sinks.iter().map(|&p| Point::new(0, 0).l1(p)).sum();
            prop_assert!(t.length() <= star, "never worse than the star");
        }
    }
}
