//! Shallow-light Steiner arborescences (the "SL" baseline).
//!
//! After Held & Rotter \[14\] and SALT \[6\], as described in §IV-A:
//! "start from an approximately minimum-length tree. During a DFS
//! traversal, sinks are reconnected to the root whenever they violate a
//! given delay/distance bound by more than a factor (1+ε). In a reverse
//! DFS traversal, deleted edges may be re-activated to connect former
//! predecessors if that saves cost." Bifurcation penalties are included
//! in all delay computations and redistributed with the flexible λ model.

use crate::PlaneCostModel;
use cds_geom::Point;
use cds_rsmt::rsmt_topology;
use cds_topo::{NodeId, Topology};

/// Tuning parameters of the shallow-light construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlParams {
    /// Budget slack factor ε: a sink is reconnected when its tree delay
    /// exceeds `(1+ε)·budget`.
    pub epsilon: f64,
    /// Distinct-point threshold below which the initial tree is the
    /// exact RSMT (see [`cds_rsmt::rsmt_topology`]).
    pub exact_rsmt_threshold: usize,
}

impl Default for SlParams {
    fn default() -> Self {
        SlParams { epsilon: 0.25, exact_rsmt_threshold: 5 }
    }
}

/// Builds a shallow-light topology for `root` and `sinks`.
///
/// `budgets[i]` is the delay budget of sink `i` (ps). When `None`, the
/// budget defaults to the sink's direct-connection delay — the tightest
/// self-consistent choice; the router passes budgets from resource
/// sharing instead.
///
/// The result is bifurcation compatible.
///
/// # Panics
///
/// Panics if `sinks` is empty or the slice lengths disagree.
pub fn shallow_light(
    root: Point,
    sinks: &[Point],
    weights: &[f64],
    budgets: Option<&[f64]>,
    model: &PlaneCostModel,
    params: &SlParams,
) -> Topology {
    assert!(!sinks.is_empty(), "a net needs at least one sink");
    assert_eq!(sinks.len(), weights.len(), "one weight per sink");
    if let Some(b) = budgets {
        assert_eq!(b.len(), sinks.len(), "one budget per sink");
    }
    let budget = |s: usize| -> f64 {
        match budgets {
            Some(b) => b[s],
            None => root.l1(sinks[s]) as f64 * model.delay_per_unit,
        }
    };

    // 1. approximately minimum-length initial tree, binarized so that
    //    delays with penalties are well defined
    let mut topo = rsmt_topology(root, sinks, params.exact_rsmt_threshold).binarize();

    // 2. forward DFS: reconnect violating sinks directly under the root
    //    hub; remember the deleted arcs for the reverse pass
    let mut deleted: Vec<(NodeId, NodeId)> = Vec::new(); // (former parent, node)
    let mut reconnected = std::collections::HashSet::new();
    loop {
        let delays = topo.node_delays(weights, model.delay_per_unit, &model.bif);
        let violator = topo
            .sink_nodes()
            .into_iter()
            // a directly reconnected sink cannot be improved further —
            // skipping it also guarantees termination on infeasible budgets
            .filter(|(_, node)| !reconnected.contains(node))
            .filter(|&(s, node)| delays[node as usize] > (1.0 + params.epsilon) * budget(s) + 1e-9)
            // reconnect the worst relative violator first for stability
            .max_by(|&(s1, n1), &(s2, n2)| {
                let r1 = delays[n1 as usize] / budget(s1).max(1e-12);
                let r2 = delays[n2 as usize] / budget(s2).max(1e-12);
                // INVARIANT: delays are finite (finite coordinates, positive unit costs) and budget() is clamped to >= 1e-12, so both ratios compare.
                r1.partial_cmp(&r2).expect("finite delays")
            });
        let Some((_, node)) = violator else { break };
        // INVARIANT: the violator scan yields sink nodes only, and a sink is never the topology root.
        let parent = topo.parent(node).expect("sinks are not the root");
        deleted.push((parent, node));
        reconnected.insert(node);
        let root_id = topo.root();
        let slot = topo.attach_slot(root_id);
        topo.reparent(node, slot);
    }

    // 3. reverse pass: try to re-activate deleted arcs in reverse order —
    //    reconnect the former parent's subtree *under the shortcut node*
    //    when that saves length and breaks no budget
    for &(former_parent, node) in deleted.iter().rev() {
        // skip if re-activation would create a cycle
        if topo.in_subtree(node, former_parent) {
            continue;
        }
        let cur_parent = match topo.parent(former_parent) {
            Some(p) => p,
            None => continue,
        };
        let old_len = topo.position(former_parent).l1(topo.position(cur_parent));
        let new_len = topo.position(former_parent).l1(topo.position(node));
        if new_len >= old_len {
            continue;
        }
        // tentatively reparent and verify budgets; the shortcut node is a
        // sink (a leaf), so hang the re-activated arc off a Steiner twin
        // spliced in above it
        let before = topo.clone();
        let twin = topo.split_arc(node, topo.position(node));
        let slot = topo.attach_slot(twin);
        topo.reparent(former_parent, slot);
        let delays = topo.node_delays(weights, model.delay_per_unit, &model.bif);
        let ok = topo
            .sink_nodes()
            .into_iter()
            .all(|(s, n)| delays[n as usize] <= (1.0 + params.epsilon) * budget(s) + 1e-9);
        if !ok {
            topo = before;
        }
    }
    debug_assert!(topo.validate().is_ok());
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_topo::BifurcationConfig;
    use proptest::prelude::*;

    fn model() -> PlaneCostModel {
        PlaneCostModel { cost_per_unit: 1.0, delay_per_unit: 1.0, bif: BifurcationConfig::ZERO }
    }

    /// A chain of sinks along x: the RSMT is a path, giving the last sink
    /// delay ≈ total length; with tight budgets SL must shortcut it.
    #[test]
    fn tight_budget_forces_shortcuts() {
        let sinks: Vec<Point> = (1..=6).map(|i| Point::new(4 * i, i % 2)).collect();
        let w = vec![1.0; sinks.len()];
        let loose = shallow_light(
            Point::new(0, 0),
            &sinks,
            &w,
            None,
            &model(),
            &SlParams { epsilon: 100.0, exact_rsmt_threshold: 0 },
        );
        let tight = shallow_light(
            Point::new(0, 0),
            &sinks,
            &w,
            None,
            &model(),
            &SlParams { epsilon: 0.05, exact_rsmt_threshold: 0 },
        );
        let max_ratio = |t: &Topology| {
            t.sink_delays(&w, 1.0, &BifurcationConfig::ZERO)
                .into_iter()
                .map(|(s, d)| d / (Point::new(0, 0).l1(sinks[s]) as f64))
                .fold(0.0f64, f64::max)
        };
        assert!(max_ratio(&tight) <= 1.05 + 1e-6, "tight SL must meet budgets");
        assert!(loose.length() <= tight.length(), "loose SL keeps the short tree");
    }

    #[test]
    fn budgets_are_respected_when_feasible() {
        let sinks = [Point::new(10, 0), Point::new(11, 1), Point::new(12, 2)];
        let w = [1.0, 1.0, 1.0];
        let t = shallow_light(Point::new(0, 0), &sinks, &w, None, &model(), &SlParams::default());
        t.validate().unwrap();
        assert!(t.is_bifurcation_compatible());
        let delays = t.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
        for (s, d) in delays {
            let direct = Point::new(0, 0).l1(sinks[s]) as f64;
            assert!(d <= 1.25 * direct + 1e-9, "sink {s}: {d} > 1.25×{direct}");
        }
    }

    #[test]
    fn explicit_budgets_override_defaults() {
        let sinks = [Point::new(8, 0), Point::new(8, 1)];
        let w = [1.0, 1.0];
        // infinite budgets: keep the short tree, no shortcuts
        let t = shallow_light(
            Point::new(0, 0),
            &sinks,
            &w,
            Some(&[1e9, 1e9]),
            &model(),
            &SlParams::default(),
        );
        assert!(t.length() <= 9);
    }

    proptest! {
        /// SL output is valid, bifurcation compatible, contains all
        /// sinks, and with ε→∞ matches the initial short tree's length.
        #[test]
        fn sl_invariants(raw in proptest::collection::vec((0i32..25, 0i32..25), 1..9)) {
            let sinks: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let w = vec![1.0; sinks.len()];
            let t = shallow_light(
                Point::new(0, 0), &sinks, &w, None, &model(), &SlParams::default(),
            );
            t.validate().unwrap();
            prop_assert!(t.is_bifurcation_compatible());
            prop_assert_eq!(t.sink_nodes().len(), sinks.len());
            // every sink meets its (1+ε) budget: the direct connection is
            // always available, so this must be satisfiable
            let delays = t.sink_delays(&w, 1.0, &BifurcationConfig::ZERO);
            for (s, d) in delays {
                let direct = Point::new(0, 0).l1(sinks[s]) as f64;
                prop_assert!(d <= 1.25 * direct + 1e-9);
            }
        }
    }
}
