//! Owned per-net trees vs the `RoutedForest` arena — the allocation
//! measurement of the forest refactor.
//!
//! The router's per-net *output* used to be the last allocation sink on
//! the solve path: an owned `EmbeddedTree` carries a `Vec` per node
//! (children list, arc path), plus per-net sink-delay and used-edge
//! vectors. The arena path writes all of it into the shared
//! struct-of-arrays slabs of [`RoutedForest`] — on warm buffers a
//! routed net touches the allocator O(1) times, not O(nodes).
//!
//! This bench routes the `window` bench's exact workload (120 nets × 3
//! rip-up iterations, one worker, zero-copy window views) through both
//! paths — the stock arena path, and a wrapper oracle that forces the
//! owned-tree `route_into` fallback ("fresh") — asserts the outcomes
//! bit-identical, and reports wall clock plus allocator traffic per
//! routed net. The arena path is asserted strictly below the PR 2
//! window-bench baseline of 89.4 allocs/net.
//!
//! ```text
//! cargo bench -p cds-bench --bench forest
//! ```
//!
//! [`RoutedForest`]: cds_topo::RoutedForest

use cds_instgen::{Chip, ChipSpec};
use cds_router::{
    OracleRequest, OracleWorkspace, Router, RouterConfig, SteinerMethod, SteinerOracle,
};
use cds_topo::EmbeddedTree;
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// System allocator wrapped with relaxed counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// The PR 2 `window` bench baseline this refactor must beat.
const PR2_ALLOCS_PER_NET: f64 = 89.4;

const ITERATIONS: usize = 3;

fn build_chip() -> Chip {
    // identical workload to the `window` bench
    ChipSpec { num_nets: 120, ..ChipSpec::small_test(7) }.generate()
}

/// Implements only `route()`, so the router's default `route_into`
/// materializes an owned `EmbeddedTree` per net and copies it into the
/// forest — the "fresh per-net trees" reference.
struct OwnedPathCd;

impl SteinerOracle for OwnedPathCd {
    fn name(&self) -> &str {
        "CD-owned"
    }
    fn uses_budgets(&self) -> bool {
        false
    }
    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree {
        SteinerMethod::Cd.oracle().route(req, ws)
    }
}

fn config() -> RouterConfig {
    RouterConfig {
        iterations: ITERATIONS,
        threads: 1, // single worker: clean per-net allocation counts
        ..Default::default()
    }
}

fn run(chip: &Chip, owned: bool) -> ((u64, f64, f64, usize), u64) {
    let out = if owned {
        Router::with_oracle(chip, config(), Box::new(OwnedPathCd)).run()
    } else {
        Router::new(chip, config()).run()
    };
    // kernel counters ride outside the compared tuple: the owned
    // wrapper goes through the default `route_into`, which reports no
    // kernel stats, while the arena path reports the real counters
    (
        (out.checksum(), out.metrics.tns, out.metrics.wl_m, out.metrics.vias),
        out.stats.kernel_settled,
    )
}

fn alloc_report(chip: &Chip) {
    let nets_routed = (chip.nets.len() * ITERATIONS) as u64;
    // warm both paths once so one-time setup is out of the numbers
    let warm_arena = run(chip, false);
    let warm_owned = run(chip, true);
    assert_eq!(warm_arena.0, warm_owned.0, "owned and arena paths diverged");

    let mut rows = Vec::new();
    for (name, owned) in [("fresh (owned)", true), ("arena (forest)", false)] {
        let (a0, b0) = allocs_now();
        let start = Instant::now();
        let got = run(chip, owned);
        let wall = start.elapsed();
        let (a1, b1) = allocs_now();
        assert_eq!(got.0, warm_arena.0, "paths diverged");
        rows.push((name, wall, a1 - a0, b1 - b0));
    }

    println!(
        "\nforest report ({} nets × {ITERATIONS} rip-up iterations = {nets_routed} routed nets)",
        chip.nets.len()
    );
    println!(
        "{:<15} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "path", "wall", "allocs", "allocs/net", "MiB", "nets/s"
    );
    for &(name, wall, allocs, bytes) in &rows {
        println!(
            "{:<15} {:>12} {:>14} {:>12.1} {:>12.1} {:>12.0}",
            name,
            format!("{wall:.1?}"),
            allocs,
            allocs as f64 / nets_routed as f64,
            bytes as f64 / (1u64 << 20) as f64,
            nets_routed as f64 / wall.as_secs_f64()
        );
    }
    let (owned, arena) = (&rows[0], &rows[1]);
    let arena_per_net = arena.2 as f64 / nets_routed as f64;
    println!(
        "allocation ratio owned/arena: {:.1}x; arena allocs/net {:.1} vs PR 2 window baseline {PR2_ALLOCS_PER_NET}\n",
        owned.2 as f64 / arena.2.max(1) as f64,
        arena_per_net,
    );
    assert!(
        arena_per_net < PR2_ALLOCS_PER_NET,
        "arena path regressed: {arena_per_net:.1} allocs/net ≥ the PR 2 baseline {PR2_ALLOCS_PER_NET}"
    );
    println!(
        "kernel ops (arena path): {} settled ({:.1}/net); owned fallback reports none\n",
        warm_arena.1,
        warm_arena.1 as f64 / nets_routed as f64
    );
}

fn bench_forest(c: &mut Criterion) {
    let chip = build_chip();
    alloc_report(&chip);
    let mut g = c.benchmark_group("forest");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("owned_trees", |b| b.iter(|| black_box(run(&chip, true))));
    g.bench_function("forest_arena", |b| b.iter(|| black_box(run(&chip, false))));
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
