//! Incremental rip-up & re-route vs the full-reroute reference.
//!
//! The dirty-net scheduler's value proposition: after the first full
//! iteration, only nets that are dirty — overflow-touching, negative
//! slack, or drifted prices/weights/budgets — are ripped up, while
//! clean nets keep their routes, usage is maintained incrementally, and
//! the STA re-propagates only the changed cones. This bench routes the
//! same chips with `incremental: false` (the reference) and the default
//! incremental config, reporting wall clock, the fraction of nets
//! rerouted per iteration, and the quality columns (WS/TNS/ACE4/WL) of
//! both modes.
//!
//! Two workloads: a *converging* chip (utilization 0.22 — congestion
//! resolves, most nets go quiet) where the scheduler shines, and the
//! default *congested* test chip (utilization 0.33, ACE4 far above
//! 100%) where overflow rip-up is irreducible and the savings are
//! smaller — both fractions are part of the report on purpose.
//!
//! ```text
//! cargo bench -p cds-bench --bench incremental
//! ```

use cds_instgen::{Chip, ChipSpec};
use cds_router::{Router, RouterConfig, RoutingOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERATIONS: usize = 8;

fn run(chip: &Chip, incremental: bool) -> RoutingOutcome {
    Router::new(chip, RouterConfig { iterations: ITERATIONS, incremental, ..Default::default() })
        .run()
}

fn report(name: &str, chip: &Chip) {
    // warm both paths once so one-time setup stays out of the numbers
    let _ = run(chip, false);
    let _ = run(chip, true);

    let start = Instant::now();
    let full = run(chip, false);
    let full_wall = start.elapsed();
    let start = Instant::now();
    let inc = run(chip, true);
    let inc_wall = start.elapsed();

    let n = chip.nets.len();
    let per: Vec<String> = inc
        .stats
        .rerouted_per_iter
        .iter()
        .map(|&r| format!("{:.0}%", r as f64 / n as f64 * 100.0))
        .collect();
    let after_first: usize = inc.stats.rerouted_per_iter[1..].iter().sum();
    println!("\nincremental report: {name} ({n} nets × {ITERATIONS} iterations)");
    println!(
        "{:<12} {:>10} {:>12} {:>9} {:>11} {:>8} {:>9}",
        "mode", "wall", "oracle calls", "WS", "TNS", "ACE4", "WL(m)"
    );
    for (mode, wall, out) in [("full", full_wall, &full), ("incremental", inc_wall, &inc)] {
        println!(
            "{:<12} {:>10} {:>12} {:>9.0} {:>11.0} {:>8.1} {:>9.4}",
            mode,
            format!("{wall:.2?}"),
            out.stats.total_rerouted(),
            out.metrics.ws,
            out.metrics.tns,
            out.metrics.ace4,
            out.metrics.wl_m
        );
    }
    println!("rerouted per iteration: [{}]", per.join(", "));
    println!(
        "rerouted after iteration 1: {:.0}% | oracle-call ratio {:.2}x | speedup {:.2}x",
        after_first as f64 / (n * (ITERATIONS - 1)) as f64 * 100.0,
        full.stats.total_rerouted() as f64 / inc.stats.total_rerouted().max(1) as f64,
        full_wall.as_secs_f64() / inc_wall.as_secs_f64()
    );
    println!(
        "dirty causes: overflow={} timing={} price={} weight={} budget={} | STA nodes retimed: {}",
        inc.stats.dirty_overflow,
        inc.stats.dirty_timing,
        inc.stats.dirty_price,
        inc.stats.dirty_weight,
        inc.stats.dirty_budget,
        inc.stats.sta_nodes_retimed
    );
}

fn bench_incremental(c: &mut Criterion) {
    let converging =
        ChipSpec { num_nets: 300, utilization: 0.22, ..ChipSpec::small_test(5) }.generate();
    let congested = ChipSpec { num_nets: 150, ..ChipSpec::small_test(7) }.generate();
    report("converging (util 0.22)", &converging);
    report("congested (util 0.33)", &congested);

    let mut g = c.benchmark_group("incremental");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("full_reroute", |b| b.iter(|| black_box(run(&converging, false))));
    g.bench_function("dirty_net_scheduler", |b| b.iter(|| black_box(run(&converging, true))));
    g.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
