//! The search-kernel bench of the bucket-queue PR: heap vs bucket
//! label queues, and per-component vs batched multi-sink search, on
//! the `window` bench's routing workload.
//!
//! Both queue backends pop the identical total order `(key, search,
//! vertex)`, so the heap and bucket rows are asserted bit-identical
//! before timing — the bench measures pure queue mechanics, not
//! different routes. The batched row is a different algorithm (member
//! searches survive sink–sink merges instead of restarting one
//! labelling from each Steiner terminal), so it is reported with its
//! own checksum and validated only for plausibility.
//!
//! Per configuration the report prints wall clock, nets/s, and the
//! kernel op-counters ([`RouterStats`]: settled/pushed/popped/
//! decreased/bucket-scans), normalized per routed net — the numbers
//! EXPERIMENTS.md archives.
//!
//! ```text
//! cargo bench -p cds-bench --bench kernel
//! ```
//!
//! [`RouterStats`]: cds_router::RouterStats

use cds_instgen::{Chip, ChipSpec};
use cds_router::{QueueKind, Router, RouterConfig, RoutingOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const ITERATIONS: usize = 3;

fn build_chip() -> Chip {
    // identical workload to the `window` and `forest` benches
    ChipSpec { num_nets: 120, ..ChipSpec::small_test(7) }.generate()
}

fn run(chip: &Chip, queue: QueueKind, batch: bool) -> RoutingOutcome {
    Router::new(
        chip,
        RouterConfig {
            iterations: ITERATIONS,
            threads: 1, // single worker: clean per-config op counts
            queue,
            batch,
            ..Default::default()
        },
    )
    .run()
}

fn kernel_report(chip: &Chip) {
    // warm every path once so one-time setup is out of the numbers,
    // and pin the queue-equivalence contract before timing anything
    let warm_heap = run(chip, QueueKind::Heap, false);
    let warm_bucket = run(chip, QueueKind::Bucket, false);
    assert_eq!(warm_heap.checksum(), warm_bucket.checksum(), "queue backends diverged");
    run(chip, QueueKind::Bucket, true);

    let configs = [
        ("heap", QueueKind::Heap, false),
        ("bucket", QueueKind::Bucket, false),
        ("bucket+batch", QueueKind::Bucket, true),
    ];
    let mut rows = Vec::new();
    for (name, queue, batch) in configs {
        let start = Instant::now();
        let out = run(chip, queue, batch);
        let wall = start.elapsed();
        if !batch {
            assert_eq!(out.checksum(), warm_heap.checksum(), "{name} diverged");
        }
        rows.push((name, wall, out));
    }

    println!("\nkernel report ({} nets × {ITERATIONS} rip-up iterations)", chip.nets.len());
    println!(
        "{:<13} {:>10} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "config",
        "wall",
        "nets/s",
        "settled/net",
        "pushed/net",
        "popped/net",
        "decr/net",
        "scans/net"
    );
    for (name, wall, out) in &rows {
        let nets = out.stats.total_rerouted().max(1) as f64;
        let st = &out.stats;
        println!(
            "{:<13} {:>10} {:>9.0} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
            name,
            format!("{wall:.1?}"),
            nets / wall.as_secs_f64(),
            st.kernel_settled as f64 / nets,
            st.kernel_pushed as f64 / nets,
            st.kernel_popped as f64 / nets,
            st.kernel_decreased as f64 / nets,
            st.kernel_bucket_scans as f64 / nets,
        );
    }
    let heap_w = rows[0].1.as_secs_f64();
    let bucket_w = rows[1].1.as_secs_f64();
    println!(
        "speedup bucket vs heap: {:.2}x (bit-identical results); batch checksum {:#018x} vs {:#018x}\n",
        heap_w / bucket_w,
        rows[2].2.checksum(),
        warm_heap.checksum(),
    );
}

fn bench_kernel(c: &mut Criterion) {
    let chip = build_chip();
    kernel_report(&chip);
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("heap_queue", |b| {
        b.iter(|| black_box(run(&chip, QueueKind::Heap, false).checksum()))
    });
    g.bench_function("bucket_queue", |b| {
        b.iter(|| black_box(run(&chip, QueueKind::Bucket, false).checksum()))
    });
    g.bench_function("bucket_batched", |b| {
        b.iter(|| black_box(run(&chip, QueueKind::Bucket, true).checksum()))
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
