//! Criterion benches covering every experiment of the paper at reduced
//! scale, plus the Theorem 1 runtime-scaling measurement and the heap /
//! enhancement micro-benchmarks.
//!
//! `cargo bench -p cds-bench` regenerates all of them; the full-scale
//! table harnesses live in `src/bin/` (see EXPERIMENTS.md).

use cds_bench::{instance_comparison, routing_comparison};
use cds_core::{solve, GridFutureCost, Instance, SolverOptions};
use cds_graph::GridSpec;
use cds_heap::{IndexedBinaryHeap, LazyHeap, TwoLevelHeap};
use cds_instgen::ChipSpec;
use cds_topo::BifurcationConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn small_chip(seed: u64) -> cds_instgen::Chip {
    ChipSpec { num_nets: 150, name: "bench".into(), ..ChipSpec::small_test(seed) }.generate()
}

/// Tables I & II at toy scale (one small chip).
fn bench_tables_1_2(c: &mut Criterion) {
    let chip = small_chip(3);
    let mut g = c.benchmark_group("instance_tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("table1", |b| b.iter(|| black_box(instance_comparison(&chip, false, 2))));
    g.bench_function("table2", |b| b.iter(|| black_box(instance_comparison(&chip, true, 2))));
    g.finish();
}

/// Tables IV & V at toy scale.
fn bench_tables_4_5(c: &mut Criterion) {
    let chip = small_chip(4);
    let mut g = c.benchmark_group("routing_tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("table4", |b| b.iter(|| black_box(routing_comparison(&chip, false, 2))));
    g.bench_function("table5", |b| b.iter(|| black_box(routing_comparison(&chip, true, 2))));
    g.finish();
}

/// Theorem 1: runtime scaling of the cost-distance algorithm in the
/// number of terminals `t` (expected near-linear) and grid size `n`.
fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    for t in [4usize, 8, 16, 32, 64] {
        let grid = GridSpec::uniform(40, 40, 4).build();
        let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
        let mut rng = StdRng::seed_from_u64(t as u64);
        let sinks: Vec<u32> =
            (0..t).map(|_| grid.vertex(rng.gen_range(0..40), rng.gen_range(0..40), 0)).collect();
        let weights = vec![0.2; t];
        let root = grid.vertex(0, 0, 0);
        g.bench_with_input(BenchmarkId::new("terminals", t), &t, |b, _| {
            b.iter(|| {
                let mut terms = sinks.clone();
                terms.push(root);
                let fc = GridFutureCost::new(&grid, &terms);
                let inst = Instance {
                    graph: grid.graph(),
                    cost: &cost,
                    delay: &delay,
                    root,
                    sink_vertices: &sinks,
                    weights: &weights,
                    bif: BifurcationConfig::ZERO,
                };
                black_box(solve(&inst, &SolverOptions::enhanced(&fc)))
            })
        });
    }
    for side in [16u32, 24, 32, 48] {
        let grid = GridSpec::uniform(side, side, 4).build();
        let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
        let mut rng = StdRng::seed_from_u64(u64::from(side));
        let sinks: Vec<u32> = (0..12)
            .map(|_| grid.vertex(rng.gen_range(0..side), rng.gen_range(0..side), 0))
            .collect();
        let weights = vec![0.2; 12];
        let root = grid.vertex(0, 0, 0);
        g.bench_with_input(BenchmarkId::new("gridside", side), &side, |b, _| {
            b.iter(|| {
                let inst = Instance {
                    graph: grid.graph(),
                    cost: &cost,
                    delay: &delay,
                    root,
                    sink_vertices: &sinks,
                    weights: &weights,
                    bif: BifurcationConfig::ZERO,
                };
                black_box(solve(&inst, &SolverOptions::default()))
            })
        });
    }
    g.finish();
}

/// §III ablation: each enhancement toggled off against the full solver.
fn bench_ablation(c: &mut Criterion) {
    let grid = GridSpec::uniform(32, 32, 4).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    let mut rng = StdRng::seed_from_u64(17);
    let sinks: Vec<u32> =
        (0..24).map(|_| grid.vertex(rng.gen_range(0..32), rng.gen_range(0..32), 0)).collect();
    let weights = vec![0.2; 24];
    let root = grid.vertex(0, 0, 0);
    let inst = Instance {
        graph: grid.graph(),
        cost: &cost,
        delay: &delay,
        root,
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(8.0, 0.25),
    };
    let mut terms = sinks.clone();
    terms.push(root);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("base", |b| b.iter(|| black_box(solve(&inst, &SolverOptions::base()))));
    g.bench_function("enhanced_no_astar", |b| {
        b.iter(|| black_box(solve(&inst, &SolverOptions::default())))
    });
    g.bench_function("enhanced_astar", |b| {
        b.iter(|| {
            let fc = GridFutureCost::new(&grid, &terms);
            black_box(solve(&inst, &SolverOptions::enhanced(&fc)))
        })
    });
    g.finish();
}

/// §III-B: two-level heap against flat alternatives on a Dijkstra-like
/// random workload.
fn bench_heaps(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let ops: Vec<(u32, u32, f64)> = (0..20_000)
        .map(|_| (rng.gen_range(0..16), rng.gen_range(0..4096), rng.gen_range(0.0..1e6)))
        .collect();
    let mut g = c.benchmark_group("heaps");
    g.bench_function("two_level", |b| {
        b.iter(|| {
            let mut h = TwoLevelHeap::new();
            let sids: Vec<u32> = (0..16).map(|_| h.add_search()).collect();
            for &(s, v, k) in &ops {
                h.push(sids[s as usize], v, k);
                if v % 3 == 0 {
                    black_box(h.pop());
                }
            }
            while h.pop().is_some() {}
        })
    });
    g.bench_function("indexed_binary", |b| {
        b.iter(|| {
            let mut h = IndexedBinaryHeap::new(16 * 4096);
            for &(s, v, k) in &ops {
                h.push(s * 4096 + v, k);
                if v % 3 == 0 {
                    black_box(h.pop());
                }
            }
            while h.pop().is_some() {}
        })
    });
    g.bench_function("lazy", |b| {
        b.iter(|| {
            let mut best = vec![f64::INFINITY; 16 * 4096];
            let mut h = LazyHeap::new();
            for &(s, v, k) in &ops {
                let id = s * 4096 + v;
                if k < best[id as usize] {
                    best[id as usize] = k;
                    h.push(id, k);
                }
                if v % 3 == 0 {
                    black_box(h.pop(&best));
                }
            }
            while h.pop(&best).is_some() {}
        })
    });
    g.finish();
}

/// Fig. 3 workload: the 5-sink trace example.
fn bench_fig3(c: &mut Criterion) {
    let grid = GridSpec::uniform(20, 20, 2).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    let sinks = [
        grid.vertex(3, 16, 0),
        grid.vertex(8, 14, 0),
        grid.vertex(16, 12, 0),
        grid.vertex(5, 5, 0),
        grid.vertex(14, 3, 0),
    ];
    let weights = [2.0, 0.5, 1.0, 0.7, 1.4];
    let inst = Instance {
        graph: grid.graph(),
        cost: &cost,
        delay: &delay,
        root: grid.vertex(10, 10, 0),
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(5.0, 0.25),
    };
    c.bench_function("fig3_trace", |b| {
        b.iter(|| {
            black_box(solve(&inst, &SolverOptions { record_trace: true, ..Default::default() }))
        })
    });
}

criterion_group!(
    benches,
    bench_tables_1_2,
    bench_tables_4_5,
    bench_scaling,
    bench_ablation,
    bench_heaps,
    bench_fig3
);
criterion_main!(benches);
