//! Fresh-per-call vs reused-workspace solve throughput on a
//! rip-up-style request stream (the session-API payoff measurement).
//!
//! The workload mimics the router's inner loop: a fixed grid, a pool of
//! nets with 2–16 sinks, and several pricing rounds that perturb edge
//! costs between passes — so the session sees a long, heterogeneous
//! request stream, exactly the shape the reusable [`SolverWorkspace`]
//! is built for.
//!
//! Three variants solve the *identical* stream (results are asserted
//! bit-identical):
//!
//! * `fresh`  — the legacy free function `solve()`, reallocating every
//!   search structure per call;
//! * `reused` — one `Solver` session, clear-and-reuse;
//! * `batch4` — `solve_batch` over 4 worker workspaces per round.
//!
//! A counting global allocator reports allocations and bytes per
//! variant, alongside criterion wall-clock sampling.
//!
//! ```text
//! cargo bench -p cds-bench --bench session
//! ```
//!
//! [`SolverWorkspace`]: cds_core::SolverWorkspace

use cds_core::{solve, Request, Solver, SolverOptions};
use cds_graph::{GridGraph, GridSpec};
use cds_topo::BifurcationConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// System allocator wrapped with relaxed counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// One net of the stream.
struct Net {
    sinks: Vec<u32>,
    weights: Vec<f64>,
    bif: BifurcationConfig,
    seed: u64,
}

/// The rip-up workload: `ROUNDS` pricing rounds over `NETS` nets.
struct Workload {
    grid: GridGraph,
    nets: Vec<Net>,
    /// one cost vector per round (perturbed deterministically)
    costs: Vec<Vec<f64>>,
    delay: Vec<f64>,
}

const NETS: usize = 48;
const ROUNDS: usize = 4;

fn build_workload() -> Workload {
    let grid = GridSpec::uniform(28, 28, 4).build();
    let base = grid.graph().base_costs();
    let delay = grid.graph().delays();
    let (nx, ny) = (grid.spec().nx, grid.spec().ny);
    let nets = (0..NETS as u64)
        .map(|i| {
            let k = 2 + (i * 7 % 15) as u32; // 2..=16 sinks
            let sinks = (0..k)
                .map(|j| {
                    grid.vertex(
                        (5 + i as u32 * 13 + j * 11) % nx,
                        (3 + i as u32 * 7 + j * 17) % ny,
                        (j % 2) as u8,
                    )
                })
                .collect();
            let weights = (0..k).map(|j| 0.05 + 0.35 * ((i + j as u64) % 5) as f64).collect();
            Net {
                sinks,
                weights,
                bif: BifurcationConfig::new(4.0, 0.25),
                seed: 0xC0FFEE ^ i.wrapping_mul(0x9E3779B97F4A7C15),
            }
        })
        .collect();
    let costs = (0..ROUNDS)
        .map(|r| {
            base.iter()
                .enumerate()
                .map(|(e, &c)| c * (1.0 + 0.15 * ((e + r * 31) % 7) as f64))
                .collect()
        })
        .collect();
    Workload { grid, nets, costs, delay }
}

fn requests(w: &Workload, round: usize) -> impl Iterator<Item = Request<'_>> + '_ {
    w.nets.iter().map(move |net| {
        Request::new(
            w.grid.graph(),
            &w.costs[round],
            &w.delay,
            w.grid.vertex(0, 0, 0),
            &net.sinks,
            &net.weights,
        )
        .with_bif(net.bif)
        .with_seed(net.seed)
    })
}

fn run_fresh(w: &Workload) -> f64 {
    let mut acc = 0.0;
    for round in 0..ROUNDS {
        for req in requests(w, round) {
            let opts = SolverOptions { seed: req.seed.unwrap_or(0), ..Default::default() };
            acc += solve(&req.instance(), &opts).evaluation.total;
        }
    }
    acc
}

fn run_reused(w: &Workload, session: &mut Solver) -> f64 {
    let mut acc = 0.0;
    for round in 0..ROUNDS {
        for req in requests(w, round) {
            acc += session.solve(&req).evaluation.total;
        }
    }
    acc
}

fn run_batch(w: &Workload, session: &mut Solver, threads: usize) -> f64 {
    let mut acc = 0.0;
    for round in 0..ROUNDS {
        let reqs: Vec<Request<'_>> = requests(w, round).collect();
        for r in session.solve_batch(&reqs, threads) {
            acc += r.evaluation.total;
        }
    }
    acc
}

/// One measured pass of a variant: (wall time, allocs, bytes, checksum).
fn measured<F: FnMut() -> f64>(mut f: F) -> (Duration, u64, u64, f64) {
    let (a0, b0) = allocs_now();
    let start = Instant::now();
    let acc = f();
    let wall = start.elapsed();
    let (a1, b1) = allocs_now();
    (wall, a1 - a0, b1 - b0, acc)
}

fn alloc_report(w: &Workload) {
    let solves = (NETS * ROUNDS) as u64;
    // warm up the sessions once so one-time setup is out of the numbers
    let mut session = Solver::new();
    black_box(run_reused(w, &mut session));
    let mut batch_session = Solver::new();
    black_box(run_batch(w, &mut batch_session, 4));

    let (t_fresh, a_fresh, b_fresh, x1) = measured(|| run_fresh(w));
    let (t_reuse, a_reuse, b_reuse, x2) = measured(|| run_reused(w, &mut session));
    let (t_batch, a_batch, b_batch, x3) = measured(|| run_batch(w, &mut batch_session, 4));
    assert_eq!(x1.to_bits(), x2.to_bits(), "reuse changed results");
    assert_eq!(x2.to_bits(), x3.to_bits(), "batching changed results");

    println!("\nsession-reuse report ({solves} solves: {NETS} nets × {ROUNDS} pricing rounds)");
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12} {:>14}",
        "variant", "wall", "allocs", "allocs/solve", "MiB", "solves/s"
    );
    for (name, t, a, b) in [
        ("fresh", t_fresh, a_fresh, b_fresh),
        ("reused", t_reuse, a_reuse, b_reuse),
        ("batch4", t_batch, a_batch, b_batch),
    ] {
        println!(
            "{:<8} {:>12} {:>14} {:>14.1} {:>12.1} {:>14.0}",
            name,
            format!("{t:.1?}"),
            a,
            a as f64 / solves as f64,
            b as f64 / (1u64 << 20) as f64,
            solves as f64 / t.as_secs_f64()
        );
    }
    println!(
        "allocation ratio fresh/reused: {:.1}x; speedup reused vs fresh: {:.2}x\n",
        a_fresh as f64 / a_reuse.max(1) as f64,
        t_fresh.as_secs_f64() / t_reuse.as_secs_f64()
    );
}

fn bench_session(c: &mut Criterion) {
    let w = build_workload();
    alloc_report(&w);
    let mut g = c.benchmark_group("session");
    g.sample_size(12);
    g.measurement_time(Duration::from_secs(6));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("fresh_per_call", |b| b.iter(|| black_box(run_fresh(&w))));
    let mut session = Solver::new();
    g.bench_function("reused_workspace", |b| b.iter(|| black_box(run_reused(&w, &mut session))));
    let mut batch_session = Solver::new();
    g.bench_function("batch_4_workspaces", |b| {
        b.iter(|| black_box(run_batch(&w, &mut batch_session, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
