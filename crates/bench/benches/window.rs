//! Zero-copy window views vs materialized window graphs — the
//! per-net routing-path measurement of the `SteinerGraph` refactor.
//!
//! The router's inner loop used to build a fresh window `GridGraph`
//! (plus sliced cost/delay vectors) for every net of every rip-up
//! iteration. The [`WindowView`] backend routes the same window
//! directly over the global grid: local dense vertex ids for the
//! solver's label slabs, global edge ids so the chip-wide price/delay
//! arrays index unsliced. This bench routes an identical rip-up
//! workload through both backends (results are asserted bit-identical)
//! and reports wall clock plus allocator traffic per routed net.
//!
//! ```text
//! cargo bench -p cds-bench --bench window
//! ```
//!
//! [`WindowView`]: cds_graph::WindowView

use cds_instgen::{Chip, ChipSpec};
use cds_router::{Router, RouterConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// System allocator wrapped with relaxed counters.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

const ITERATIONS: usize = 3;

fn build_chip() -> Chip {
    ChipSpec { num_nets: 120, ..ChipSpec::small_test(7) }.generate()
}

fn run(chip: &Chip, materialize_windows: bool) -> (f64, f64, usize, u64, u64) {
    let out = Router::new(
        chip,
        RouterConfig {
            iterations: ITERATIONS,
            threads: 1, // single worker: clean per-net allocation counts
            materialize_windows,
            ..Default::default()
        },
    )
    .run();
    // kernel counters participate in the bit-identity assert: both
    // backends must do the same search work, not just find the same
    // trees
    (
        out.metrics.tns,
        out.metrics.wl_m,
        out.metrics.vias,
        out.stats.kernel_settled,
        out.stats.kernel_pushed,
    )
}

fn alloc_report(chip: &Chip) {
    let nets_routed = (chip.nets.len() * ITERATIONS) as u64;
    // warm both paths once so one-time setup is out of the numbers
    let warm_view = run(chip, false);
    let warm_mat = run(chip, true);
    assert_eq!(warm_view, warm_mat, "backends diverged");

    let mut rows = Vec::new();
    for (name, materialize) in [("materialized", true), ("view", false)] {
        let (a0, b0) = allocs_now();
        let start = Instant::now();
        let got = run(chip, materialize);
        let wall = start.elapsed();
        let (a1, b1) = allocs_now();
        assert_eq!(got, warm_view, "backends diverged");
        rows.push((name, wall, a1 - a0, b1 - b0));
    }

    println!(
        "\nwindow-backend report ({} nets × {ITERATIONS} rip-up iterations = {nets_routed} routed nets)",
        chip.nets.len()
    );
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "backend", "wall", "allocs", "allocs/net", "MiB", "nets/s"
    );
    for &(name, wall, allocs, bytes) in &rows {
        println!(
            "{:<14} {:>12} {:>14} {:>12.1} {:>12.1} {:>12.0}",
            name,
            format!("{wall:.1?}"),
            allocs,
            allocs as f64 / nets_routed as f64,
            bytes as f64 / (1u64 << 20) as f64,
            nets_routed as f64 / wall.as_secs_f64()
        );
    }
    let (mat, view) = (&rows[0], &rows[1]);
    println!(
        "allocation ratio materialized/view: {:.1}x; speedup view vs materialized: {:.2}x",
        mat.2 as f64 / view.2.max(1) as f64,
        mat.1.as_secs_f64() / view.1.as_secs_f64()
    );
    println!(
        "kernel ops (identical on both backends): {} settled, {} pushed ({:.1} settled/net)\n",
        warm_view.3,
        warm_view.4,
        warm_view.3 as f64 / nets_routed as f64
    );
}

fn bench_window(c: &mut Criterion) {
    let chip = build_chip();
    alloc_report(&chip);
    let mut g = c.benchmark_group("window");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("materialized_windows", |b| b.iter(|| black_box(run(&chip, true))));
    g.bench_function("zero_copy_views", |b| b.iter(|| black_box(run(&chip, false))));
    g.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
