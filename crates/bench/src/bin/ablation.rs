//! §III ablation: the contribution of each practical enhancement.
//!
//! DESIGN.md calls out the paper's claim that §III-A "significantly
//! improves connection costs" and that §III-D "improves the quality in
//! practice". This harness measures each toggle on harvested router
//! instances: objective vs the fully enhanced solver, and labels settled
//! (the work A* saves).

use cds_bench::{env_usize, selected_suite};
use cds_core::{solve, GridFutureCost, Instance, SolverOptions};
use cds_graph::{EdgeIndex, GridWindow};
use cds_router::{Router, RouterConfig};
use cds_topo::BifurcationConfig;

fn main() {
    let iterations = env_usize("CDST_ITER", 3);
    let chips = selected_suite();
    let chip = chips.first().expect("at least one chip selected");
    eprintln!("harvesting {}…", chip.name);
    let router =
        Router::new(chip, RouterConfig { iterations, harvest: true, ..Default::default() });
    let out = router.run();
    let bif = BifurcationConfig::new(chip.delay_model.dbif_ps(), 0.25);
    let index = EdgeIndex::new(&chip.grid);

    let variants: [(&str, SolverOptions); 5] = [
        ("full (A-E)", SolverOptions::default()),
        ("no III-A discount", SolverOptions { discount_components: false, ..Default::default() }),
        ("no III-D placement", SolverOptions { better_steiner: false, ..Default::default() }),
        ("no III-E root enc.", SolverOptions { encourage_root: false, ..Default::default() }),
        ("base (Sec. II)", SolverOptions::base()),
    ];
    let mut sums = vec![0.0f64; variants.len()];
    let mut astar_settled = 0usize;
    let mut plain_settled = 0usize;
    let mut n = 0usize;

    for h in out.harvest.iter().filter(|h| chip.nets[h.net].sinks.len() >= 3) {
        let net = &chip.nets[h.net];
        let mut pins = vec![net.root];
        pins.extend_from_slice(&net.sinks);
        let window = GridWindow::around(&chip.grid, &index, &pins, 6);
        let cost = window.slice(&out.prices);
        let delay = window.grid.graph().delays();
        let root = window.grid.vertex_at(window.localize(net.root));
        let sinks: Vec<u32> =
            net.sinks.iter().map(|&p| window.grid.vertex_at(window.localize(p))).collect();
        let inst = Instance {
            graph: window.grid.graph(),
            cost: &cost,
            delay: &delay,
            root,
            sink_vertices: &sinks,
            weights: &h.weights,
            bif,
        };
        let full = solve(&inst, &variants[0].1).evaluation.total;
        if full <= 0.0 {
            continue;
        }
        for (i, (_, opts)) in variants.iter().enumerate() {
            let r = solve(&inst, opts);
            sums[i] += r.evaluation.total / full - 1.0;
        }
        // work saved by §III-C
        let mut terms = sinks.clone();
        terms.push(root);
        let fc = GridFutureCost::new(&window.grid, &terms);
        astar_settled += solve(&inst, &SolverOptions::enhanced(&fc)).stats.settled;
        plain_settled += solve(&inst, &SolverOptions::default()).stats.settled;
        n += 1;
    }
    println!("§III ablation over {n} instances of {}", chip.name);
    println!("{:>22} {:>14}", "variant", "avg obj vs full");
    for (i, (name, _)) in variants.iter().enumerate() {
        println!("{name:>22} {:>+13.2}%", sums[i] / n as f64 * 100.0);
    }
    println!(
        "\n§III-C goal-orientation: {} labels settled with A* vs {} without ({:.1}% saved)",
        astar_settled,
        plain_settled,
        (1.0 - astar_settled as f64 / plain_settled.max(1) as f64) * 100.0
    );
}
