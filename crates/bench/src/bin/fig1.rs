//! Fig. 1 reproduction: bifurcations on the critical path.
//!
//! The paper's Figure 1 contrasts two trees for the same net — one with
//! many bifurcations on the root→critical-sink path, one with few. This
//! harness builds that situation (one heavy critical sink, many light
//! fan-out sinks near its trunk) and reports, for each Steiner method,
//! the number of bifurcations on the critical path and the critical
//! sink's delay, with bifurcation penalties active.

use cds_geom::Point;
use cds_graph::GridSpec;
use cds_router::{route_net, OracleRequest, SteinerMethod};
use cds_topo::BifurcationConfig;

fn main() {
    let grid = GridSpec::uniform(24, 12, 4).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    // critical sink far right; light sinks sprinkled along the trunk
    let mut sinks = vec![Point::new(23, 5)];
    for i in 0..8 {
        sinks.push(Point::new(3 + 2 * i, if i % 2 == 0 { 3 } else { 8 }));
    }
    let mut weights = vec![5.0];
    weights.extend(std::iter::repeat_n(0.05, 8));
    let bif = BifurcationConfig::new(8.0, 0.25);
    println!("Fig. 1 — bifurcations on the critical path (critical sink at (23,5), w=5)");
    println!(
        "{:>4} {:>18} {:>16} {:>12}",
        "Run", "bifs on crit path", "crit delay [ps]", "objective"
    );
    for m in SteinerMethod::ALL {
        let req = OracleRequest {
            surface: &grid,
            cost: &cost,
            delay: &delay,
            root: Point::new(0, 5),
            sinks: &sinks,
            weights: &weights,
            budgets: None,
            bif,
            seed: 7,
        };
        let tree = route_net(m, &req);
        let ev = tree.evaluate(&cost, &delay, &weights, &bif);
        let crit_node = tree
            .sink_nodes()
            .into_iter()
            .find(|&(s, _)| s == 0)
            .map(|(_, n)| n)
            .expect("critical sink routed");
        println!(
            "{:>4} {:>18} {:>16.1} {:>12.1}",
            m.to_string(),
            tree.bifurcations_on_path(crit_node),
            ev.sink_delays[0],
            ev.total
        );
    }
}
