//! Fig. 2 reproduction: buffering freedom at a bifurcation.
//!
//! Figure 2 of the paper shows two buffering solutions of the same
//! branching, trading delay between the branches: the penalty `d_bif`
//! can be shifted within `[η, 1−η]`. This harness demonstrates the
//! trade-off numerically from the repeater-chain model: the delay each
//! branch sees under different λ splits, and that the split of Eq. (2)
//! minimizes the weighted sum.

use cds_delay::Technology;
use cds_topo::penalty::{beta, lambda_split, BifurcationConfig};

fn main() {
    let tech = Technology::five_nm_like(8);
    let model = tech.calibrate(20.0);
    let dbif = model.dbif_ps();
    println!("Fig. 2 — bifurcation delay trade-off (calibrated d_bif = {dbif:.2} ps)");
    println!("branch weights w_x = 2.0 (critical), w_y = 0.5 (uncritical), η = 0.25\n");
    let (wx, wy) = (2.0, 0.5);
    let eta = 0.25;
    println!("{:>8} {:>12} {:>12} {:>16}", "λ_x", "x delay[ps]", "y delay[ps]", "weighted cost");
    for lx in [eta, 0.5, 1.0 - eta] {
        let ly = 1.0 - lx;
        let cost = wx * lx * dbif + wy * ly * dbif;
        println!("{lx:>8.2} {:>12.2} {:>12.2} {:>16.2}", lx * dbif, ly * dbif, cost);
    }
    let (lx, ly) = lambda_split(wx, wy, eta);
    let bif = BifurcationConfig::new(dbif, eta);
    println!(
        "\nEq. (2) optimum: λ_x = {lx:.2}, λ_y = {ly:.2} → β(w_x, w_y) = {:.2} ps·w",
        beta(wx, wy, &bif)
    );
    println!("\nrepeater chain calibration per layer (wire type 0):");
    println!("{:>6} {:>14} {:>16}", "layer", "segment [µm]", "delay [ps/gcell]");
    for l in 0..model.num_layers() as u8 {
        println!(
            "{l:>6} {:>14.1} {:>16.3}",
            model.segment_um(l, 0),
            model.wire_delay_per_gcell(l, 0)
        );
    }
}
