#![forbid(unsafe_code)]
//! Fig. 3 reproduction: the course of the cost-distance algorithm.
//!
//! Figure 3 of the paper shows five iterations of Algorithm 1 on a
//! 5-sink instance: simultaneous Dijkstra balls growing at speeds
//! inversely proportional to delay weight, pairwise merges with random
//! Steiner placement, a root connection, until all sinks are connected.
//! This harness runs that instance with tracing enabled and prints the
//! merge course plus an ASCII rendering of the final tree.

use cds_core::{solve, Instance, MergeEvent, SolverOptions};
use cds_graph::GridSpec;
use cds_topo::{BifurcationConfig, NodeKind};

fn main() {
    let grid = GridSpec::uniform(20, 20, 2).build();
    let (cost, delay) = (grid.graph().base_costs(), grid.graph().delays());
    // the 5 sinks of the figure: dot size = delay weight
    let sinks = [
        grid.vertex(3, 16, 0),
        grid.vertex(8, 14, 0),
        grid.vertex(16, 12, 0),
        grid.vertex(5, 5, 0),
        grid.vertex(14, 3, 0),
    ];
    let weights = [2.0, 0.5, 1.0, 0.7, 1.4];
    let root = grid.vertex(10, 10, 0);
    let inst = Instance {
        graph: grid.graph(),
        cost: &cost,
        delay: &delay,
        root,
        sink_vertices: &sinks,
        weights: &weights,
        bif: BifurcationConfig::new(5.0, 0.25),
    };
    let result = solve(&inst, &SolverOptions { record_trace: true, ..Default::default() });
    println!("Fig. 3 — course of the algorithm on the 5-sink example\n");
    let coord = |v: u32| {
        let c = grid.coord(v);
        format!("({},{})", c.x, c.y)
    };
    for ev in &result.trace {
        match *ev {
            MergeEvent::SinkSink {
                iteration,
                u_vertex,
                v_vertex,
                steiner_vertex,
                l_value,
                path_edges,
            } => {
                println!(
                    "i={iteration}: u at {} finds v at {}; Steiner vertex s at {} \
                     (L = {l_value:.2}, path {path_edges} edges)",
                    coord(u_vertex),
                    coord(v_vertex),
                    coord(steiner_vertex)
                );
            }
            MergeEvent::RootConnect { iteration, u_vertex, l_value, path_edges } => {
                println!(
                    "i={iteration}: terminal at {} connects to the root component \
                     (L = {l_value:.2}, path {path_edges} edges)",
                    coord(u_vertex)
                );
            }
        }
    }
    println!(
        "\nfinal: objective {:.2} (connection {:.2} + weighted delay {:.2}), {} bifurcations",
        result.evaluation.total,
        result.evaluation.connection_cost,
        result.evaluation.delay_cost,
        result.evaluation.bifurcations
    );

    // ASCII plot of the plane projection
    let mut canvas = vec![vec![b' '; 20]; 20];
    for node in 0..result.tree.num_nodes() as u32 {
        if result.tree.parent(node).is_some() {
            for &e in &result.tree.path(node).edges {
                let ep = grid.graph().endpoints(e);
                for v in [ep.u, ep.v] {
                    let c = grid.coord(v);
                    let cell = &mut canvas[c.y as usize][c.x as usize];
                    if *cell == b' ' {
                        *cell = b'.';
                    }
                }
            }
        }
    }
    for (i, &s) in sinks.iter().enumerate() {
        let c = grid.coord(s);
        canvas[c.y as usize][c.x as usize] = b'0' + i as u8;
    }
    let rc = grid.coord(root);
    canvas[rc.y as usize][rc.x as usize] = b'r';
    println!("\nplane projection (r = root, digits = sinks, . = wire):");
    for row in canvas.iter().rev() {
        println!("  {}", String::from_utf8_lossy(row));
    }
    let steiner = (0..result.tree.num_nodes() as u32)
        .filter(|&n| result.tree.node_kind(n) == NodeKind::Steiner)
        .count();
    println!("\n({} tree nodes, {steiner} Steiner nodes)", result.tree.num_nodes());
}
