//! Table I reproduction: average cost increase compared to the best of
//! the four Steiner methods on identical cost-distance instances, with
//! `d_bif = 0`, bucketed by sink count.
//!
//! Instances are harvested from timing-constrained routing runs on the
//! synthetic Table III suite, exactly as in the paper ("as they were
//! generated during timing-constrained global routing").

use cds_bench::{env_usize, instance_comparison, selected_suite, InstanceTable};

fn main() {
    let iterations = env_usize("CDST_ITER", 4);
    let mut total = InstanceTable::default();
    for chip in selected_suite() {
        eprintln!("harvesting {} ({} nets)…", chip.name, chip.nets.len());
        total.merge(&instance_comparison(&chip, false, iterations));
    }
    total.print("Table I — avg cost increase vs best of 4, d_bif = 0");
}
