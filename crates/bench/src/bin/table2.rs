//! Table II reproduction: like Table I but with the calibrated
//! bifurcation penalty `d_bif > 0` active in every method.

use cds_bench::{env_usize, instance_comparison, selected_suite, InstanceTable};

fn main() {
    let iterations = env_usize("CDST_ITER", 4);
    let mut total = InstanceTable::default();
    for chip in selected_suite() {
        eprintln!(
            "harvesting {} ({} nets, d_bif = {:.2} ps)…",
            chip.name,
            chip.nets.len(),
            chip.delay_model.dbif_ps()
        );
        total.merge(&instance_comparison(&chip, true, iterations));
    }
    total.print("Table II — avg cost increase vs best of 4, d_bif > 0");
}
