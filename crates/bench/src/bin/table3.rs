//! Table III reproduction: the instance parameters of the chip suite.
//!
//! The paper's industrial chips are substituted by synthetic analogs
//! with identical layer counts and scaled net counts (see DESIGN.md);
//! this binary prints the parameters actually used plus the paper's
//! originals for reference.
//!
//! With `CDST_EMIT=DIR` each suite chip is additionally written to
//! `DIR/<name>.cdst`, so paper-scale documents can be fed to
//! `cds-cli route` / the streaming reader without a separate driver:
//!
//! ```text
//! CDST_DIVISOR=100 CDST_EMIT=/tmp/suite cargo run --release -p cds-bench --bin table3
//! cds-cli route /tmp/suite/c8.cdst --set shards=4 --threads 4
//! ```

use cds_bench::{env_u64, env_usize};
use cds_instgen::io::doc::{chip_doc_to_string, ChipDoc};
use cds_instgen::ChipSpec;

fn main() {
    let divisor = env_usize("CDST_DIVISOR", 800);
    let seed = env_u64("CDST_SEED", 1);
    let emit = std::env::var("CDST_EMIT").ok();
    if let Some(dir) = &emit {
        std::fs::create_dir_all(dir).expect("create CDST_EMIT directory");
    }
    println!("Table III — instance parameters (synthetic suite, divisor {divisor})");
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "Chip", "paper#nets", "our#nets", "#layers", "grid", "d_bif[ps]"
    );
    let paper = [49_734, 66_500, 286_619, 305_094, 420_131, 590_060, 650_127, 941_271];
    for (spec, &pn) in ChipSpec::paper_suite(divisor, seed).iter().zip(&paper) {
        let chip = spec.generate();
        let g = chip.grid.spec();
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12} {:>10.2}",
            chip.name,
            pn,
            chip.nets.len(),
            g.layers.len(),
            format!("{}x{}", g.nx, g.ny),
            chip.delay_model.dbif_ps(),
        );
        if let Some(dir) = &emit {
            let doc = ChipDoc::from_chip(&chip).expect("document the chip");
            let text = chip_doc_to_string(&doc).expect("serialize the chip");
            let path = format!("{dir}/{}.cdst", chip.name);
            std::fs::write(&path, text).expect("write the chip document");
            println!("     wrote {path}");
        }
    }
}
