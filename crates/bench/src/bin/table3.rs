//! Table III reproduction: the instance parameters of the chip suite.
//!
//! The paper's industrial chips are substituted by synthetic analogs
//! with identical layer counts and scaled net counts (see DESIGN.md);
//! this binary prints the parameters actually used plus the paper's
//! originals for reference.

use cds_bench::{env_u64, env_usize};
use cds_instgen::ChipSpec;

fn main() {
    let divisor = env_usize("CDST_DIVISOR", 800);
    let seed = env_u64("CDST_SEED", 1);
    println!("Table III — instance parameters (synthetic suite, divisor {divisor})");
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "Chip", "paper#nets", "our#nets", "#layers", "grid", "d_bif[ps]"
    );
    let paper = [49_734, 66_500, 286_619, 305_094, 420_131, 590_060, 650_127, 941_271];
    for (spec, &pn) in ChipSpec::paper_suite(divisor, seed).iter().zip(&paper) {
        let chip = spec.generate();
        let g = chip.grid.spec();
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12} {:>10.2}",
            chip.name,
            pn,
            chip.nets.len(),
            g.layers.len(),
            format!("{}x{}", g.nx, g.ny),
            chip.delay_model.dbif_ps(),
        );
    }
}
