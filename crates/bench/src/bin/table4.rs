//! Table IV reproduction: timing-constrained global routing results with
//! `d_bif = 0` — WS, TNS, ACE4, wirelength, vias, and walltime for each
//! chip × Steiner method.

fn main() {
    cds_bench::print_routing_table(false, "Table IV — global routing results, d_bif = 0");
}
