//! Table V reproduction: timing-constrained global routing results with
//! the calibrated bifurcation penalty `d_bif > 0`.

fn main() {
    cds_bench::print_routing_table(true, "Table V — global routing results, d_bif > 0");
}
