#![forbid(unsafe_code)]
//! Experiment harnesses that regenerate the paper's tables and figures.
//!
//! Each table/figure of the evaluation section has a binary in
//! `src/bin/` (run with `cargo run -p cds-bench --release --bin tableN`)
//! and a scaled-down Criterion bench in `benches/`. This library holds
//! the shared machinery: chip suites, the instance-level comparison of
//! Tables I/II, the routing-level comparison of Tables IV/V, and the
//! formatting that mirrors the paper's rows.
//!
//! Scaling knobs (environment variables):
//!
//! * `CDST_DIVISOR` — net-count divisor for the Table III suite
//!   (default 800; the paper's chips divided by 800 run in minutes).
//! * `CDST_CHIPS` — comma-separated subset of chips (default all 8).
//! * `CDST_SEED` — base seed (default 1).

use cds_instgen::{Chip, ChipSpec};
use cds_metrics::RunMetrics;
use cds_router::{Router, RouterConfig, SteinerMethod};
use cds_topo::BifurcationConfig;

/// Reads a `usize` environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `u64` environment knob.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The chip suite selected by the environment (see module docs).
pub fn selected_suite() -> Vec<Chip> {
    let divisor = env_usize("CDST_DIVISOR", 800);
    let seed = env_u64("CDST_SEED", 1);
    let filter: Option<Vec<String>> = std::env::var("CDST_CHIPS")
        .ok()
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
    ChipSpec::paper_suite(divisor, seed)
        .into_iter()
        .filter(|spec| filter.as_ref().is_none_or(|f| f.iter().any(|x| x == &spec.name)))
        .map(|spec| spec.generate())
        .collect()
}

/// The sink-count buckets of Tables I/II.
pub const BUCKETS: [(&str, usize, usize); 4] =
    [("3-5", 3, 5), ("6-14", 6, 14), ("15-29", 15, 29), (">=30", 30, usize::MAX)];

/// One row of a Table I/II reproduction: per-method average objective
/// increase over the best of the four, per bucket.
#[derive(Debug, Clone, Default)]
pub struct InstanceTable {
    /// instances per bucket
    pub count: [usize; 4],
    /// accumulated relative increase per bucket × method (L1, SL, PD, CD)
    pub incr: [[f64; 4]; 4],
}

impl InstanceTable {
    /// Accumulates one instance's objectives (paper order L1, SL, PD, CD).
    pub fn add(&mut self, num_sinks: usize, objectives: [f64; 4]) {
        let Some(bucket) =
            BUCKETS.iter().position(|&(_, lo, hi)| num_sinks >= lo && num_sinks <= hi)
        else {
            return;
        };
        let best = objectives.iter().cloned().fold(f64::INFINITY, f64::min);
        if best <= 0.0 || best.is_nan() {
            return;
        }
        for (m, &o) in objectives.iter().enumerate() {
            self.incr[bucket][m] += o / best - 1.0;
        }
        self.count[bucket] += 1;
    }

    /// Merges another accumulator (per-chip → suite totals).
    pub fn merge(&mut self, other: &InstanceTable) {
        for b in 0..4 {
            self.count[b] += other.count[b];
            for m in 0..4 {
                self.incr[b][m] += other.incr[b][m];
            }
        }
    }

    /// Prints the table in the paper's layout.
    pub fn print(&self, title: &str) {
        println!("{title}");
        println!("{:>6} {:>10} {:>8} {:>8} {:>8} {:>8}", "|S|", "#inst", "L1", "SL", "PD", "CD");
        let mut tot = [0.0f64; 4];
        let mut tot_n = 0usize;
        for (b, &(label, _, _)) in BUCKETS.iter().enumerate() {
            let n = self.count[b];
            if n == 0 {
                continue;
            }
            print!("{label:>6} {n:>10}");
            for (acc, inc) in tot.iter_mut().zip(&self.incr[b]) {
                print!(" {:>7.2}%", inc / n as f64 * 100.0);
                *acc += inc;
            }
            println!();
            tot_n += n;
        }
        if tot_n > 0 {
            print!("{:>6} {tot_n:>10}", "all");
            for t in tot {
                print!(" {:>7.2}%", t / tot_n as f64 * 100.0);
            }
            println!();
        }
    }
}

/// Runs the Table I/II experiment on one chip: route with the CD oracle
/// (harvesting weights/budgets/prices), then present every harvested
/// instance identically to all four methods. The replay prices are the
/// run's post-loop vector (`RoutingOutcome::prices`) — not necessarily
/// what any single iteration routed on, but identical across the four
/// methods, which is what the comparison needs.
pub fn instance_comparison(chip: &Chip, use_dbif: bool, iterations: usize) -> InstanceTable {
    let router = Router::new(
        chip,
        RouterConfig { iterations, harvest: true, use_dbif, ..Default::default() },
    );
    let out = router.run();
    let bif = if use_dbif {
        BifurcationConfig::new(chip.delay_model.dbif_ps(), 0.25)
    } else {
        BifurcationConfig::ZERO
    };
    let mut table = InstanceTable::default();
    for h in &out.harvest {
        let mut objs = [0.0f64; 4];
        for (i, m) in SteinerMethod::ALL.iter().enumerate() {
            // budgets are empty when the final iteration routed before
            // any STA-derived budgets existed (single-iteration runs)
            let budgets = (!h.budgets.is_empty()).then_some(h.budgets.as_slice());
            objs[i] = router.route_one(h.net, *m, &out.prices, &h.weights, budgets, bif).1;
        }
        table.add(chip.nets[h.net].sinks.len(), objs);
    }
    table
}

/// Runs the Table IV/V experiment on one chip: a full router run per
/// method. Returns (method, metrics) rows in the paper's order.
pub fn routing_comparison(
    chip: &Chip,
    use_dbif: bool,
    iterations: usize,
) -> Vec<(SteinerMethod, RunMetrics)> {
    SteinerMethod::ALL
        .iter()
        .map(|&m| {
            let out = Router::new(
                chip,
                RouterConfig { method: m, iterations, use_dbif, ..Default::default() },
            )
            .run();
            (m, out.metrics)
        })
        .collect()
}

/// Runs and prints a complete Table IV/V (all chips × all methods),
/// including the paper's summary block.
pub fn print_routing_table(use_dbif: bool, title: &str) {
    let iterations = env_usize("CDST_ITER", 4);
    println!("{title}");
    print_routing_header();
    let mut sums: Vec<(SteinerMethod, RunMetrics)> = Vec::new();
    let mut chips = 0usize;
    for chip in selected_suite() {
        chips += 1;
        for (m, metrics) in routing_comparison(&chip, use_dbif, iterations) {
            println!("{}", metrics.table_row(&chip.name, &m.to_string()));
            match sums.iter_mut().find(|(sm, _)| *sm == m) {
                Some((_, s)) => {
                    s.ws += metrics.ws;
                    s.tns += metrics.tns;
                    s.ace4 += metrics.ace4;
                    s.wl_m += metrics.wl_m;
                    s.vias += metrics.vias;
                    s.walltime_s += metrics.walltime_s;
                }
                None => sums.push((m, metrics)),
            }
        }
    }
    println!("-- all (WS/TNS/WL/vias summed, ACE4 averaged) --");
    for (m, mut s) in sums {
        s.ace4 /= chips.max(1) as f64;
        println!("{}", s.table_row("all", &m.to_string()));
    }
}

/// Prints the Table IV/V header.
pub fn print_routing_header() {
    println!(
        "{:>4} {:>3} {:>9} {:>12} {:>7} {:>9} {:>10} {:>9}",
        "Chip", "Run", "WS[ps]", "TNS[ps]", "ACE4[%]", "WL[m]", "Vias", "Wall[s]"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_from_three() {
        let mut t = InstanceTable::default();
        t.add(3, [1.0, 1.0, 1.0, 1.0]);
        t.add(14, [2.0, 1.0, 1.0, 1.0]);
        t.add(29, [1.0, 1.0, 1.0, 1.0]);
        t.add(64, [1.0, 1.0, 1.0, 1.5]);
        assert_eq!(t.count, [1, 1, 1, 1]);
        assert!((t.incr[1][0] - 1.0).abs() < 1e-12, "L1 100% over best in bucket 2");
        assert!((t.incr[3][3] - 0.5).abs() < 1e-12);
        // sub-3-sink instances are ignored, as in the paper
        t.add(2, [1.0, 1.0, 1.0, 1.0]);
        assert_eq!(t.count, [1, 1, 1, 1]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = InstanceTable::default();
        a.add(4, [1.0, 2.0, 1.0, 1.0]);
        let mut b = InstanceTable::default();
        b.add(4, [1.5, 1.0, 1.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.count[0], 2);
        assert!((a.incr[0][0] - 0.5).abs() < 1e-12);
        assert!((a.incr[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_usize("CDST_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("CDST_DOES_NOT_EXIST", 9), 9);
    }
}
