#![forbid(unsafe_code)]
//! `cds-cli` — the end-to-end driver over the routing engine.
//!
//! Turns the library into a tool: chips travel as `cdst/1` documents
//! (see `cds_instgen::io::doc`), and every experiment becomes three
//! shell lines instead of a Rust test harness:
//!
//! ```text
//! cds-cli gen --preset smoke -o chip.cdst
//! cds-cli route chip.cdst --oracle cd          # JSON metrics + checksum
//! cds-cli verify chip.cdst --expect 0x<hex>    # re-route and diff
//! ```
//!
//! Subcommands:
//!
//! * `gen` — synthesize a chip (`--preset`, `--nets`, `--layers`,
//!   `--seed`, `--utilization`, `--name`) and print its document.
//! * `route` — stream-parse a document (file or stdin; records feed
//!   straight into the chip being built, peak memory one line buffer
//!   over the chip itself), route it, print run metrics,
//!   `RouterStats`, and the outcome checksum as JSON. With
//!   `--set checkpoint_every=K --checkpoint FILE` it writes a
//!   resumable `cdst/2` checkpoint document every K iterations;
//!   `--resume` continues from a checkpoint document's `state` section
//!   and reproduces the uninterrupted run's checksum bit-for-bit.
//! * `verify` — route and compare the checksum against `--expect`;
//!   exit 1 on mismatch (the CI golden gate).
//! * `harvest` — route with instance harvesting and print the document
//!   extended with the per-net `weights`/`budgets` archive.
//! * `fixtures` — regenerate the pinned documents under
//!   `tests/fixtures/` (the 300-net converging chip, the hard-congested
//!   chip, the 120-request solver stream, and the CI smoke checksum).
//! * `submit` — send a document to a running `cds-serve` daemon, poll
//!   until done, and print the result JSON (same bytes `route` prints).
//! * `loadtest` — hammer a daemon with N concurrent clients replaying
//!   document fixtures; reports p50/p99 latency, jobs/s, and the
//!   cache-hit count, with optional `--expect`/`--min-cache-hits`
//!   assertions for CI.
//!
//! Router configuration layers, later wins: `RouterConfig::default()`,
//! then the document's `config` records, then CLI flags
//! (`--oracle/--threads/--iterations/--incremental/--price-tol/...`).
//! Knobs without a dedicated flag go through `--set key=value` — e.g.
//! `--set queue=heap` picks the binary-heap label queue over the
//! default monotone bucket queue (bit-identical results, different
//! speed), and `--set batch=on` enables batched multi-sink search.

use cds_instgen::io::doc::{
    chip_doc_to_string, read_chip_doc, read_chip_streaming, ChipDoc, RequestRecord, StateSection,
    StreamedChip,
};
use cds_instgen::{ChipSpec, SinkProfile};
use cds_router::report::{json_escape, outcome_json};
use cds_router::{Router, RouterConfig, RoutingOutcome, RunControl, WorkerPool};
use cds_serve::http::percent_encode;
use std::io::{BufReader, Read as _, Write as _};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("cds-cli: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cds-cli <gen|route|verify|harvest|fixtures|submit|loadtest> [args]
  gen      [--preset smoke|small|converging|congested|fanout_heavy] [--nets N] [--layers N]
           [--seed N] [--utilization F] [--name S] [-o FILE]
  route    [FILE|-] [--oracle cd|l1|sl|pd] [--threads N] [--iterations N]
           [--incremental BOOL] [--price-tol F] [--materialize] [--seed N]
           [--checkpoint FILE] [--resume]
           [--set key=value]...       (e.g. --set queue=heap|bucket, --set shards=4)
  verify   [FILE|-] --expect 0xHEX [route flags]
  harvest  [FILE|-] [route flags] [-o FILE]
  fixtures DIR
  submit   [FILE|-] --addr HOST:PORT [route flags] [--poll-ms N]
  loadtest FILE... --addr HOST:PORT [--clients N] [--requests N] [--poll-ms N]
           [--expect 0xHEX] [--min-cache-hits N] [--shutdown] [route flags]";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or(USAGE)?;
    match cmd.as_str() {
        "gen" => gen(rest),
        "route" => route(rest),
        "verify" => verify(rest),
        "harvest" => harvest(rest),
        "fixtures" => fixtures(rest),
        "submit" => submit(rest),
        "loadtest" => loadtest(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    }
}

// ---------------------------------------------------------------- flags

/// Minimal flag cursor: `--flag value` pairs, bare `--flag` switches,
/// and positionals (document paths). Flags are kept in command-line
/// order so configuration layering is truly "later wins".
struct Flags {
    named: Vec<(String, Option<String>)>,
    positionals: Vec<String>,
}

impl Flags {
    /// `valued` lists the flags that take a value, `switches` those
    /// that take none; anything else is rejected (a misspelled flag
    /// must not silently swallow the following argument).
    fn parse(args: &[String], valued: &[&str], switches: &[&str]) -> Result<Self, String> {
        let mut named = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    named.push((name.to_string(), None));
                } else if valued.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    named.push((name.to_string(), Some(v.clone())));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else if a == "-o" {
                let v = it.next().ok_or("-o needs a file name")?;
                named.push(("o".to_string(), Some(v.clone())));
            } else {
                positionals.push(a.clone());
            }
        }
        Ok(Flags { named, positionals })
    }

    /// The single document path for subcommands that take at most one.
    fn positional(&self) -> Result<Option<&str>, String> {
        match self.positionals.as_slice() {
            [] => Ok(None),
            [one] => Ok(Some(one)),
            [_, extra, ..] => Err(format!("unexpected argument {extra}")),
        }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_deref().unwrap_or(""))
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad value {v} for --{name}")),
        }
    }
}

// ------------------------------------------------------------------ gen

fn preset_spec(name: &str) -> Result<ChipSpec, String> {
    Ok(match name {
        // the CI smoke chip: small enough to route in seconds, big
        // enough for real congestion
        "smoke" => ChipSpec { name: "smoke".into(), num_nets: 40, ..ChipSpec::small_test(44) },
        "small" => ChipSpec::small_test(1),
        // the converging chip the `incremental` bench measures
        "converging" => ChipSpec {
            name: "converging".into(),
            num_nets: 300,
            utilization: 0.22,
            ..ChipSpec::small_test(5)
        },
        // the hard-congested chip (overflow rip-up irreducible)
        "congested" => {
            ChipSpec { name: "congested".into(), num_nets: 150, ..ChipSpec::small_test(7) }
        }
        // clock-tree-like: few drivers, 30-80-sink nets spread die-wide
        "fanout_heavy" => ChipSpec {
            name: "fanout_heavy".into(),
            num_nets: 24,
            profile: SinkProfile::FanoutHeavy,
            ..ChipSpec::small_test(11)
        },
        other => {
            return Err(format!(
                "unknown preset {other} (want smoke/small/converging/congested/fanout_heavy)"
            ))
        }
    })
}

const GEN_FLAGS: &[&str] = &["preset", "nets", "layers", "seed", "utilization", "name"];

fn gen(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, GEN_FLAGS, &[])?;
    let mut spec = preset_spec(flags.get("preset").unwrap_or("small"))?;
    if let Some(n) = flags.num::<usize>("nets")? {
        spec.num_nets = n;
    }
    if let Some(l) = flags.num::<u8>("layers")? {
        spec.num_layers = l;
    }
    if let Some(s) = flags.num::<u64>("seed")? {
        spec.seed = s;
    }
    if let Some(u) = flags.num::<f64>("utilization")? {
        spec.utilization = u;
    }
    if let Some(name) = flags.get("name") {
        spec.name = name.to_string();
    }
    let doc = ChipDoc::from_chip(&spec.generate()).map_err(|e| e.to_string())?;
    emit(flags.get("o"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------- route

fn load_doc(path: Option<&str>) -> Result<ChipDoc, String> {
    match path {
        None | Some("-") => {
            read_chip_doc(std::io::stdin().lock()).map_err(|e| format!("<stdin>: {e}"))
        }
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("{p}: {e}"))?;
            read_chip_doc(BufReader::new(f)).map_err(|e| format!("{p}: {e}"))
        }
    }
}

/// Streaming load for `route`/`verify`: records feed straight into the
/// chip being built (graph constructed mid-parse, `ecap` applied in
/// place), so peak memory is the finished chip plus one line buffer —
/// no intermediate [`ChipDoc`]. Accepts files and stdin alike.
fn load_streamed(path: Option<&str>) -> Result<StreamedChip, String> {
    match path {
        None | Some("-") => {
            read_chip_streaming(std::io::stdin().lock()).map_err(|e| format!("<stdin>: {e}"))
        }
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("{p}: {e}"))?;
            read_chip_streaming(BufReader::new(f)).map_err(|e| format!("{p}: {e}"))
        }
    }
}

/// Default config ← document `config` records ← CLI flags, the flags
/// strictly in command-line order (so `--set iterations=3
/// --iterations 9` ends at 9, and vice versa).
fn build_config(records: &[(String, String)], flags: &Flags) -> Result<RouterConfig, String> {
    let mut config = RouterConfig::default();
    for (k, v) in records {
        config.set_knob(k, v).map_err(|e| format!("document config record: {e}"))?;
    }
    for (name, value) in &flags.named {
        let v = value.as_deref().unwrap_or("");
        match name.as_str() {
            "oracle" | "threads" | "iterations" | "incremental" | "seed" => {
                config.set_knob(name, v)?;
            }
            "price-tol" => config.set_knob("price_tol", v)?,
            "materialize" => config.materialize_windows = true,
            "set" => {
                let (k, v) =
                    v.split_once('=').ok_or_else(|| format!("--set wants key=value, got {v}"))?;
                config.set_knob(k, v)?;
            }
            // verify's --expect and the -o output path are not knobs
            _ => {}
        }
    }
    Ok(config)
}

/// Serializes a resolved [`RouterConfig`] back into `config` records —
/// every knob [`RouterConfig::set_knob`] accepts, so a checkpoint
/// document resumed without any flags routes under exactly the config
/// the interrupted run used.
fn config_records(c: &RouterConfig) -> Vec<(String, String)> {
    let b = |v: bool| if v { "true" } else { "false" }.to_string();
    vec![
        ("oracle".into(), c.method.to_string()),
        ("iterations".into(), c.iterations.to_string()),
        ("threads".into(), c.threads.to_string()),
        ("use_dbif".into(), b(c.use_dbif)),
        ("eta".into(), format!("{:?}", c.eta)),
        ("seed".into(), c.seed.to_string()),
        ("window_margin".into(), c.window_margin.to_string()),
        ("price_alpha".into(), format!("{:?}", c.price_alpha)),
        ("weight_tau_ps".into(), format!("{:?}", c.weight_tau_ps)),
        ("harvest".into(), b(c.harvest)),
        ("materialize_windows".into(), b(c.materialize_windows)),
        ("incremental".into(), b(c.incremental)),
        ("price_tol".into(), format!("{:?}", c.price_tol)),
        ("recount_every".into(), c.recount_every.to_string()),
        ("queue".into(), c.queue.to_string()),
        ("batch".into(), b(c.batch)),
        ("shards".into(), c.shards.to_string()),
        ("checkpoint_every".into(), c.checkpoint_every.to_string()),
    ]
}

/// Routes a streamed document, honoring `--resume` (continue from the
/// document's `state` section) and `--checkpoint FILE` (write each
/// periodic checkpoint as a complete, immediately resumable `cdst/2`
/// document — later checkpoints overwrite earlier ones, so the file
/// always holds the most recent resume point).
fn route_streamed(
    sc: &StreamedChip,
    flags: &Flags,
) -> Result<(RouterConfig, RoutingOutcome), String> {
    let config = build_config(&sc.config, flags)?;
    let resume: Option<&StateSection> = if flags.get("resume").is_some() {
        Some(sc.state.as_ref().ok_or("--resume needs a cdst/2 document with a state section")?)
    } else {
        None
    };
    let checkpoint_to = flags.get("checkpoint");
    if checkpoint_to.is_some() && config.checkpoint_every == 0 {
        return Err("--checkpoint needs --set checkpoint_every=K (K > 0)".into());
    }
    let mut write_err: Option<String> = None;
    let outcome = {
        let mut on_checkpoint = |_iter: usize, state: StateSection| {
            let Some(path) = checkpoint_to else { return };
            if write_err.is_some() {
                return;
            }
            let res = ChipDoc::from_chip(&sc.chip)
                .map_err(|e| e.to_string())
                .and_then(|mut doc| {
                    doc.config = config_records(&config);
                    doc.state = Some(state);
                    chip_doc_to_string(&doc).map_err(|e| e.to_string())
                })
                .and_then(|text| std::fs::write(path, text).map_err(|e| format!("{path}: {e}")));
            if let Err(e) = res {
                write_err = Some(e);
            }
        };
        Router::new(&sc.chip, config.clone()).run_checkpointed(
            &mut WorkerPool::new(),
            &RunControl::new(),
            &mut |_, _| {},
            resume,
            &mut on_checkpoint,
        )
    };
    if let Some(e) = write_err {
        return Err(format!("checkpoint write failed: {e}"));
    }
    Ok((config, outcome))
}

const ROUTE_FLAGS: &[&str] = &[
    "oracle",
    "threads",
    "iterations",
    "incremental",
    "price-tol",
    "seed",
    "set",
    "expect",
    "checkpoint",
];
const ROUTE_SWITCHES: &[&str] = &["materialize", "resume"];

fn route(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let sc = load_streamed(flags.positional()?)?;
    let (config, out) = route_streamed(&sc, &flags)?;
    println!("{}", outcome_json(&sc.chip, &config, &out));
    eprintln!(
        "cds-cli: streamed {} records, {} ecap overrides applied in place, peak line {} bytes",
        sc.stats.records, sc.stats.ecap_applied, sc.stats.peak_line_bytes
    );
    Ok(ExitCode::SUCCESS)
}

// --------------------------------------------------------------- verify

fn parse_checksum(v: &str) -> Result<u64, String> {
    let hex = v.strip_prefix("0x").unwrap_or(v);
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad checksum {v} (want 0x<hex>)"))
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let expect = parse_checksum(flags.get("expect").ok_or("verify needs --expect 0x<hex>")?)?;
    let sc = load_streamed(flags.positional()?)?;
    let (config, out) = route_streamed(&sc, &flags)?;
    let actual = out.checksum();
    let ok = actual == expect;
    println!(
        "{{\"chip\": \"{}\", \"oracle\": \"{}\", \"expected\": \"{:#018x}\", \
         \"actual\": \"{:#018x}\", \"match\": {}}}",
        json_escape(&sc.chip.name),
        config.method,
        expect,
        actual,
        ok
    );
    if ok {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("cds-cli: checksum mismatch — the route diverged from the recorded golden");
        Ok(ExitCode::FAILURE)
    }
}

// -------------------------------------------------------------- harvest

fn harvest(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let mut doc = load_doc(flags.positional()?)?;
    let mut config = build_config(&doc.config, &flags)?;
    config.harvest = true;
    let chip = doc.build_chip();
    let out = Router::new(&chip, config).run();
    doc.weights.clear();
    doc.budgets.clear();
    for h in &out.harvest {
        doc.weights.push((h.net, h.weights.clone()));
        // budgets are empty before the first STA (1-iteration runs)
        if !h.budgets.is_empty() {
            doc.budgets.push((h.net, h.budgets.clone()));
        }
    }
    emit(flags.get("o"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------- fixtures

/// The 120-request heterogeneous solver stream pinned by
/// `tests/determinism.rs` (`stream_results_match_sparse_era_golden`),
/// split per grid: requests `i ≡ gi (mod 3)` land on grid `gi`, so a
/// round-robin over the three documents reconstructs stream order.
fn stream_requests(gi: usize, nx: u32, ny: u32, nl: u8) -> Vec<RequestRecord> {
    (0..120u64)
        .filter(|i| (i % 3) as usize == gi)
        .map(|i| {
            let k = 1 + (i % 7) as u32;
            let sinks: Vec<(u32, u32, u8)> = (0..k)
                .map(|j| {
                    (
                        (3 + i as u32 * 5 + j * 11) % nx,
                        (1 + i as u32 * 3 + j * 7) % ny,
                        (j as u8 % nl).min(1),
                    )
                })
                .collect();
            let weights: Vec<f64> =
                (0..k).map(|j| 0.05 + (j as f64) * 0.4 + (i % 3) as f64).collect();
            let (dbif, eta) = if i % 2 == 0 { (0.0, 0.5) } else { (3.0 + (i % 5) as f64, 0.25) };
            RequestRecord { seed: i * 31 + 7, dbif, eta, root: (0, 0, 0), sinks, weights }
        })
        .collect()
}

fn stream_doc(gi: usize, nx: u32, ny: u32, nl: u8) -> Result<String, String> {
    let doc = ChipDoc {
        name: format!("stream-{nx}x{ny}"),
        tech_layers: 2,
        cell_delay_ps: 18.0,
        config: Vec::new(),
        grid: cds_graph::GridSpec::uniform(nx, ny, nl),
        ecap: Vec::new(),
        nets: Vec::new(),
        chains: Vec::new(),
        weights: Vec::new(),
        budgets: Vec::new(),
        requests: stream_requests(gi, nx, ny, nl),
        state: None,
    };
    chip_doc_to_string(&doc).map_err(|e| e.to_string())
}

fn fixtures(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &[], &[])?;
    let dir = std::path::PathBuf::from(flags.positional()?.unwrap_or("tests/fixtures"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
        Ok(())
    };
    for preset in ["converging", "congested", "fanout_heavy"] {
        let doc =
            ChipDoc::from_chip(&preset_spec(preset)?.generate()).map_err(|e| e.to_string())?;
        write(&format!("{preset}.cdst"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    }
    // the fanout-heavy golden: CD oracle, 3 iterations (what the
    // chipdoc fixture suite re-routes and compares)
    let fanout = preset_spec("fanout_heavy")?.generate();
    let out = Router::new(&fanout, RouterConfig { iterations: 3, ..RouterConfig::default() }).run();
    write("fanout_heavy_cd.expect", &format!("{:#018x}\n", out.checksum()))?;
    for (gi, (nx, ny, nl)) in [(8u32, 8u32, 2u8), (12, 9, 3), (15, 15, 2)].into_iter().enumerate() {
        write(&format!("stream_{nx}x{ny}.cdst"), &stream_doc(gi, nx, ny, nl)?)?;
    }
    // the CI smoke golden: default config, CD oracle
    let chip = preset_spec("smoke")?.generate();
    let out = Router::new(&chip, RouterConfig::default()).run();
    write("smoke_cd.expect", &format!("{:#018x}\n", out.checksum()))?;
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------- submit/loadtest

/// Reads the raw document text (the server does its own parsing, so
/// submissions travel as-is rather than through a local `ChipDoc`).
fn load_doc_text(path: Option<&str>) -> Result<String, String> {
    match path {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .lock()
                .read_to_string(&mut text)
                .map_err(|e| format!("<stdin>: {e}"))?;
            Ok(text)
        }
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")),
    }
}

/// Maps the route flags onto a `/jobs` query string, preserving
/// command-line order — the server applies query overrides in order,
/// so layering matches a local `cds-cli route` exactly.
fn query_from_flags(flags: &Flags) -> Result<String, String> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (name, value) in &flags.named {
        let v = value.as_deref().unwrap_or("");
        match name.as_str() {
            "oracle" | "threads" | "iterations" | "incremental" | "seed" => {
                pairs.push((name.clone(), v.to_string()));
            }
            "price-tol" => pairs.push(("price_tol".into(), v.to_string())),
            "materialize" => pairs.push(("materialize_windows".into(), "true".into())),
            "set" => {
                let (k, val) =
                    v.split_once('=').ok_or_else(|| format!("--set wants key=value, got {v}"))?;
                pairs.push((k.to_string(), val.to_string()));
            }
            // addr/clients/requests/... steer the client, not the router
            _ => {}
        }
    }
    if pairs.is_empty() {
        return Ok(String::new());
    }
    let encoded: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v))).collect();
    Ok(format!("?{}", encoded.join("&")))
}

fn poll_interval(flags: &Flags) -> Result<Duration, String> {
    Ok(Duration::from_millis(flags.num::<u64>("poll-ms")?.unwrap_or(20)))
}

const SUBMIT_FLAGS: &[&str] = &[
    "addr",
    "poll-ms",
    "oracle",
    "threads",
    "iterations",
    "incremental",
    "price-tol",
    "seed",
    "set",
];

fn submit(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, SUBMIT_FLAGS, ROUTE_SWITCHES)?;
    let addr = flags.get("addr").ok_or("submit needs --addr HOST:PORT")?;
    let doc = load_doc_text(flags.positional()?)?;
    let query = query_from_flags(&flags)?;
    let res = cds_serve::submit_and_wait(addr, &doc, &query, poll_interval(&flags)?)?;
    println!("{}", res.result_json);
    eprintln!(
        "cds-cli: job {} {} cached={} latency={:.3}s",
        res.job, res.state, res.cached, res.latency_s
    );
    Ok(if res.state == "done" { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

const LOADTEST_FLAGS: &[&str] = &[
    "addr",
    "poll-ms",
    "clients",
    "requests",
    "expect",
    "min-cache-hits",
    "oracle",
    "threads",
    "iterations",
    "incremental",
    "price-tol",
    "seed",
    "set",
];
const LOADTEST_SWITCHES: &[&str] = &["materialize", "shutdown"];

fn loadtest(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, LOADTEST_FLAGS, LOADTEST_SWITCHES)?;
    let addr = flags.get("addr").ok_or("loadtest needs --addr HOST:PORT")?;
    if flags.positionals.is_empty() {
        return Err("loadtest needs at least one document file".into());
    }
    let mut docs = Vec::with_capacity(flags.positionals.len());
    for p in &flags.positionals {
        docs.push(load_doc_text(Some(p))?);
    }
    let clients = flags.num::<usize>("clients")?.unwrap_or(4);
    let requests = flags.num::<usize>("requests")?.unwrap_or(4);
    let query = query_from_flags(&flags)?;
    let report =
        cds_serve::loadtest(addr, &docs, clients, requests, &query, poll_interval(&flags)?);
    println!("{}", cds_serve::loadtest_json(&report));
    let mut failed = Vec::new();
    if report.failures > 0 {
        failed.push(format!("{} submissions failed", report.failures));
    }
    if let Some(expect) = flags.get("expect") {
        let want = format!("{:#018x}", parse_checksum(expect)?);
        if report.checksums != vec![want.clone()] {
            failed.push(format!("checksums {:?} != [{want}]", report.checksums));
        }
    }
    if let Some(min) = flags.num::<usize>("min-cache-hits")? {
        if report.cache_hits < min {
            failed.push(format!("cache hits {} < required {min}", report.cache_hits));
        }
    }
    if flags.get("shutdown").is_some() {
        let resp = cds_serve::client::request(addr, "POST", "/shutdown", b"")?;
        if resp.status != 200 {
            failed.push(format!("shutdown: HTTP {}", resp.status));
        }
    }
    if failed.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("cds-cli: loadtest failed: {}", failed.join("; "));
        Ok(ExitCode::FAILURE)
    }
}

// ----------------------------------------------------------------- misc

fn emit(path: Option<&str>, text: &str) -> Result<(), String> {
    match path {
        None | Some("-") => {
            std::io::stdout().write_all(text.as_bytes()).map_err(|e| format!("stdout: {e}"))
        }
        Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}")),
    }
}
