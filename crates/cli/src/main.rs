//! `cds-cli` — the end-to-end driver over the routing engine.
//!
//! Turns the library into a tool: chips travel as `cdst/1` documents
//! (see `cds_instgen::io::doc`), and every experiment becomes three
//! shell lines instead of a Rust test harness:
//!
//! ```text
//! cds-cli gen --preset smoke -o chip.cdst
//! cds-cli route chip.cdst --oracle cd          # JSON metrics + checksum
//! cds-cli verify chip.cdst --expect 0x<hex>    # re-route and diff
//! ```
//!
//! Subcommands:
//!
//! * `gen` — synthesize a chip (`--preset`, `--nets`, `--layers`,
//!   `--seed`, `--utilization`, `--name`) and print its document.
//! * `route` — parse a document (file or stdin), route it, print run
//!   metrics, `RouterStats`, and the outcome checksum as JSON.
//! * `verify` — route and compare the checksum against `--expect`;
//!   exit 1 on mismatch (the CI golden gate).
//! * `harvest` — route with instance harvesting and print the document
//!   extended with the per-net `weights`/`budgets` archive.
//! * `fixtures` — regenerate the pinned documents under
//!   `tests/fixtures/` (the 300-net converging chip, the hard-congested
//!   chip, the 120-request solver stream, and the CI smoke checksum).
//!
//! Router configuration layers, later wins: `RouterConfig::default()`,
//! then the document's `config` records, then CLI flags
//! (`--oracle/--threads/--iterations/--incremental/--price-tol/...`).

use cds_instgen::io::doc::{chip_doc_to_string, read_chip_doc, ChipDoc, RequestRecord};
use cds_instgen::{Chip, ChipSpec, SinkProfile};
use cds_router::{Router, RouterConfig, RoutingOutcome};
use std::fmt::Write as _;
use std::io::{BufReader, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("cds-cli: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cds-cli <gen|route|verify|harvest|fixtures> [args]
  gen      [--preset smoke|small|converging|congested|fanout_heavy] [--nets N] [--layers N]
           [--seed N] [--utilization F] [--name S] [-o FILE]
  route    [FILE|-] [--oracle cd|l1|sl|pd] [--threads N] [--iterations N]
           [--incremental BOOL] [--price-tol F] [--materialize] [--seed N]
           [--set key=value]...
  verify   [FILE|-] --expect 0xHEX [route flags]
  harvest  [FILE|-] [route flags] [-o FILE]
  fixtures DIR";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or(USAGE)?;
    match cmd.as_str() {
        "gen" => gen(rest),
        "route" => route(rest),
        "verify" => verify(rest),
        "harvest" => harvest(rest),
        "fixtures" => fixtures(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other}\n{USAGE}")),
    }
}

// ---------------------------------------------------------------- flags

/// Minimal flag cursor: `--flag value` pairs, bare `--flag` switches,
/// and at most one positional (the document path). Flags are kept in
/// command-line order so configuration layering is truly "later wins".
struct Flags {
    named: Vec<(String, Option<String>)>,
    positional: Option<String>,
}

impl Flags {
    /// `valued` lists the flags that take a value, `switches` those
    /// that take none; anything else is rejected (a misspelled flag
    /// must not silently swallow the following argument).
    fn parse(args: &[String], valued: &[&str], switches: &[&str]) -> Result<Self, String> {
        let mut named = Vec::new();
        let mut positional = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    named.push((name.to_string(), None));
                } else if valued.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    named.push((name.to_string(), Some(v.clone())));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else if a == "-o" {
                let v = it.next().ok_or("-o needs a file name")?;
                named.push(("o".to_string(), Some(v.clone())));
            } else if positional.is_none() {
                positional = Some(a.clone());
            } else {
                return Err(format!("unexpected argument {a}"));
            }
        }
        Ok(Flags { named, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_deref().unwrap_or(""))
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad value {v} for --{name}")),
        }
    }
}

// ------------------------------------------------------------------ gen

fn preset_spec(name: &str) -> Result<ChipSpec, String> {
    Ok(match name {
        // the CI smoke chip: small enough to route in seconds, big
        // enough for real congestion
        "smoke" => ChipSpec { name: "smoke".into(), num_nets: 40, ..ChipSpec::small_test(44) },
        "small" => ChipSpec::small_test(1),
        // the converging chip the `incremental` bench measures
        "converging" => ChipSpec {
            name: "converging".into(),
            num_nets: 300,
            utilization: 0.22,
            ..ChipSpec::small_test(5)
        },
        // the hard-congested chip (overflow rip-up irreducible)
        "congested" => {
            ChipSpec { name: "congested".into(), num_nets: 150, ..ChipSpec::small_test(7) }
        }
        // clock-tree-like: few drivers, 30-80-sink nets spread die-wide
        "fanout_heavy" => ChipSpec {
            name: "fanout_heavy".into(),
            num_nets: 24,
            profile: SinkProfile::FanoutHeavy,
            ..ChipSpec::small_test(11)
        },
        other => {
            return Err(format!(
                "unknown preset {other} (want smoke/small/converging/congested/fanout_heavy)"
            ))
        }
    })
}

const GEN_FLAGS: &[&str] = &["preset", "nets", "layers", "seed", "utilization", "name"];

fn gen(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, GEN_FLAGS, &[])?;
    let mut spec = preset_spec(flags.get("preset").unwrap_or("small"))?;
    if let Some(n) = flags.num::<usize>("nets")? {
        spec.num_nets = n;
    }
    if let Some(l) = flags.num::<u8>("layers")? {
        spec.num_layers = l;
    }
    if let Some(s) = flags.num::<u64>("seed")? {
        spec.seed = s;
    }
    if let Some(u) = flags.num::<f64>("utilization")? {
        spec.utilization = u;
    }
    if let Some(name) = flags.get("name") {
        spec.name = name.to_string();
    }
    let doc = ChipDoc::from_chip(&spec.generate()).map_err(|e| e.to_string())?;
    emit(flags.get("o"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------- route

fn load_doc(path: Option<&str>) -> Result<ChipDoc, String> {
    match path {
        None | Some("-") => {
            read_chip_doc(std::io::stdin().lock()).map_err(|e| format!("<stdin>: {e}"))
        }
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("{p}: {e}"))?;
            read_chip_doc(BufReader::new(f)).map_err(|e| format!("{p}: {e}"))
        }
    }
}

/// Default config ← document `config` records ← CLI flags, the flags
/// strictly in command-line order (so `--set iterations=3
/// --iterations 9` ends at 9, and vice versa).
fn build_config(doc: &ChipDoc, flags: &Flags) -> Result<RouterConfig, String> {
    let mut config = RouterConfig::default();
    for (k, v) in &doc.config {
        config.set_knob(k, v).map_err(|e| format!("document config record: {e}"))?;
    }
    for (name, value) in &flags.named {
        let v = value.as_deref().unwrap_or("");
        match name.as_str() {
            "oracle" | "threads" | "iterations" | "incremental" | "seed" => {
                config.set_knob(name, v)?;
            }
            "price-tol" => config.set_knob("price_tol", v)?,
            "materialize" => config.materialize_windows = true,
            "set" => {
                let (k, v) =
                    v.split_once('=').ok_or_else(|| format!("--set wants key=value, got {v}"))?;
                config.set_knob(k, v)?;
            }
            // verify's --expect and the -o output path are not knobs
            _ => {}
        }
    }
    Ok(config)
}

fn route_doc(doc: &ChipDoc, flags: &Flags) -> Result<(Chip, RouterConfig, RoutingOutcome), String> {
    let config = build_config(doc, flags)?;
    let chip = doc.build_chip();
    let outcome = Router::new(&chip, config.clone()).run();
    Ok((chip, config, outcome))
}

/// JSON-safe float: shortest-round-trip for finite values, `null`
/// otherwise (JSON has no inf/NaN literals).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// JSON string escaping — chip names are free-form tokens and may
/// contain `"` or `\`.
fn js(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn outcome_json(chip: &Chip, config: &RouterConfig, out: &RoutingOutcome) -> String {
    let spec = chip.grid.spec();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"chip\": \"{}\",\n  \"nets\": {},\n  \"grid\": {{\"nx\": {}, \"ny\": {}, \
         \"layers\": {}, \"edges\": {}}},\n",
        js(&chip.name),
        chip.nets.len(),
        spec.nx,
        spec.ny,
        spec.layers.len(),
        chip.grid.graph().num_edges()
    );
    let _ = writeln!(
        s,
        "  \"config\": {{\"oracle\": \"{}\", \"threads\": {}, \"iterations\": {}, \
         \"incremental\": {}, \"price_tol\": {}}},",
        config.method,
        config.threads,
        config.iterations,
        config.incremental,
        jf(config.price_tol)
    );
    let m = &out.metrics;
    let _ = writeln!(
        s,
        "  \"metrics\": {{\"ws_ps\": {}, \"tns_ps\": {}, \"ace4_pct\": {}, \
         \"wirelength_m\": {}, \"vias\": {}, \"walltime_s\": {}}},",
        jf(m.ws),
        jf(m.tns),
        jf(m.ace4),
        jf(m.wl_m),
        m.vias,
        jf(m.walltime_s)
    );
    let st = &out.stats;
    let per: Vec<String> = st.rerouted_per_iter.iter().map(|r| r.to_string()).collect();
    let walls: Vec<String> = st.iter_wall_s.iter().map(|&w| jf(w)).collect();
    let _ = writeln!(
        s,
        "  \"stats\": {{\"rerouted_per_iter\": [{}], \"oracle_calls\": {}, \
         \"dirty\": {{\"fresh\": {}, \"overflow\": {}, \"timing\": {}, \"price\": {}, \
         \"weight\": {}, \"budget\": {}}}, \"usage_recounts\": {}, \"sta_nodes_retimed\": {}, \
         \"iter_wall_s\": [{}], \"peak_arena_bytes\": {}}},",
        per.join(", "),
        st.total_rerouted(),
        st.dirty_fresh,
        st.dirty_overflow,
        st.dirty_timing,
        st.dirty_price,
        st.dirty_weight,
        st.dirty_budget,
        st.usage_recounts,
        st.sta_nodes_retimed,
        walls.join(", "),
        st.peak_arena_bytes
    );
    let _ = write!(s, "  \"checksum\": \"{:#018x}\"\n}}", out.checksum());
    s
}

const ROUTE_FLAGS: &[&str] =
    &["oracle", "threads", "iterations", "incremental", "price-tol", "seed", "set", "expect"];
const ROUTE_SWITCHES: &[&str] = &["materialize"];

fn route(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let doc = load_doc(flags.positional.as_deref())?;
    let (chip, config, out) = route_doc(&doc, &flags)?;
    println!("{}", outcome_json(&chip, &config, &out));
    Ok(ExitCode::SUCCESS)
}

// --------------------------------------------------------------- verify

fn parse_checksum(v: &str) -> Result<u64, String> {
    let hex = v.strip_prefix("0x").unwrap_or(v);
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad checksum {v} (want 0x<hex>)"))
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let expect = parse_checksum(flags.get("expect").ok_or("verify needs --expect 0x<hex>")?)?;
    let doc = load_doc(flags.positional.as_deref())?;
    let (chip, config, out) = route_doc(&doc, &flags)?;
    let actual = out.checksum();
    let ok = actual == expect;
    println!(
        "{{\"chip\": \"{}\", \"oracle\": \"{}\", \"expected\": \"{:#018x}\", \
         \"actual\": \"{:#018x}\", \"match\": {}}}",
        js(&chip.name),
        config.method,
        expect,
        actual,
        ok
    );
    if ok {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("cds-cli: checksum mismatch — the route diverged from the recorded golden");
        Ok(ExitCode::FAILURE)
    }
}

// -------------------------------------------------------------- harvest

fn harvest(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, ROUTE_FLAGS, ROUTE_SWITCHES)?;
    let mut doc = load_doc(flags.positional.as_deref())?;
    let mut config = build_config(&doc, &flags)?;
    config.harvest = true;
    let chip = doc.build_chip();
    let out = Router::new(&chip, config).run();
    doc.weights.clear();
    doc.budgets.clear();
    for h in &out.harvest {
        doc.weights.push((h.net, h.weights.clone()));
        // budgets are empty before the first STA (1-iteration runs)
        if !h.budgets.is_empty() {
            doc.budgets.push((h.net, h.budgets.clone()));
        }
    }
    emit(flags.get("o"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------- fixtures

/// The 120-request heterogeneous solver stream pinned by
/// `tests/determinism.rs` (`stream_results_match_sparse_era_golden`),
/// split per grid: requests `i ≡ gi (mod 3)` land on grid `gi`, so a
/// round-robin over the three documents reconstructs stream order.
fn stream_requests(gi: usize, nx: u32, ny: u32, nl: u8) -> Vec<RequestRecord> {
    (0..120u64)
        .filter(|i| (i % 3) as usize == gi)
        .map(|i| {
            let k = 1 + (i % 7) as u32;
            let sinks: Vec<(u32, u32, u8)> = (0..k)
                .map(|j| {
                    (
                        (3 + i as u32 * 5 + j * 11) % nx,
                        (1 + i as u32 * 3 + j * 7) % ny,
                        (j as u8 % nl).min(1),
                    )
                })
                .collect();
            let weights: Vec<f64> =
                (0..k).map(|j| 0.05 + (j as f64) * 0.4 + (i % 3) as f64).collect();
            let (dbif, eta) = if i % 2 == 0 { (0.0, 0.5) } else { (3.0 + (i % 5) as f64, 0.25) };
            RequestRecord { seed: i * 31 + 7, dbif, eta, root: (0, 0, 0), sinks, weights }
        })
        .collect()
}

fn stream_doc(gi: usize, nx: u32, ny: u32, nl: u8) -> Result<String, String> {
    let doc = ChipDoc {
        name: format!("stream-{nx}x{ny}"),
        tech_layers: 2,
        cell_delay_ps: 18.0,
        config: Vec::new(),
        grid: cds_graph::GridSpec::uniform(nx, ny, nl),
        ecap: Vec::new(),
        nets: Vec::new(),
        chains: Vec::new(),
        weights: Vec::new(),
        budgets: Vec::new(),
        requests: stream_requests(gi, nx, ny, nl),
    };
    chip_doc_to_string(&doc).map_err(|e| e.to_string())
}

fn fixtures(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &[], &[])?;
    let dir = std::path::PathBuf::from(flags.positional.as_deref().unwrap_or("tests/fixtures"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
        Ok(())
    };
    for preset in ["converging", "congested", "fanout_heavy"] {
        let doc =
            ChipDoc::from_chip(&preset_spec(preset)?.generate()).map_err(|e| e.to_string())?;
        write(&format!("{preset}.cdst"), &chip_doc_to_string(&doc).map_err(|e| e.to_string())?)?;
    }
    // the fanout-heavy golden: CD oracle, 3 iterations (what the
    // chipdoc fixture suite re-routes and compares)
    let fanout = preset_spec("fanout_heavy")?.generate();
    let out = Router::new(&fanout, RouterConfig { iterations: 3, ..RouterConfig::default() }).run();
    write("fanout_heavy_cd.expect", &format!("{:#018x}\n", out.checksum()))?;
    for (gi, (nx, ny, nl)) in [(8u32, 8u32, 2u8), (12, 9, 3), (15, 15, 2)].into_iter().enumerate() {
        write(&format!("stream_{nx}x{ny}.cdst"), &stream_doc(gi, nx, ny, nl)?)?;
    }
    // the CI smoke golden: default config, CD oracle
    let chip = preset_spec("smoke")?.generate();
    let out = Router::new(&chip, RouterConfig::default()).run();
    write("smoke_cd.expect", &format!("{:#018x}\n", out.checksum()))?;
    Ok(ExitCode::SUCCESS)
}

// ----------------------------------------------------------------- misc

fn emit(path: Option<&str>, text: &str) -> Result<(), String> {
    match path {
        None | Some("-") => {
            std::io::stdout().write_all(text.as_bytes()).map_err(|e| format!("stdout: {e}"))
        }
        Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}")),
    }
}
