//! Process-level tests of the `cds-cli` binary: the gen → route →
//! verify → harvest pipeline, stdin documents, exit codes, and error
//! reporting.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cds-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "{cmd:?} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn json_field<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = json.find(&pat).unwrap_or_else(|| panic!("no {key} in {json}")) + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '\n', '}']).unwrap();
    rest[..end].trim().trim_matches('"')
}

#[test]
fn gen_route_verify_pipeline() {
    let doc = tmp("pipeline.cdst");
    run_ok(
        bin()
            .args(["gen", "--preset", "small", "--nets", "25", "--seed", "9"])
            .args(["-o", doc.to_str().unwrap()]),
    );
    let json = run_ok(bin().args([
        "route",
        doc.to_str().unwrap(),
        "--oracle",
        "cd",
        "--iterations",
        "2",
        "--threads",
        "2",
    ]));
    assert_eq!(json_field(&json, "nets"), "25");
    assert_eq!(json_field(&json, "oracle"), "CD");
    // the stats block surfaces per-iteration wall clock and the peak
    // forest-arena footprint
    let walls = json_field(&json, "iter_wall_s");
    assert!(!walls.is_empty(), "no iter_wall_s in: {json}");
    let peak: u64 = json_field(&json, "peak_arena_bytes").parse().unwrap();
    assert!(peak > 0, "peak_arena_bytes missing or zero in: {json}");
    let checksum = json_field(&json, "checksum").to_string();
    assert!(checksum.starts_with("0x") && checksum.len() == 18, "{checksum}");

    // verify against the checksum route just reported: must match
    let ok = bin()
        .args(["verify", doc.to_str().unwrap(), "--oracle", "cd", "--iterations", "2"])
        .args(["--expect", &checksum])
        .output()
        .unwrap();
    assert!(ok.status.success(), "verify rejected its own checksum");

    // and a wrong golden must exit 1 with match: false
    let bad = bin()
        .args(["verify", doc.to_str().unwrap(), "--oracle", "cd", "--iterations", "2"])
        .args(["--expect", "0x1"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("\"match\": false"));
}

fn pipe_stdin(cmd: &mut Command, input: &str) -> Output {
    let mut child =
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped()).spawn().unwrap();
    child.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
    child.wait_with_output().unwrap()
}

#[test]
fn route_reads_document_from_stdin() {
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "20"]));
    let out = pipe_stdin(bin().args(["route", "-", "--iterations", "1"]), &doc);
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(json_field(&json, "nets"), "20");
}

#[test]
fn document_config_records_apply_and_cli_flags_override() {
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "20"]));
    // config records belong to the preamble: splice them in after the
    // celldelay line
    let mut lines: Vec<&str> = doc.lines().collect();
    let at = lines.iter().position(|l| l.starts_with("celldelay")).unwrap() + 1;
    lines.insert(at, "config oracle l1");
    lines.insert(at + 1, "config iterations 1");
    let with_config = format!("{}\n", lines.join("\n"));
    let out = pipe_stdin(bin().args(["route", "-"]), &with_config);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(json_field(&json, "oracle"), "L1", "document config record ignored");
    assert_eq!(json_field(&json, "iterations"), "1");

    // CLI flag beats the document record
    let out = pipe_stdin(bin().args(["route", "-", "--oracle", "pd"]), &with_config);
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(json_field(&json, "oracle"), "PD", "CLI flag lost to document config");
}

#[test]
fn harvest_emits_the_instance_archive() {
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "30", "--seed", "3"]));
    // full-reroute mode: the final iteration re-routes every net with
    // STA-derived budgets, so every harvested instance carries both
    let out = pipe_stdin(
        bin().args(["harvest", "-", "--iterations", "2", "--incremental", "false"]),
        &doc,
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let archive = String::from_utf8(out.stdout).unwrap();
    let weights = archive.lines().filter(|l| l.starts_with("weights ")).count();
    let budgets = archive.lines().filter(|l| l.starts_with("budgets ")).count();
    assert!(weights > 0, "no weights records in the harvest archive");
    assert_eq!(weights, budgets, "full-reroute harvests carry budgets for every instance");

    // incremental mode: clean nets keep their iteration-0 route, whose
    // budgets were empty (routing preceded the first STA) — the archive
    // reports exactly the inputs each kept route was produced with
    let out = pipe_stdin(bin().args(["harvest", "-", "--iterations", "2"]), &doc);
    let archive_inc = String::from_utf8(out.stdout).unwrap();
    let weights_inc = archive_inc.lines().filter(|l| l.starts_with("weights ")).count();
    let budgets_inc = archive_inc.lines().filter(|l| l.starts_with("budgets ")).count();
    assert_eq!(weights_inc, weights, "every instance still reports its weights");
    assert!(budgets_inc < weights_inc, "some kept route should predate the first budgets");
    // the archive is itself a valid document: routing it still works
    let rerun = pipe_stdin(bin().args(["route", "-", "--iterations", "1"]), &archive);
    assert!(rerun.status.success(), "{}", String::from_utf8_lossy(&rerun.stderr));
}

#[test]
fn malformed_documents_exit_2_with_line_numbers() {
    let out = pipe_stdin(bin().args(["route", "-"]), "cdst/1\nbogus record\n");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "stderr lacks the line number: {err}");

    let out = bin().args(["route", "/nonexistent/chip.cdst"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flags_are_rejected_instead_of_swallowing_arguments() {
    // Regression: a misspelled flag used to consume the next argument
    // as its value and route with silently-wrong configuration (or
    // hang on stdin after eating the document path).
    let out = bin().args(["route", "x.cdst", "--itrations", "3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --itrations"));

    let out = bin().args(["route", "--materialise", "x.cdst"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --materialise"));

    let out = bin().args(["gen", "--nest", "9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn config_flags_apply_in_command_line_order() {
    // Regression: --set pairs used to apply after all dedicated flags
    // regardless of position, so a later dedicated flag could not
    // override an earlier --set.
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "15"]));
    let later_flag =
        pipe_stdin(bin().args(["route", "-", "--set", "iterations=3", "--iterations", "1"]), &doc);
    let json = String::from_utf8(later_flag.stdout).unwrap();
    assert_eq!(json_field(&json, "iterations"), "1", "later --iterations lost to earlier --set");
    let later_set =
        pipe_stdin(bin().args(["route", "-", "--iterations", "3", "--set", "iterations=1"]), &doc);
    let json = String::from_utf8(later_set.stdout).unwrap();
    assert_eq!(json_field(&json, "iterations"), "1", "later --set lost to earlier --iterations");
}

#[test]
fn chip_names_are_json_escaped() {
    // `"` and `\` are legal in cdst/1 name tokens; the JSON output
    // must escape them
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "12", "--name", "a\"b\\c"]));
    let out = pipe_stdin(bin().args(["route", "-", "--iterations", "1"]), &doc);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"chip\": \"a\\\"b\\\\c\""), "unescaped name in: {json}");
}

#[test]
fn fanout_heavy_preset_generates_and_routes() {
    let doc = run_ok(bin().args(["gen", "--preset", "fanout_heavy"]));
    assert!(doc.contains("chip fanout_heavy\n"));
    // every net record carries ≥ 30 sinks: `net x y : s...` has one
    // (x,y) pair per sink after the colon
    let wide = doc
        .lines()
        .filter(|l| l.starts_with("net "))
        .all(|l| l.split(':').nth(1).map_or(0, |s| s.split_whitespace().count()) >= 60);
    assert!(wide, "fanout_heavy preset emitted a low-fanout net");
    let out = pipe_stdin(bin().args(["route", "-", "--iterations", "1"]), &doc);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(json_field(&json, "nets"), "24");
}

#[test]
fn route_json_reports_run_level_totals() {
    let doc = run_ok(bin().args(["gen", "--preset", "small", "--nets", "20"]));
    let out = pipe_stdin(bin().args(["route", "-", "--iterations", "2"]), &doc);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"totals\": {"), "no totals block in: {json}");
    let wall: f64 = json_field(&json, "wall_s").parse().unwrap();
    let route_wall: f64 = json_field(&json, "route_wall_s").parse().unwrap();
    assert!(wall > 0.0 && route_wall > 0.0, "zero totals in: {json}");
    assert!(route_wall <= wall, "the routing loop cannot exceed the whole run");
    assert_eq!(json_field(&json, "iterations_completed"), "2");
    assert_eq!(json_field(&json, "cancelled"), "false");
}

// ------------------------------------------------------ service clients
//
// These spin up an in-process `cds-serve` daemon (the crate is a
// dependency of this package) and drive it with the spawned binary —
// real HTTP over loopback, real process boundaries.

fn fixture_path(name: &str) -> String {
    format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Zeroes the wall-clock/arena fields — the only JSON fields that may
/// differ between a local route and the same route through the daemon.
fn normalize(json: &str) -> String {
    let mut s = json.to_string();
    for key in ["walltime_s", "wall_s", "route_wall_s", "peak_arena_bytes"] {
        s = blank_value(&s, key, &[',', '}']);
    }
    blank_value(&s, "iter_wall_s", &[']'])
}

fn blank_value(json: &str, key: &str, stops: &[char]) -> String {
    let needle = format!("\"{key}\": ");
    let mut out = String::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let val_start = at + needle.len();
        out.push_str(&rest[..val_start]);
        let tail = &rest[val_start..];
        let end = tail.find(|c| stops.contains(&c)).unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn submit_returns_the_same_json_as_a_local_route() {
    let handle = cds_serve::Server::start(cds_serve::ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let fixture = fixture_path("fanout_heavy.cdst");
    let local = run_ok(bin().args(["route", &fixture, "--iterations", "3"]));
    let via_http = run_ok(bin().args(["submit", &fixture, "--addr", &addr, "--iterations", "3"]));
    assert_eq!(
        normalize(&via_http),
        normalize(&local),
        "the daemon's result JSON drifted from cds-cli route"
    );
    // and both match the golden this fixture was pinned at
    let pin = std::fs::read_to_string(fixture_path("fanout_heavy_cd.expect")).unwrap();
    assert_eq!(json_field(&via_http, "checksum"), pin.trim());
    handle.shutdown();
}

#[test]
fn loadtest_replays_a_fixture_and_reports_cache_hits() {
    let handle = cds_serve::Server::start(cds_serve::ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let doc = tmp("loadtest_smoke.cdst");
    run_ok(bin().args(["gen", "--preset", "smoke", "-o", doc.to_str().unwrap()]));
    let pin = std::fs::read_to_string(fixture_path("smoke_cd.expect")).unwrap();
    // 2 clients × 2 requests of one document: at most two can race the
    // first (cold) route, so at least two must be served by the cache
    let json = run_ok(
        bin()
            .args(["loadtest", doc.to_str().unwrap(), "--addr", &addr])
            .args(["--clients", "2", "--requests", "2"])
            .args(["--expect", pin.trim(), "--min-cache-hits", "2", "--shutdown"]),
    );
    assert_eq!(json_field(&json, "jobs"), "4");
    assert_eq!(json_field(&json, "failures"), "0");
    let hits: usize = json_field(&json, "cache_hits").parse().unwrap();
    assert!(hits >= 2, "expected ≥2 cache hits, got {hits}: {json}");
    // --shutdown posted the drain; the daemon must come down cleanly
    let report = handle.wait();
    assert!(report.done >= 1 && report.failed == 0, "{report:?}");

    // a wrong golden must flip the exit code — this is the CI gate
    let handle = cds_serve::Server::start(cds_serve::ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let out = bin()
        .args(["loadtest", doc.to_str().unwrap(), "--addr", &addr])
        .args(["--clients", "1", "--requests", "1", "--expect", "0x1", "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "loadtest accepted a wrong checksum");
    handle.wait();
}

#[test]
fn gen_is_deterministic_and_respects_overrides() {
    let a = run_ok(bin().args(["gen", "--preset", "congested", "--name", "x"]));
    let b = run_ok(bin().args(["gen", "--preset", "congested", "--name", "x"]));
    assert_eq!(a, b, "gen is not deterministic");
    assert!(a.contains("chip x\n"));
    let c = run_ok(bin().args(["gen", "--nets", "17", "--layers", "5"]));
    assert!(c.contains("# chip document: 17 nets"));
    assert!(c.contains(" 5 "), "layer override ignored");
}
