//! Turning the merge loop's edge set into a bifurcation-compatible
//! [`EmbeddedTree`].
//!
//! The solver accumulates paths; their union (after dropping duplicate
//! edge uses, which only makes the tree cheaper) is a connected subgraph
//! containing the root and all sinks. A DFS from the root yields the
//! arborescence; chains of degree-2 vertices are compressed into arcs,
//! sinks become leaves hanging off their host vertices, and high-degree
//! branch points are expanded into same-vertex Steiner chains so the
//! result is bifurcation compatible.
//!
//! All working tables (subgraph adjacency, DFS state, children lists)
//! are dense epoch-stamped slabs in an [`AssembleScratch`] pooled by the
//! [`SolverWorkspace`](crate::SolverWorkspace) — a warm workspace
//! assembles trees without touching the allocator beyond the output
//! tree itself.

use crate::components::DenseAdjacency;
use crate::table::{VertexSet, VertexTable};
use cds_graph::{EdgeId, SteinerGraph, VertexId};
use cds_topo::{EmbeddedTree, NodeId, NodeKind, RoutedForest, TreeSink};

const NO_LINK: u32 = u32::MAX;
const NO_EDGE: EdgeId = EdgeId::MAX;

/// Reusable buffers for [`assemble_tree_in`]: the used-subgraph
/// adjacency, DFS state, per-vertex sink lists, and children lists. All
/// vertex-keyed tables are epoch-stamped (`O(1)` clear, warm slabs).
#[derive(Debug, Default)]
pub struct AssembleScratch {
    used: Vec<EdgeId>,
    adj: DenseAdjacency,
    nbrs: Vec<(VertexId, EdgeId)>,
    visited: VertexSet,
    parent: VertexTable<(VertexId, EdgeId)>,
    order: Vec<VertexId>,
    stack: Vec<VertexId>,
    /// head of each vertex's sink list (index into `sink_links`)
    sink_head: VertexTable<u32>,
    /// (next link, sink index) — lists traverse in increasing sink index
    sink_links: Vec<(u32, u32)>,
    /// children lists in CSR form keyed by parent vertex
    cdeg: VertexTable<u32>,
    cstart: VertexTable<u32>,
    cend: VertexTable<u32>,
    centries: Vec<(VertexId, EdgeId)>,
    pending: Vec<Attachment>,
    /// emit work list: (tree node to attach under, graph vertex to
    /// process, entering edge or [`NO_EDGE`] for the root item)
    work: Vec<(NodeId, VertexId, EdgeId)>,
    /// the arc path under construction for the current work item
    path_buf: Vec<EdgeId>,
}

impl AssembleScratch {
    fn clear(&mut self) {
        self.used.clear();
        self.visited.clear();
        self.parent.clear();
        self.order.clear();
        self.stack.clear();
        self.sink_head.clear();
        self.sink_links.clear();
        self.cdeg.clear();
        self.cstart.clear();
        self.cend.clear();
        self.centries.clear();
        self.pending.clear();
        self.work.clear();
        self.path_buf.clear();
    }

    fn children(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        match (self.cstart.get(v), self.cend.get(v)) {
            (Some(s), Some(e)) => &self.centries[s as usize..e as usize],
            _ => &[],
        }
    }
}

/// Builds the final tree from the used edge set with a throwaway
/// scratch. Hot loops (the solver does) should hold an
/// [`AssembleScratch`] and call [`assemble_tree_in`].
///
/// `sink_vertices[i]` is sink `i`'s vertex. Edges may contain duplicates
/// (the base algorithm without §III-A can produce overlapping paths);
/// duplicates are dropped.
///
/// # Panics
///
/// Panics if some sink is not connected to the root through `edges`.
pub fn assemble_tree<G: SteinerGraph + ?Sized>(
    graph: &G,
    root: VertexId,
    sink_vertices: &[VertexId],
    edges: &[EdgeId],
) -> EmbeddedTree {
    assemble_tree_in(&mut AssembleScratch::default(), graph, root, sink_vertices, edges)
}

/// [`assemble_tree`] against caller-owned scratch buffers — the
/// allocation-free path of a warm workspace.
///
/// # Panics
///
/// Same contract as [`assemble_tree`].
pub fn assemble_tree_in<G: SteinerGraph + ?Sized>(
    s: &mut AssembleScratch,
    graph: &G,
    root: VertexId,
    sink_vertices: &[VertexId],
    edges: &[EdgeId],
) -> EmbeddedTree {
    prepare(s, graph, root, sink_vertices, edges);
    let mut out = EmbeddedTree::new(root);
    emit(s, root, &mut out);
    out
}

/// [`assemble_tree_in`] writing straight into a [`RoutedForest`] slot —
/// the allocation-free arena path: the same prepare/emit pipeline, with
/// the output landing in the forest's shared slabs instead of an owned
/// tree. The resulting [`TreeView`](cds_topo::TreeView) is bit-identical
/// (node ids, child order, edge order) to what [`assemble_tree_in`]
/// returns for the same inputs.
///
/// # Panics
///
/// Same contract as [`assemble_tree`].
pub fn assemble_tree_into<G: SteinerGraph + ?Sized>(
    s: &mut AssembleScratch,
    graph: &G,
    root: VertexId,
    sink_vertices: &[VertexId],
    edges: &[EdgeId],
    forest: &mut RoutedForest,
    slot: usize,
) {
    prepare(s, graph, root, sink_vertices, edges);
    let mut out = forest.build_tree(slot, root);
    emit(s, root, &mut out);
    out.finish();
}

/// The analysis half of assembly: deduplicated used-subgraph adjacency,
/// per-vertex sink lists, the root DFS, and the children CSR — all into
/// the scratch tables, ready for [`emit`].
fn prepare<G: SteinerGraph + ?Sized>(
    s: &mut AssembleScratch,
    graph: &G,
    root: VertexId,
    sink_vertices: &[VertexId],
    edges: &[EdgeId],
) {
    s.clear();
    // Deduplicated adjacency of the used subgraph.
    s.used.extend_from_slice(edges);
    s.used.sort_unstable();
    s.used.dedup();
    s.adj.build(&s.used, graph);
    // sinks per vertex: build the linked lists back to front so each
    // vertex's list traverses in increasing sink index
    for (i, &v) in sink_vertices.iter().enumerate().rev() {
        let next = s.sink_head.get_or(v, NO_LINK);
        s.sink_links.push((next, i as u32));
        s.sink_head.insert(v, s.sink_links.len() as u32 - 1);
    }

    // DFS from the root, recording the spanning-tree parent of each
    // vertex (cycle edges are skipped — they would only add cost).
    s.visited.insert(root);
    s.order.push(root);
    s.stack.push(root);
    while let Some(v) = s.stack.pop() {
        // deterministic order
        s.nbrs.clear();
        s.nbrs.extend_from_slice(s.adj.neighbors(v));
        s.nbrs.sort_unstable();
        for i in 0..s.nbrs.len() {
            let (w, e) = s.nbrs[i];
            if s.visited.insert(w) {
                s.parent.insert(w, (v, e));
                s.order.push(w);
                s.stack.push(w);
            }
        }
    }
    for (i, &v) in sink_vertices.iter().enumerate() {
        assert!(s.visited.contains(v), "sink {i} at vertex {v} is not connected to the root");
    }

    // children lists of the DFS tree, CSR over parent vertices, each
    // segment sorted for determinism
    for i in 0..s.order.len() {
        if let Some((p, _)) = s.parent.get(s.order[i]) {
            s.cdeg.add(p, 0, 1);
        }
    }
    let mut cur = 0u32;
    for i in 0..s.order.len() {
        let v = s.order[i];
        if let Some(d) = s.cdeg.get(v) {
            s.cstart.insert(v, cur);
            s.cend.insert(v, cur);
            cur += d;
        }
    }
    s.centries.resize(cur as usize, (0, 0));
    for i in 0..s.order.len() {
        let v = s.order[i];
        if let Some((p, e)) = s.parent.get(v) {
            // INVARIANT: the counting pass above inserted a cend entry for every parent recorded in s.parent.
            let c = s.cend.get(p).expect("counted") as usize;
            s.centries[c] = (v, e);
            s.cend.insert(p, c as u32 + 1);
        }
    }
    for i in 0..s.order.len() {
        let v = s.order[i];
        if let (Some(a), Some(b)) = (s.cstart.get(v), s.cend.get(v)) {
            s.centries[a as usize..b as usize].sort_unstable();
        }
    }
}

/// The emit half of assembly, generic over the output form: walks down
/// from the root, compressing pass-through chains, attaching sink
/// leaves, and keeping every node at ≤ 2 children via same-vertex
/// extension Steiner nodes. Writes to any [`TreeSink`] — the owned
/// [`EmbeddedTree`] and the [`RoutedForest`] arena produce identical
/// trees through this one code path.
fn emit<T: TreeSink>(s: &mut AssembleScratch, root: VertexId, out: &mut T) {
    // Work list: (tree node to attach under, graph vertex to process,
    // edge entering this vertex — the path itself accumulates in the
    // shared `path_buf`, so no per-item allocation).
    s.work.clear();
    s.work.push((out.root_node(), root, NO_EDGE));
    while let Some((parent_node, mut v, enter)) = s.work.pop() {
        s.path_buf.clear();
        if enter != NO_EDGE {
            s.path_buf.push(enter);
        }
        // compress: follow single-child, sink-free vertices
        loop {
            let kids = s.children(v);
            if kids.len() == 1 && !s.sink_head.contains(v) && !s.path_buf.is_empty() {
                let (w, e) = kids[0];
                s.path_buf.push(e);
                v = w;
            } else {
                break;
            }
        }
        let is_root_node = parent_node == out.root_node() && s.path_buf.is_empty() && v == root;
        // the node hosting this vertex
        let host = if is_root_node {
            out.root_node()
        } else {
            out.push_node(NodeKind::Steiner, v, parent_node, &s.path_buf)
        };
        // gather attachments: sink leaves first (lists traverse in
        // increasing sink index), then subtrees
        s.pending.clear();
        let mut link = s.sink_head.get_or(v, NO_LINK);
        while link != NO_LINK {
            let (next, sink) = s.sink_links[link as usize];
            s.pending.push(Attachment::Sink(sink as usize));
            link = next;
        }
        if let (Some(a), Some(b)) = (s.cstart.get(v), s.cend.get(v)) {
            for i in a as usize..b as usize {
                let (w, e) = s.centries[i];
                s.pending.push(Attachment::Subtree(w, e));
            }
        }
        // Chain attachments so no node exceeds its capacity. Subtrees
        // are attached lazily through the work list, so track reserved
        // slots explicitly.
        let mut cur = host;
        let mut used = out.child_count(cur);
        let total = s.pending.len();
        for i in 0..total {
            let att = s.pending[i];
            let remaining_after = total - i - 1;
            loop {
                let cap: usize = if cur == out.root_node() { 1 } else { 2 };
                // keep one slot free for the continuation chain when
                // more attachments follow
                let need = if remaining_after > 0 { 2 } else { 1 };
                if cap.saturating_sub(used) >= need {
                    break;
                }
                cur = out.push_node(NodeKind::Steiner, v, cur, &[]);
                used = 0;
            }
            match att {
                Attachment::Sink(sink) => {
                    out.push_node(NodeKind::Sink(sink), v, cur, &[]);
                }
                Attachment::Subtree(w, e) => {
                    s.work.push((cur, w, e));
                }
            }
            used += 1;
        }
        s.pending.clear();
    }
}

#[derive(Debug, Clone, Copy)]
enum Attachment {
    Sink(usize),
    Subtree(VertexId, EdgeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder, GridSpec};
    use cds_topo::BifurcationConfig;

    #[test]
    fn line_with_two_sinks() {
        // 0 - 1 - 2 - 3, root 0, sinks at 2 and 3
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, EdgeAttrs::wire(1.0, 1.0));
        }
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2, 3], &[0, 1, 2]);
        t.validate(&g, 2).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0, 1.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 3.0);
        assert_eq!(ev.sink_delays[0], 2.0);
        assert_eq!(ev.sink_delays[1], 3.0);
    }

    #[test]
    fn duplicate_edges_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2], &[0, 1, 0, 1]);
        t.validate(&g, 1).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 2.0, "duplicates must not be double counted");
    }

    #[test]
    fn many_sinks_at_one_vertex_stay_binary() {
        let grid = GridSpec::uniform(3, 3, 2).build();
        let g = grid.graph();
        let hub = grid.vertex(1, 1, 1);
        let root = grid.vertex(0, 1, 1);
        // route root to hub on layer 1 (vertical? layer 1 is vertical);
        // use explicit Dijkstra path instead of hand-picking edges
        let sp = cds_graph::dijkstra::shortest_paths(g, &[(root, 0.0)], |e| g.edge(e).base_cost);
        let path = sp.path_to(hub).unwrap();
        let t = assemble_tree(g, root, &[hub, hub, hub], &path);
        t.validate(g, 3).unwrap();
        // validate() enforces ≤ 2 children + leaf sinks
    }

    #[test]
    fn branch_vertices_become_steiner_chains() {
        // star: center 1 with arms 0 (root), 2, 3, 4
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 3, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 4, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2, 3, 4], &[0, 1, 2, 3]);
        t.validate(&g, 3).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0; 3], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 4.0);
        // the 3-way branch at vertex 1 is two chained bifurcations
        assert_eq!(ev.bifurcations, 2);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let grid = GridSpec::uniform(4, 4, 2).build();
        let g = grid.graph();
        let root = grid.vertex(0, 0, 0);
        let sinks = [grid.vertex(3, 0, 0), grid.vertex(0, 3, 0)];
        let sp = cds_graph::dijkstra::shortest_paths(g, &[(root, 0.0)], |e| g.edge(e).base_cost);
        let mut edges = sp.path_to(sinks[0]).unwrap();
        edges.extend(sp.path_to(sinks[1]).unwrap());
        let mut scratch = AssembleScratch::default();
        let mut reference: Option<Vec<EdgeId>> = None;
        for _ in 0..3 {
            let t = assemble_tree_in(&mut scratch, g, root, &sinks, &edges);
            t.validate(g, 2).unwrap();
            let got: Vec<EdgeId> = t.edges().collect();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "scratch reuse changed the tree"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_sink_panics() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let _ = assemble_tree(&g, 0, &[3], &[0]);
    }
}
