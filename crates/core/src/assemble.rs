//! Turning the merge loop's edge set into a bifurcation-compatible
//! [`EmbeddedTree`].
//!
//! The solver accumulates paths; their union (after dropping duplicate
//! edge uses, which only makes the tree cheaper) is a connected subgraph
//! containing the root and all sinks. A DFS from the root yields the
//! arborescence; chains of degree-2 vertices are compressed into arcs,
//! sinks become leaves hanging off their host vertices, and high-degree
//! branch points are expanded into same-vertex Steiner chains so the
//! result is bifurcation compatible.

use cds_graph::{EdgeId, Graph, VertexId};
use cds_topo::{EmbeddedTree, NodeId, NodeKind};
use std::collections::HashMap;

/// Builds the final tree from the used edge set.
///
/// `sink_vertices[i]` is sink `i`'s vertex. Edges may contain duplicates
/// (the base algorithm without §III-A can produce overlapping paths);
/// duplicates are dropped.
///
/// # Panics
///
/// Panics if some sink is not connected to the root through `edges`.
pub fn assemble_tree(
    graph: &Graph,
    root: VertexId,
    sink_vertices: &[VertexId],
    edges: &[EdgeId],
) -> EmbeddedTree {
    // Deduplicated adjacency of the used subgraph.
    let mut used = edges.to_vec();
    used.sort_unstable();
    used.dedup();
    let mut adj: HashMap<VertexId, Vec<(VertexId, EdgeId)>> = HashMap::new();
    for &e in &used {
        let ep = graph.endpoints(e);
        adj.entry(ep.u).or_default().push((ep.v, e));
        adj.entry(ep.v).or_default().push((ep.u, e));
    }
    // sinks per vertex
    let mut sinks_at: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (i, &v) in sink_vertices.iter().enumerate() {
        sinks_at.entry(v).or_default().push(i);
    }

    // DFS from the root, recording the spanning-tree parent of each
    // vertex (cycle edges are skipped — they would only add cost).
    let mut parent: HashMap<VertexId, (VertexId, EdgeId)> = HashMap::new();
    let mut order = vec![root];
    let mut visited: HashMap<VertexId, ()> = HashMap::new();
    visited.insert(root, ());
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if let Some(nbrs) = adj.get(&v) {
            // deterministic order
            let mut nbrs = nbrs.clone();
            nbrs.sort_unstable();
            for (w, e) in nbrs {
                if visited.contains_key(&w) {
                    continue;
                }
                visited.insert(w, ());
                parent.insert(w, (v, e));
                order.push(w);
                stack.push(w);
            }
        }
    }
    for (i, &v) in sink_vertices.iter().enumerate() {
        assert!(visited.contains_key(&v), "sink {i} at vertex {v} is not connected to the root");
    }

    // children lists of the DFS tree
    let mut children: HashMap<VertexId, Vec<(VertexId, EdgeId)>> = HashMap::new();
    for (&v, &(p, e)) in &parent {
        children.entry(p).or_default().push((v, e));
    }
    for c in children.values_mut() {
        c.sort_unstable(); // determinism
    }

    // Emit the EmbeddedTree: walk down from the root, compressing
    // pass-through chains, attaching sink leaves, and keeping every node
    // at ≤ 2 children via same-vertex extension Steiner nodes.
    let mut out = EmbeddedTree::new(root);
    // Work list: (tree node to attach under, graph vertex to process,
    // path of edges from the parent node's vertex to this vertex).
    let mut work: Vec<(NodeId, VertexId, Vec<EdgeId>)> = vec![(out.root(), root, Vec::new())];
    while let Some((parent_node, mut v, mut path)) = work.pop() {
        // compress: follow single-child, sink-free vertices
        loop {
            let kid_count = children.get(&v).map_or(0, |c| c.len());
            let has_sinks = sinks_at.contains_key(&v);
            if kid_count == 1 && !has_sinks && !path.is_empty() {
                let (w, e) = children[&v][0];
                path.push(e);
                v = w;
            } else {
                break;
            }
        }
        let is_root_node = parent_node == out.root() && path.is_empty() && v == root;
        // the node hosting this vertex
        let host = if is_root_node {
            out.root()
        } else {
            out.add_node(NodeKind::Steiner, v, parent_node, path)
        };
        // gather attachments: sink leaves first, then subtrees
        let mut pending: Vec<Attachment> = Vec::new();
        if let Some(sinks) = sinks_at.get(&v) {
            for &s in sinks {
                pending.push(Attachment::Sink(s));
            }
        }
        if let Some(kids) = children.get(&v) {
            for &(w, e) in kids {
                pending.push(Attachment::Subtree(w, e));
            }
        }
        // Chain attachments so no node exceeds its capacity. Subtrees
        // are attached lazily through the work list, so track reserved
        // slots explicitly.
        let mut cur = host;
        let mut used = out.children(cur).len();
        let total = pending.len();
        for (i, att) in pending.into_iter().enumerate() {
            let remaining_after = total - i - 1;
            loop {
                let cap: usize = if cur == out.root() { 1 } else { 2 };
                // keep one slot free for the continuation chain when
                // more attachments follow
                let need = if remaining_after > 0 { 2 } else { 1 };
                if cap.saturating_sub(used) >= need {
                    break;
                }
                cur = out.add_node(NodeKind::Steiner, v, cur, Vec::new());
                used = 0;
            }
            match att {
                Attachment::Sink(s) => {
                    out.add_node(NodeKind::Sink(s), v, cur, Vec::new());
                }
                Attachment::Subtree(w, e) => {
                    work.push((cur, w, vec![e]));
                }
            }
            used += 1;
        }
    }
    out
}

enum Attachment {
    Sink(usize),
    Subtree(VertexId, EdgeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder, GridSpec};
    use cds_topo::BifurcationConfig;

    #[test]
    fn line_with_two_sinks() {
        // 0 - 1 - 2 - 3, root 0, sinks at 2 and 3
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, EdgeAttrs::wire(1.0, 1.0));
        }
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2, 3], &[0, 1, 2]);
        t.validate(&g, 2).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0, 1.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 3.0);
        assert_eq!(ev.sink_delays[0], 2.0);
        assert_eq!(ev.sink_delays[1], 3.0);
    }

    #[test]
    fn duplicate_edges_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2], &[0, 1, 0, 1]);
        t.validate(&g, 1).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 2.0, "duplicates must not be double counted");
    }

    #[test]
    fn many_sinks_at_one_vertex_stay_binary() {
        let grid = GridSpec::uniform(3, 3, 2).build();
        let g = grid.graph();
        let hub = grid.vertex(1, 1, 1);
        let root = grid.vertex(0, 1, 1);
        // route root to hub on layer 1 (vertical? layer 1 is vertical);
        // use explicit Dijkstra path instead of hand-picking edges
        let sp = cds_graph::dijkstra::shortest_paths(g, &[(root, 0.0)], |e| g.edge(e).base_cost);
        let path = sp.path_to(hub).unwrap();
        let t = assemble_tree(g, root, &[hub, hub, hub], &path);
        t.validate(g, 3).unwrap();
        // validate() enforces ≤ 2 children + leaf sinks
    }

    #[test]
    fn branch_vertices_become_steiner_chains() {
        // star: center 1 with arms 0 (root), 2, 3, 4
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 3, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 4, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let t = assemble_tree(&g, 0, &[2, 3, 4], &[0, 1, 2, 3]);
        t.validate(&g, 3).unwrap();
        let (c, d) = (g.base_costs(), g.delays());
        let ev = t.evaluate(&c, &d, &[1.0; 3], &BifurcationConfig::ZERO);
        assert_eq!(ev.connection_cost, 4.0);
        // the 3-way branch at vertex 1 is two chained bifurcations
        assert_eq!(ev.bifurcations, 2);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_sink_panics() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let _ = assemble_tree(&g, 0, &[3], &[0]);
    }
}
