//! Connected-component bookkeeping for the merge loop.
//!
//! Every active terminal owns one component of the partially built tree:
//! the set of graph edges and vertices its merged subtree occupies. A
//! disjoint-set union tracks which terminal currently represents each
//! component as merges happen; the edge/vertex sets support the §III-A
//! discounting (tree edges are free to reuse) and the delay offsets of
//! restarted searches.
//!
//! All per-merge tables — component adjacency, tree-delay and
//! exit-price tables, downstream weights — live in dense, epoch-stamped
//! [`VertexTable`] slabs inside a [`CompScratch`] arena pooled by the
//! [`SolverWorkspace`](crate::SolverWorkspace), so the merge path of a
//! warm workspace performs no allocation.

use crate::table::{VertexSet, VertexTable};
use cds_graph::{EdgeId, SteinerGraph, VertexId};
use cds_heap::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A terminal slot index (sinks, merged Steiner terminals, and the root).
pub type TerminalId = usize;

/// Disjoint-set over terminal slots with path compression.
#[derive(Debug, Clone, Default)]
pub struct Dsu {
    parent: Vec<TerminalId>,
}

impl Dsu {
    /// Adds a fresh singleton set, returning its id.
    pub fn push(&mut self) -> TerminalId {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: TerminalId) -> TerminalId {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    /// Merges the sets of `a` and `b` into representative `into`
    /// (which must be a fresh or existing slot).
    pub fn union_into(&mut self, a: TerminalId, b: TerminalId, into: TerminalId) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = into;
        self.parent[rb] = into;
        let ri = self.find(into);
        self.parent[ri] = into;
        self.parent[into] = into;
    }

    /// Forgets all sets, keeping the allocation (workspace reuse).
    pub fn clear(&mut self) {
        self.parent.clear();
    }
}

/// CSR-style adjacency over an explicit edge list, rebuilt in place.
///
/// Per-vertex neighbor order is the order the edges touch the vertex in
/// the input list — the same order the old hash-map adjacency produced,
/// which keeps every traversal that runs over it bit-deterministic.
#[derive(Debug, Clone, Default)]
pub struct DenseAdjacency {
    deg: VertexTable<u32>,
    start: VertexTable<u32>,
    /// Fill cursor during construction; slice end afterwards.
    end: VertexTable<u32>,
    entries: Vec<(VertexId, EdgeId)>,
    touched: Vec<VertexId>,
}

impl DenseAdjacency {
    /// Rebuilds the adjacency for `edges` (duplicates allowed — each
    /// occurrence contributes an entry, like the map it replaced).
    pub fn build<G: SteinerGraph + ?Sized>(&mut self, edges: &[EdgeId], g: &G) {
        self.deg.clear();
        self.start.clear();
        self.end.clear();
        self.touched.clear();
        self.entries.clear();
        for &e in edges {
            let ep = g.endpoints(e);
            for v in [ep.u, ep.v] {
                match self.deg.get(v) {
                    None => {
                        self.deg.insert(v, 1);
                        self.touched.push(v);
                    }
                    Some(d) => self.deg.insert(v, d + 1),
                }
            }
        }
        let mut cur = 0u32;
        for &v in &self.touched {
            self.start.insert(v, cur);
            self.end.insert(v, cur);
            // INVARIANT: the degree pass recorded a degree for every vertex it pushed into touched.
            cur += self.deg.get(v).expect("touched vertices have degrees");
        }
        self.entries.resize(cur as usize, (0, 0));
        for &e in edges {
            let ep = g.endpoints(e);
            for (a, b) in [(ep.u, ep.v), (ep.v, ep.u)] {
                // INVARIANT: the degree pass touched both endpoints of every edge, so end has an entry for each.
                let c = self.end.get(a).expect("counted") as usize;
                self.entries[c] = (b, e);
                self.end.insert(a, c as u32 + 1);
            }
        }
    }

    /// Neighbors of `v` as (neighbor, edge) pairs; empty for vertices
    /// the edge list does not touch.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        match (self.start.get(v), self.end.get(v)) {
            (Some(s), Some(e)) => &self.entries[s as usize..e as usize],
            _ => &[],
        }
    }

    /// Vertices touched by the edge list, in first-touch order.
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }
}

/// The pooled scratch arena for per-merge component computations:
/// adjacency, tree-delay and exit-price tables, and the downstream
/// accumulation state. One lives in every
/// [`SolverWorkspace`](crate::SolverWorkspace); all tables clear in
/// `O(1)` and keep their slabs warm across merges and solves.
#[derive(Debug, Default)]
pub struct CompScratch {
    /// Component adjacency (rebuilt per query).
    pub(crate) adj: DenseAdjacency,
    /// Raw tree delays from the last [`Component::tree_delays_into`].
    pub delay: VertexTable<f64>,
    /// Weighted exit prices from the last
    /// [`Component::weighted_exit_delay_into`].
    pub exit: VertexTable<f64>,
    heap: BinaryHeap<Reverse<(OrderedF64, VertexId)>>,
    parent: VertexTable<VertexId>,
    weight_at: VertexTable<f64>,
    seen: VertexSet,
    order: Vec<VertexId>,
}

/// The tree-so-far of one component: its edges, its vertices, and the
/// sinks (with delay weights) it has absorbed.
#[derive(Debug, Clone, Default)]
pub struct Component {
    /// Edges of the embedded partial tree.
    pub edges: Vec<EdgeId>,
    /// Vertices the component occupies, deduplicated, in insertion
    /// order (membership is tracked by an epoch-stamped side table).
    vertices: Vec<VertexId>,
    member: VertexSet,
    /// Sinks inside the component: (vertex, delay weight).
    pub sinks: Vec<(VertexId, f64)>,
}

impl Component {
    /// A single-vertex component carrying the given sinks (one for a
    /// sink terminal, none for the root).
    pub fn singleton(v: VertexId, sinks: Vec<(VertexId, f64)>) -> Self {
        let mut c = Component { sinks, ..Component::default() };
        c.push_vertex(v);
        c
    }

    /// Re-initializes a (possibly recycled) component as a singleton,
    /// keeping whatever capacity its buffers already have.
    pub fn init_singleton(&mut self, v: VertexId, sinks: &[(VertexId, f64)]) {
        self.reset();
        self.push_vertex(v);
        self.sinks.extend_from_slice(sinks);
    }

    /// Empties the component, keeping allocations (workspace reuse).
    pub fn reset(&mut self) {
        self.edges.clear();
        self.vertices.clear();
        self.member.clear();
        self.sinks.clear();
    }

    /// The component's vertices, deduplicated, in insertion order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Whether `v` belongs to this component.
    pub fn contains(&self, v: VertexId) -> bool {
        self.member.contains(v)
    }

    fn push_vertex(&mut self, v: VertexId) {
        if self.member.insert(v) {
            self.vertices.push(v);
        }
    }

    /// Absorbs `other` and a connecting `path` (edges between them).
    /// `other` is drained but keeps its buffers, so callers can recycle
    /// it through a component pool.
    pub fn absorb<G: SteinerGraph + ?Sized>(
        &mut self,
        other: &mut Component,
        path: &[EdgeId],
        g: &G,
    ) {
        self.edges.append(&mut other.edges);
        for i in 0..other.vertices.len() {
            self.push_vertex(other.vertices[i]);
        }
        other.vertices.clear();
        other.member.clear();
        self.sinks.append(&mut other.sinks);
        for &e in path {
            self.edges.push(e);
            let ep = g.endpoints(e);
            self.push_vertex(ep.u);
            self.push_vertex(ep.v);
        }
    }

    /// For every component vertex `y`, the *weighted delay to the
    /// component's sinks* through the tree: `Σ_q w(q)·d_tree(y, q)`,
    /// into `scratch.exit` (read with `get_or(v, 0.0)`).
    ///
    /// This is the exact future delay cost the component's sinks incur
    /// if the next connection (ultimately: the root path) enters at `y`
    /// — the exit prices used to seed restarted searches under §III-A.
    /// For a singleton sink component it is `w·d_tree(y, sink)`, the
    /// paper's original seeding.
    pub fn weighted_exit_delay_into<G: SteinerGraph + ?Sized>(
        &self,
        g: &G,
        d: &[f64],
        scratch: &mut CompScratch,
    ) {
        scratch.adj.build(&self.edges, g);
        self.weighted_exit_delay_prebuilt(d, scratch);
    }

    /// [`weighted_exit_delay_into`](Self::weighted_exit_delay_into)
    /// assuming `scratch.adj` was already built for this component's
    /// edges (e.g. by an immediately preceding
    /// [`tree_delays_into`](Self::tree_delays_into)), skipping the
    /// redundant rebuild.
    pub fn weighted_exit_delay_prebuilt(&self, d: &[f64], scratch: &mut CompScratch) {
        scratch.exit.clear();
        for &(q, w) in &self.sinks {
            if w == 0.0 {
                continue;
            }
            tree_delays_over(&scratch.adj, d, q, &mut scratch.delay, &mut scratch.heap);
            for &v in &self.vertices {
                scratch.exit.add(v, 0.0, w * scratch.delay.get_or(v, 0.0));
            }
        }
    }

    /// Total sink weight *downstream* of each component vertex when the
    /// component tree is rooted at `root`, into `down` (cleared first):
    /// the weight that suffers the λ penalty if a new branch taps the
    /// tree at that vertex. Used to price bifurcations on already-routed
    /// root-component paths (Fig. 1 of the paper: keeping taps off the
    /// critical trunk). `down` is caller-owned so the solver workspace
    /// can refill its pooled table on every root merge.
    pub fn downstream_weights_into<G: SteinerGraph + ?Sized>(
        &self,
        g: &G,
        root: VertexId,
        down: &mut VertexTable<f64>,
        scratch: &mut CompScratch,
    ) {
        down.clear();
        scratch.adj.build(&self.edges, g);
        scratch.weight_at.clear();
        for &(q, w) in &self.sinks {
            scratch.weight_at.add(q, 0.0, w);
        }
        // iterative post-order accumulation from `root`
        scratch.parent.clear();
        scratch.seen.clear();
        scratch.order.clear();
        scratch.order.push(root);
        scratch.seen.insert(root);
        let mut head = 0;
        while head < scratch.order.len() {
            let v = scratch.order[head];
            head += 1;
            for &(w, _) in scratch.adj.neighbors(v) {
                if scratch.seen.insert(w) {
                    scratch.parent.insert(w, v);
                    scratch.order.push(w);
                }
            }
        }
        for &v in scratch.order.iter().rev() {
            let own = scratch.weight_at.get_or(v, 0.0);
            let acc = down.get_or(v, 0.0) + own;
            down.insert(v, acc);
            if let Some(p) = scratch.parent.get(v) {
                down.add(p, 0.0, acc);
            }
        }
    }

    /// Raw tree delay (`Σ d(e)`) from `from` to every component vertex,
    /// walking only component edges, into `scratch.delay` (read with
    /// `get`; vertices unreachable through the component — possible only
    /// by construction error — are absent).
    pub fn tree_delays_into<G: SteinerGraph + ?Sized>(
        &self,
        g: &G,
        d: &[f64],
        from: VertexId,
        scratch: &mut CompScratch,
    ) {
        scratch.adj.build(&self.edges, g);
        tree_delays_over(&scratch.adj, d, from, &mut scratch.delay, &mut scratch.heap);
    }
}

/// The tree-delay Dijkstra over a prebuilt component adjacency —
/// Dijkstra-style because duplicate edges could create cycles of
/// differing delay; component sizes are tiny, so simple is fine.
fn tree_delays_over(
    adj: &DenseAdjacency,
    d: &[f64],
    from: VertexId,
    out: &mut VertexTable<f64>,
    heap: &mut BinaryHeap<Reverse<(OrderedF64, VertexId)>>,
) {
    out.clear();
    heap.clear();
    out.insert(from, 0.0);
    heap.push(Reverse((OrderedF64::new(0.0), from)));
    while let Some(Reverse((dd, v))) = heap.pop() {
        if out.get_or(v, f64::INFINITY) < dd.get() {
            continue;
        }
        for &(w, e) in adj.neighbors(v) {
            let nd = dd.get() + d[e as usize];
            if nd < out.get_or(w, f64::INFINITY) {
                out.insert(w, nd);
                heap.push(Reverse((OrderedF64::new(nd), w)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder};

    #[test]
    fn dsu_union_find() {
        let mut dsu = Dsu::default();
        let a = dsu.push();
        let b = dsu.push();
        let c = dsu.push();
        assert_ne!(dsu.find(a), dsu.find(b));
        let s = dsu.push();
        dsu.union_into(a, b, s);
        assert_eq!(dsu.find(a), s);
        assert_eq!(dsu.find(b), s);
        assert_eq!(dsu.find(c), c);
        let s2 = dsu.push();
        dsu.union_into(s, c, s2);
        assert_eq!(dsu.find(a), s2);
        assert_eq!(dsu.find(c), s2);
    }

    #[test]
    fn component_absorb_and_delays() {
        // path graph 0-1-2-3 with delays 1, 2, 4
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 2.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 4.0));
        let g = b.build();
        let d = g.delays();
        let mut c0 = Component::singleton(0, vec![(0, 1.0)]);
        let mut c3 = Component::singleton(3, vec![(3, 2.0)]);
        // connect them with the full path
        c0.absorb(&mut c3, &[0, 1, 2], &g);
        assert!(c3.edges.is_empty() && c3.sinks.is_empty(), "absorb drains the other side");
        assert!(c3.vertices().is_empty());
        assert!(c0.contains(2));
        assert_eq!(c0.edges.len(), 3);
        let mut s = CompScratch::default();
        c0.tree_delays_into(&g, &d, 0, &mut s);
        assert_eq!(s.delay.get(3), Some(7.0));
        assert_eq!(s.delay.get(1), Some(1.0));
    }

    #[test]
    fn vertices_stay_deduplicated() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let mut c = Component::singleton(0, vec![(0, 1.0)]);
        // the path shares vertex 1 between both edges; 0 is already in
        c.absorb(&mut Component::singleton(2, vec![]), &[0, 1], &g);
        let mut vs = c.vertices().to_vec();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn weighted_exit_delay_prefers_heavy_side() {
        // path 0-1-2-3, sink w=1 at 0 and w=3 at 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let d = g.delays();
        let mut comp = Component::singleton(0, vec![(0, 1.0)]);
        comp.absorb(&mut Component::singleton(3, vec![(3, 3.0)]), &[0, 1, 2], &g);
        let mut s = CompScratch::default();
        comp.weighted_exit_delay_into(&g, &d, &mut s);
        // exit at 0: 1*0 + 3*3 = 9; at 3: 1*3 + 3*0 = 3; at 2: 1*2 + 3*1 = 5
        assert_eq!(s.exit.get_or(0, 0.0), 9.0);
        assert_eq!(s.exit.get_or(3, 0.0), 3.0);
        assert_eq!(s.exit.get_or(2, 0.0), 5.0);
        // the best exit is at the heavy sink
        assert!(s.exit.get_or(3, 0.0) < s.exit.get_or(0, 0.0));
    }

    #[test]
    fn downstream_weights_accumulate_towards_root() {
        // root 0 - 1 - 2 with sinks w=2 at 1 and w=5 at 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let mut comp = Component::singleton(0, vec![]);
        comp.absorb(&mut Component::singleton(1, vec![(1, 2.0)]), &[0], &g);
        comp.absorb(&mut Component::singleton(2, vec![(2, 5.0)]), &[1], &g);
        let mut s = CompScratch::default();
        let mut down = VertexTable::new();
        comp.downstream_weights_into(&g, 0, &mut down, &mut s);
        assert_eq!(down.get(2), Some(5.0));
        assert_eq!(down.get(1), Some(7.0));
        assert_eq!(down.get(0), Some(7.0));
    }

    #[test]
    fn dense_adjacency_preserves_edge_order() {
        let mut b = GraphBuilder::new(3);
        let e0 = b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        let e1 = b.add_edge(0, 2, EdgeAttrs::wire(1.0, 1.0));
        let e2 = b.add_edge(0, 1, EdgeAttrs::wire(2.0, 2.0)); // parallel
        let g = b.build();
        let mut adj = DenseAdjacency::default();
        adj.build(&[e1, e0, e2], &g);
        // per-vertex order follows the input edge list, not edge ids
        assert_eq!(adj.neighbors(0), &[(2, e1), (1, e0), (1, e2)]);
        assert_eq!(adj.neighbors(1), &[(0, e0), (0, e2)]);
        assert_eq!(adj.touched(), &[0, 2, 1]);
        assert!(adj.neighbors(9).is_empty());
    }
}
