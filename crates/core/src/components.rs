//! Connected-component bookkeeping for the merge loop.
//!
//! Every active terminal owns one component of the partially built tree:
//! the set of graph edges and vertices its merged subtree occupies. A
//! disjoint-set union tracks which terminal currently represents each
//! component as merges happen; the edge/vertex sets support the §III-A
//! discounting (tree edges are free to reuse) and the delay offsets of
//! restarted searches.

use cds_graph::{EdgeId, Graph, VertexId};
use std::collections::HashMap;

/// A terminal slot index (sinks, merged Steiner terminals, and the root).
pub type TerminalId = usize;

/// Disjoint-set over terminal slots with path compression.
#[derive(Debug, Clone, Default)]
pub struct Dsu {
    parent: Vec<TerminalId>,
}

impl Dsu {
    /// Adds a fresh singleton set, returning its id.
    pub fn push(&mut self) -> TerminalId {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: TerminalId) -> TerminalId {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    /// Merges the sets of `a` and `b` into representative `into`
    /// (which must be a fresh or existing slot).
    pub fn union_into(&mut self, a: TerminalId, b: TerminalId, into: TerminalId) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = into;
        self.parent[rb] = into;
        let ri = self.find(into);
        self.parent[ri] = into;
        self.parent[into] = into;
    }

    /// Forgets all sets, keeping the allocation (workspace reuse).
    pub fn clear(&mut self) {
        self.parent.clear();
    }
}

/// The tree-so-far of one component: its edges, its vertices, and the
/// sinks (with delay weights) it has absorbed.
#[derive(Debug, Clone, Default)]
pub struct Component {
    /// Edges of the embedded partial tree.
    pub edges: Vec<EdgeId>,
    /// Vertices the component occupies (keys) — values unused, kept as a
    /// map for cheap membership + iteration.
    pub vertices: HashMap<VertexId, ()>,
    /// Sinks inside the component: (vertex, delay weight).
    pub sinks: Vec<(VertexId, f64)>,
}

impl Component {
    /// A single-vertex component carrying the given sinks (one for a
    /// sink terminal, none for the root).
    pub fn singleton(v: VertexId, sinks: Vec<(VertexId, f64)>) -> Self {
        let mut vertices = HashMap::new();
        vertices.insert(v, ());
        Component { edges: Vec::new(), vertices, sinks }
    }

    /// Re-initializes a (possibly recycled) component as a singleton,
    /// keeping whatever capacity its buffers already have.
    pub fn init_singleton(&mut self, v: VertexId, sinks: &[(VertexId, f64)]) {
        self.reset();
        self.vertices.insert(v, ());
        self.sinks.extend_from_slice(sinks);
    }

    /// Empties the component, keeping allocations (workspace reuse).
    pub fn reset(&mut self) {
        self.edges.clear();
        self.vertices.clear();
        self.sinks.clear();
    }

    /// Whether `v` belongs to this component.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains_key(&v)
    }

    /// Absorbs `other` and a connecting `path` (edges between them).
    /// `other` is drained but keeps its buffers, so callers can recycle
    /// it through a component pool.
    pub fn absorb(&mut self, other: &mut Component, path: &[EdgeId], g: &Graph) {
        self.edges.append(&mut other.edges);
        for (v, ()) in other.vertices.drain() {
            self.vertices.insert(v, ());
        }
        self.sinks.append(&mut other.sinks);
        for &e in path {
            self.edges.push(e);
            let ep = g.endpoints(e);
            self.vertices.insert(ep.u, ());
            self.vertices.insert(ep.v, ());
        }
    }

    /// For every component vertex `y`, the *weighted delay to the
    /// component's sinks* through the tree: `Σ_q w(q)·d_tree(y, q)`.
    ///
    /// This is the exact future delay cost the component's sinks incur
    /// if the next connection (ultimately: the root path) enters at `y`
    /// — the exit prices used to seed restarted searches under §III-A.
    /// For a singleton sink component it is `w·d_tree(y, sink)`, the
    /// paper's original seeding.
    pub fn weighted_exit_delay(&self, g: &Graph, d: &[f64]) -> HashMap<VertexId, f64> {
        let mut out: HashMap<VertexId, f64> = self.vertices.keys().map(|&v| (v, 0.0)).collect();
        let adj = self.adjacency(g);
        for &(q, w) in &self.sinks {
            if w == 0.0 {
                continue;
            }
            let delays = tree_delays_over(&adj, d, q, self.vertices.len());
            for (v, acc) in out.iter_mut() {
                *acc += w * delays.get(v).copied().unwrap_or(0.0);
            }
        }
        out
    }

    /// Adjacency restricted to the component's edges.
    fn adjacency(&self, g: &Graph) -> HashMap<VertexId, Vec<(VertexId, EdgeId)>> {
        let mut adj: HashMap<VertexId, Vec<(VertexId, EdgeId)>> = HashMap::new();
        for &e in &self.edges {
            let ep = g.endpoints(e);
            adj.entry(ep.u).or_default().push((ep.v, e));
            adj.entry(ep.v).or_default().push((ep.u, e));
        }
        adj
    }

    /// Total sink weight *downstream* of each component vertex when the
    /// component tree is rooted at `root`: the weight that suffers the
    /// λ penalty if a new branch taps the tree at that vertex. Used to
    /// price bifurcations on already-routed root-component paths
    /// (Fig. 1 of the paper: keeping taps off the critical trunk).
    pub fn downstream_weights(&self, g: &Graph, root: VertexId) -> HashMap<VertexId, f64> {
        let mut down = HashMap::new();
        self.downstream_weights_into(g, root, &mut down);
        down
    }

    /// [`downstream_weights`](Self::downstream_weights) into a
    /// caller-owned map (cleared first), so the solver workspace can
    /// refill its pooled map on every root merge instead of
    /// reallocating.
    pub fn downstream_weights_into(
        &self,
        g: &Graph,
        root: VertexId,
        down: &mut HashMap<VertexId, f64>,
    ) {
        down.clear();
        let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for &e in &self.edges {
            let ep = g.endpoints(e);
            adj.entry(ep.u).or_default().push(ep.v);
            adj.entry(ep.v).or_default().push(ep.u);
        }
        let mut weight_at: HashMap<VertexId, f64> = HashMap::new();
        for &(q, w) in &self.sinks {
            *weight_at.entry(q).or_insert(0.0) += w;
        }
        // iterative post-order accumulation from `root`
        let mut parent: HashMap<VertexId, VertexId> = HashMap::new();
        let mut order = vec![root];
        let mut seen: HashMap<VertexId, ()> = HashMap::new();
        seen.insert(root, ());
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            if let Some(nbrs) = adj.get(&v) {
                for &w in nbrs {
                    if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(w) {
                        e.insert(());
                        parent.insert(w, v);
                        order.push(w);
                    }
                }
            }
        }
        for &v in order.iter().rev() {
            let own = weight_at.get(&v).copied().unwrap_or(0.0);
            let acc = down.get(&v).copied().unwrap_or(0.0) + own;
            down.insert(v, acc);
            if let Some(&p) = parent.get(&v) {
                *down.entry(p).or_insert(0.0) += acc;
            }
        }
    }

    /// Raw tree delay (`Σ d(e)`) from `from` to every component vertex,
    /// walking only component edges. Vertices unreachable through the
    /// component (possible only by construction error) are absent.
    pub fn tree_delays(&self, g: &Graph, d: &[f64], from: VertexId) -> HashMap<VertexId, f64> {
        tree_delays_over(&self.adjacency(g), d, from, self.vertices.len())
    }
}

/// The tree-delay Dijkstra over a prebuilt component adjacency —
/// Dijkstra-style because duplicate edges could create cycles of
/// differing delay; component sizes are tiny, so simple is fine.
fn tree_delays_over(
    adj: &HashMap<VertexId, Vec<(VertexId, EdgeId)>>,
    d: &[f64],
    from: VertexId,
    capacity: usize,
) -> HashMap<VertexId, f64> {
    let mut out = HashMap::with_capacity(capacity);
    out.insert(from, 0.0);
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((cds_heap::OrderedF64::new(0.0), from)));
    while let Some(std::cmp::Reverse((dd, v))) = heap.pop() {
        if out.get(&v).copied().unwrap_or(f64::INFINITY) < dd.get() {
            continue;
        }
        if let Some(nbrs) = adj.get(&v) {
            for &(w, e) in nbrs {
                let nd = dd.get() + d[e as usize];
                if nd < out.get(&w).copied().unwrap_or(f64::INFINITY) {
                    out.insert(w, nd);
                    heap.push(std::cmp::Reverse((cds_heap::OrderedF64::new(nd), w)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder};

    #[test]
    fn dsu_union_find() {
        let mut dsu = Dsu::default();
        let a = dsu.push();
        let b = dsu.push();
        let c = dsu.push();
        assert_ne!(dsu.find(a), dsu.find(b));
        let s = dsu.push();
        dsu.union_into(a, b, s);
        assert_eq!(dsu.find(a), s);
        assert_eq!(dsu.find(b), s);
        assert_eq!(dsu.find(c), c);
        let s2 = dsu.push();
        dsu.union_into(s, c, s2);
        assert_eq!(dsu.find(a), s2);
        assert_eq!(dsu.find(c), s2);
    }

    #[test]
    fn component_absorb_and_delays() {
        // path graph 0-1-2-3 with delays 1, 2, 4
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 2.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 4.0));
        let g = b.build();
        let d = g.delays();
        let mut c0 = Component::singleton(0, vec![(0, 1.0)]);
        let mut c3 = Component::singleton(3, vec![(3, 2.0)]);
        // connect them with the full path
        c0.absorb(&mut c3, &[0, 1, 2], &g);
        assert!(c3.edges.is_empty() && c3.sinks.is_empty(), "absorb drains the other side");
        assert!(c0.contains(2));
        assert_eq!(c0.edges.len(), 3);
        let delays = c0.tree_delays(&g, &d, 0);
        assert_eq!(delays[&3], 7.0);
        assert_eq!(delays[&1], 1.0);
    }

    #[test]
    fn weighted_exit_delay_prefers_heavy_side() {
        // path 0-1-2-3, sink w=1 at 0 and w=3 at 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let d = g.delays();
        let mut comp = Component::singleton(0, vec![(0, 1.0)]);
        comp.absorb(&mut Component::singleton(3, vec![(3, 3.0)]), &[0, 1, 2], &g);
        let exits = comp.weighted_exit_delay(&g, &d);
        // exit at 0: 1*0 + 3*3 = 9; at 3: 1*3 + 3*0 = 3; at 2: 1*2 + 3*1 = 5
        assert_eq!(exits[&0], 9.0);
        assert_eq!(exits[&3], 3.0);
        assert_eq!(exits[&2], 5.0);
        // the best exit is at the heavy sink
        assert!(exits[&3] < exits[&0] && exits[&3] < exits[&2]);
    }
}
