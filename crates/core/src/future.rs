//! Future costs (admissible lower bounds) for the goal-oriented path
//! searches of §III-C.
//!
//! The paper lower-bounds connection/congestion costs with landmarks
//! \[11\] and delays with "L1-distance and the fastest layer and wire
//! type combination". Both are provided here, plus the trivial zero
//! bound. To keep labels valid across iterations (terminals come and go
//! as components merge), bounds target the *fixed* set of all initial
//! terminal positions — a superset of any iteration's live targets, so
//! the heuristic only gets weaker, never inadmissible.

use cds_graph::{GridGraph, RoutingSurface, VertexId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};

/// An admissible heuristic for the simultaneous Dijkstra searches.
///
/// All implementations must guarantee, for a search with delay weight
/// `w`:
///
/// * `bound_nearest(x, w)` ≤ the `c + w·d` length of any path from `x`
///   to any vertex that can ever become a connection target;
/// * `bound_to(x, y, w)` ≤ the `c + w·d` length of any `x`→`y` path.
///
/// `Sync` is a supertrait so that requests referencing a future cost
/// can be fanned out across the worker threads of
/// [`Solver::solve_batch`](crate::Solver::solve_batch) (each request is
/// still *used* by exactly one thread at a time; a future must not be
/// shared between different requests, since
/// [`note_new_targets`](Self::note_new_targets) specializes it to one
/// net's target set).
pub trait FutureCost: Sync {
    /// Lower bound on the remaining search cost from `x` to the nearest
    /// potential target.
    fn bound_nearest(&self, x: VertexId, w: f64) -> f64;
    /// Lower bound on the cost of reaching the specific vertex `y`.
    fn bound_to(&self, x: VertexId, y: VertexId, w: f64) -> f64;
    /// Informs the heuristic that `vertices` became connection targets
    /// (under §III-A discounting, components absorb every vertex of a
    /// committed path — future bounds must account for them or they stop
    /// being admissible). Implementations may ignore this only if their
    /// bounds are already valid for arbitrary target growth.
    fn note_new_targets(&self, _vertices: &[VertexId]) {}
    /// Downcast hook for the solver's hot loop: returning `Some` lets
    /// the expansion loop call [`GridFutureCost::bound_nearest`]
    /// statically (one plane load + fma, inlined) instead of through
    /// the vtable on every neighbor relaxation. The default `None`
    /// keeps the dynamic path for every other implementation.
    fn as_grid(&self) -> Option<&GridFutureCost> {
        None
    }
}

/// The zero heuristic: plain Dijkstra (§II base algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFutureCost;

impl FutureCost for NoFutureCost {
    fn bound_nearest(&self, _x: VertexId, _w: f64) -> f64 {
        0.0
    }
    fn bound_to(&self, _x: VertexId, _y: VertexId, _w: f64) -> f64 {
        0.0
    }
}

/// Grid-based future costs: a plane L1 distance transform to the nearest
/// target (one multi-source BFS at construction, incrementally updated
/// as components grow), scaled by the cheapest per-gcell cost and the
/// fastest per-gcell delay.
///
/// Works over any [`RoutingSurface`] — the whole grid, a materialized
/// window, or a zero-copy [`WindowView`](cds_graph::WindowView): the
/// transform only needs the surface's plane dimensions and per-gcell
/// bounds, which it copies out, so the type borrows nothing.
///
/// Admissible because every wire edge of the grid costs at least
/// `min_cost_per_gcell + w·min_delay_per_gcell` per gcell of L1 progress,
/// vias make no L1 progress at non-negative cost, and
/// [`note_new_targets`](FutureCost::note_new_targets) keeps the transform
/// a lower bound as the set of valid connection targets expands.
#[derive(Debug)]
pub struct GridFutureCost {
    nx: usize,
    ny: usize,
    /// Plane distance (in gcells) to the nearest target, row-major.
    /// Atomic cells (relaxed, plain-load cost on mainstream ISAs) give
    /// the interior mutability `note_new_targets` needs through `&self`
    /// while keeping the type `Sync` for batched solving; a single
    /// solve run is the only writer at any time.
    plane_dist: Vec<AtomicU32>,
    min_cost: f64,
    min_delay: f64,
}

impl GridFutureCost {
    /// Builds the distance transform for the terminal positions of an
    /// instance (`terminals` are vertices of `surface`; their layers are
    /// ignored — the bound is planar).
    pub fn new<S: RoutingSurface + ?Sized>(surface: &S, terminals: &[VertexId]) -> Self {
        Self::with_buffer(surface, terminals, Vec::new())
    }

    /// Like [`new`](Self::new), but reusing a recycled plane buffer
    /// (from [`into_buffer`](Self::into_buffer)) so per-net future-cost
    /// construction in a routing loop allocates nothing once warm.
    pub fn with_buffer<S: RoutingSurface + ?Sized>(
        surface: &S,
        terminals: &[VertexId],
        mut buf: Vec<AtomicU32>,
    ) -> Self {
        let (nx, ny) = surface.plane_dims();
        let (nx, ny) = (nx as usize, ny as usize);
        buf.clear();
        buf.resize_with(nx * ny, || AtomicU32::new(u32::MAX));
        let fc = GridFutureCost {
            nx,
            ny,
            plane_dist: buf,
            min_cost: surface.min_cost_per_gcell(),
            min_delay: surface.min_delay_per_gcell(),
        };
        // Initial construction is a two-pass chamfer scan: on an
        // unobstructed rectangular plane it yields exactly the L1
        // distance to the nearest seed — the same values the BFS of
        // `note_new_targets` produces — but with two sequential sweeps
        // instead of a work queue. The transform is built once per
        // routed net, so its constant factor is hot-path cost.
        for &v in terminals {
            fc.plane_dist[fc.cell(v)].store(0, Ordering::Relaxed);
        }
        let dist = &fc.plane_dist;
        let at = |i: usize| dist[i].load(Ordering::Relaxed);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                let mut d = at(i);
                if x > 0 {
                    d = d.min(at(i - 1).saturating_add(1));
                }
                if y > 0 {
                    d = d.min(at(i - nx).saturating_add(1));
                }
                dist[i].store(d, Ordering::Relaxed);
            }
        }
        for y in (0..ny).rev() {
            for x in (0..nx).rev() {
                let i = y * nx + x;
                let mut d = at(i);
                if x + 1 < nx {
                    d = d.min(at(i + 1).saturating_add(1));
                }
                if y + 1 < ny {
                    d = d.min(at(i + nx).saturating_add(1));
                }
                dist[i].store(d, Ordering::Relaxed);
            }
        }
        fc
    }

    /// Consumes the future cost, returning the plane buffer for reuse.
    pub fn into_buffer(self) -> Vec<AtomicU32> {
        self.plane_dist
    }

    /// Planar cell index of a vertex. Ids are `(l·ny + y)·nx + x` =
    /// `l·(nx·ny) + (y·nx + x)` on every surface backend, so one
    /// modulo by the plane size replaces the three-division
    /// unpack-and-repack — this runs once per queue push.
    #[inline]
    fn cell(&self, v: VertexId) -> usize {
        v as usize % (self.nx * self.ny)
    }
}

impl FutureCost for GridFutureCost {
    #[inline]
    fn bound_nearest(&self, x: VertexId, w: f64) -> f64 {
        let d = self.plane_dist[self.cell(x)].load(Ordering::Relaxed);
        d as f64 * (self.min_cost + w * self.min_delay)
    }
    fn bound_to(&self, x: VertexId, y: VertexId, w: f64) -> f64 {
        let (cx, cy) = (self.cell(x), self.cell(y));
        let (x0, y0) = ((cx % self.nx) as i64, (cx / self.nx) as i64);
        let (x1, y1) = ((cy % self.nx) as i64, (cy / self.nx) as i64);
        let l1 = ((x0 - x1).abs() + (y0 - y1).abs()) as f64;
        l1 * (self.min_cost + w * self.min_delay)
    }
    fn as_grid(&self) -> Option<&GridFutureCost> {
        Some(self)
    }
    fn note_new_targets(&self, vertices: &[VertexId]) {
        let nx = self.nx;
        let dist = &self.plane_dist;
        let ny = dist.len() / nx;
        let mut queue = VecDeque::new();
        for &v in vertices {
            let idx = self.cell(v);
            if dist[idx].load(Ordering::Relaxed) != 0 {
                dist[idx].store(0, Ordering::Relaxed);
                queue.push_back(idx);
            }
        }
        // propagate decreases only — the transform is monotone down
        while let Some(i) = queue.pop_front() {
            let (x, y) = (i % nx, i / nx);
            let d = dist[i].load(Ordering::Relaxed);
            let mut push = |j: usize| {
                if dist[j].load(Ordering::Relaxed) > d + 1 {
                    dist[j].store(d + 1, Ordering::Relaxed);
                    queue.push_back(j);
                }
            };
            if x > 0 {
                push(i - 1);
            }
            if x + 1 < nx {
                push(i + 1);
            }
            if y > 0 {
                push(i - nx);
            }
            if y + 1 < ny {
                push(i + nx);
            }
        }
    }
}

/// Landmark future costs after Goldberg & Harrelson \[11\]: exact
/// congestion-cost distances from a few landmark vertices give the bound
/// `max_ℓ |dist_ℓ(x) − dist_ℓ(p)|` for any target `p`; the delay part
/// falls back to the planar L1 bound. Stronger than [`GridFutureCost`]
/// when congestion makes base-cost bounds loose, at `O(k·|P|)` per query.
pub struct LandmarkFutureCost<'a> {
    grid: &'a GridGraph,
    /// `dist[l][v]` = congestion-cost distance from landmark `l`.
    dist: Vec<Vec<f64>>,
    /// potential target positions (fixed for the whole run)
    targets: Vec<VertexId>,
    min_delay: f64,
}

impl<'a> LandmarkFutureCost<'a> {
    /// Chooses `k` landmarks spread over the grid corners/edges and runs
    /// one Dijkstra each under the supplied congestion costs.
    pub fn new(grid: &'a GridGraph, cost: &[f64], targets: &[VertexId], k: usize) -> Self {
        let spec = grid.spec();
        let corners = [
            grid.vertex(0, 0, 0),
            grid.vertex(spec.nx - 1, 0, 0),
            grid.vertex(0, spec.ny - 1, 0),
            grid.vertex(spec.nx - 1, spec.ny - 1, 0),
            grid.vertex(spec.nx / 2, 0, 0),
            grid.vertex(0, spec.ny / 2, 0),
        ];
        let dist = corners
            .iter()
            .take(k.max(1).min(corners.len()))
            .map(|&l| {
                cds_graph::dijkstra::shortest_distances(grid.graph(), &[(l, 0.0)], |e| {
                    cost[e as usize]
                })
            })
            .collect();
        LandmarkFutureCost {
            grid,
            dist,
            targets: targets.to_vec(),
            min_delay: grid.min_delay_per_gcell(),
        }
    }

    fn cost_bound_pair(&self, x: VertexId, y: VertexId) -> f64 {
        self.dist.iter().map(|d| (d[x as usize] - d[y as usize]).abs()).fold(0.0, f64::max)
    }

    fn delay_bound_pair(&self, x: VertexId, y: VertexId) -> f64 {
        let (cx, cy) = (self.grid.coord(x), self.grid.coord(y));
        cx.point().l1(cy.point()) as f64 * self.min_delay
    }
}

impl FutureCost for LandmarkFutureCost<'_> {
    fn bound_nearest(&self, x: VertexId, w: f64) -> f64 {
        self.targets.iter().map(|&p| self.bound_to(x, p, w)).fold(f64::INFINITY, f64::min).max(0.0)
    }
    fn bound_to(&self, x: VertexId, y: VertexId, w: f64) -> f64 {
        self.cost_bound_pair(x, y) + w * self.delay_bound_pair(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::dijkstra::shortest_distances;
    use cds_graph::GridSpec;

    #[test]
    fn grid_bound_is_admissible() {
        let grid = GridSpec::uniform(6, 5, 3).build();
        let terminals = [grid.vertex(5, 4, 0), grid.vertex(0, 4, 2)];
        let fc = GridFutureCost::new(&grid, &terminals);
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let w = 2.5;
        // exact multi-target distance via one Dijkstra from all targets
        let exact =
            shortest_distances(grid.graph(), &[(terminals[0], 0.0), (terminals[1], 0.0)], |e| {
                c[e as usize] + w * d[e as usize]
            });
        for v in 0..grid.graph().num_vertices() as u32 {
            assert!(
                fc.bound_nearest(v, w) <= exact[v as usize] + 1e-9,
                "vertex {v}: bound {} > exact {}",
                fc.bound_nearest(v, w),
                exact[v as usize]
            );
        }
    }

    #[test]
    fn landmark_bound_is_admissible() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        // congest some edges to make base bounds loose
        let mut c = grid.graph().base_costs();
        for (e, cost) in c.iter_mut().enumerate() {
            if e % 3 == 0 {
                *cost *= 4.0;
            }
        }
        let d = grid.graph().delays();
        let targets = [grid.vertex(4, 4, 0)];
        let fc = LandmarkFutureCost::new(&grid, &c, &targets, 4);
        let w = 1.0;
        let exact = shortest_distances(grid.graph(), &[(targets[0], 0.0)], |e| {
            c[e as usize] + w * d[e as usize]
        });
        for v in 0..grid.graph().num_vertices() as u32 {
            assert!(fc.bound_nearest(v, w) <= exact[v as usize] + 1e-9);
        }
    }

    #[test]
    fn zero_bound_is_zero() {
        assert_eq!(NoFutureCost.bound_nearest(3, 10.0), 0.0);
        assert_eq!(NoFutureCost.bound_to(3, 4, 10.0), 0.0);
    }
}
