//! The cost-distance Steiner tree algorithm of Held & Perner (DAC 2025).
//!
//! Given a global routing graph with congestion costs `c`, delays `d`, a
//! root `r`, sinks `S` with delay weights `w`, and a bifurcation penalty
//! `d_bif`, compute an embedded Steiner tree minimizing
//!
//! ```text
//! cost(T) = Σ_{e∈T} c(e) + Σ_{t∈S} w(t)·delay_T(r, t)          (1)
//! delay_T(r,t) = Σ_{(u,v)∈T[r,t]} ( d(e) + λ_v·d_bif )          (3)
//! ```
//!
//! The algorithm (Algorithm 1 of the paper) is a Kruskal-style merge
//! loop driven by simultaneous per-sink Dijkstra searches with the
//! sink-individual metric `l_u(e) = c(e) + w(u)·d(e)`; it guarantees an
//! `O(log t)` approximation factor in `O(t(n log n + m))` time, and this
//! implementation adds the paper's five practical enhancements
//! (§III-A…E), each individually toggleable.
//!
//! # Examples
//!
//! One-off solves use the free function [`solve`]; hot loops hold a
//! [`Solver`] session whose [`SolverWorkspace`] is cleared-and-reused
//! across calls (bit-identical results either way — see the
//! [`session`] module docs):
//!
//! ```
//! use cds_core::{solve, Instance, Request, Solver, SolverOptions};
//! use cds_graph::GridSpec;
//! use cds_topo::BifurcationConfig;
//!
//! let grid = GridSpec::uniform(8, 8, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//! let inst = Instance {
//!     graph: grid.graph(),
//!     cost: &c,
//!     delay: &d,
//!     root: grid.vertex(0, 0, 0),
//!     sink_vertices: &[grid.vertex(7, 0, 0), grid.vertex(0, 7, 0)],
//!     weights: &[2.0, 1.0],
//!     bif: BifurcationConfig::ZERO,
//! };
//! let fresh = solve(&inst, &SolverOptions::default());
//! fresh.tree.validate(grid.graph(), 2).unwrap();
//!
//! let mut solver = Solver::new(); // session: reusable workspace
//! let reused = solver.solve(&Request::from_instance(&inst));
//! assert_eq!(fresh.evaluation.total.to_bits(), reused.evaluation.total.to_bits());
//! ```

pub mod assemble;
pub mod components;
pub mod future;
pub mod search;
pub mod session;
pub mod solver;
pub mod table;

pub use assemble::{assemble_tree, assemble_tree_in, assemble_tree_into, AssembleScratch};
pub use cds_heap::QueueKind;
pub use future::{FutureCost, GridFutureCost, LandmarkFutureCost, NoFutureCost};
pub use session::{Request, SessionConfig, Solver, SolverBuilder};
pub use solver::{
    solve, Instance, MergeEvent, SolveResult, SolveStats, SolverOptions, SolverWorkspace,
};
pub use table::{VertexSet, VertexTable};

#[cfg(test)]
mod tests {
    use super::*;
    use cds_exact::optimal_cost_distance;
    use cds_graph::{GridGraph, GridSpec};
    use cds_topo::BifurcationConfig;
    use proptest::prelude::*;

    fn uniform_env(grid: &GridGraph) -> (Vec<f64>, Vec<f64>) {
        (grid.graph().base_costs(), grid.graph().delays())
    }

    fn all_option_sets() -> Vec<SolverOptions<'static>> {
        let mut out = Vec::new();
        for discount in [false, true] {
            for better in [false, true] {
                for encourage in [false, true] {
                    out.push(SolverOptions {
                        discount_components: discount,
                        better_steiner: better,
                        encourage_root: encourage,
                        seed: 7,
                        ..SolverOptions::default()
                    });
                }
            }
        }
        out
    }

    #[test]
    fn single_sink_is_exact_shortest_path() {
        // With t = 1 the algorithm must return exactly the c + w·d
        // shortest path (one search, one root connection).
        let grid = GridSpec::uniform(7, 7, 3).build();
        let (c, d) = uniform_env(&grid);
        let root = grid.vertex(0, 0, 0);
        let sink = grid.vertex(6, 5, 0);
        let w = 3.5;
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &[sink],
            weights: &[w],
            bif: BifurcationConfig::new(10.0, 0.25),
        };
        let sp = cds_graph::dijkstra::shortest_distances(grid.graph(), &[(sink, 0.0)], |e| {
            c[e as usize] + w * d[e as usize]
        });
        for opts in all_option_sets() {
            let r = solve(&inst, &opts);
            r.tree.validate(grid.graph(), 1).unwrap();
            // no bifurcations for a single sink → no penalties
            assert_eq!(r.evaluation.bifurcations, 0);
            assert!(
                (r.evaluation.total - sp[root as usize]).abs() < 1e-9,
                "opts {opts:?}: got {}, want {}",
                r.evaluation.total,
                sp[root as usize]
            );
        }
    }

    #[test]
    fn sink_on_root_costs_nothing() {
        let grid = GridSpec::uniform(4, 4, 2).build();
        let (c, d) = uniform_env(&grid);
        let root = grid.vertex(2, 2, 0);
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &[root],
            weights: &[5.0],
            bif: BifurcationConfig::ZERO,
        };
        let r = solve(&inst, &SolverOptions::default());
        assert_eq!(r.evaluation.total, 0.0);
    }

    #[test]
    fn goal_oriented_search_matches_plain_dijkstra() {
        // §III-C must not change the result, only the work.
        let grid = GridSpec::uniform(10, 10, 2).build();
        let (c, d) = uniform_env(&grid);
        let root = grid.vertex(0, 0, 0);
        let sinks = [grid.vertex(9, 2, 0), grid.vertex(4, 9, 0), grid.vertex(9, 9, 0)];
        let weights = [1.0, 2.0, 0.5];
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &sinks,
            weights: &weights,
            bif: BifurcationConfig::new(4.0, 0.25),
        };
        let plain = solve(&inst, &SolverOptions::default());
        let fc = GridFutureCost::new(&grid, &[root, sinks[0], sinks[1], sinks[2]]);
        let astar = solve(&inst, &SolverOptions::enhanced(&fc));
        assert!(
            (plain.evaluation.total - astar.evaluation.total).abs() < 1e-6,
            "A* changed the objective: {} vs {}",
            plain.evaluation.total,
            astar.evaluation.total
        );
        assert!(
            astar.stats.settled <= plain.stats.settled,
            "A* must not settle more labels ({} > {})",
            astar.stats.settled,
            plain.stats.settled
        );
    }

    #[test]
    fn bucket_queue_matches_heap_bit_for_bit() {
        // The determinism contract of the queue knob: both kinds pop
        // the identical total order (key, search, vertex), so every
        // routed bit — objective, tree edges, work counters except the
        // bucket-only scan counter — must agree. Uniform grids make
        // float key ties ubiquitous, so this exercises the tie-break.
        let grid = GridSpec::uniform(11, 11, 2).build();
        let (c, d) = uniform_env(&grid);
        let root = grid.vertex(0, 0, 0);
        let sinks = [
            grid.vertex(10, 2, 0),
            grid.vertex(4, 10, 0),
            grid.vertex(10, 10, 0),
            grid.vertex(7, 3, 1),
            grid.vertex(2, 6, 0),
        ];
        let weights = [1.0, 2.0, 0.5, 3.0, 0.25];
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &sinks,
            weights: &weights,
            bif: BifurcationConfig::new(3.0, 0.25),
        };
        let fc_h = GridFutureCost::new(&grid, &[root, sinks[0], sinks[1], sinks[2]]);
        let fc_b = GridFutureCost::new(&grid, &[root, sinks[0], sinks[1], sinks[2]]);
        for (fut_h, fut_b) in [(None, None), (Some(&fc_h as &dyn FutureCost), Some(&fc_b as _))] {
            for quantum in [None, Some(1.0), Some(0.37), Some(1e6)] {
                let heap = solve(
                    &inst,
                    &SolverOptions {
                        queue: QueueKind::Heap,
                        future: fut_h,
                        ..SolverOptions::default()
                    },
                );
                let bucket = solve(
                    &inst,
                    &SolverOptions {
                        queue: QueueKind::Bucket,
                        quantum,
                        future: fut_b,
                        ..SolverOptions::default()
                    },
                );
                assert_eq!(
                    heap.evaluation.total.to_bits(),
                    bucket.evaluation.total.to_bits(),
                    "objective diverged (quantum {quantum:?})"
                );
                assert_eq!(
                    heap.tree.edges().collect::<Vec<_>>(),
                    bucket.tree.edges().collect::<Vec<_>>()
                );
                assert_eq!(heap.stats.settled, bucket.stats.settled);
                assert_eq!(heap.stats.pushed, bucket.stats.pushed);
                assert_eq!(heap.stats.popped, bucket.stats.popped);
                assert_eq!(heap.stats.decreased, bucket.stats.decreased);
                assert_eq!(heap.stats.merges, bucket.stats.merges);
                assert_eq!(heap.stats.bucket_scans, 0);
            }
        }
    }

    #[test]
    fn batched_multi_sink_produces_valid_trees() {
        // `batch` changes which trees are found (searches outlive
        // merges), so it is not pinned — but every tree must stay
        // valid, finite, and in the same approximation regime.
        let grid = GridSpec::uniform(9, 9, 2).build();
        let (c, d) = uniform_env(&grid);
        let root = grid.vertex(0, 0, 0);
        let sinks = [
            grid.vertex(8, 1, 0),
            grid.vertex(1, 8, 0),
            grid.vertex(8, 8, 0),
            grid.vertex(4, 6, 0),
        ];
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root,
            sink_vertices: &sinks,
            weights: &[1.0, 2.0, 3.0, 4.0],
            bif: BifurcationConfig::new(2.0, 0.3),
        };
        for mut opts in all_option_sets() {
            opts.batch = true;
            let batched = solve(&inst, &opts);
            batched.tree.validate(grid.graph(), sinks.len()).unwrap();
            assert!(batched.evaluation.total.is_finite());
            opts.batch = false;
            let plain = solve(&inst, &opts);
            assert!(
                batched.evaluation.total <= 2.0 * plain.evaluation.total + 1e-9,
                "batched tree wildly off: {} vs {}",
                batched.evaluation.total,
                plain.evaluation.total
            );
            // batching restarts nothing: it never labels more than the
            // restart-per-merge baseline on these benign instances
            assert!(batched.stats.merges >= sinks.len());
        }
    }

    #[test]
    fn trace_records_every_merge() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let (c, d) = uniform_env(&grid);
        let sinks = [grid.vertex(5, 0, 0), grid.vertex(0, 5, 0), grid.vertex(5, 5, 0)];
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root: grid.vertex(0, 0, 0),
            sink_vertices: &sinks,
            weights: &[1.0, 1.0, 1.0],
            bif: BifurcationConfig::ZERO,
        };
        let r = solve(&inst, &SolverOptions { record_trace: true, ..Default::default() });
        assert_eq!(r.trace.len(), r.stats.merges);
        let sinksink = r.trace.iter().filter(|e| matches!(e, MergeEvent::SinkSink { .. })).count();
        let rootc = r.trace.iter().filter(|e| matches!(e, MergeEvent::RootConnect { .. })).count();
        // every sink-sink merge consumes 2 terminals and creates 1; root
        // connections consume 1: consumption balances sinks + created
        assert_eq!(rootc + 2 * sinksink, sinks.len() + sinksink);
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = GridSpec::uniform(9, 9, 2).build();
        let (c, d) = uniform_env(&grid);
        let sinks = [
            grid.vertex(8, 1, 0),
            grid.vertex(1, 8, 0),
            grid.vertex(8, 8, 0),
            grid.vertex(4, 6, 0),
        ];
        let inst = Instance {
            graph: grid.graph(),
            cost: &c,
            delay: &d,
            root: grid.vertex(0, 0, 0),
            sink_vertices: &sinks,
            weights: &[1.0, 2.0, 3.0, 4.0],
            bif: BifurcationConfig::new(2.0, 0.3),
        };
        let opts = SolverOptions { seed: 123, ..Default::default() };
        let a = solve(&inst, &opts);
        let b = solve(&inst, &opts);
        assert_eq!(a.evaluation.total, b.evaluation.total);
        assert_eq!(a.stats, b.stats);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// On small random instances the algorithm stays within a modest
        /// factor of the enumerated true optimum — far tighter than the
        /// O(log t) guarantee, but random instances are benign; the point
        /// is catching gross regressions and validating feasibility.
        #[test]
        fn approximation_vs_exact_optimum(
            seedpts in proptest::collection::hash_set((0u32..6, 0u32..6), 2..5),
            weights_raw in proptest::collection::vec(0.1f64..8.0, 5),
            dbif in 0.0f64..6.0,
        ) {
            let grid = GridSpec::uniform(6, 6, 2).build();
            let (c, d) = uniform_env(&grid);
            let root = grid.vertex(3, 3, 0);
            let sinks: Vec<u32> = seedpts.iter().map(|&(x, y)| grid.vertex(x, y, 0)).collect();
            let weights = &weights_raw[..sinks.len()];
            let bif = BifurcationConfig::new(dbif, 0.25);
            let inst = Instance {
                graph: grid.graph(),
                cost: &c,
                delay: &d,
                root,
                sink_vertices: &sinks,
                weights,
                bif,
            };
            let env = cds_embed::EmbedEnv { graph: grid.graph(), cost: &c, delay: &d, bif };
            let (opt, _) = optimal_cost_distance(&env, root, &sinks, weights);
            for opts in all_option_sets() {
                let r = solve(&inst, &opts);
                r.tree.validate(grid.graph(), sinks.len()).unwrap();
                // The §II base variant's *randomized* endpoint placement
                // legitimately loses a constant factor on unlucky draws
                // (its guarantee is O(log t) in expectation); the
                // enhanced variant is held to a tighter practical bound.
                let factor = if opts.discount_components && opts.better_steiner {
                    2.5
                } else {
                    5.0
                };
                prop_assert!(
                    r.evaluation.total <= factor * opt + 1e-6,
                    "opts {:?}: {} vs optimum {}",
                    opts, r.evaluation.total, opt
                );
                prop_assert!(r.evaluation.total >= opt - 1e-6, "beat the optimum?!");
            }
        }

        /// The tree is always valid and the objective finite, across
        /// random weights, penalties, and option sets on a mid-size grid.
        #[test]
        fn always_valid_trees(
            seedpts in proptest::collection::hash_set((0u32..10, 0u32..10), 1..10),
            dbif in 0.0f64..10.0,
            eta in 0.0f64..=0.5,
            seed in 0u64..1000,
        ) {
            let grid = GridSpec::uniform(10, 10, 3).build();
            let (c, d) = uniform_env(&grid);
            let root = grid.vertex(5, 5, 0);
            let sinks: Vec<u32> = seedpts.iter().map(|&(x, y)| grid.vertex(x, y, 0)).collect();
            let weights: Vec<f64> = (0..sinks.len()).map(|i| (i as f64 + 1.0) * 0.5).collect();
            let inst = Instance {
                graph: grid.graph(),
                cost: &c,
                delay: &d,
                root,
                sink_vertices: &sinks,
                weights: &weights,
                bif: BifurcationConfig::new(dbif, eta),
            };
            let fc = GridFutureCost::new(&grid, &sinks);
            let opts = SolverOptions { future: Some(&fc), seed, ..Default::default() };
            let r = solve(&inst, &opts);
            r.tree.validate(grid.graph(), sinks.len()).unwrap();
            prop_assert!(r.evaluation.total.is_finite());
            prop_assert!(r.stats.merges >= sinks.len());
        }
    }
}
