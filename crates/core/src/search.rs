//! Per-terminal Dijkstra state for the simultaneous searches.
//!
//! Each active terminal `u` runs its own labelling with the individual
//! distance function `l_u(e) = c(e) + w(u)·d(e)` (Eq. (4)). Labels are
//! sparse (hash maps): with goal-oriented search a terminal only ever
//! touches a small region, and dense per-search arrays would cost
//! `O(t·n)` up front.

use cds_graph::{EdgeId, VertexId};
use std::collections::{HashMap, HashSet};

/// Dijkstra state of one active terminal.
#[derive(Debug, Clone)]
pub struct Search {
    /// Terminal slot this search belongs to.
    pub terminal: usize,
    /// Delay weight `w(u)` of the terminal.
    pub weight: f64,
    /// The terminal's position `π(u)`.
    pub origin: VertexId,
    /// Best known `g` value (true `l_u` distance, without heuristic).
    pub dist: HashMap<VertexId, f64>,
    /// Predecessor (vertex, edge) of each labelled vertex; absent for
    /// seeds.
    pub parent: HashMap<VertexId, (VertexId, EdgeId)>,
    /// Permanently labelled vertices.
    pub settled: HashSet<VertexId>,
    /// Raw tree delay (`Σ d`, unweighted) from `origin` to each seed —
    /// needed by the Steiner re-embedding (§III-D). Seeds are the
    /// component's vertices under §III-A discounting, else just the
    /// origin.
    pub seed_raw_delay: HashMap<VertexId, f64>,
}

impl Search {
    /// A fresh search with no labels.
    pub fn new(terminal: usize, weight: f64, origin: VertexId) -> Self {
        Search {
            terminal,
            weight,
            origin,
            dist: HashMap::new(),
            parent: HashMap::new(),
            settled: HashSet::new(),
            seed_raw_delay: HashMap::new(),
        }
    }

    /// Re-initializes a (possibly recycled) search for a new terminal,
    /// clearing all labels but keeping the hash tables' capacity — the
    /// workspace-reuse fast path: a rip-up & re-route loop starts one
    /// search per terminal per net, and the label tables are the
    /// solver's hottest allocations.
    pub fn reset(&mut self, terminal: usize, weight: f64, origin: VertexId) {
        self.terminal = terminal;
        self.weight = weight;
        self.origin = origin;
        self.dist.clear();
        self.parent.clear();
        self.settled.clear();
        self.seed_raw_delay.clear();
    }

    /// Walks parents from `to` back to a seed. Returns the edges in
    /// seed→`to` order together with the seed vertex.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never labelled.
    pub fn extract_path(&self, to: VertexId) -> (Vec<EdgeId>, VertexId) {
        assert!(self.dist.contains_key(&to), "extracting an unlabelled vertex");
        let mut edges = Vec::new();
        let mut cur = to;
        while let Some(&(from, edge)) = self.parent.get(&cur) {
            edges.push(edge);
            cur = from;
        }
        edges.reverse();
        (edges, cur)
    }

    /// The vertex sequence of a seed→`to` path returned by
    /// [`extract_path`](Self::extract_path), starting at the seed.
    pub fn path_vertices(
        &self,
        graph: &cds_graph::Graph,
        edges: &[EdgeId],
        seed: VertexId,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(edges.len() + 1);
        out.push(seed);
        let mut cur = seed;
        for &e in edges {
            cur = graph.endpoints(e).other(cur);
            out.push(cur);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_extraction_orders_from_seed() {
        let mut s = Search::new(0, 1.0, 7);
        s.dist.insert(7, 0.0);
        s.dist.insert(8, 1.0);
        s.dist.insert(9, 2.0);
        s.parent.insert(8, (7, 100));
        s.parent.insert(9, (8, 101));
        let (edges, seed) = s.extract_path(9);
        assert_eq!(edges, vec![100, 101]);
        assert_eq!(seed, 7);
        let (edges, seed) = s.extract_path(7);
        assert!(edges.is_empty());
        assert_eq!(seed, 7);
    }
}
