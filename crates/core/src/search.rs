//! Per-terminal Dijkstra state for the simultaneous searches.
//!
//! Each active terminal `u` runs its own labelling with the individual
//! distance function `l_u(e) = c(e) + w(u)·d(e)` (Eq. (4)). Labels live
//! in epoch-stamped dense [`VertexTable`] slabs: graph backends expose
//! compact (window-local) vertex ids, so a slab is window-sized, clears
//! in `O(1)`, and — pooled through the
//! [`SolverWorkspace`](crate::SolverWorkspace) — is reused across
//! searches and solves without reallocating.

use crate::table::{VertexSet, VertexTable};
use cds_graph::{EdgeId, SteinerGraph, VertexId};

/// Dijkstra state of one active terminal.
#[derive(Debug, Clone, Default)]
pub struct Search {
    /// Terminal slot this search belongs to.
    pub terminal: usize,
    /// Delay weight `w(u)` of the terminal.
    pub weight: f64,
    /// The terminal's position `π(u)`.
    pub origin: VertexId,
    /// Best known `g` value (true `l_u` distance, without heuristic).
    pub dist: VertexTable<f64>,
    /// Predecessor (vertex, edge) of each labelled vertex; absent for
    /// seeds.
    pub parent: VertexTable<(VertexId, EdgeId)>,
    /// Permanently labelled vertices.
    pub settled: VertexSet,
    /// Raw tree delay (`Σ d`, unweighted) from `origin` to each seed —
    /// needed by the Steiner re-embedding (§III-D). Seeds are the
    /// component's vertices under §III-A discounting, else just the
    /// origin.
    pub seed_raw_delay: VertexTable<f64>,
}

impl Search {
    /// A fresh search with no labels.
    pub fn new(terminal: usize, weight: f64, origin: VertexId) -> Self {
        Search { terminal, weight, origin, ..Search::default() }
    }

    /// Re-initializes a (possibly recycled) search for a new terminal,
    /// clearing all labels but keeping the slabs' capacity — the
    /// workspace-reuse fast path: a rip-up & re-route loop starts one
    /// search per terminal per net, and the label tables are the
    /// solver's hottest state. With epoch-stamped tables the clear is
    /// four epoch bumps, `O(1)`.
    pub fn reset(&mut self, terminal: usize, weight: f64, origin: VertexId) {
        self.terminal = terminal;
        self.weight = weight;
        self.origin = origin;
        self.dist.clear();
        self.parent.clear();
        self.settled.clear();
        self.seed_raw_delay.clear();
    }

    /// Walks parents from `to` back to a seed. Returns the edges in
    /// seed→`to` order together with the seed vertex.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never labelled.
    pub fn extract_path(&self, to: VertexId) -> (Vec<EdgeId>, VertexId) {
        let mut edges = Vec::new();
        let seed = self.extract_path_into(to, &mut edges);
        (edges, seed)
    }

    /// [`extract_path`](Self::extract_path) into a caller-owned buffer
    /// (cleared first), returning the seed vertex — the allocation-free
    /// path of the merge loop.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never labelled.
    pub fn extract_path_into(&self, to: VertexId, out: &mut Vec<EdgeId>) -> VertexId {
        assert!(self.dist.contains(to), "extracting an unlabelled vertex");
        out.clear();
        let mut cur = to;
        while let Some((from, edge)) = self.parent.get(cur) {
            out.push(edge);
            cur = from;
        }
        out.reverse();
        cur
    }

    /// The vertex sequence of a seed→`to` path returned by
    /// [`extract_path`](Self::extract_path), starting at the seed.
    pub fn path_vertices<G: SteinerGraph + ?Sized>(
        &self,
        graph: &G,
        edges: &[EdgeId],
        seed: VertexId,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(edges.len() + 1);
        self.path_vertices_into(graph, edges, seed, &mut out);
        out
    }

    /// [`path_vertices`](Self::path_vertices) into a caller-owned buffer
    /// (cleared first).
    pub fn path_vertices_into<G: SteinerGraph + ?Sized>(
        &self,
        graph: &G,
        edges: &[EdgeId],
        seed: VertexId,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        out.push(seed);
        let mut cur = seed;
        for &e in edges {
            cur = graph.endpoints(e).other(cur);
            out.push(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_extraction_orders_from_seed() {
        let mut s = Search::new(0, 1.0, 7);
        s.dist.insert(7, 0.0);
        s.dist.insert(8, 1.0);
        s.dist.insert(9, 2.0);
        s.parent.insert(8, (7, 100));
        s.parent.insert(9, (8, 101));
        let (edges, seed) = s.extract_path(9);
        assert_eq!(edges, vec![100, 101]);
        assert_eq!(seed, 7);
        let (edges, seed) = s.extract_path(7);
        assert!(edges.is_empty());
        assert_eq!(seed, 7);
    }

    #[test]
    fn reset_clears_labels_in_place() {
        let mut s = Search::new(0, 1.0, 7);
        s.dist.insert(7, 0.0);
        s.settled.insert(7);
        s.seed_raw_delay.insert(7, 0.5);
        s.reset(3, 2.0, 9);
        assert_eq!(s.terminal, 3);
        assert!(!s.dist.contains(7));
        assert!(!s.settled.contains(7));
        assert_eq!(s.seed_raw_delay.get(7), None);
    }
}
