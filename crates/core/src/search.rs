//! Per-terminal Dijkstra state for the simultaneous searches.
//!
//! Each active terminal `u` runs its own labelling with the individual
//! distance function `l_u(e) = c(e) + w(u)·d(e)` (Eq. (4)). Labels live
//! in epoch-stamped dense [`VertexTable`] slabs: graph backends expose
//! compact (window-local) vertex ids, so a slab is window-sized, clears
//! in `O(1)`, and — pooled through the
//! [`SolverWorkspace`](crate::SolverWorkspace) — is reused across
//! searches and solves without reallocating.

use crate::table::VertexTable;
use cds_graph::{EdgeId, SteinerGraph, VertexId};

/// Sentinel parent vertex marking a seed label (no predecessor).
/// `u32::MAX` is never a reachable window-local vertex id: label slabs
/// are dense arrays indexed by vertex, so a real id that large could
/// not be allocated.
pub const NO_PARENT: VertexId = VertexId::MAX;

/// One vertex's complete label: distance, predecessor, and settled
/// flag in a single slab record. The relaxation loop is the solver's
/// hottest code and probes all three per neighbor; separate `dist` /
/// `parent` / `settled` tables cost it up to five scattered cache
/// lines per vertex (each table's stamp and value arrays), a combined
/// record costs two (one stamp, one record).
#[derive(Debug, Clone, Copy)]
pub struct Label {
    /// Best known `g` value (true `l_u` distance, without heuristic).
    pub dist: f64,
    /// Predecessor (vertex, edge); vertex is [`NO_PARENT`] for seeds.
    pub parent: (VertexId, EdgeId),
    /// Permanently labelled.
    pub settled: bool,
}

impl Default for Label {
    fn default() -> Self {
        // the resize fill of a growing slab — unreachable until stamped
        Label { dist: f64::INFINITY, parent: (NO_PARENT, 0), settled: false }
    }
}

impl Label {
    /// A fresh (unsettled) seed label at distance `dist`.
    pub fn seed(dist: f64) -> Self {
        Label { dist, parent: (NO_PARENT, 0), settled: false }
    }
}

/// Dijkstra state of one active terminal.
#[derive(Debug, Clone, Default)]
pub struct Search {
    /// Terminal slot this search belongs to.
    pub terminal: usize,
    /// Delay weight `w(u)` of the terminal.
    pub weight: f64,
    /// The terminal's position `π(u)`.
    pub origin: VertexId,
    /// Per-vertex labels: distance, predecessor, settled flag.
    pub labels: VertexTable<Label>,
    /// Raw tree delay (`Σ d`, unweighted) from `origin` to each seed —
    /// needed by the Steiner re-embedding (§III-D). Seeds are the
    /// component's vertices under §III-A discounting, else just the
    /// origin.
    pub seed_raw_delay: VertexTable<f64>,
}

impl Search {
    /// A fresh search with no labels.
    pub fn new(terminal: usize, weight: f64, origin: VertexId) -> Self {
        Search { terminal, weight, origin, ..Search::default() }
    }

    /// Re-initializes a (possibly recycled) search for a new terminal,
    /// clearing all labels but keeping the slabs' capacity — the
    /// workspace-reuse fast path: a rip-up & re-route loop starts one
    /// search per terminal per net, and the label tables are the
    /// solver's hottest state. With epoch-stamped tables the clear is
    /// two epoch bumps, `O(1)`.
    pub fn reset(&mut self, terminal: usize, weight: f64, origin: VertexId) {
        self.terminal = terminal;
        self.weight = weight;
        self.origin = origin;
        self.labels.clear();
        self.seed_raw_delay.clear();
    }

    /// Walks parents from `to` back to a seed. Returns the edges in
    /// seed→`to` order together with the seed vertex.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never labelled.
    pub fn extract_path(&self, to: VertexId) -> (Vec<EdgeId>, VertexId) {
        let mut edges = Vec::new();
        let seed = self.extract_path_into(to, &mut edges);
        (edges, seed)
    }

    /// [`extract_path`](Self::extract_path) into a caller-owned buffer
    /// (cleared first), returning the seed vertex — the allocation-free
    /// path of the merge loop.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never labelled.
    pub fn extract_path_into(&self, to: VertexId, out: &mut Vec<EdgeId>) -> VertexId {
        assert!(self.labels.contains(to), "extracting an unlabelled vertex");
        out.clear();
        let mut cur = to;
        while let Some(Label { parent: (from, edge), .. }) = self.labels.get(cur) {
            if from == NO_PARENT {
                break;
            }
            out.push(edge);
            cur = from;
        }
        out.reverse();
        cur
    }

    /// The vertex sequence of a seed→`to` path returned by
    /// [`extract_path`](Self::extract_path), starting at the seed.
    pub fn path_vertices<G: SteinerGraph + ?Sized>(
        &self,
        graph: &G,
        edges: &[EdgeId],
        seed: VertexId,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(edges.len() + 1);
        self.path_vertices_into(graph, edges, seed, &mut out);
        out
    }

    /// [`path_vertices`](Self::path_vertices) into a caller-owned buffer
    /// (cleared first).
    pub fn path_vertices_into<G: SteinerGraph + ?Sized>(
        &self,
        graph: &G,
        edges: &[EdgeId],
        seed: VertexId,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        out.push(seed);
        let mut cur = seed;
        for &e in edges {
            cur = graph.endpoints(e).other(cur);
            out.push(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_extraction_orders_from_seed() {
        let mut s = Search::new(0, 1.0, 7);
        s.labels.insert(7, Label::seed(0.0));
        s.labels.insert(8, Label { dist: 1.0, parent: (7, 100), settled: false });
        s.labels.insert(9, Label { dist: 2.0, parent: (8, 101), settled: false });
        let (edges, seed) = s.extract_path(9);
        assert_eq!(edges, vec![100, 101]);
        assert_eq!(seed, 7);
        let (edges, seed) = s.extract_path(7);
        assert!(edges.is_empty());
        assert_eq!(seed, 7);
    }

    #[test]
    fn reset_clears_labels_in_place() {
        let mut s = Search::new(0, 1.0, 7);
        s.labels.insert(7, Label { settled: true, ..Label::seed(0.0) });
        s.seed_raw_delay.insert(7, 0.5);
        s.reset(3, 2.0, 9);
        assert_eq!(s.terminal, 3);
        assert!(!s.labels.contains(7));
        assert_eq!(s.seed_raw_delay.get(7), None);
    }
}
