//! The solver session API: reusable workspaces for rip-up & re-route
//! workloads.
//!
//! The paper's headline result (§IV) is that the cost-distance algorithm
//! is fast enough to serve as the per-net oracle inside a Lagrangean
//! rip-up-and-reroute loop — *millions* of solve calls over a chip. The
//! free function [`solve`](crate::solve) pays for that workload with
//! allocation churn: every call builds fresh hash tables, heaps, and
//! candidate stores, only to drop them microseconds later.
//!
//! A [`Solver`] is a session object that keeps all of those buffers in a
//! [`SolverWorkspace`] and clears-and-reuses them call after call:
//!
//! ```
//! use cds_core::{Request, Solver};
//! use cds_graph::GridSpec;
//!
//! let grid = GridSpec::uniform(8, 8, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//! let mut solver = Solver::builder().seed(7).build();
//! for k in 1..6u32 {
//!     let sinks = [grid.vertex(7, k % 8, 0), grid.vertex(k % 8, 7, 0)];
//!     let req = Request::new(grid.graph(), &c, &d, grid.vertex(0, 0, 0), &sinks, &[1.0, 2.0]);
//!     let result = solver.solve(&req);
//!     assert!(result.evaluation.total > 0.0);
//! }
//! ```
//!
//! Results are specified to be **bit-identical** to fresh-per-call
//! solving: a reused workspace only retains *capacity*, never state, and
//! the solver contains no iteration-order-sensitive reads of its hash
//! tables. `tests/determinism.rs` pins that contract.
//!
//! For batches of independent nets, [`Solver::solve_batch`] fans the
//! requests out over a pool of workspaces (one per worker thread) and
//! returns results in request order, again bit-identical to sequential
//! solving.

use crate::future::FutureCost;
use crate::solver::{solve_in, Instance, SolveResult, SolverOptions, SolverWorkspace};
use cds_graph::{Graph, SteinerGraph, VertexId};
use cds_heap::QueueKind;
use cds_topo::BifurcationConfig;

/// Session-level solver configuration: the §III enhancement toggles and
/// the default RNG seed. Unlike [`SolverOptions`] this is owned (no
/// borrowed future cost), so a session can outlive any one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// §III-A component discounting.
    pub discount_components: bool,
    /// §III-D Steiner re-embedding.
    pub better_steiner: bool,
    /// §III-E root-connection encouragement.
    pub encourage_root: bool,
    /// Default seed for the randomized Steiner placement; a
    /// [`Request::seed`] overrides it per net.
    pub seed: u64,
    /// Which label queue drives the searches (a pure performance knob:
    /// both kinds serve the identical total pop order).
    pub queue: QueueKind,
    /// Batched multi-sink search (see [`SolverOptions::batch`]): keeps
    /// member searches alive across sink–sink merges instead of
    /// restarting one labelling from each new Steiner terminal. Changes
    /// which trees are found — off by default.
    pub batch: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl SessionConfig {
    /// The default seed shared by every construction path.
    pub const DEFAULT_SEED: u64 = 0x5eed;

    /// All §III enhancements on — the single source of truth for the
    /// defaults of [`SolverOptions`],
    /// [`SolverBuilder`], and the router's `CdOracle` alike (keeping
    /// the compat path and the session path bit-identical).
    pub const DEFAULT: SessionConfig = SessionConfig {
        discount_components: true,
        better_steiner: true,
        encourage_root: true,
        seed: Self::DEFAULT_SEED,
        // keep in sync with `QueueKind::default()` (const ctx can't
        // call it): the bucket queue pops the same total order as the
        // two-level heap, so the fast kind is the default
        queue: QueueKind::Bucket,
        batch: false,
    };

    /// The plain Section-II algorithm (all enhancements off).
    pub const BASE: SessionConfig = SessionConfig {
        discount_components: false,
        better_steiner: false,
        encourage_root: false,
        seed: Self::DEFAULT_SEED,
        queue: QueueKind::Bucket,
        batch: false,
    };

    /// The plain Section-II algorithm (all enhancements off).
    pub fn base() -> Self {
        Self::BASE
    }
}

/// Builder for [`Solver`] sessions.
///
/// ```
/// use cds_core::Solver;
/// let solver = Solver::builder()
///     .discount_components(true)
///     .better_steiner(true)
///     .encourage_root(false)
///     .seed(42)
///     .build();
/// assert_eq!(solver.config().seed, 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverBuilder {
    config: SessionConfig,
}

impl SolverBuilder {
    /// Starts from the default (fully enhanced) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from the plain Section-II configuration.
    pub fn base() -> Self {
        SolverBuilder { config: SessionConfig::base() }
    }

    /// Toggles §III-A component discounting.
    pub fn discount_components(mut self, on: bool) -> Self {
        self.config.discount_components = on;
        self
    }

    /// Toggles §III-D Steiner re-embedding.
    pub fn better_steiner(mut self, on: bool) -> Self {
        self.config.better_steiner = on;
        self
    }

    /// Toggles §III-E root-connection encouragement.
    pub fn encourage_root(mut self, on: bool) -> Self {
        self.config.encourage_root = on;
        self
    }

    /// Sets the session's default RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Selects the label queue (a pure performance knob).
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.config.queue = kind;
        self
    }

    /// Toggles batched multi-sink search.
    pub fn batch(mut self, on: bool) -> Self {
        self.config.batch = on;
        self
    }

    /// Finishes the session. The workspace starts empty and grows to the
    /// session's largest instance, then stays warm.
    pub fn build(self) -> Solver {
        Solver { config: self.config, ws: SolverWorkspace::new(), pool: Vec::new() }
    }
}

/// One cost-distance request: an [`Instance`] plus the per-net options
/// (future cost, seed override, tracing) that used to live in
/// [`SolverOptions`].
///
/// Requests are cheap to build — all heavy state lives in the
/// [`Solver`]'s workspace. The graph travels with the request (not the
/// session) because rip-up & re-route loops route each net in its own
/// bounding-box window, and is generic over the [`SteinerGraph`]
/// backend: a materialized [`Graph`] (the default) or a zero-copy
/// [`WindowView`](cds_graph::WindowView) — possibly behind `dyn
/// RoutingSurface`, which is how the router passes it.
pub struct Request<'a, G: ?Sized = Graph> {
    /// The routing graph backend to solve on.
    pub graph: &'a G,
    /// Congestion cost `c(e)` per edge.
    pub cost: &'a [f64],
    /// Delay `d(e)` per edge.
    pub delay: &'a [f64],
    /// The net's root vertex.
    pub root: VertexId,
    /// Sink vertices.
    pub sinks: &'a [VertexId],
    /// Sink delay weights `w(s)`.
    pub weights: &'a [f64],
    /// Bifurcation penalty configuration.
    pub bif: BifurcationConfig,
    /// §III-C future cost for goal-oriented search; `None` means plain
    /// Dijkstra. Use one future per request — it specializes to the
    /// net's targets as components merge.
    pub future: Option<&'a dyn FutureCost>,
    /// Overrides the session seed for this net, e.g. with a per-net hash
    /// so rip-up order does not change placements.
    pub seed: Option<u64>,
    /// Record the per-merge trace.
    pub record_trace: bool,
    /// Key granularity hint for the bucket queue (minimum positive edge
    /// cost of the surface). Windowed callers should set it: the
    /// fallback scans the request's cost slice, which spans the whole
    /// chip for a [`WindowView`](cds_graph::WindowView).
    pub quantum: Option<f64>,
}

impl<G: ?Sized> Clone for Request<'_, G> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<G: ?Sized> Copy for Request<'_, G> {}

impl<G: ?Sized> std::fmt::Debug for Request<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("root", &self.root)
            .field("sinks", &self.sinks)
            .field("weights", &self.weights)
            .field("bif", &self.bif)
            .field("future", &self.future.is_some())
            .field("seed", &self.seed)
            .field("record_trace", &self.record_trace)
            .finish_non_exhaustive()
    }
}

impl<'a, G: ?Sized> Request<'a, G> {
    /// A request with no bifurcation penalty, no future cost, the
    /// session's seed, and no tracing. Override fields directly or with
    /// the `with_*` helpers.
    pub fn new(
        graph: &'a G,
        cost: &'a [f64],
        delay: &'a [f64],
        root: VertexId,
        sinks: &'a [VertexId],
        weights: &'a [f64],
    ) -> Self {
        Request {
            graph,
            cost,
            delay,
            root,
            sinks,
            weights,
            bif: BifurcationConfig::ZERO,
            future: None,
            seed: None,
            record_trace: false,
            quantum: None,
        }
    }

    /// The same net as `inst`, as a request.
    pub fn from_instance(inst: &Instance<'a, G>) -> Self {
        Request {
            graph: inst.graph,
            cost: inst.cost,
            delay: inst.delay,
            root: inst.root,
            sinks: inst.sink_vertices,
            weights: inst.weights,
            bif: inst.bif,
            future: None,
            seed: None,
            record_trace: false,
            quantum: None,
        }
    }

    /// Sets the bifurcation penalty configuration.
    pub fn with_bif(mut self, bif: BifurcationConfig) -> Self {
        self.bif = bif;
        self
    }

    /// Sets the §III-C future cost.
    pub fn with_future(mut self, future: &'a dyn FutureCost) -> Self {
        self.future = Some(future);
        self
    }

    /// Overrides the session seed for this request.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the bucket-queue key quantum hint (minimum positive edge
    /// cost of the surface).
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        self.quantum = Some(quantum);
        self
    }

    /// Enables the per-merge trace.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// The equivalent [`Instance`] view of this request.
    pub fn instance(&self) -> Instance<'a, G> {
        Instance {
            graph: self.graph,
            cost: self.cost,
            delay: self.delay,
            root: self.root,
            sink_vertices: self.sinks,
            weights: self.weights,
            bif: self.bif,
        }
    }
}

/// A solver session: configuration plus a reusable [`SolverWorkspace`].
///
/// See the [module docs](self) for the motivation and the determinism
/// contract. Construct with [`Solver::builder`] (or [`Solver::new`] for
/// defaults); solve with [`solve`](Solver::solve) /
/// [`solve_batch`](Solver::solve_batch).
#[derive(Debug, Default)]
pub struct Solver {
    config: SessionConfig,
    ws: SolverWorkspace,
    /// Extra workspaces for [`solve_batch`](Self::solve_batch) workers;
    /// grown on demand, kept warm across batches.
    pool: Vec<SolverWorkspace>,
}

impl Solver {
    /// A session with the default (fully enhanced) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a session.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::new()
    }

    /// A session with an explicit configuration.
    pub fn with_config(config: SessionConfig) -> Self {
        Solver { config, ws: SolverWorkspace::new(), pool: Vec::new() }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Number of solves served by this session's primary workspace.
    pub fn solves(&self) -> u64 {
        self.ws.solves()
    }

    /// Resolves the effective [`SolverOptions`] for one request.
    fn options<'a, G: ?Sized>(config: &SessionConfig, req: &Request<'a, G>) -> SolverOptions<'a> {
        SolverOptions {
            future: req.future,
            seed: req.seed.unwrap_or(config.seed),
            record_trace: req.record_trace,
            quantum: req.quantum,
            ..SolverOptions::from_session(*config)
        }
    }

    /// Solves one request, reusing the session workspace.
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (no sinks, mismatched slice lengths,
    /// negative weights) or disconnected instances, exactly like
    /// [`solve`](crate::solve).
    pub fn solve<G: SteinerGraph + ?Sized>(&mut self, req: &Request<'_, G>) -> SolveResult {
        Self::solve_with(&self.config, &mut self.ws, req)
    }

    /// Solves one request against an explicit workspace — the building
    /// block for callers that manage their own workspace pools (the
    /// router's worker threads do).
    pub fn solve_with<G: SteinerGraph + ?Sized>(
        config: &SessionConfig,
        ws: &mut SolverWorkspace,
        req: &Request<'_, G>,
    ) -> SolveResult {
        let inst = req.instance();
        let opts = Self::options(config, req);
        solve_in(ws, &inst, &opts)
    }

    /// Solves one request with the tree assembled straight into a
    /// [`RoutedForest`](cds_topo::RoutedForest) slot — the arena path:
    /// no owned tree, no evaluation (evaluate through the slot's
    /// [`TreeView`](cds_topo::TreeView); results are bit-identical to
    /// [`solve_with`](Self::solve_with)). Returns the work counters.
    ///
    /// # Panics
    ///
    /// Same contract as [`solve`](Self::solve); `record_trace` is
    /// ignored on this path.
    pub fn solve_into<G: SteinerGraph + ?Sized>(
        config: &SessionConfig,
        ws: &mut SolverWorkspace,
        req: &Request<'_, G>,
        forest: &mut cds_topo::RoutedForest,
        slot: usize,
    ) -> crate::SolveStats {
        let inst = req.instance();
        let opts = Self::options(config, req);
        crate::solver::solve_forest_in(ws, &inst, &opts, forest, slot)
    }

    /// Solves independent requests in parallel over a pool of
    /// workspaces, returning results in request order.
    ///
    /// Results are bit-identical to solving the requests sequentially
    /// (and therefore to fresh-per-call [`solve`](crate::solve)):
    /// parallelism only changes *which* workspace serves a request, and
    /// workspaces carry no state between solves. `threads` is clamped to
    /// `[1, reqs.len()]`; the workspace pool persists across batches, so
    /// steady-state batches allocate almost nothing.
    ///
    /// # Panics
    ///
    /// Panics if two requests share one [`FutureCost`] instance. A
    /// future specializes to its net's targets during the solve
    /// ([`note_new_targets`](crate::FutureCost::note_new_targets)), so
    /// sharing one across concurrently solved requests would race and
    /// break the bit-identical contract — build one future per request
    /// (they are cheap relative to a solve).
    pub fn solve_batch<G: SteinerGraph + ?Sized>(
        &mut self,
        reqs: &[Request<'_, G>],
        threads: usize,
    ) -> Vec<SolveResult> {
        let n = reqs.len();
        if n == 0 {
            return Vec::new();
        }
        // zero-sized futures (e.g. NoFutureCost) are stateless and may
        // share addresses; only stateful instances can race
        let stateful = |r: &&Request<'_, G>| r.future.is_some_and(|f| std::mem::size_of_val(f) > 0);
        let mut future_ptrs: Vec<*const ()> = reqs
            .iter()
            .filter(stateful)
            .map(|r| {
                let f = r.future.expect("filtered to Some");
                f as *const dyn FutureCost as *const ()
            })
            .collect();
        let stateful_count = future_ptrs.len();
        future_ptrs.sort_unstable();
        future_ptrs.dedup();
        assert_eq!(
            future_ptrs.len(),
            stateful_count,
            "solve_batch requests must not share a FutureCost instance (one future per net)"
        );
        let threads = threads.clamp(1, n);
        if threads == 1 {
            return reqs.iter().map(|r| self.solve(r)).collect();
        }
        // one workspace per worker: the primary plus pool extras
        while self.pool.len() + 1 < threads {
            self.pool.push(SolverWorkspace::new());
        }
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Option<SolveResult>> = (0..n).map(|_| None).collect();
        let config = self.config;
        {
            let mut workspaces: Vec<&mut SolverWorkspace> =
                std::iter::once(&mut self.ws).chain(self.pool.iter_mut()).collect();
            std::thread::scope(|scope| {
                for ((req_chunk, out_chunk), ws) in
                    reqs.chunks(chunk).zip(results.chunks_mut(chunk)).zip(workspaces.drain(..))
                {
                    scope.spawn(move || {
                        for (req, out) in req_chunk.iter().zip(out_chunk.iter_mut()) {
                            *out = Some(Self::solve_with(&config, ws, req));
                        }
                    });
                }
            });
        }
        results.into_iter().map(|r| r.expect("every request solved")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use cds_graph::GridSpec;

    fn trees_equal(a: &SolveResult, b: &SolveResult) -> bool {
        a.evaluation.total.to_bits() == b.evaluation.total.to_bits()
            && a.stats == b.stats
            && a.tree.edges().collect::<Vec<_>>() == b.tree.edges().collect::<Vec<_>>()
    }

    #[test]
    fn session_matches_free_function() {
        let grid = GridSpec::uniform(9, 9, 2).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [grid.vertex(8, 1, 0), grid.vertex(1, 8, 0), grid.vertex(8, 8, 0)];
        let weights = [1.0, 2.0, 0.5];
        let req = Request::new(grid.graph(), &c, &d, grid.vertex(0, 0, 0), &sinks, &weights)
            .with_bif(BifurcationConfig::new(3.0, 0.25));
        let mut solver = Solver::new();
        let fresh = solve(&req.instance(), &SolverOptions::default());
        for _ in 0..5 {
            let reused = solver.solve(&req);
            assert!(trees_equal(&fresh, &reused), "reuse must not change results");
        }
        assert_eq!(solver.solves(), 5);
    }

    #[test]
    fn batch_matches_sequential_in_request_order() {
        let grid = GridSpec::uniform(10, 10, 2).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let root = grid.vertex(0, 0, 0);
        let sink_sets: Vec<Vec<u32>> = (0..13)
            .map(|i| {
                vec![
                    grid.vertex(9, (i * 3) % 10, 0),
                    grid.vertex((i * 7) % 10, 9, 0),
                    grid.vertex((2 + i) % 10, (5 + i * 5) % 10, 0),
                ]
            })
            .collect();
        let weights = [1.0, 0.25, 2.0];
        let reqs: Vec<Request<'_>> = sink_sets
            .iter()
            .map(|s| {
                Request::new(grid.graph(), &c, &d, root, s, &weights)
                    .with_bif(BifurcationConfig::new(2.0, 0.25))
            })
            .collect();
        let mut solver = Solver::new();
        let sequential: Vec<SolveResult> = reqs.iter().map(|r| solver.solve(r)).collect();
        let batched = solver.solve_batch(&reqs, 4);
        assert_eq!(batched.len(), sequential.len());
        for (s, b) in sequential.iter().zip(&batched) {
            assert!(trees_equal(s, b), "batch must match sequential bit-for-bit");
        }
    }

    #[test]
    fn builder_presets_match_legacy_options() {
        let base = SolverBuilder::base().build();
        assert!(!base.config().discount_components);
        assert!(!base.config().better_steiner);
        assert!(!base.config().encourage_root);
        let full = Solver::builder().seed(9).build();
        assert!(full.config().discount_components);
        assert_eq!(full.config().seed, 9);
    }
}
