//! Algorithm 1 — the cost-distance Steiner tree algorithm.
//!
//! The solver runs one Dijkstra per active terminal *simultaneously*
//! (two-level heap, §III-B), each with its individual metric
//! `l_u(e) = c(e) + w(u)·d(e)` (Eq. (4)). Whenever a search enters a
//! vertex of another terminal's component, a *candidate* connection with
//! value `L(u, v) = dist + b(u, v)` (Eq. (5)) is recorded; once the
//! globally smallest heap key can no longer beat the best candidate, that
//! candidate is committed: the two components merge through the found
//! path, a Steiner terminal with the summed weight replaces them (placed
//! randomly per §II, or by the re-embedding rule of §III-D), and a fresh
//! search starts from it. Root connections retire their sink instead.
//!
//! The solver is generic over [`SteinerGraph`], so the same code routes
//! a materialized [`Graph`] and a zero-copy
//! [`WindowView`](cds_graph::WindowView) of the global grid — backends
//! are specified to produce bit-identical trees. All per-solve state
//! lives in dense, epoch-stamped [`VertexTable`]
//! slabs pooled by the [`SolverWorkspace`]: clearing is an epoch bump,
//! and a warm workspace solves without touching the allocator.
//!
//! Enhancements (all individually toggleable in [`SolverOptions`]):
//! §III-A component reuse (searches are seeded with the whole component
//! at delay-true offsets, so tree edges cost no connection charge),
//! §III-B two-level heap (always on — it is the queue), §III-C A* future
//! costs, §III-D Steiner re-embedding, §III-E root-connection
//! encouragement.

use crate::assemble::{assemble_tree_in, AssembleScratch};
use crate::components::{CompScratch, Component, Dsu, TerminalId};
use crate::future::{FutureCost, GridFutureCost, NoFutureCost};
use crate::search::{Label, Search};
use crate::table::VertexTable;
use cds_graph::{EdgeId, Graph, SteinerGraph, VertexId};
use cds_heap::{BucketQueue, LabelQueue, OrderedF64, QueueKind, TwoLevelHeap};
use cds_topo::penalty::beta;
use cds_topo::{BifurcationConfig, EmbeddedTree, Evaluation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "no entry" in the intrusive per-vertex slot lists.
const NO_LINK: u32 = u32::MAX;

/// A cost-distance Steiner tree instance (paper Eq. (1) + (3)).
///
/// Generic over the graph backend: `G` defaults to the materialized
/// [`Graph`], and the router instantiates it with the zero-copy
/// [`WindowView`](cds_graph::WindowView) (through `dyn
/// RoutingSurface`). Cost/delay slices are indexed by edge id and must
/// cover [`edge_bound`](SteinerGraph::edge_bound).
pub struct Instance<'a, G: ?Sized = Graph> {
    /// The routing graph backend.
    pub graph: &'a G,
    /// Congestion cost `c(e)` per edge.
    pub cost: &'a [f64],
    /// Delay `d(e)` per edge.
    pub delay: &'a [f64],
    /// The net's root (source) vertex `π(r)`.
    pub root: VertexId,
    /// Sink positions `π(s)`.
    pub sink_vertices: &'a [VertexId],
    /// Sink delay weights `w(s)` (from Lagrangean relaxation in the
    /// router; any non-negative values standalone).
    pub weights: &'a [f64],
    /// Bifurcation penalty configuration (`d_bif`, `η`).
    pub bif: BifurcationConfig,
}

impl<G: ?Sized> Clone for Instance<'_, G> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<G: ?Sized> Copy for Instance<'_, G> {}

impl<G: ?Sized> std::fmt::Debug for Instance<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("root", &self.root)
            .field("sink_vertices", &self.sink_vertices)
            .field("weights", &self.weights)
            .field("bif", &self.bif)
            .finish_non_exhaustive()
    }
}

/// Toggles for the practical enhancements of §III.
#[derive(Clone, Copy)]
pub struct SolverOptions<'a> {
    /// §III-A: discount existing tree components (reuse tree edges free
    /// of connection cost; searches start from whole components).
    pub discount_components: bool,
    /// §III-C: goal-oriented search with this future cost. `None` means
    /// plain Dijkstra.
    pub future: Option<&'a dyn FutureCost>,
    /// §III-D: re-embed the new Steiner vertex on the found path instead
    /// of picking a random endpoint.
    pub better_steiner: bool,
    /// §III-E: subtract the guaranteed future saving `η·d_bif·w(u)` from
    /// root connection penalties.
    pub encourage_root: bool,
    /// RNG seed for the randomized Steiner placement.
    pub seed: u64,
    /// Record a per-merge trace (for the Fig. 3 reproduction).
    pub record_trace: bool,
    /// Which label queue drives the simultaneous searches. Both kinds
    /// serve the identical total pop order `(key, search, vertex)`, so
    /// this is purely a performance knob — results are bit-identical.
    pub queue: QueueKind,
    /// Key granularity hint for [`QueueKind::Bucket`] (the minimum
    /// positive edge cost of the surface). Any positive finite value is
    /// correct; `None` scans the instance's cost slice, which windowed
    /// callers should avoid by passing the surface-wide minimum.
    pub quantum: Option<f64>,
    /// Batched multi-sink search: sink–sink merges keep the member
    /// searches alive serving the merged component instead of retiring
    /// both and restarting one labelling from the new Steiner terminal.
    /// One labelling per original terminal then serves the whole solve;
    /// root connections retire all member searches at once. Changes
    /// which trees are found (fewer relabellings, same approximation
    /// regime) — off by default to keep results pinned.
    pub batch: bool,
}

impl std::fmt::Debug for SolverOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverOptions")
            .field("discount_components", &self.discount_components)
            .field("future", &self.future.is_some())
            .field("better_steiner", &self.better_steiner)
            .field("encourage_root", &self.encourage_root)
            .field("seed", &self.seed)
            .field("record_trace", &self.record_trace)
            .field("queue", &self.queue)
            .field("quantum", &self.quantum)
            .field("batch", &self.batch)
            .finish()
    }
}

impl Default for SolverOptions<'_> {
    fn default() -> Self {
        Self::from_session(crate::SessionConfig::DEFAULT)
    }
}

impl<'a> SolverOptions<'a> {
    /// The toggles of a session config, with no future cost or tracing
    /// — the one conversion point that keeps the compat path and the
    /// session path agreeing on defaults.
    pub fn from_session(config: crate::SessionConfig) -> Self {
        SolverOptions {
            discount_components: config.discount_components,
            future: None,
            better_steiner: config.better_steiner,
            encourage_root: config.encourage_root,
            seed: config.seed,
            record_trace: false,
            queue: config.queue,
            quantum: None,
            batch: config.batch,
        }
    }

    /// The plain Section-II algorithm: no enhancements, matching the
    /// theoretical analysis.
    pub fn base() -> Self {
        Self::from_session(crate::SessionConfig::BASE)
    }

    /// All enhancements on, with the given future cost (§III-C).
    pub fn enhanced(future: &'a dyn FutureCost) -> Self {
        SolverOptions { future: Some(future), ..SolverOptions::default() }
    }
}

/// One merge of the run (the Fig. 3 trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeEvent {
    /// Two sink-side terminals merged into a new Steiner terminal.
    SinkSink {
        /// Merge index (the `i` of Algorithm 1).
        iteration: usize,
        /// Vertex of the initiating terminal `u`.
        u_vertex: VertexId,
        /// Vertex of the found terminal `v`.
        v_vertex: VertexId,
        /// Chosen position of the new Steiner terminal.
        steiner_vertex: VertexId,
        /// The committed `L(u, v)`.
        l_value: f64,
        /// Length of the connecting path in edges.
        path_edges: usize,
    },
    /// A terminal connected to the root component.
    RootConnect {
        /// Merge index.
        iteration: usize,
        /// Vertex of the connected terminal.
        u_vertex: VertexId,
        /// The committed `L(u, r)`.
        l_value: f64,
        /// Length of the connecting path in edges.
        path_edges: usize,
    },
}

/// Counters for the complexity experiments (Theorem 1 bench) and the
/// kernel observability surface (`cds-cli route` JSON, the benches).
///
/// All counters are deterministic for a given instance + options: they
/// count algorithmic events, not wall-clock or queue internals — with
/// one exception, `bucket_scans`, which is still deterministic but only
/// nonzero under [`QueueKind::Bucket`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Vertices permanently labelled over all searches.
    pub settled: usize,
    /// Queue pushes (label creations/improvements).
    pub pushed: usize,
    /// Queue pops, including stale entries discarded by the settled
    /// check (`popped - settled` is the lazy-deletion overhead).
    pub popped: usize,
    /// Label improvements of an already-finite tentative distance (the
    /// decrease-key share of `pushed`).
    pub decreased: usize,
    /// Merges performed (= `|S|`).
    pub merges: usize,
    /// Bucket-array slots scanned by the Dial queue (0 under the
    /// comparison heap) — the `C/Δ` term of Dial's complexity.
    pub bucket_scans: u64,
}

impl SolveStats {
    /// Folds another solve's counters into this one. Every field is an
    /// order-independent integer sum, so accumulating across nets (or
    /// across worker threads) is deterministic regardless of order.
    pub fn absorb(&mut self, o: SolveStats) {
        self.settled += o.settled;
        self.pushed += o.pushed;
        self.popped += o.popped;
        self.decreased += o.decreased;
        self.merges += o.merges;
        self.bucket_scans += o.bucket_scans;
    }
}

/// Everything `solve` returns.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The embedded Steiner tree.
    pub tree: EmbeddedTree,
    /// Objective breakdown of `tree` (Eq. (1) + (3)).
    pub evaluation: Evaluation,
    /// Work counters.
    pub stats: SolveStats,
    /// Per-merge trace (empty unless requested).
    pub trace: Vec<MergeEvent>,
}

/// Runs the cost-distance algorithm on `inst` with a throwaway
/// workspace.
///
/// This is the compatibility entry point: one-off solves and code
/// predating the session API. Hot loops should hold a
/// [`Solver`](crate::Solver) session (or a [`SolverWorkspace`] of their
/// own) and reuse it — results are specified to be bit-identical either
/// way.
///
/// # Panics
///
/// Panics if the instance has no sinks, mismatched slices, negative
/// weights, or if some sink is disconnected from the rest of the graph.
pub fn solve<G: SteinerGraph + ?Sized>(
    inst: &Instance<'_, G>,
    opts: &SolverOptions<'_>,
) -> SolveResult {
    let mut ws = SolverWorkspace::new();
    solve_in(&mut ws, inst, opts)
}

/// Runs the cost-distance algorithm on `inst` against a caller-owned
/// workspace, clearing (not reallocating) whatever the workspace held.
///
/// # Panics
///
/// Same contract as [`solve`].
pub(crate) fn solve_in<G: SteinerGraph + ?Sized>(
    ws: &mut SolverWorkspace,
    inst: &Instance<'_, G>,
    opts: &SolverOptions<'_>,
) -> SolveResult {
    let (comp, stats, trace) = solve_core(ws, inst, opts);
    let tree =
        assemble_tree_in(&mut ws.assemble, inst.graph, inst.root, inst.sink_vertices, &comp.edges);
    ws.free_component(comp);
    debug_assert_eq!(
        tree.validate(inst.graph, inst.sink_vertices.len()),
        Ok(()),
        "assembled tree must be valid"
    );
    let evaluation = tree.evaluate(inst.cost, inst.delay, inst.weights, &inst.bif);
    SolveResult { tree, evaluation, stats, trace }
}

/// [`solve_in`] assembling straight into a [`RoutedForest`] slot — the
/// arena path of the session API: the same merge loop and the same
/// assembly pipeline, but the output tree lands in shared slabs instead
/// of an owned [`EmbeddedTree`], and no evaluation is performed (the
/// caller evaluates through the slot's
/// [`TreeView`](cds_topo::TreeView), bit-identical by construction).
///
/// # Panics
///
/// Same contract as [`solve`].
pub(crate) fn solve_forest_in<G: SteinerGraph + ?Sized>(
    ws: &mut SolverWorkspace,
    inst: &Instance<'_, G>,
    opts: &SolverOptions<'_>,
    forest: &mut cds_topo::RoutedForest,
    slot: usize,
) -> SolveStats {
    let (comp, stats, _trace) = solve_core(ws, inst, opts);
    crate::assemble::assemble_tree_into(
        &mut ws.assemble,
        inst.graph,
        inst.root,
        inst.sink_vertices,
        &comp.edges,
        forest,
        slot,
    );
    ws.free_component(comp);
    debug_assert_eq!(
        forest.view(slot).validate(inst.graph, inst.sink_vertices.len()),
        Ok(()),
        "assembled tree must be valid"
    );
    stats
}

/// The shared front of both solve paths: validates the instance, picks
/// the label queue, runs the merge loop to completion, and hands back
/// the root component's edge set (the tree-to-be) with the work
/// counters and optional trace.
fn solve_core<G: SteinerGraph + ?Sized>(
    ws: &mut SolverWorkspace,
    inst: &Instance<'_, G>,
    opts: &SolverOptions<'_>,
) -> (Component, SolveStats, Vec<MergeEvent>) {
    assert!(!inst.sink_vertices.is_empty(), "a net needs at least one sink");
    assert_eq!(inst.sink_vertices.len(), inst.weights.len(), "one weight per sink");
    assert!(inst.weights.iter().all(|&w| w >= 0.0), "negative delay weight");
    assert!(inst.cost.len() >= inst.graph.edge_bound(), "cost slice must cover all edge ids");
    assert!(inst.delay.len() >= inst.graph.edge_bound(), "delay slice must cover all edge ids");
    ws.reset();
    ws.solves += 1;
    // The queue is moved out of the workspace for the duration of the
    // merge loop: the solver then holds it as a *separate* borrow from
    // the workspace, which lets the expansion hot loop keep one search
    // borrowed across all its neighbor relaxations while pushing labels.
    match opts.queue {
        QueueKind::Heap => {
            let mut queue = std::mem::take(&mut ws.heap);
            queue.begin_solve(1.0);
            let out = run_merge_loop(ws, inst, opts, &mut queue);
            ws.heap = queue;
            out
        }
        QueueKind::Bucket => {
            let quantum = opts
                .quantum
                .filter(|q| q.is_finite() && *q > 0.0)
                .unwrap_or_else(|| min_positive_cost(inst));
            let mut queue = std::mem::take(&mut ws.bucket);
            queue.begin_solve(quantum);
            let mut out = run_merge_loop(ws, inst, opts, &mut queue);
            out.1.bucket_scans = queue.scans();
            ws.bucket = queue;
            out
        }
    }
}

/// The bucket-queue quantum fallback: the minimum positive congestion
/// cost of the instance. Any positive finite value keeps the queue
/// exact, so delays are ignored (`w·d` only adds to edge lengths).
/// Windowed surfaces should pass [`SolverOptions::quantum`] instead —
/// their cost slices span the whole chip.
fn min_positive_cost<G: SteinerGraph + ?Sized>(inst: &Instance<'_, G>) -> f64 {
    let mut q = f64::INFINITY;
    for &c in &inst.cost[..inst.graph.edge_bound()] {
        if c > 0.0 && c < q {
            q = c;
        }
    }
    if q.is_finite() {
        q
    } else {
        1.0
    }
}

/// Runs the merge loop against an explicit queue (the solver state's
/// second mutable borrow next to the workspace).
fn run_merge_loop<G: SteinerGraph + ?Sized, Q: LabelQueue>(
    ws: &mut SolverWorkspace,
    inst: &Instance<'_, G>,
    opts: &SolverOptions<'_>,
    queue: &mut Q,
) -> (Component, SolveStats, Vec<MergeEvent>) {
    let mut state = State::new(inst, opts, ws, queue);
    while state.active_count > 0 {
        let cand = state.run_until_candidate();
        state.commit(cand);
    }
    let root_slot = state.root_slot;
    let root_rep = state.ws.dsu.find(root_slot);
    let comp = state.ws.terminals[root_rep]
        .comp
        .take()
        // INVARIANT: solve seeds a component at each root representative, and merges always re-deposit the survivor at the DSU representative.
        .expect("root component lives at its representative");
    let stats = state.stats;
    let trace = std::mem::take(&mut state.trace);
    (comp, stats, trace)
}

struct Terminal {
    vertex: VertexId,
    weight: f64,
    alive: bool,
    /// Component data; present only at DSU representatives.
    comp: Option<Component>,
    /// Heap search id, while the terminal is actively searching.
    sid: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// searching terminal
    u: TerminalId,
    /// terminal slot whose component was entered (resolve via DSU)
    target: TerminalId,
    /// the vertex where the connection was made
    via: VertexId,
    /// `g` value of `via` in u's search (stable once settled)
    g: f64,
}

/// The reusable buffers of one solver run: terminals, per-search label
/// slabs, the two-level heap, candidate stores, component pools, and
/// the dense scratch arenas for merge-time tables and tree assembly.
///
/// A workspace holds no semantic state between solves — only warmed-up
/// capacity. [`reset`](Self::reset) (called automatically by every
/// solve) clears contents but returns searches, components, and
/// sub-heaps to internal pools instead of dropping them; every
/// vertex-keyed table is an epoch-stamped [`VertexTable`] whose clear is
/// `O(1)`. This is where the session API's allocation savings come
/// from. Create one through [`Solver`](crate::Solver), or directly with
/// [`SolverWorkspace::new`] for caller-managed pools (e.g. one per
/// router worker thread).
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    terminals: Vec<Terminal>,
    dsu: Dsu,
    heap: TwoLevelHeap,
    /// The Dial-queue twin of `heap`; only one of the two is active per
    /// solve (the [`SolverOptions::queue`] knob), both stay warm.
    bucket: BucketQueue,
    searches: Vec<Option<Search>>,
    /// vertex → head of its slot list in `slot_links` (stale slots
    /// resolved through the DSU at query time)
    slot_head: VertexTable<u32>,
    /// intrusive singly-linked lists: (next link, terminal slot)
    slot_links: Vec<(u32, TerminalId)>,
    candidates: BinaryHeap<Reverse<(OrderedF64, usize)>>,
    cand_store: Vec<Candidate>,
    /// For root-component vertices: total already-routed sink weight
    /// downstream (rebuilt after every root merge).
    root_downstream: VertexTable<f64>,
    /// Retired [`Search`] label slabs, cleared, awaiting reuse.
    search_pool: Vec<Search>,
    /// Retired [`Component`] buffers, cleared, awaiting reuse.
    component_pool: Vec<Component>,
    /// Merge-time component tables (adjacency, tree delays, exit
    /// prices, downstream accumulation) — the arena that replaced the
    /// per-merge hash maps.
    comp_scratch: CompScratch,
    /// Tree-assembly tables (used-subgraph adjacency, DFS state,
    /// children lists).
    assemble: AssembleScratch,
    /// Scratch for the arrival check of the expansion hot loop.
    scratch_slots: Vec<TerminalId>,
    /// Scratch for neighbor enumeration (filled by the graph backend).
    nbrs: Vec<(VertexId, EdgeId)>,
    /// Scratch for search seeds, committed paths, and candidate rescans.
    seed_scratch: Vec<(VertexId, f64)>,
    path_scratch: Vec<EdgeId>,
    pathv_scratch: Vec<VertexId>,
    cum_scratch: Vec<f64>,
    sid_scratch: Vec<u32>,
    hit_scratch: Vec<(VertexId, f64)>,
    /// Solves served by this workspace (diagnostics).
    solves: u64,
}

impl std::fmt::Debug for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Terminal")
            .field("vertex", &self.vertex)
            .field("weight", &self.weight)
            .field("alive", &self.alive)
            .field("sid", &self.sid)
            .finish_non_exhaustive()
    }
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves served by this workspace so far.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Clears all per-solve state while keeping every allocation:
    /// collection capacities survive, epoch-stamped tables clear in
    /// `O(1)`, and searches / components / sub-heaps move to pools for
    /// the next solve.
    pub fn reset(&mut self) {
        for mut t in self.terminals.drain(..) {
            if let Some(mut comp) = t.comp.take() {
                comp.reset();
                self.component_pool.push(comp);
            }
        }
        for slot in &mut self.searches {
            if let Some(mut s) = slot.take() {
                s.reset(0, 0.0, 0);
                self.search_pool.push(s);
            }
        }
        self.searches.clear();
        self.dsu.clear();
        self.heap.clear();
        self.bucket.clear();
        self.slot_head.clear();
        self.slot_links.clear();
        self.candidates.clear();
        self.cand_store.clear();
        self.root_downstream.clear();
    }

    /// Appends `slot` to the list of terminal slots whose components
    /// contain `v`.
    fn push_slot(&mut self, v: VertexId, slot: TerminalId) {
        let next = self.slot_head.get_or(v, NO_LINK);
        self.slot_links.push((next, slot));
        self.slot_head.insert(v, self.slot_links.len() as u32 - 1);
    }

    /// Appends the slots registered at `v` to `out`, in insertion order.
    fn slots_at(&self, v: VertexId, out: &mut Vec<TerminalId>) {
        let base = out.len();
        let mut link = self.slot_head.get_or(v, NO_LINK);
        while link != NO_LINK {
            let (next, slot) = self.slot_links[link as usize];
            out.push(slot);
            link = next;
        }
        out[base..].reverse();
    }

    /// A cleared component from the pool (or a fresh one), initialized
    /// as a singleton.
    fn alloc_component(&mut self, v: VertexId, sinks: &[(VertexId, f64)]) -> Component {
        match self.component_pool.pop() {
            Some(mut comp) => {
                comp.init_singleton(v, sinks);
                comp
            }
            None => Component::singleton(v, sinks.to_vec()),
        }
    }

    /// Returns a drained component's buffers to the pool.
    fn free_component(&mut self, mut comp: Component) {
        comp.reset();
        self.component_pool.push(comp);
    }

    /// A cleared search from the pool (or a fresh one).
    fn alloc_search(&mut self, terminal: TerminalId, weight: f64, origin: VertexId) -> Search {
        match self.search_pool.pop() {
            Some(mut s) => {
                s.reset(terminal, weight, origin);
                s
            }
            None => Search::new(terminal, weight, origin),
        }
    }

    /// Retires a search, returning its label slabs to the pool.
    fn free_search(&mut self, sid: u32) {
        if let Some(mut s) = self.searches[sid as usize].take() {
            s.reset(0, 0.0, 0);
            self.search_pool.push(s);
        }
    }
}

struct State<'w, 'a, 'b, G: ?Sized, Q> {
    inst: &'a Instance<'a, G>,
    opts: &'a SolverOptions<'b>,
    ws: &'w mut SolverWorkspace,
    queue: &'w mut Q,
    root_slot: TerminalId,
    active_count: usize,
    total_active_weight: f64,
    rng: StdRng,
    stats: SolveStats,
    trace: Vec<MergeEvent>,
    no_future: NoFutureCost,
    /// Memoized result of [`peek_valid_candidate`](Self::peek_valid_candidate).
    /// A validated best candidate stays valid until something that
    /// feeds its value changes: a candidate push, a take, or a commit
    /// (merges move DSU representatives and component weights, which
    /// `b_value` reads). Those three places reset this to `None`. The
    /// cache turns the per-expansion revalidation — a heap peek plus
    /// two DSU finds plus a `b_value` recompute — into a field read,
    /// which matters because `run_until_candidate` consults the best
    /// candidate once per settled label.
    cand_cache: Option<Option<(f64, usize)>>,
}

impl<'w, 'a, 'b, G: SteinerGraph + ?Sized, Q: LabelQueue> State<'w, 'a, 'b, G, Q> {
    fn new(
        inst: &'a Instance<'a, G>,
        opts: &'a SolverOptions<'b>,
        ws: &'w mut SolverWorkspace,
        queue: &'w mut Q,
    ) -> Self {
        let mut state = State {
            inst,
            opts,
            ws,
            queue,
            root_slot: 0,
            active_count: 0,
            total_active_weight: 0.0,
            rng: StdRng::seed_from_u64(opts.seed),
            stats: SolveStats::default(),
            trace: Vec::new(),
            no_future: NoFutureCost,
            cand_cache: None,
        };
        // sink terminals
        for (i, (&v, &w)) in inst.sink_vertices.iter().zip(inst.weights).enumerate() {
            let slot = state.ws.dsu.push();
            debug_assert_eq!(slot, i);
            let comp = state.ws.alloc_component(v, &[(v, w)]);
            state.ws.terminals.push(Terminal {
                vertex: v,
                weight: w,
                alive: true,
                comp: Some(comp),
                sid: None,
            });
            state.ws.push_slot(v, slot);
            state.active_count += 1;
            state.total_active_weight += w;
        }
        // root terminal
        let root_slot = state.ws.dsu.push();
        state.root_slot = root_slot;
        let root_comp = state.ws.alloc_component(inst.root, &[]);
        state.ws.terminals.push(Terminal {
            vertex: inst.root,
            weight: 0.0,
            alive: true,
            comp: Some(root_comp),
            sid: None,
        });
        state.ws.push_slot(inst.root, root_slot);
        // start one search per sink
        for i in 0..inst.sink_vertices.len() {
            state.start_search(i);
        }
        state
    }

    fn future(&self) -> &dyn FutureCost {
        self.opts.future.unwrap_or(&self.no_future)
    }

    /// `b(u, v)` of Eq. (5) for a candidate, under the *current* weights.
    ///
    /// For root-component arrivals the paper's `β(w(u), w(S_i∖u))` prices
    /// the *future* siblings; we additionally price the *already routed*
    /// sinks downstream of the tap vertex (the bifurcation they would
    /// suffer is fully determined), taking the larger of the two — this
    /// is what keeps taps off critical trunks (Fig. 1).
    fn b_value(&mut self, u: TerminalId, target_rep: TerminalId, via: VertexId) -> f64 {
        // price the searching terminal's *component* weight — in the
        // default mode a searching terminal is always its own DSU
        // representative, so this is `w(u)` verbatim; under `batch`,
        // member searches outlive merges and the component weight lives
        // at the representative.
        let u_rep = self.ws.dsu.find(u);
        let w_u = self.ws.terminals[u_rep].weight;
        if target_rep == self.ws.dsu.find(self.root_slot) {
            let rest = (self.total_active_weight - w_u).max(0.0);
            let down = self.ws.root_downstream.get_or(via, 0.0);
            let mut b = beta(w_u, rest, &self.inst.bif).max(beta(w_u, down, &self.inst.bif));
            if self.opts.encourage_root {
                // §III-E: connecting now saves at least η·d_bif·w(u) later
                b -= self.inst.bif.eta * self.inst.bif.dbif * w_u;
            }
            b.max(0.0)
        } else {
            beta(w_u, self.ws.terminals[target_rep].weight, &self.inst.bif)
        }
    }

    /// Starts (or restarts) the Dijkstra of terminal `slot`, drawing the
    /// search's label slabs from the workspace pool.
    fn start_search(&mut self, slot: TerminalId) {
        let (t_weight, t_vertex) = {
            let t = &self.ws.terminals[slot];
            (t.weight, t.vertex)
        };
        let mut search = self.ws.alloc_search(slot, t_weight, t_vertex);
        let sid = self.queue.add_search();
        // Seeds (§III-A): every component vertex is a possible exit; its
        // price is the weighted tree delay the component's sinks incur if
        // the connection enters there — Σ_q w(q)·d_tree(y, q). For a
        // fresh sink this is the paper's plain seeding; for merged
        // components it keeps critical sinks near cheap exits instead of
        // charging all weight at the Steiner terminal's position.
        // Without discounting, just the terminal position (§II).
        let w = search.weight;
        let rep = self.ws.dsu.find(slot);
        let mut seeds = std::mem::take(&mut self.ws.seed_scratch);
        seeds.clear();
        {
            let mut cs = std::mem::take(&mut self.ws.comp_scratch);
            // INVARIANT: rep is a DSU representative with an active search, and components live at representatives until extracted by a merge.
            let comp = self.ws.terminals[rep].comp.as_ref().expect("live component");
            if self.opts.discount_components && !comp.edges.is_empty() {
                // raw tree delays from the terminal position, for §III-D
                comp.tree_delays_into(self.inst.graph, self.inst.delay, t_vertex, &mut cs);
                for &v in comp.vertices() {
                    if let Some(raw) = cs.delay.get(v) {
                        search.seed_raw_delay.insert(v, raw);
                    }
                }
                // the adjacency built by tree_delays_into is still valid
                comp.weighted_exit_delay_prebuilt(self.inst.delay, &mut cs);
                seeds.extend(comp.vertices().iter().map(|&v| (v, cs.exit.get_or(v, 0.0))));
            } else {
                // a single-vertex component seeds only its own position
                // at zero offset — same result as the general path,
                // without building the tree-delay tables (the t initial
                // searches of every solve take this branch)
                search.seed_raw_delay.insert(t_vertex, 0.0);
                seeds.push((t_vertex, 0.0));
            }
            self.ws.comp_scratch = cs;
        }
        seeds.sort_unstable_by_key(|&(v, _)| v); // determinism
        for &(v, offset) in &seeds {
            search.labels.insert(v, Label::seed(offset));
            let h = self.future().bound_nearest(v, w);
            self.queue.push(sid, v, offset + h);
            self.stats.pushed += 1;
        }
        self.ws.seed_scratch = seeds;
        self.ws.terminals[slot].sid = Some(sid);
        if self.ws.searches.len() <= sid as usize {
            self.ws.searches.resize_with(sid as usize + 1, || None);
        }
        self.ws.searches[sid as usize] = Some(search);
    }

    /// Expands searches until the best candidate provably minimizes
    /// `L(u, v)`, then returns it.
    ///
    /// # Panics
    ///
    /// Panics if the searches run dry without any candidate (disconnected
    /// instance).
    fn run_until_candidate(&mut self) -> Candidate {
        loop {
            let best = self.peek_valid_candidate();
            let heap_min = self.queue.peek_key();
            match (best, heap_min) {
                (Some((cv, id)), Some(hm)) if cv <= hm + 1e-12 => {
                    return self.take_candidate(id);
                }
                (Some(_), Some(_)) | (None, Some(_)) => self.expand_once(),
                (Some((_, id)), None) => return self.take_candidate(id),
                // INVARIANT: validated instances are connected, so some search can always expand; firing means the caller violated the documented precondition.
                (None, None) => panic!("instance is disconnected: searches exhausted"),
            }
        }
    }

    fn take_candidate(&mut self, id: usize) -> Candidate {
        // remove it from the heap top (it is guaranteed to be on top)
        // INVARIANT: take_candidate is only called with the id just observed at the non-empty heap top.
        let Reverse((_, top)) = self.ws.candidates.pop().expect("candidate present");
        debug_assert_eq!(top, id);
        self.cand_cache = None;
        self.ws.cand_store[id]
    }

    /// Lazily revalidates the candidate heap: recompute values under the
    /// current component structure and weights, dropping dead entries.
    /// Returns the best (value, id) without removing it.
    fn peek_valid_candidate(&mut self) -> Option<(f64, usize)> {
        if let Some(cached) = self.cand_cache {
            return cached;
        }
        let res = self.revalidate_candidates();
        self.cand_cache = Some(res);
        res
    }

    /// The uncached body of [`peek_valid_candidate`](Self::peek_valid_candidate).
    fn revalidate_candidates(&mut self) -> Option<(f64, usize)> {
        loop {
            let &Reverse((val, id)) = self.ws.candidates.peek()?;
            let cand = self.ws.cand_store[id];
            // searching terminal must still be alive and searching
            if !self.ws.terminals[cand.u].alive || self.ws.terminals[cand.u].sid.is_none() {
                self.ws.candidates.pop();
                continue;
            }
            let target_rep = self.ws.dsu.find(cand.target);
            let u_rep = self.ws.dsu.find(cand.u);
            if target_rep == u_rep {
                self.ws.candidates.pop(); // already in the same component
                continue;
            }
            let fresh = cand.g + self.b_value(cand.u, target_rep, cand.via);
            if (fresh - val.get()).abs() <= 1e-12 {
                return Some((val.get(), id));
            }
            // value drifted (weights changed by merges): reinsert
            self.ws.candidates.pop();
            self.ws.candidates.push(Reverse((OrderedF64::new(fresh), id)));
        }
    }

    fn push_candidate(&mut self, u: TerminalId, target: TerminalId, via: VertexId, g: f64) {
        let target_rep = self.ws.dsu.find(target);
        if target_rep == self.ws.dsu.find(u) {
            return;
        }
        let val = g + self.b_value(u, target_rep, via);
        let id = self.ws.cand_store.len();
        self.ws.cand_store.push(Candidate { u, target: target_rep, via, g });
        self.ws.candidates.push(Reverse((OrderedF64::new(val), id)));
        self.cand_cache = None;
    }

    /// Pops one label from the queue, settles it, records arrivals,
    /// relaxes neighbours.
    fn expand_once(&mut self) {
        let Some((sid, x, _key)) = self.queue.pop() else { return };
        self.stats.popped += 1;
        // INVARIANT: remove_search(sid) drains a search's queue entries before free_search retires it, so a popped sid always names a live search.
        let search = self.ws.searches[sid as usize].as_mut().expect("live search");
        // INVARIANT: relax creates a vertex's label before pushing it, so every popped vertex is labelled.
        let lbl = search.labels.get_mut(x).expect("popped vertices are labelled");
        if lbl.settled {
            return;
        }
        lbl.settled = true;
        let g = lbl.dist;
        let u = search.terminal;
        let w = search.weight;
        self.stats.settled += 1;

        // arrival at a foreign component? (scratch-copy the slot list so
        // candidate pushes can re-borrow the workspace)
        let mut arrived_foreign = false;
        let mut scratch = std::mem::take(&mut self.ws.scratch_slots);
        scratch.clear();
        self.ws.slots_at(x, &mut scratch);
        if !scratch.is_empty() {
            let u_rep = self.ws.dsu.find(u);
            for &slot in &scratch {
                let rep = self.ws.dsu.find(slot);
                if rep != u_rep {
                    arrived_foreign = true;
                    self.push_candidate(u, rep, x, g);
                }
            }
        }
        self.ws.scratch_slots = scratch;
        // §III-A: foreign tree vertices terminate the path — the
        // connection happens here, so tunnelling through is pointless
        // and would corrupt component disjointness.
        if arrived_foreign && self.opts.discount_components {
            return;
        }

        // relax neighbours with l_u = c + w·d
        let graph = self.inst.graph;
        let mut nbrs = std::mem::take(&mut self.ws.nbrs);
        graph.neighbors_into(x, &mut nbrs);
        // Resolve the future cost once per settled vertex: `None`
        // short-circuits the call entirely, the grid lower bound is
        // dispatched statically (and inlined), and only exotic futures
        // pay the virtual call per neighbor.
        enum Fut<'f> {
            None,
            Grid(&'f GridFutureCost),
            Dyn(&'f dyn FutureCost),
        }
        let fut = match self.opts.future {
            None => Fut::None,
            Some(f) => match f.as_grid() {
                Some(grid) => Fut::Grid(grid),
                None => Fut::Dyn(f),
            },
        };
        let cost = self.inst.cost;
        let delay = self.inst.delay;
        #[cfg(target_arch = "x86_64")]
        // The CSR arc span is contiguous but the per-edge cost/delay
        // reads it induces are scattered; issue the loads for the whole
        // span before the relaxation loop touches any of them.
        //
        // SAFETY: `_mm_prefetch` is a pure cache hint with no memory
        // access semantics — it cannot fault, read, or write even if
        // the pointer were dangling. The pointers here are in-bounds
        // anyway: every edge id in `nbrs` comes from the instance
        // graph, and `cost`/`delay` are per-edge slices of that graph
        // (`Instance` construction asserts their lengths), so
        // `as_ptr().add(e)` stays within the allocations.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            for &(_, e) in &nbrs {
                _mm_prefetch(cost.as_ptr().add(e as usize) as *const i8, _MM_HINT_T0);
                _mm_prefetch(delay.as_ptr().add(e as usize) as *const i8, _MM_HINT_T0);
            }
        }
        // The queue lives outside the workspace, so the search borrow
        // can be hoisted out of the loop (disjoint fields) — the old
        // code re-indexed `ws.searches` once per neighbor to appease
        // the borrow checker around `ws.heap`.
        let stats = &mut self.stats;
        let queue = &mut *self.queue;
        // INVARIANT: same argument as expand_once: remove_search precedes free_search, so sid is live here.
        let sm = self.ws.searches[sid as usize].as_mut().expect("live search");
        for &(y, e) in &nbrs {
            // one combined-label probe answers both "already settled?"
            // and "current distance?"
            let prior = sm.labels.get(y);
            if prior.is_some_and(|l| l.settled) {
                continue;
            }
            let len = cost[e as usize] + w * delay[e as usize];
            let cand_g = g + len;
            let cur = prior.map_or(f64::INFINITY, |l| l.dist);
            if cand_g < cur {
                if cur.is_finite() {
                    stats.decreased += 1;
                }
                let h = match fut {
                    Fut::None => 0.0,
                    Fut::Grid(grid) => grid.bound_nearest(y, w),
                    Fut::Dyn(f) => f.bound_nearest(y, w),
                };
                sm.labels.insert(y, Label { dist: cand_g, parent: (x, e), settled: false });
                queue.push(sid, y, cand_g + h);
                stats.pushed += 1;
            }
        }
        self.ws.nbrs = nbrs;
    }

    /// Commits a merge: joins components, places the Steiner terminal,
    /// retires/starts searches, rescans settled labels on new vertices.
    fn commit(&mut self, cand: Candidate) {
        // merging moves DSU representatives and component weights, both
        // of which feed `b_value`, so the memoized best candidate dies
        self.cand_cache = None;
        let u = cand.u;
        // INVARIANT: candidates are recorded for terminals with an active search, and stale candidates are rejected by the alive/sid check before this point.
        let sid = self.ws.terminals[u].sid.expect("searching terminal");
        // INVARIANT: sid was just read from a searching terminal, and searches stay live until a merge retires them below.
        let search = self.ws.searches[sid as usize].as_ref().expect("live search");
        let mut path = std::mem::take(&mut self.ws.path_scratch);
        let mut path_vertices = std::mem::take(&mut self.ws.pathv_scratch);
        let seed = search.extract_path_into(cand.via, &mut path);
        search.path_vertices_into(self.inst.graph, &path, seed, &mut path_vertices);
        // raw (unweighted) tree delay from π(u) to the path's seed — the
        // §III-D re-embedding needs it after the search is retired
        let seed_raw_u = search.seed_raw_delay.get_or(seed, 0.0);
        let target_rep = self.ws.dsu.find(cand.target);
        let l_value = cand.g + self.b_value(u, target_rep, cand.via);
        let iteration = self.stats.merges;
        self.stats.merges += 1;

        let u_rep = self.ws.dsu.find(u);
        let is_root = target_rep == self.ws.dsu.find(self.root_slot);
        if !self.opts.batch {
            // retire u's search (its label slabs go back to the pool)
            self.queue.remove_search(sid);
            self.ws.free_search(sid);
            self.ws.terminals[u].sid = None;
        }

        // INVARIANT: u_rep and target_rep are DSU representatives of distinct live components (the candidate filter rejected same-component pairs), and components live at their representatives.
        let mut comp_u = self.ws.terminals[u_rep].comp.take().expect("u's component");
        // INVARIANT: same argument as comp_u: the target's component lives at its representative.
        let mut comp_t = self.ws.terminals[target_rep].comp.take().expect("target component");

        if is_root {
            // root connection: the root component absorbs u's component
            let mut comp = comp_t;
            comp.absorb(&mut comp_u, &path, self.inst.graph);
            self.ws.free_component(comp_u);
            let retired_weight = self.ws.terminals[u_rep].weight;
            if self.opts.batch {
                // batched search: the whole component connects at once —
                // every member search still labelling for it retires now
                for slot in 0..self.ws.terminals.len() {
                    if self.ws.dsu.find(slot) != u_rep {
                        continue;
                    }
                    self.ws.terminals[slot].alive = false;
                    if let Some(msid) = self.ws.terminals[slot].sid.take() {
                        self.queue.remove_search(msid);
                        self.ws.free_search(msid);
                    }
                }
            } else {
                self.ws.terminals[u].alive = false;
            }
            self.active_count -= 1;
            self.total_active_weight -= retired_weight;
            // union keeps the root slot as representative
            self.ws.dsu.union_into(u_rep, target_rep, self.root_slot);
            {
                let mut cs = std::mem::take(&mut self.ws.comp_scratch);
                let mut down = std::mem::take(&mut self.ws.root_downstream);
                comp.downstream_weights_into(self.inst.graph, self.inst.root, &mut down, &mut cs);
                self.ws.root_downstream = down;
                self.ws.comp_scratch = cs;
            }
            self.ws.terminals[self.root_slot].comp = Some(comp);
            if self.opts.record_trace {
                self.trace.push(MergeEvent::RootConnect {
                    iteration,
                    u_vertex: self.ws.terminals[u].vertex,
                    l_value,
                    path_edges: path.len(),
                });
            }
            self.register_new_vertices(&path_vertices, self.root_slot);
        } else {
            // sink–sink merge: create the Steiner terminal s
            let v_slot = target_rep;
            let w_u = self.ws.terminals[u_rep].weight;
            let w_v = self.ws.terminals[v_slot].weight;
            let pos = self.choose_steiner_position(
                u_rep,
                v_slot,
                &path,
                &path_vertices,
                seed_raw_u,
                &comp_t,
            );
            let s = self.ws.dsu.push();
            let mut comp = comp_u;
            comp.absorb(&mut comp_t, &path, self.inst.graph);
            self.ws.free_component(comp_t);
            if !self.opts.batch {
                self.ws.terminals[u].alive = false;
                self.ws.terminals[v_slot].alive = false;
                if let Some(vsid) = self.ws.terminals[v_slot].sid.take() {
                    self.queue.remove_search(vsid);
                    self.ws.free_search(vsid);
                }
            }
            // Under `batch`, both sides' member searches stay alive and
            // keep labelling for the merged component — the Steiner
            // terminal carries the combined weight but starts no search.
            self.ws.terminals.push(Terminal {
                vertex: pos,
                weight: w_u + w_v,
                alive: true,
                comp: Some(comp),
                sid: None,
            });
            debug_assert_eq!(s, self.ws.terminals.len() - 1);
            self.ws.dsu.union_into(u_rep, v_slot, s);
            self.active_count -= 1; // two components die, one is born
            self.ws.push_slot(pos, s);
            if self.opts.record_trace {
                self.trace.push(MergeEvent::SinkSink {
                    iteration,
                    u_vertex: self.ws.terminals[u].vertex,
                    v_vertex: self.ws.terminals[v_slot].vertex,
                    steiner_vertex: pos,
                    l_value,
                    path_edges: path.len(),
                });
            }
            self.register_new_vertices(&path_vertices, s);
            if !self.opts.batch {
                self.start_search(s);
            }
        }
        self.ws.path_scratch = path;
        self.ws.pathv_scratch = path_vertices;
    }

    /// Chooses the new Steiner terminal's position: §III-D re-embedding
    /// on the path when enabled, otherwise the randomized endpoint rule
    /// of §II (probability proportional to delay weight).
    fn choose_steiner_position(
        &mut self,
        u: TerminalId,
        v: TerminalId,
        path: &[EdgeId],
        path_vertices: &[VertexId],
        seed_raw_u: f64,
        comp_v: &Component,
    ) -> VertexId {
        let (w_u, w_v) = (self.ws.terminals[u].weight, self.ws.terminals[v].weight);
        if !self.opts.better_steiner {
            // random endpoint ∝ weight (heavier terminal more likely to
            // stay detour-free towards the root)
            let p_u = if w_u + w_v > 0.0 { w_u / (w_u + w_v) } else { 0.5 };
            return if self.rng.gen::<f64>() < p_u {
                self.ws.terminals[u].vertex
            } else {
                self.ws.terminals[v].vertex
            };
        }
        // §III-D: minimize  ĉ(Q) + (w_u+w_v)·d̂(Q) + Σ_y w_y·d(P[y, s])
        // over path positions s, with Q (the future s→root path)
        // estimated by future costs.
        let usearch_raw = seed_raw_u;
        // raw delay from π(v) to the join vertex inside v's component
        // INVARIANT: reconstructed paths contain at least the meeting vertex, so last() is always present.
        let join = *path_vertices.last().expect("path has vertices");
        let v_raw = {
            let mut cs = std::mem::take(&mut self.ws.comp_scratch);
            let v_vertex = self.ws.terminals[v].vertex;
            comp_v.tree_delays_into(self.inst.graph, self.inst.delay, v_vertex, &mut cs);
            let raw = cs.delay.get_or(join, 0.0);
            self.ws.comp_scratch = cs;
            raw
        };
        // cumulative raw d along the path from the seed side
        let mut cum = std::mem::take(&mut self.ws.cum_scratch);
        cum.clear();
        let mut acc = 0.0;
        cum.push(0.0);
        for &e in path {
            acc += self.inst.delay[e as usize];
            cum.push(acc);
        }
        let total: f64 = acc;
        let w_sum = w_u + w_v;
        let fc = self.future();
        let root = self.inst.root;
        let mut best = (f64::INFINITY, path_vertices[0]);
        for (i, &p) in path_vertices.iter().enumerate() {
            let d_u = usearch_raw + cum[i];
            let d_v = v_raw + (total - cum[i]);
            let q_est = fc.bound_to(p, root, w_sum);
            let score = q_est + w_u * d_u + w_v * d_v;
            if score < best.0 {
                best = (score, p);
            }
        }
        self.ws.cum_scratch = cum;
        best.1
    }

    /// After a merge, vertices of the connecting path join the component;
    /// other searches that already settled those vertices must get their
    /// arrival candidates now (their Dijkstras will not revisit them).
    /// Only relevant under §III-A: without discounting, targets are
    /// terminal positions only (already registered), and existing
    /// candidates stay valid through DSU resolution.
    fn register_new_vertices(&mut self, path_vertices: &[VertexId], owner: TerminalId) {
        if !self.opts.discount_components {
            return;
        }
        // keep goal-oriented future costs admissible: every path vertex
        // is a valid connection target from now on (§III-C feasibility)
        if let Some(fc) = self.opts.future {
            fc.note_new_targets(path_vertices);
        }
        for &v in path_vertices {
            self.ws.push_slot(v, owner);
        }
        // also the owner's terminal position (new Steiner terminals)
        let mut sids = std::mem::take(&mut self.ws.sid_scratch);
        sids.clear();
        sids.extend(self.ws.terminals.iter().filter_map(|t| t.sid));
        for &sid in &sids {
            let Some(u) = self.ws.searches[sid as usize].as_ref().map(|s| s.terminal) else {
                continue;
            };
            if self.ws.dsu.find(u) == self.ws.dsu.find(owner) {
                continue;
            }
            let mut hits = std::mem::take(&mut self.ws.hit_scratch);
            hits.clear();
            {
                // INVARIANT: sid was checked live at the top of this block and nothing frees searches in between.
                let search = self.ws.searches[sid as usize].as_ref().expect("checked above");
                for &v in path_vertices {
                    if let Some(Label { dist, settled: true, .. }) = search.labels.get(v) {
                        hits.push((v, dist));
                    }
                }
            }
            for &(v, g) in &hits {
                self.push_candidate(u, owner, v, g);
            }
            self.ws.hit_scratch = hits;
        }
        self.ws.sid_scratch = sids;
    }
}
