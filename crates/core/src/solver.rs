//! Algorithm 1 — the cost-distance Steiner tree algorithm.
//!
//! The solver runs one Dijkstra per active terminal *simultaneously*
//! (two-level heap, §III-B), each with its individual metric
//! `l_u(e) = c(e) + w(u)·d(e)` (Eq. (4)). Whenever a search enters a
//! vertex of another terminal's component, a *candidate* connection with
//! value `L(u, v) = dist + b(u, v)` (Eq. (5)) is recorded; once the
//! globally smallest heap key can no longer beat the best candidate, that
//! candidate is committed: the two components merge through the found
//! path, a Steiner terminal with the summed weight replaces them (placed
//! randomly per §II, or by the re-embedding rule of §III-D), and a fresh
//! search starts from it. Root connections retire their sink instead.
//!
//! Enhancements (all individually toggleable in [`SolverOptions`]):
//! §III-A component reuse (searches are seeded with the whole component
//! at delay-true offsets, so tree edges cost no connection charge),
//! §III-B two-level heap (always on — it is the queue), §III-C A* future
//! costs, §III-D Steiner re-embedding, §III-E root-connection
//! encouragement.

use crate::assemble::assemble_tree;
use crate::components::{Component, Dsu, TerminalId};
use crate::future::{FutureCost, NoFutureCost};
use crate::search::Search;
use cds_graph::{EdgeId, Graph, VertexId};
use cds_heap::{OrderedF64, TwoLevelHeap};
use cds_topo::penalty::beta;
use cds_topo::{BifurcationConfig, EmbeddedTree, Evaluation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A cost-distance Steiner tree instance (paper Eq. (1) + (3)).
#[derive(Debug, Clone, Copy)]
pub struct Instance<'a> {
    /// The global routing graph.
    pub graph: &'a Graph,
    /// Congestion cost `c(e)` per edge.
    pub cost: &'a [f64],
    /// Delay `d(e)` per edge.
    pub delay: &'a [f64],
    /// The net's root (source) vertex `π(r)`.
    pub root: VertexId,
    /// Sink positions `π(s)`.
    pub sink_vertices: &'a [VertexId],
    /// Sink delay weights `w(s)` (from Lagrangean relaxation in the
    /// router; any non-negative values standalone).
    pub weights: &'a [f64],
    /// Bifurcation penalty configuration (`d_bif`, `η`).
    pub bif: BifurcationConfig,
}

/// Toggles for the practical enhancements of §III.
#[derive(Clone, Copy)]
pub struct SolverOptions<'a> {
    /// §III-A: discount existing tree components (reuse tree edges free
    /// of connection cost; searches start from whole components).
    pub discount_components: bool,
    /// §III-C: goal-oriented search with this future cost. `None` means
    /// plain Dijkstra.
    pub future: Option<&'a dyn FutureCost>,
    /// §III-D: re-embed the new Steiner vertex on the found path instead
    /// of picking a random endpoint.
    pub better_steiner: bool,
    /// §III-E: subtract the guaranteed future saving `η·d_bif·w(u)` from
    /// root connection penalties.
    pub encourage_root: bool,
    /// RNG seed for the randomized Steiner placement.
    pub seed: u64,
    /// Record a per-merge trace (for the Fig. 3 reproduction).
    pub record_trace: bool,
}

impl std::fmt::Debug for SolverOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverOptions")
            .field("discount_components", &self.discount_components)
            .field("future", &self.future.is_some())
            .field("better_steiner", &self.better_steiner)
            .field("encourage_root", &self.encourage_root)
            .field("seed", &self.seed)
            .field("record_trace", &self.record_trace)
            .finish()
    }
}

impl Default for SolverOptions<'_> {
    fn default() -> Self {
        SolverOptions {
            discount_components: true,
            future: None,
            better_steiner: true,
            encourage_root: true,
            seed: 0x5eed,
            record_trace: false,
        }
    }
}

impl<'a> SolverOptions<'a> {
    /// The plain Section-II algorithm: no enhancements, matching the
    /// theoretical analysis.
    pub fn base() -> Self {
        SolverOptions {
            discount_components: false,
            future: None,
            better_steiner: false,
            encourage_root: false,
            seed: 0x5eed,
            record_trace: false,
        }
    }

    /// All enhancements on, with the given future cost (§III-C).
    pub fn enhanced(future: &'a dyn FutureCost) -> Self {
        SolverOptions { future: Some(future), ..SolverOptions::default() }
    }
}

/// One merge of the run (the Fig. 3 trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeEvent {
    /// Two sink-side terminals merged into a new Steiner terminal.
    SinkSink {
        /// Merge index (the `i` of Algorithm 1).
        iteration: usize,
        /// Vertex of the initiating terminal `u`.
        u_vertex: VertexId,
        /// Vertex of the found terminal `v`.
        v_vertex: VertexId,
        /// Chosen position of the new Steiner terminal.
        steiner_vertex: VertexId,
        /// The committed `L(u, v)`.
        l_value: f64,
        /// Length of the connecting path in edges.
        path_edges: usize,
    },
    /// A terminal connected to the root component.
    RootConnect {
        /// Merge index.
        iteration: usize,
        /// Vertex of the connected terminal.
        u_vertex: VertexId,
        /// The committed `L(u, r)`.
        l_value: f64,
        /// Length of the connecting path in edges.
        path_edges: usize,
    },
}

/// Counters for the complexity experiments (Theorem 1 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Vertices permanently labelled over all searches.
    pub settled: usize,
    /// Heap pushes (label creations/improvements).
    pub pushed: usize,
    /// Merges performed (= `|S|`).
    pub merges: usize,
}

/// Everything `solve` returns.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The embedded Steiner tree.
    pub tree: EmbeddedTree,
    /// Objective breakdown of `tree` (Eq. (1) + (3)).
    pub evaluation: Evaluation,
    /// Work counters.
    pub stats: SolveStats,
    /// Per-merge trace (empty unless requested).
    pub trace: Vec<MergeEvent>,
}

/// Runs the cost-distance algorithm on `inst`.
///
/// # Panics
///
/// Panics if the instance has no sinks, mismatched slices, negative
/// weights, or if some sink is disconnected from the rest of the graph.
pub fn solve(inst: &Instance<'_>, opts: &SolverOptions<'_>) -> SolveResult {
    assert!(!inst.sink_vertices.is_empty(), "a net needs at least one sink");
    assert_eq!(inst.sink_vertices.len(), inst.weights.len(), "one weight per sink");
    assert!(inst.weights.iter().all(|&w| w >= 0.0), "negative delay weight");
    assert_eq!(inst.cost.len(), inst.graph.num_edges(), "one cost per edge");
    assert_eq!(inst.delay.len(), inst.graph.num_edges(), "one delay per edge");
    let mut state = State::new(inst, opts);
    while state.active_count > 0 {
        let cand = state.run_until_candidate();
        state.commit(cand);
    }
    let root_slot = state.root_slot;
    let root_rep = state.dsu.find(root_slot);
    let edges = state.terminals[root_rep]
        .comp
        .as_ref()
        .expect("root component lives at its representative")
        .edges
        .clone();
    let tree = assemble_tree(inst.graph, inst.root, inst.sink_vertices, &edges);
    debug_assert_eq!(
        tree.validate(inst.graph, inst.sink_vertices.len()),
        Ok(()),
        "assembled tree must be valid"
    );
    let evaluation = tree.evaluate(inst.cost, inst.delay, inst.weights, &inst.bif);
    SolveResult { tree, evaluation, stats: state.stats, trace: state.trace }
}

struct Terminal {
    vertex: VertexId,
    weight: f64,
    alive: bool,
    /// Component data; present only at DSU representatives.
    comp: Option<Component>,
    /// Heap search id, while the terminal is actively searching.
    sid: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// searching terminal
    u: TerminalId,
    /// terminal slot whose component was entered (resolve via DSU)
    target: TerminalId,
    /// the vertex where the connection was made
    via: VertexId,
    /// `g` value of `via` in u's search (stable once settled)
    g: f64,
}

struct State<'a, 'b> {
    inst: &'a Instance<'a>,
    opts: &'a SolverOptions<'b>,
    terminals: Vec<Terminal>,
    root_slot: TerminalId,
    dsu: Dsu,
    heap: TwoLevelHeap,
    searches: Vec<Option<Search>>,
    /// vertex → terminal slots whose components contain it (stale slots
    /// resolved through the DSU at query time)
    vertex_slots: HashMap<VertexId, Vec<TerminalId>>,
    candidates: BinaryHeap<Reverse<(OrderedF64, usize)>>,
    cand_store: Vec<Candidate>,
    /// For root-component vertices: total already-routed sink weight
    /// downstream (rebuilt after every root merge).
    root_downstream: HashMap<VertexId, f64>,
    active_count: usize,
    total_active_weight: f64,
    rng: StdRng,
    stats: SolveStats,
    trace: Vec<MergeEvent>,
    no_future: NoFutureCost,
}

impl<'a, 'b> State<'a, 'b> {
    fn new(inst: &'a Instance<'a>, opts: &'a SolverOptions<'b>) -> Self {
        let mut state = State {
            inst,
            opts,
            terminals: Vec::new(),
            root_slot: 0,
            dsu: Dsu::default(),
            heap: TwoLevelHeap::new(),
            searches: Vec::new(),
            vertex_slots: HashMap::new(),
            candidates: BinaryHeap::new(),
            cand_store: Vec::new(),
            root_downstream: HashMap::new(),
            active_count: 0,
            total_active_weight: 0.0,
            rng: StdRng::seed_from_u64(opts.seed),
            stats: SolveStats::default(),
            trace: Vec::new(),
            no_future: NoFutureCost,
        };
        // sink terminals
        for (i, (&v, &w)) in inst.sink_vertices.iter().zip(inst.weights).enumerate() {
            let slot = state.dsu.push();
            debug_assert_eq!(slot, i);
            state.terminals.push(Terminal {
                vertex: v,
                weight: w,
                alive: true,
                comp: Some(Component::singleton(v, vec![(v, w)])),
                sid: None,
            });
            state.vertex_slots.entry(v).or_default().push(slot);
            state.active_count += 1;
            state.total_active_weight += w;
        }
        // root terminal
        let root_slot = state.dsu.push();
        state.root_slot = root_slot;
        state.terminals.push(Terminal {
            vertex: inst.root,
            weight: 0.0,
            alive: true,
            comp: Some(Component::singleton(inst.root, Vec::new())),
            sid: None,
        });
        state.vertex_slots.entry(inst.root).or_default().push(root_slot);
        // start one search per sink
        for i in 0..inst.sink_vertices.len() {
            state.start_search(i);
        }
        state
    }

    fn future(&self) -> &dyn FutureCost {
        self.opts.future.unwrap_or(&self.no_future)
    }

    /// `b(u, v)` of Eq. (5) for a candidate, under the *current* weights.
    ///
    /// For root-component arrivals the paper's `β(w(u), w(S_i∖u))` prices
    /// the *future* siblings; we additionally price the *already routed*
    /// sinks downstream of the tap vertex (the bifurcation they would
    /// suffer is fully determined), taking the larger of the two — this
    /// is what keeps taps off critical trunks (Fig. 1).
    fn b_value(&mut self, u: TerminalId, target_rep: TerminalId, via: VertexId) -> f64 {
        let w_u = self.terminals[u].weight;
        if target_rep == self.dsu.find(self.root_slot) {
            let rest = (self.total_active_weight - w_u).max(0.0);
            let down = self.root_downstream.get(&via).copied().unwrap_or(0.0);
            let mut b = beta(w_u, rest, &self.inst.bif)
                .max(beta(w_u, down, &self.inst.bif));
            if self.opts.encourage_root {
                // §III-E: connecting now saves at least η·d_bif·w(u) later
                b -= self.inst.bif.eta * self.inst.bif.dbif * w_u;
            }
            b.max(0.0)
        } else {
            beta(w_u, self.terminals[target_rep].weight, &self.inst.bif)
        }
    }

    /// Starts (or restarts) the Dijkstra of terminal `slot`.
    fn start_search(&mut self, slot: TerminalId) {
        let t = &self.terminals[slot];
        let mut search = Search::new(slot, t.weight, t.vertex);
        let sid = self.heap.add_search();
        // Seeds (§III-A): every component vertex is a possible exit; its
        // price is the weighted tree delay the component's sinks incur if
        // the connection enters there — Σ_q w(q)·d_tree(y, q). For a
        // fresh sink this is the paper's plain seeding; for merged
        // components it keeps critical sinks near cheap exits instead of
        // charging all weight at the Steiner terminal's position.
        // Without discounting, just the terminal position (§II).
        let w = search.weight;
        let mut seeds: Vec<(VertexId, f64)> = if self.opts.discount_components {
            let rep = self.dsu.find(slot);
            let comp = self.terminals[rep].comp.as_ref().expect("live component");
            // raw tree delays from the terminal position, for §III-D
            for (v, raw) in comp.tree_delays(self.inst.graph, self.inst.delay, t.vertex) {
                search.seed_raw_delay.insert(v, raw);
            }
            comp.weighted_exit_delay(self.inst.graph, self.inst.delay)
                .into_iter()
                .collect()
        } else {
            search.seed_raw_delay.insert(t.vertex, 0.0);
            vec![(t.vertex, 0.0)]
        };
        seeds.sort_unstable_by_key(|&(v, _)| v); // determinism
        for &(v, offset) in &seeds {
            search.dist.insert(v, offset);
            let h = self.future().bound_nearest(v, w);
            self.heap.push(sid, v, offset + h);
            self.stats.pushed += 1;
        }
        self.terminals[slot].sid = Some(sid);
        if self.searches.len() <= sid as usize {
            self.searches.resize_with(sid as usize + 1, || None);
        }
        self.searches[sid as usize] = Some(search);
    }

    /// Expands searches until the best candidate provably minimizes
    /// `L(u, v)`, then returns it.
    ///
    /// # Panics
    ///
    /// Panics if the searches run dry without any candidate (disconnected
    /// instance).
    fn run_until_candidate(&mut self) -> Candidate {
        loop {
            let best = self.peek_valid_candidate();
            let heap_min = self.heap.peek_key();
            match (best, heap_min) {
                (Some((cv, id)), Some(hm)) if cv <= hm + 1e-12 => {
                    return self.take_candidate(id);
                }
                (Some(_), Some(_)) | (None, Some(_)) => self.expand_once(),
                (Some((_, id)), None) => return self.take_candidate(id),
                (None, None) => panic!("instance is disconnected: searches exhausted"),
            }
        }
    }

    fn take_candidate(&mut self, id: usize) -> Candidate {
        // remove it from the heap top (it is guaranteed to be on top)
        let Reverse((_, top)) = self.candidates.pop().expect("candidate present");
        debug_assert_eq!(top, id);
        self.cand_store[id]
    }

    /// Lazily revalidates the candidate heap: recompute values under the
    /// current component structure and weights, dropping dead entries.
    /// Returns the best (value, id) without removing it.
    fn peek_valid_candidate(&mut self) -> Option<(f64, usize)> {
        loop {
            let &Reverse((val, id)) = self.candidates.peek()?;
            let cand = self.cand_store[id];
            // searching terminal must still be alive and searching
            if !self.terminals[cand.u].alive || self.terminals[cand.u].sid.is_none() {
                self.candidates.pop();
                continue;
            }
            let target_rep = self.dsu.find(cand.target);
            let u_rep = self.dsu.find(cand.u);
            if target_rep == u_rep {
                self.candidates.pop(); // already in the same component
                continue;
            }
            let fresh = cand.g + self.b_value(cand.u, target_rep, cand.via);
            if (fresh - val.get()).abs() <= 1e-12 {
                return Some((val.get(), id));
            }
            // value drifted (weights changed by merges): reinsert
            self.candidates.pop();
            self.candidates.push(Reverse((OrderedF64::new(fresh), id)));
        }
    }

    fn push_candidate(&mut self, u: TerminalId, target: TerminalId, via: VertexId, g: f64) {
        let target_rep = self.dsu.find(target);
        if target_rep == self.dsu.find(u) {
            return;
        }
        let val = g + self.b_value(u, target_rep, via);
        let id = self.cand_store.len();
        self.cand_store.push(Candidate { u, target: target_rep, via, g });
        self.candidates.push(Reverse((OrderedF64::new(val), id)));
    }

    /// Pops one label from the two-level heap, settles it, records
    /// arrivals, relaxes neighbours.
    fn expand_once(&mut self) {
        let Some((sid, x, _key)) = self.heap.pop() else { return };
        let search = self.searches[sid as usize].as_mut().expect("live search");
        if search.settled.contains(&x) {
            return;
        }
        search.settled.insert(x);
        let g = search.dist[&x];
        let u = search.terminal;
        let w = search.weight;
        self.stats.settled += 1;

        // arrival at a foreign component?
        let mut arrived_foreign = false;
        if let Some(slots) = self.vertex_slots.get(&x) {
            let slots = slots.clone();
            let u_rep = self.dsu.find(u);
            for slot in slots {
                let rep = self.dsu.find(slot);
                if rep != u_rep {
                    arrived_foreign = true;
                    self.push_candidate(u, rep, x, g);
                }
            }
        }
        // §III-A: foreign tree vertices terminate the path — the
        // connection happens here, so tunnelling through is pointless
        // and would corrupt component disjointness.
        if arrived_foreign && self.opts.discount_components {
            return;
        }

        // relax neighbours with l_u = c + w·d
        let graph = self.inst.graph;
        let neighbors: &[(VertexId, EdgeId)] = graph.neighbors(x);
        for &(y, e) in neighbors {
            let search = self.searches[sid as usize].as_ref().expect("live search");
            if search.settled.contains(&y) {
                continue;
            }
            let len = self.inst.cost[e as usize] + w * self.inst.delay[e as usize];
            let cand_g = g + len;
            let cur = search.dist.get(&y).copied().unwrap_or(f64::INFINITY);
            if cand_g < cur {
                let h = self.future().bound_nearest(y, w);
                let sm = self.searches[sid as usize].as_mut().expect("live search");
                sm.dist.insert(y, cand_g);
                sm.parent.insert(y, (x, e));
                self.heap.push(sid, y, cand_g + h);
                self.stats.pushed += 1;
            }
        }
    }

    /// Commits a merge: joins components, places the Steiner terminal,
    /// retires/starts searches, rescans settled labels on new vertices.
    fn commit(&mut self, cand: Candidate) {
        let u = cand.u;
        let sid = self.terminals[u].sid.expect("searching terminal");
        let search = self.searches[sid as usize].as_ref().expect("live search");
        let (path, seed) = search.extract_path(cand.via);
        let path_vertices = search.path_vertices(self.inst.graph, &path, seed);
        // raw (unweighted) tree delay from π(u) to the path's seed — the
        // §III-D re-embedding needs it after the search is retired
        let seed_raw_u = search.seed_raw_delay.get(&seed).copied().unwrap_or(0.0);
        let target_rep = self.dsu.find(cand.target);
        let l_value = cand.g + self.b_value(u, target_rep, cand.via);
        let iteration = self.stats.merges;
        self.stats.merges += 1;

        // retire u's search
        self.heap.remove_search(sid);
        self.searches[sid as usize] = None;
        self.terminals[u].sid = None;

        let u_rep = self.dsu.find(u);
        let comp_u = self.terminals[u_rep].comp.take().expect("u's component");
        let comp_t = self.terminals[target_rep].comp.take().expect("target component");

        if target_rep == self.dsu.find(self.root_slot) {
            // root connection: the root component absorbs u
            let mut comp = comp_t;
            comp.absorb(comp_u, &path, self.inst.graph);
            self.terminals[u].alive = false;
            self.active_count -= 1;
            self.total_active_weight -= self.terminals[u].weight;
            // union keeps the root slot as representative
            self.dsu.union_into(u_rep, target_rep, self.root_slot);
            self.root_downstream = comp.downstream_weights(self.inst.graph, self.inst.root);
            self.terminals[self.root_slot].comp = Some(comp);
            if self.opts.record_trace {
                self.trace.push(MergeEvent::RootConnect {
                    iteration,
                    u_vertex: self.terminals[u].vertex,
                    l_value,
                    path_edges: path.len(),
                });
            }
            self.register_new_vertices(&path_vertices, self.root_slot);
        } else {
            // sink–sink merge: create the Steiner terminal s
            let v_slot = target_rep;
            let w_u = self.terminals[u].weight;
            let w_v = self.terminals[v_slot].weight;
            let pos = self.choose_steiner_position(
                u, v_slot, &path, &path_vertices, seed_raw_u, &comp_t,
            );
            let s = self.dsu.push();
            let mut comp = comp_u;
            comp.absorb(comp_t, &path, self.inst.graph);
            self.terminals[u].alive = false;
            self.terminals[v_slot].alive = false;
            if let Some(vsid) = self.terminals[v_slot].sid.take() {
                self.heap.remove_search(vsid);
                self.searches[vsid as usize] = None;
            }
            self.terminals.push(Terminal {
                vertex: pos,
                weight: w_u + w_v,
                alive: true,
                comp: Some(comp),
                sid: None,
            });
            debug_assert_eq!(s, self.terminals.len() - 1);
            self.dsu.union_into(u_rep, v_slot, s);
            self.active_count -= 1; // two die, one is born
            self.vertex_slots.entry(pos).or_default().push(s);
            if self.opts.record_trace {
                self.trace.push(MergeEvent::SinkSink {
                    iteration,
                    u_vertex: self.terminals[u].vertex,
                    v_vertex: self.terminals[v_slot].vertex,
                    steiner_vertex: pos,
                    l_value,
                    path_edges: path.len(),
                });
            }
            self.register_new_vertices(&path_vertices, s);
            self.start_search(s);
        }
    }

    /// Chooses the new Steiner terminal's position: §III-D re-embedding
    /// on the path when enabled, otherwise the randomized endpoint rule
    /// of §II (probability proportional to delay weight).
    fn choose_steiner_position(
        &mut self,
        u: TerminalId,
        v: TerminalId,
        path: &[EdgeId],
        path_vertices: &[VertexId],
        seed_raw_u: f64,
        comp_v: &Component,
    ) -> VertexId {
        let (w_u, w_v) = (self.terminals[u].weight, self.terminals[v].weight);
        if !self.opts.better_steiner {
            // random endpoint ∝ weight (heavier terminal more likely to
            // stay detour-free towards the root)
            let p_u = if w_u + w_v > 0.0 { w_u / (w_u + w_v) } else { 0.5 };
            return if self.rng.gen::<f64>() < p_u {
                self.terminals[u].vertex
            } else {
                self.terminals[v].vertex
            };
        }
        // §III-D: minimize  ĉ(Q) + (w_u+w_v)·d̂(Q) + Σ_y w_y·d(P[y, s])
        // over path positions s, with Q (the future s→root path)
        // estimated by future costs.
        let usearch_raw = seed_raw_u;
        // raw delay from π(v) to the join vertex inside v's component
        let join = *path_vertices.last().expect("path has vertices");
        let v_raw = comp_v
            .tree_delays(self.inst.graph, self.inst.delay, self.terminals[v].vertex)
            .get(&join)
            .copied()
            .unwrap_or(0.0);
        // cumulative raw d along the path from the seed side
        let mut cum = Vec::with_capacity(path_vertices.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for &e in path {
            acc += self.inst.delay[e as usize];
            cum.push(acc);
        }
        let total: f64 = acc;
        let w_sum = w_u + w_v;
        let fc = self.future();
        let root = self.inst.root;
        let mut best = (f64::INFINITY, path_vertices[0]);
        for (i, &p) in path_vertices.iter().enumerate() {
            let d_u = usearch_raw + cum[i];
            let d_v = v_raw + (total - cum[i]);
            let q_est = fc.bound_to(p, root, w_sum);
            let score = q_est + w_u * d_u + w_v * d_v;
            if score < best.0 {
                best = (score, p);
            }
        }
        best.1
    }

    /// After a merge, vertices of the connecting path join the component;
    /// other searches that already settled those vertices must get their
    /// arrival candidates now (their Dijkstras will not revisit them).
    /// Only relevant under §III-A: without discounting, targets are
    /// terminal positions only (already registered), and existing
    /// candidates stay valid through DSU resolution.
    fn register_new_vertices(&mut self, path_vertices: &[VertexId], owner: TerminalId) {
        if !self.opts.discount_components {
            return;
        }
        // keep goal-oriented future costs admissible: every path vertex
        // is a valid connection target from now on (§III-C feasibility)
        if let Some(fc) = self.opts.future {
            fc.note_new_targets(path_vertices);
        }
        for &v in path_vertices {
            self.vertex_slots.entry(v).or_default().push(owner);
        }
        // also the owner's terminal position (new Steiner terminals)
        let sids: Vec<u32> = self
            .terminals
            .iter()
            .filter_map(|t| t.sid)
            .collect();
        for sid in sids {
            let Some(search) = self.searches[sid as usize].as_ref() else { continue };
            let u = search.terminal;
            if self.dsu.find(u) == self.dsu.find(owner) {
                continue;
            }
            let mut hits: Vec<(VertexId, f64)> = Vec::new();
            for &v in path_vertices {
                if search.settled.contains(&v) {
                    hits.push((v, search.dist[&v]));
                }
            }
            for (v, g) in hits {
                self.push_candidate(u, owner, v, g);
            }
        }
    }
}
