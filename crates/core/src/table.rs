//! Epoch-stamped dense vertex tables — the solver's label storage.
//!
//! The solve path used to keep its per-search and per-component tables
//! in `HashMap<VertexId, _>`s: with goal-oriented search each table only
//! touches a small region, and *global* vertex ids made dense arrays
//! cost `O(t·n)` up front. Dense vertex addressing changed the
//! trade-off: every [`SteinerGraph`](cds_graph::SteinerGraph) backend —
//! including the zero-copy window view — exposes compact window-local
//! vertex ids, so a dense slab per table is window-sized, and an *epoch
//! stamp* per slot makes clearing `O(1)` (bump the epoch) instead of
//! `O(n)` (wipe the slab). Pooled in a
//! [`SolverWorkspace`](crate::SolverWorkspace), the slabs grow once to
//! the largest window a worker sees and then serve every subsequent
//! solve without touching the allocator.
//!
//! # Determinism
//!
//! A `VertexTable` has no iteration order of its own — it is only ever
//! *probed* by vertex id. Callers that need to enumerate members keep a
//! side `Vec` in a deterministic order (see
//! [`Component`](crate::components::Component)). That is what lets the
//! dense tables replace the hash maps bit-for-bit: the solver never
//! depended on map iteration order, and tables have none to depend on.

use cds_graph::VertexId;

/// A dense `VertexId → T` map with `O(1)` clear via epoch stamping.
///
/// Slabs grow on demand (`insert` resizes past the largest id seen), so
/// no capacity needs to be declared; a pooled table reused across solves
/// stops growing once it has seen the largest window.
///
/// ```
/// use cds_core::VertexTable;
/// let mut t: VertexTable<f64> = VertexTable::new();
/// t.insert(5, 1.5);
/// assert_eq!(t.get(5), Some(1.5));
/// assert_eq!(t.get(4), None);
/// t.clear(); // O(1)
/// assert_eq!(t.get(5), None);
/// ```
#[derive(Debug, Clone)]
pub struct VertexTable<T> {
    stamp: Vec<u32>,
    val: Vec<T>,
    epoch: u32,
}

impl<T: Copy + Default> Default for VertexTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> VertexTable<T> {
    /// An empty table; slabs grow on first use.
    pub fn new() -> Self {
        VertexTable { stamp: Vec::new(), val: Vec::new(), epoch: 1 }
    }

    /// Grows the slabs to cover ids `0..n` up front (optional — `insert`
    /// grows on demand).
    pub fn ensure(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
            self.val.resize(n, T::default());
        }
    }

    /// Forgets every entry in `O(1)` by bumping the epoch. The slabs
    /// keep their capacity (and their stale values, which are
    /// unreachable until re-stamped).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// The value at `v`, if present this epoch.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<T> {
        match self.stamp.get(v as usize) {
            Some(&s) if s == self.epoch => Some(self.val[v as usize]),
            _ => None,
        }
    }

    /// The value at `v`, or `default` if absent.
    #[inline]
    pub fn get_or(&self, v: VertexId, default: T) -> T {
        self.get(v).unwrap_or(default)
    }

    /// Mutable access to the value at `v`, if present this epoch —
    /// lets a caller update a field of a record in place with one
    /// probe instead of a `get`/`insert` pair.
    #[inline]
    pub fn get_mut(&mut self, v: VertexId) -> Option<&mut T> {
        match self.stamp.get(v as usize) {
            Some(&s) if s == self.epoch => Some(&mut self.val[v as usize]),
            _ => None,
        }
    }

    /// Whether `v` has a value this epoch.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        matches!(self.stamp.get(v as usize), Some(&s) if s == self.epoch)
    }

    /// Sets the value at `v` (inserting or overwriting).
    #[inline]
    pub fn insert(&mut self, v: VertexId, value: T) {
        let i = v as usize;
        if i >= self.stamp.len() {
            // cold-table growth; a warmed table (ensure() pre-sized to
            // the graph) never takes this branch in steady state. The
            // fill is `value` rather than `T::default()` — unreached
            // slots are epoch-masked, so the fill is never observable
            self.stamp.resize(i + 1, 0);
            self.val.resize(i + 1, value);
        }
        self.stamp[i] = self.epoch;
        self.val[i] = value;
    }

    /// Adds `delta` to the value at `v` (treating absent as `base`).
    #[inline]
    pub fn add(&mut self, v: VertexId, base: T, delta: T)
    where
        T: std::ops::Add<Output = T>,
    {
        let cur = self.get_or(v, base);
        self.insert(v, cur + delta);
    }
}

/// A dense vertex set with `O(1)` clear — a [`VertexTable`] without
/// values.
///
/// ```
/// use cds_core::VertexSet;
/// let mut s = VertexSet::new();
/// assert!(s.insert(3), "newly inserted");
/// assert!(!s.insert(3), "already present");
/// s.clear();
/// assert!(!s.contains(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VertexSet(VertexTable<()>);

impl VertexSet {
    /// An empty set; the slab grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `v`, returning `true` if it was not yet a member.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let fresh = !self.0.contains(v);
        if fresh {
            self.0.insert(v, ());
        }
        fresh
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.0.contains(v)
    }

    /// Forgets every member in `O(1)`.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_clear_roundtrip() {
        let mut t: VertexTable<f64> = VertexTable::new();
        assert_eq!(t.get(0), None);
        t.insert(10, 2.5);
        t.insert(0, -1.0);
        assert_eq!(t.get(10), Some(2.5));
        assert_eq!(t.get_or(3, 9.0), 9.0);
        assert!(t.contains(0) && !t.contains(1));
        t.insert(10, 3.5);
        assert_eq!(t.get(10), Some(3.5));
        t.clear();
        assert_eq!(t.get(10), None);
        assert!(!t.contains(0));
        // stale slab values are unreachable after the epoch bump
        t.insert(10, 1.0);
        assert_eq!(t.get(10), Some(1.0));
    }

    #[test]
    fn add_accumulates_from_base() {
        let mut t: VertexTable<f64> = VertexTable::new();
        t.add(4, 0.0, 1.5);
        t.add(4, 0.0, 2.0);
        assert_eq!(t.get(4), Some(3.5));
    }

    #[test]
    fn many_epochs_stay_disjoint() {
        let mut t: VertexTable<u32> = VertexTable::new();
        for epoch in 0..1000u32 {
            t.insert(7, epoch);
            assert_eq!(t.get(7), Some(epoch));
            assert_eq!(t.get(8), None);
            t.clear();
        }
    }

    #[test]
    fn set_semantics() {
        let mut s = VertexSet::new();
        assert!(s.insert(100));
        assert!(s.contains(100));
        assert!(!s.insert(100));
        s.clear();
        assert!(s.insert(100));
    }
}
