//! Optimal uniform repeater chains (Elmore delay).

use crate::tech::{Repeater, WireElectrical};

/// Result of optimizing a uniform repeater chain on one wire type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalChain {
    /// Optimal repeater spacing `ℓ*` (µm).
    pub segment_um: f64,
    /// Asymptotic delay per µm of the buffered wire (ps/µm) — the linear
    /// delay constant `d(e)/length(e)` of this layer/wire type.
    pub delay_per_um_ps: f64,
    /// Delay increase when one extra repeater input capacitance is
    /// attached at the middle of a segment (ps) — this wire type's
    /// contribution to `d_bif`.
    pub dbif_ps: f64,
}

/// Elmore-delay analysis of uniform repeater chains.
///
/// One segment of length `ℓ` driven by a repeater has Elmore delay
///
/// ```text
/// D(ℓ) = t_b + R_b·(c·ℓ + C_in) + r·ℓ·(c·ℓ/2 + C_in)
/// ```
///
/// so the per-unit delay `D(ℓ)/ℓ` is minimized at
/// `ℓ* = sqrt(2·(t_b + R_b·C_in)/(r·c))`, giving
/// `D(ℓ*)/ℓ* = R_b·c + r·C_in + sqrt(2·(t_b + R_b·C_in)·r·c)`.
#[derive(Debug, Clone, Copy)]
pub struct RepeaterChain {
    wire: WireElectrical,
    buf: Repeater,
}

impl RepeaterChain {
    /// Creates the analysis for a wire/repeater pair.
    pub fn new(wire: WireElectrical, buf: Repeater) -> Self {
        RepeaterChain { wire, buf }
    }

    /// Elmore delay of a single segment of length `len_um` (ps).
    pub fn segment_delay(&self, len_um: f64) -> f64 {
        let (r, c) = (self.wire.res_kohm_per_um, self.wire.cap_ff_per_um);
        let b = self.buf;
        b.t_intrinsic_ps
            + b.r_out_kohm * (c * len_um + b.c_in_ff)
            + r * len_um * (c * len_um / 2.0 + b.c_in_ff)
    }

    /// Per-unit delay of a chain with spacing `len_um` (ps/µm).
    pub fn per_unit_delay(&self, len_um: f64) -> f64 {
        self.segment_delay(len_um) / len_um
    }

    /// Delay increase of one segment when an extra capacitance `c_ff`
    /// is attached at distance `at_um` from the driving repeater: the
    /// Elmore increment is (upstream resistance) × (added capacitance).
    pub fn added_cap_delay(&self, at_um: f64, c_ff: f64) -> f64 {
        (self.buf.r_out_kohm + self.wire.res_kohm_per_um * at_um) * c_ff
    }

    /// Closed-form optimum. See [`RepeaterChain`] docs; `dbif_ps` adds the
    /// repeater's own input capacitance at the middle of an optimal
    /// segment, as prescribed by the paper.
    ///
    /// # Panics
    ///
    /// Panics if any electrical parameter is non-positive.
    pub fn optimize(wire: WireElectrical, buf: Repeater) -> OptimalChain {
        assert!(
            wire.res_kohm_per_um > 0.0
                && wire.cap_ff_per_um > 0.0
                && buf.c_in_ff > 0.0
                && buf.r_out_kohm > 0.0
                && buf.t_intrinsic_ps > 0.0,
            "electrical parameters must be positive"
        );
        let chain = RepeaterChain::new(wire, buf);
        let (r, c) = (wire.res_kohm_per_um, wire.cap_ff_per_um);
        let fixed = buf.t_intrinsic_ps + buf.r_out_kohm * buf.c_in_ff;
        let segment_um = (2.0 * fixed / (r * c)).sqrt();
        let delay_per_um_ps = buf.r_out_kohm * c + r * buf.c_in_ff + (2.0 * fixed * r * c).sqrt();
        let dbif_ps = chain.added_cap_delay(segment_um / 2.0, buf.c_in_ff);
        OptimalChain { segment_um, delay_per_um_ps, dbif_ps }
    }

    /// Numeric check of the optimum by golden-section search; used in
    /// tests to validate the closed form.
    pub fn optimize_numeric(&self, lo: f64, hi: f64) -> f64 {
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let (mut a, mut b) = (lo, hi);
        while b - a > 1e-9 * hi {
            let x1 = b - phi * (b - a);
            let x2 = a + phi * (b - a);
            if self.per_unit_delay(x1) < self.per_unit_delay(x2) {
                b = x2;
            } else {
                a = x1;
            }
        }
        (a + b) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn typical() -> (WireElectrical, Repeater) {
        (
            WireElectrical { res_kohm_per_um: 0.005, cap_ff_per_um: 0.2 },
            Repeater { c_in_ff: 5.0, r_out_kohm: 1.0, t_intrinsic_ps: 20.0 },
        )
    }

    #[test]
    fn closed_form_matches_numeric() {
        let (w, b) = typical();
        let opt = RepeaterChain::optimize(w, b);
        let numeric = RepeaterChain::new(w, b).optimize_numeric(1.0, 10_000.0);
        assert!((opt.segment_um - numeric).abs() / numeric < 1e-5);
        let chain = RepeaterChain::new(w, b);
        assert!((chain.per_unit_delay(opt.segment_um) - opt.delay_per_um_ps).abs() < 1e-9);
    }

    #[test]
    fn optimum_beats_neighbours() {
        let (w, b) = typical();
        let opt = RepeaterChain::optimize(w, b);
        let chain = RepeaterChain::new(w, b);
        for f in [0.5, 0.9, 1.1, 2.0] {
            assert!(
                chain.per_unit_delay(opt.segment_um) <= chain.per_unit_delay(opt.segment_um * f)
            );
        }
    }

    #[test]
    fn dbif_is_midpoint_elmore_increment() {
        let (w, b) = typical();
        let opt = RepeaterChain::optimize(w, b);
        let expect = (b.r_out_kohm + w.res_kohm_per_um * opt.segment_um / 2.0) * b.c_in_ff;
        assert!((opt.dbif_ps - expect).abs() < 1e-12);
        assert!(opt.dbif_ps > 0.0);
    }

    proptest! {
        /// The closed form is the true minimizer for random technologies.
        #[test]
        fn closed_form_is_optimal(
            r in 0.0005f64..0.05, c in 0.05f64..1.0,
            cin in 0.5f64..20.0, rout in 0.1f64..5.0, tb in 1.0f64..100.0
        ) {
            let w = WireElectrical { res_kohm_per_um: r, cap_ff_per_um: c };
            let b = Repeater { c_in_ff: cin, r_out_kohm: rout, t_intrinsic_ps: tb };
            let opt = RepeaterChain::optimize(w, b);
            let chain = RepeaterChain::new(w, b);
            for f in [0.25f64, 0.5, 0.8, 1.25, 2.0, 4.0] {
                prop_assert!(
                    chain.per_unit_delay(opt.segment_um) <=
                    chain.per_unit_delay(opt.segment_um * f) + 1e-9
                );
            }
        }
    }
}
