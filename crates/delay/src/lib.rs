#![forbid(unsafe_code)]
//! Linear delay model and repeater-chain calibration.
//!
//! Before buffering, routers estimate signal delay with a *linear* model:
//! the delay of a wire is proportional to its length, with a per-unit
//! constant that depends on layer and wire type (§I, \[4\], \[18\]). The
//! per-unit constants come from an *optimally spaced uniform repeater
//! chain* over that layer/wire type: inserting repeaters every `ℓ*`
//! micrometres makes delay asymptotically linear in length.
//!
//! The same calibration yields the bifurcation penalty `d_bif` of the
//! paper: "the delay increase when adding the input capacitance in the
//! middle of a single net, minimizing over all layers and wire types" —
//! in Elmore terms, the upstream resistance at the middle of an optimal
//! repeater segment times the added input capacitance.
//!
//! Units: resistance in kΩ, capacitance in fF, length in µm, delay in ps
//! (kΩ·fF = ps).
//!
//! # Examples
//!
//! ```
//! use cds_delay::{Repeater, WireElectrical, RepeaterChain};
//!
//! let wire = WireElectrical { res_kohm_per_um: 0.005, cap_ff_per_um: 0.2 };
//! let buf = Repeater { c_in_ff: 5.0, r_out_kohm: 1.0, t_intrinsic_ps: 20.0 };
//! let chain = RepeaterChain::optimize(wire, buf);
//! assert!(chain.segment_um > 0.0);
//! assert!(chain.delay_per_um_ps > 0.0);
//! assert!(chain.dbif_ps > buf.r_out_kohm * buf.c_in_ff); // upstream R > driver R
//! ```

pub mod chain;
pub mod tech;

pub use chain::{OptimalChain, RepeaterChain};
pub use tech::{DelayModel, LayerElectrical, Repeater, Technology, WireElectrical};
