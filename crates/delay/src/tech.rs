//! Technology description and the derived per-layer delay model.

use crate::chain::{OptimalChain, RepeaterChain};

/// Distributed RC of one wire type (per µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireElectrical {
    /// Resistance (kΩ/µm). Thin lower-layer wires are resistive; thick
    /// upper-layer wires are not.
    pub res_kohm_per_um: f64,
    /// Capacitance (fF/µm).
    pub cap_ff_per_um: f64,
}

/// Repeater (buffer) characteristics of the library's standard repeater.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Repeater {
    /// Input capacitance (fF).
    pub c_in_ff: f64,
    /// Output (driver) resistance (kΩ).
    pub r_out_kohm: f64,
    /// Intrinsic delay (ps).
    pub t_intrinsic_ps: f64,
}

/// Electrical description of one routing layer: the wire types it offers.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerElectrical {
    /// Wire width/spacing configurations; index = wire type id.
    pub wire_types: Vec<WireElectrical>,
}

/// A technology: layer electricals plus the repeater used for
/// calibration.
///
/// [`Technology::five_nm_like`] provides the synthetic 5nm-flavoured
/// technology used by the experiment harnesses: lower layers thin and
/// resistive, upper layers progressively thicker and faster, with a wide
/// wire type available from the middle layers up.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Per-layer electrical data, bottom-up.
    pub layers: Vec<LayerElectrical>,
    /// The repeater used for chain calibration.
    pub repeater: Repeater,
    /// Via resistance contribution expressed as extra delay (ps) per via.
    pub via_delay_ps: f64,
}

impl Technology {
    /// A synthetic technology with `num_layers` metal layers shaped like
    /// an advanced node: per-unit resistance drops roughly geometrically
    /// with height; layers ≥ 4 additionally offer a wide (2×) wire type
    /// that halves resistance for double capacity cost.
    pub fn five_nm_like(num_layers: u8) -> Self {
        assert!(num_layers >= 2, "need at least two layers");
        let mut layers = Vec::with_capacity(num_layers as usize);
        for l in 0..num_layers {
            // M0/M1 ~ 20 Ω/µm falling to ~1 Ω/µm on top layers.
            let res = 0.020 * 0.7f64.powi(i32::from(l));
            let cap = 0.20 + 0.01 * f64::from(l); // slightly rising C
            let mut wire_types = vec![WireElectrical { res_kohm_per_um: res, cap_ff_per_um: cap }];
            if l >= 4 {
                wire_types
                    .push(WireElectrical { res_kohm_per_um: res / 2.5, cap_ff_per_um: cap * 1.1 });
            }
            layers.push(LayerElectrical { wire_types });
        }
        Technology {
            layers,
            repeater: Repeater { c_in_ff: 5.0, r_out_kohm: 1.0, t_intrinsic_ps: 20.0 },
            via_delay_ps: 1.5,
        }
    }

    /// Calibrates the linear delay model for this technology.
    pub fn calibrate(&self, gcell_um: f64) -> DelayModel {
        assert!(gcell_um > 0.0, "gcell pitch must be positive");
        let chains: Vec<Vec<OptimalChain>> = self
            .layers
            .iter()
            .map(|layer| {
                layer
                    .wire_types
                    .iter()
                    .map(|&w| RepeaterChain::optimize(w, self.repeater))
                    .collect()
            })
            .collect();
        let dbif_ps = chains.iter().flatten().map(|c| c.dbif_ps).fold(f64::INFINITY, f64::min);
        DelayModel { gcell_um, chains, via_delay_ps: self.via_delay_ps, dbif_ps }
    }
}

/// The calibrated linear delay model: delay per gcell for every
/// (layer, wire type), via delay, and the global bifurcation penalty
/// `d_bif` (minimum over all layers and wire types, per the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    gcell_um: f64,
    chains: Vec<Vec<OptimalChain>>,
    via_delay_ps: f64,
    dbif_ps: f64,
}

impl DelayModel {
    /// Delay of one gcell of wire on (layer, wire type), in ps.
    ///
    /// # Panics
    ///
    /// Panics on an unknown layer or wire type.
    pub fn wire_delay_per_gcell(&self, layer: u8, wire_type: u8) -> f64 {
        self.chains[layer as usize][wire_type as usize].delay_per_um_ps * self.gcell_um
    }

    /// Optimal repeater spacing on (layer, wire type), in µm.
    pub fn segment_um(&self, layer: u8, wire_type: u8) -> f64 {
        self.chains[layer as usize][wire_type as usize].segment_um
    }

    /// Delay of one via, in ps.
    pub fn via_delay_ps(&self) -> f64 {
        self.via_delay_ps
    }

    /// The calibrated bifurcation penalty `d_bif` (ps).
    pub fn dbif_ps(&self) -> f64 {
        self.dbif_ps
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.chains.len()
    }

    /// Number of wire types on `layer`.
    pub fn num_wire_types(&self, layer: u8) -> usize {
        self.chains[layer as usize].len()
    }

    /// gcell pitch (µm).
    pub fn gcell_um(&self) -> f64 {
        self.gcell_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_layers_are_faster() {
        let tech = Technology::five_nm_like(8);
        let model = tech.calibrate(10.0);
        let d0 = model.wire_delay_per_gcell(0, 0);
        let d7 = model.wire_delay_per_gcell(7, 0);
        assert!(d7 < d0, "top layer must be faster: {d7} !< {d0}");
    }

    #[test]
    fn wide_wires_are_faster_than_default_on_same_layer() {
        let tech = Technology::five_nm_like(8);
        let model = tech.calibrate(10.0);
        for l in 4..8u8 {
            assert!(model.wire_delay_per_gcell(l, 1) < model.wire_delay_per_gcell(l, 0));
        }
    }

    #[test]
    fn dbif_is_min_over_layers() {
        let tech = Technology::five_nm_like(8);
        let model = tech.calibrate(10.0);
        let mut min = f64::INFINITY;
        for (l, layer) in tech.layers.iter().enumerate() {
            for &w in &layer.wire_types {
                min = min.min(RepeaterChain::optimize(w, tech.repeater).dbif_ps);
            }
            let _ = l;
        }
        assert_eq!(model.dbif_ps(), min);
        assert!(model.dbif_ps() > 0.0);
    }

    #[test]
    fn delay_scales_with_gcell_pitch() {
        let tech = Technology::five_nm_like(4);
        let m1 = tech.calibrate(1.0);
        let m10 = tech.calibrate(10.0);
        assert!(
            (m10.wire_delay_per_gcell(0, 0) - 10.0 * m1.wire_delay_per_gcell(0, 0)).abs() < 1e-9
        );
        // dbif is independent of the pitch
        assert_eq!(m1.dbif_ps(), m10.dbif_ps());
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn tiny_tech_panics() {
        let _ = Technology::five_nm_like(1);
    }
}
