#![forbid(unsafe_code)]
//! Optimal embedding of a Steiner topology into the routing graph.
//!
//! The baselines of §IV-A compute a topology in the plane and then embed
//! it "optimally into the global routing graph minimizing the
//! cost-distance objective (1) using a Dijkstra-style embedding as
//! described in \[13\]". That embedding is what this crate implements.
//!
//! # The DP
//!
//! The objective decomposes over arcs: if `W_a` is the total sink delay
//! weight below arc `a`, then
//!
//! ```text
//! cost(T) = Σ_a [ c(path_a) + W_a·d(path_a) ] + Σ_branches β(W_x, W_y)
//! ```
//!
//! because every sink's delay accumulates `d` along its root path, and the
//! λ-split penalties of Eq. (2) at a branching depend only on subtree
//! weights. The branch penalties are constants, so for a *fixed* topology
//! the optimal embedding is a bottom-up dynamic program: for each topology
//! node `v` compute the label vector
//!
//! ```text
//! L_v(x) = Σ_{children c} min_y [ L_c(y) + dist_{c + W_c·d}(x, y) ]
//! ```
//!
//! where each inner minimization is one multi-source Dijkstra seeded with
//! `L_c` (the "propagate" step — this is why layer and wire-type selection
//! falls out for free: the Dijkstra chooses among parallel edges).
//! `L_root(π(r))` plus the constant penalties is the optimum; paths are
//! recovered from the Dijkstra parent pointers.
//!
//! # Examples
//!
//! ```
//! use cds_embed::{embed_topology, EmbedEnv};
//! use cds_graph::GridSpec;
//! use cds_topo::{BifurcationConfig, Topology};
//! use cds_geom::Point;
//!
//! let grid = GridSpec::uniform(4, 4, 2).build();
//! let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
//!
//! let mut topo = Topology::new(Point::new(0, 0));
//! let s = topo.add_steiner(Point::new(2, 2), topo.root());
//! topo.add_sink(0, Point::new(3, 0), s);
//! topo.add_sink(1, Point::new(0, 3), s);
//!
//! let env = EmbedEnv {
//!     graph: grid.graph(),
//!     cost: &c,
//!     delay: &d,
//!     bif: BifurcationConfig::ZERO,
//! };
//! let root = grid.vertex_at(Point::new(0, 0));
//! let sinks = [grid.vertex_at(Point::new(3, 0)), grid.vertex_at(Point::new(0, 3))];
//! let tree = embed_topology(&env, &topo, root, &sinks, &[1.0, 1.0]);
//! tree.validate(grid.graph(), 2).unwrap();
//! ```

use cds_graph::dijkstra::{shortest_paths, Parent, SpTree};
use cds_graph::{Graph, SteinerGraph, VertexId};
use cds_topo::penalty::beta;
use cds_topo::{BifurcationConfig, EmbeddedTree, NodeId, NodeKind, Topology};

/// Everything the embedding needs to know about the routing graph state.
///
/// Generic over the [`SteinerGraph`] backend (default: a materialized
/// [`Graph`]); the router embeds directly over its zero-copy window
/// views.
pub struct EmbedEnv<'a, G: ?Sized = Graph> {
    /// The routing graph backend.
    pub graph: &'a G,
    /// Current congestion cost per edge (`c`).
    pub cost: &'a [f64],
    /// Delay per edge (`d`).
    pub delay: &'a [f64],
    /// Bifurcation penalty configuration.
    pub bif: BifurcationConfig,
}

impl<G: ?Sized> Clone for EmbedEnv<'_, G> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<G: ?Sized> Copy for EmbedEnv<'_, G> {}

impl<G: ?Sized> std::fmt::Debug for EmbedEnv<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbedEnv").field("bif", &self.bif).finish_non_exhaustive()
    }
}

/// Optimally embeds `topo` into the graph, returning the embedded tree.
///
/// `topo` must be [bifurcation compatible](Topology::is_bifurcation_compatible)
/// (call [`Topology::binarize`] first); its node positions are ignored —
/// only the *shape* matters. `root_vertex` and `sink_vertices` fix the
/// terminals; `weights` is indexed by sink index.
///
/// The returned tree reproduces the topology shape node-for-node, with
/// each arc carrying its optimal path.
///
/// # Panics
///
/// Panics if the topology is not bifurcation compatible, if a sink index
/// exceeds `weights`/`sink_vertices`, or if some terminal is unreachable.
pub fn embed_topology<G: SteinerGraph + ?Sized>(
    env: &EmbedEnv<'_, G>,
    topo: &Topology,
    root_vertex: VertexId,
    sink_vertices: &[VertexId],
    weights: &[f64],
) -> EmbeddedTree {
    assert!(topo.is_bifurcation_compatible(), "embed requires a bifurcation-compatible topology");
    let n = env.graph.num_vertices();
    let order = topo.dfs_order();
    let sub_w = topo.subtree_weights(weights);

    // Bottom-up labels; `pull_trees[v]` is the Dijkstra forest used to
    // pull node v's label to its parent.
    let mut labels: Vec<Option<Vec<f64>>> = vec![None; topo.num_nodes()];
    let mut pull_trees: Vec<Option<SpTree>> = vec![None; topo.num_nodes()];

    for &v in order.iter().rev() {
        // 1. combine children into L_v
        let mut lv = vec![0.0f64; n];
        let mut any_inf = vec![false; n];
        match topo.node_kind(v) {
            NodeKind::Sink(s) => {
                let pin = sink_vertices[s];
                lv = vec![f64::INFINITY; n];
                lv[pin as usize] = 0.0;
            }
            NodeKind::Root | NodeKind::Steiner => {
                for &c in topo.children(v) {
                    // INVARIANT: the traversal is children-before-parents, so every child label was computed in an earlier iteration.
                    let m = labels[c as usize].as_ref().expect("children processed before parents");
                    for x in 0..n {
                        if m[x].is_infinite() {
                            any_inf[x] = true;
                        } else {
                            lv[x] += m[x];
                        }
                    }
                }
                for x in 0..n {
                    if any_inf[x] {
                        lv[x] = f64::INFINITY;
                    }
                }
            }
        }
        // 2. pull L_v through one Dijkstra with metric c + W_v·d so the
        //    parent can read min_y [L_v(y) + dist(x, y)] at any x.
        if v != topo.root() {
            let w_arc = sub_w[v as usize];
            let sources: Vec<(VertexId, f64)> = lv
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .map(|(x, &d)| (x as VertexId, d))
                .collect();
            assert!(!sources.is_empty(), "subtree of node {v} is unreachable");
            let sp = shortest_paths(env.graph, &sources, |e| {
                env.cost[e as usize] + w_arc * env.delay[e as usize]
            });
            labels[v as usize] = Some(sp.dist.clone());
            pull_trees[v as usize] = Some(sp);
        } else {
            labels[v as usize] = Some(lv);
        }
    }

    // Top-down recovery of positions and paths.
    let mut out = EmbeddedTree::new(root_vertex);
    let mut map: Vec<Option<(NodeId, VertexId)>> = vec![None; topo.num_nodes()];
    map[topo.root() as usize] = Some((out.root(), root_vertex));
    for &v in &order {
        if v == topo.root() {
            continue;
        }
        // INVARIANT: the root was skipped just above, so v has a parent.
        let p = topo.parent(v).expect("non-root");
        // INVARIANT: order is root-first topological, so v's parent was placed in an earlier iteration.
        let (out_parent, parent_vertex) = map[p as usize].expect("parents placed first");
        // INVARIANT: the labelling pass stored a pull tree for every non-root node before this loop.
        let sp = pull_trees[v as usize].as_ref().expect("pull tree stored");
        // Walk from the parent's chosen vertex back towards the Dijkstra
        // seed. Parent pointers lead away from the seed, so following
        // them from `parent_vertex` already emits edges in
        // parent_vertex → seed order — exactly the arc direction we store.
        let mut edges = Vec::new();
        let mut cur = parent_vertex;
        while let Parent::Edge { from, edge } = sp.parent[cur as usize] {
            edges.push(edge);
            cur = from;
        }
        let seed = cur;
        let out_id = out.add_node(topo.node_kind(v), seed, out_parent, edges);
        map[v as usize] = Some((out_id, seed));
    }
    out
}

/// The optimal objective value of embedding `topo` — identical to
/// evaluating the tree returned by [`embed_topology`].
pub fn embed_value<G: SteinerGraph + ?Sized>(
    env: &EmbedEnv<'_, G>,
    topo: &Topology,
    root_vertex: VertexId,
    sink_vertices: &[VertexId],
    weights: &[f64],
) -> f64 {
    let tree = embed_topology(env, topo, root_vertex, sink_vertices, weights);
    tree.evaluate(env.cost, env.delay, weights, &env.bif).total
}

/// Sum of the constant λ-penalty costs of a topology:
/// `Σ_{binary nodes} β(W_left, W_right)`.
pub fn topology_penalty_cost(topo: &Topology, weights: &[f64], bif: &BifurcationConfig) -> f64 {
    let sub_w = topo.subtree_weights(weights);
    (0..topo.num_nodes() as NodeId)
        .filter(|&v| topo.children(v).len() == 2)
        .map(|v| {
            let kids = topo.children(v);
            beta(sub_w[kids[0] as usize], sub_w[kids[1] as usize], bif)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_geom::Point;
    use cds_graph::{EdgeAttrs, GraphBuilder, GridSpec};

    fn two_sink_topo() -> Topology {
        let mut t = Topology::new(Point::new(0, 0));
        let s = t.add_steiner(Point::new(0, 0), t.root());
        t.add_sink(0, Point::new(0, 0), s);
        t.add_sink(1, Point::new(0, 0), s);
        t
    }

    #[test]
    fn single_sink_is_shortest_path() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let mut topo = Topology::new(Point::new(0, 0));
        topo.add_sink(0, Point::new(4, 4), topo.root());
        let root = grid.vertex_at(Point::new(0, 0));
        let sink = grid.vertex_at(Point::new(4, 4));
        let w = [3.0];
        let tree = embed_topology(&env, &topo, root, &[sink], &w);
        tree.validate(g, 1).unwrap();
        let ev = tree.evaluate(&c, &d, &w, &BifurcationConfig::ZERO);
        // reference: plain Dijkstra with combined metric c + w·d
        let sp = cds_graph::dijkstra::shortest_distances(g, &[(root, 0.0)], |e| {
            c[e as usize] + 3.0 * d[e as usize]
        });
        assert!((ev.total - sp[sink as usize]).abs() < 1e-9);
    }

    #[test]
    fn steiner_point_is_chosen_optimally() {
        // Star: r(0) -- 1 -- 2 -- {3, 4}; the optimal Steiner node is
        // vertex 2, sharing the 0-1-2 trunk.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(1, 2, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 3, EdgeAttrs::wire(1.0, 1.0));
        b.add_edge(2, 4, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let (c, d) = (g.base_costs(), g.delays());
        let env = EmbedEnv { graph: &g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let topo = two_sink_topo();
        let tree = embed_topology(&env, &topo, 0, &[3, 4], &[1.0, 1.0]);
        tree.validate(&g, 2).unwrap();
        let ev = tree.evaluate(&c, &d, &[1.0, 1.0], &BifurcationConfig::ZERO);
        // connection = 4 edges, delays: both sinks at distance 3, weight 1
        assert!((ev.connection_cost - 4.0).abs() < 1e-9);
        assert!((ev.delay_cost - 6.0).abs() < 1e-9);
        // the Steiner node must have landed on vertex 2
        let steiner_vertices: Vec<_> = (0..tree.num_nodes() as u32)
            .filter(|&v| tree.node_kind(v) == NodeKind::Steiner)
            .map(|v| tree.vertex(v))
            .collect();
        assert_eq!(steiner_vertices, vec![2]);
    }

    #[test]
    fn weights_steer_delay_allocation() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let topo = two_sink_topo();
        let root = grid.vertex_at(Point::new(0, 0));
        let s_a = grid.vertex_at(Point::new(5, 0));
        let s_b = grid.vertex_at(Point::new(0, 5));
        let heavy = embed_topology(&env, &topo, root, &[s_a, s_b], &[50.0, 1.0]);
        let ev_h = heavy.evaluate(&c, &d, &[50.0, 1.0], &BifurcationConfig::ZERO);
        let light = embed_topology(&env, &topo, root, &[s_a, s_b], &[1.0, 50.0]);
        let ev_l = light.evaluate(&c, &d, &[1.0, 50.0], &BifurcationConfig::ZERO);
        // raising a sink's weight must never increase its achieved delay
        assert!(ev_h.sink_delays[0] <= ev_l.sink_delays[0] + 1e-9);
        assert!(ev_l.sink_delays[1] <= ev_h.sink_delays[1] + 1e-9);
    }

    #[test]
    fn embedding_shares_the_trunk() {
        // Two sinks in the same direction: the tree must share the trunk,
        // beating two independent shortest paths in connection cost.
        let grid = GridSpec::uniform(8, 3, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let topo = two_sink_topo();
        let root = grid.vertex_at(Point::new(0, 0));
        let a = grid.vertex_at(Point::new(7, 0));
        let bb = grid.vertex_at(Point::new(7, 2));
        let tree = embed_topology(&env, &topo, root, &[a, bb], &[0.001, 0.001]);
        let ev = tree.evaluate(&c, &d, &[0.001, 0.001], &BifurcationConfig::ZERO);
        let star_cost = 7.0 + 7.0 + 2.0 + 2.0; // two trunks + dogleg + vias
        assert!(ev.connection_cost < star_cost);
    }

    #[test]
    fn penalty_constant_matches_beta_sum() {
        let topo = two_sink_topo();
        let bif = BifurcationConfig::new(10.0, 0.25);
        let w = [4.0, 1.0];
        let want = cds_topo::penalty::beta(4.0, 1.0, &bif);
        assert!((topology_penalty_cost(&topo, &w, &bif) - want).abs() < 1e-12);
    }

    #[test]
    fn embedded_value_includes_penalties() {
        let grid = GridSpec::uniform(4, 4, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let bif = BifurcationConfig::new(5.0, 0.25);
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif };
        let topo = two_sink_topo();
        let root = grid.vertex_at(Point::new(0, 0));
        let sinks = [grid.vertex_at(Point::new(3, 0)), grid.vertex_at(Point::new(0, 3))];
        let w = [2.0, 1.0];
        let with = embed_value(&env, &topo, root, &sinks, &w);
        let env0 = EmbedEnv { bif: BifurcationConfig::ZERO, ..env };
        let without = embed_value(&env0, &topo, root, &sinks, &w);
        assert!(with > without, "penalties must increase the objective");
    }
}
