//! The Dreyfus–Wagner exact Steiner minimal tree algorithm.
//!
//! Classic subset dynamic program, `O(3^k·n + 2^k·(n log n + m))` for `k`
//! terminals: `dp[D][v]` is the cost of a minimum tree spanning terminal
//! subset `D` plus vertex `v`. Each subset is processed by merging pairs
//! of sub-subsets at every vertex and then relaxing through one
//! multi-source Dijkstra.
//!
//! Used as the optimality reference for the heuristics (RSMT on Hanan
//! grids, `w = 0` cost-distance sanity checks).

use cds_graph::dijkstra::{shortest_paths, Parent, SpTree};
use cds_graph::{EdgeId, Graph, VertexId};

/// An exact Steiner minimal tree: its total length and its edge set.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTreeResult {
    /// Total length w.r.t. the supplied edge lengths.
    pub cost: f64,
    /// The tree's edges (each exactly once).
    pub edges: Vec<EdgeId>,
}

/// Computes a minimum-length Steiner tree for `terminals` in `g` under
/// edge lengths `len`.
///
/// # Panics
///
/// Panics if `terminals` is empty, contains more than 16 vertices (the
/// subset DP would explode), or if the terminals are disconnected.
pub fn steiner_minimal_tree<F>(g: &Graph, terminals: &[VertexId], len: F) -> SteinerTreeResult
where
    F: Fn(EdgeId) -> f64 + Copy,
{
    let k = terminals.len();
    assert!(k >= 1, "need at least one terminal");
    assert!(k <= 16, "Dreyfus–Wagner is exponential in terminals; k ≤ 16");
    if k == 1 {
        return SteinerTreeResult { cost: 0.0, edges: Vec::new() };
    }
    let n = g.num_vertices();
    let full: u32 = (1u32 << k) - 1;

    // dp[mask] = SpTree whose dist is dp[mask][·]; merge_choice[mask][v] =
    // submask used when the merged seed value at v was created (0 = none).
    let mut dp: Vec<Option<SpTree>> = vec![None; (full + 1) as usize];
    let mut merge_choice: Vec<Vec<u32>> = vec![Vec::new(); (full + 1) as usize];

    // Singleton masks: plain Dijkstra from each terminal.
    for (i, &t) in terminals.iter().enumerate() {
        let mask = 1u32 << i;
        let sp = shortest_paths(g, &[(t, 0.0)], len);
        dp[mask as usize] = Some(sp);
        merge_choice[mask as usize] = vec![0; n];
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // merge step
        let mut merged = vec![f64::INFINITY; n];
        let mut choice = vec![0u32; n];
        let low = mask & mask.wrapping_neg(); // lowest set bit, canonical side
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            if sub & low != 0 {
                let other = mask ^ sub;
                // INVARIANT: sub and mask^sub are nonzero proper submasks of mask, and dp fills in ascending mask order, so both are already computed.
                let a = dp[sub as usize].as_ref().expect("smaller mask done");
                // INVARIANT: other = mask ^ sub is also a smaller mask, computed earlier.
                let b = dp[other as usize].as_ref().expect("smaller mask done");
                for v in 0..n {
                    let cand = a.dist[v] + b.dist[v];
                    if cand < merged[v] {
                        merged[v] = cand;
                        choice[v] = sub;
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        // relax step
        let sources: Vec<(VertexId, f64)> = merged
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .map(|(v, &c)| (v as VertexId, c))
            .collect();
        let sp = shortest_paths(g, &sources, len);
        dp[mask as usize] = Some(sp);
        merge_choice[mask as usize] = choice;
    }

    // Final answer: tree spanning all terminals = dp[full][t0].
    let t0 = terminals[0];
    // INVARIANT: the forward loop computed dp for every mask from 1 to full inclusive.
    let cost = dp[full as usize].as_ref().expect("full mask computed").dist[t0 as usize];
    assert!(cost.is_finite(), "terminals are disconnected");

    // Backtrack.
    let mut edges = Vec::new();
    let mut stack = vec![(full, t0)];
    while let Some((mask, v)) = stack.pop() {
        // INVARIANT: backtracking only pushes masks the forward pass computed (full and its recorded splits).
        let sp = dp[mask as usize].as_ref().expect("mask computed");
        // walk to the seed of this relaxation
        let mut cur = v;
        while let Parent::Edge { from, edge } = sp.parent[cur as usize] {
            edges.push(edge);
            cur = from;
        }
        if mask.count_ones() >= 2 {
            let sub = merge_choice[mask as usize][cur as usize];
            debug_assert!(sub != 0, "merged seed must have a split choice");
            stack.push((sub, cur));
            stack.push((mask ^ sub, cur));
        }
    }
    edges.sort_unstable();
    edges.dedup(); // seeds may coincide; a tree never repeats an edge
    SteinerTreeResult { cost, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder, GridSpec};
    use proptest::prelude::*;

    #[test]
    fn two_terminals_is_shortest_path() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        let g = grid.graph();
        let a = grid.vertex(0, 0, 0);
        let b = grid.vertex(4, 3, 0);
        let r = steiner_minimal_tree(g, &[a, b], |e| g.edge(e).base_cost);
        let d = cds_graph::dijkstra::shortest_distances(g, &[(a, 0.0)], |e| g.edge(e).base_cost);
        assert!((r.cost - d[b as usize]).abs() < 1e-9);
        let sum: f64 = r.edges.iter().map(|&e| g.edge(e).base_cost).sum();
        assert!((sum - r.cost).abs() < 1e-9);
    }

    #[test]
    fn star_center_is_found() {
        // Star graph: center 0, leaves 1, 2, 3 each at distance 1; the
        // Steiner tree of the three leaves uses the center, cost 3.
        let mut b = GraphBuilder::new(4);
        for leaf in 1..4 {
            b.add_edge(0, leaf, EdgeAttrs::wire(1.0, 1.0));
        }
        let g = b.build();
        let r = steiner_minimal_tree(&g, &[1, 2, 3], |e| g.edge(e).base_cost);
        assert_eq!(r.cost, 3.0);
        assert_eq!(r.edges.len(), 3);
    }

    #[test]
    fn steiner_beats_mst_on_classic_instance() {
        // Classic: 4 terminals at the corners of a cross; MST over the
        // metric closure is 3 sides of length 2 = 6; the Steiner tree via
        // the 2 interior points is shorter on the L1 grid (Hanan).
        let grid = GridSpec::uniform(3, 3, 2).build();
        let g = grid.graph();
        let ts = [
            grid.vertex(0, 0, 0),
            grid.vertex(2, 0, 0),
            grid.vertex(0, 2, 0),
            grid.vertex(2, 2, 0),
        ];
        let r = steiner_minimal_tree(g, &ts, |e| g.edge(e).base_cost);
        // L1 SMT of a 2×2 square = 6 wire units; vias add cost on this
        // 3D graph, so just check against brute MST bound of 6 + vias.
        assert!(r.cost <= 6.0 + 4.0 + 1e-9, "cost was {}", r.cost);
        let sum: f64 = r.edges.iter().map(|&e| g.edge(e).base_cost).sum();
        assert!((sum - r.cost).abs() < 1e-9, "edge sum consistent");
    }

    #[test]
    fn single_terminal_is_free() {
        let grid = GridSpec::uniform(2, 2, 1).build();
        let r = steiner_minimal_tree(grid.graph(), &[0], |e| grid.graph().edge(e).base_cost);
        assert_eq!(r.cost, 0.0);
        assert!(r.edges.is_empty());
    }

    /// The reported cost always equals the length of the returned edges,
    /// and the edge set connects all terminals (checked by union-find).
    fn verify_tree(g: &Graph, terminals: &[VertexId], r: &SteinerTreeResult) {
        let sum: f64 = r.edges.iter().map(|&e| g.edge(e).base_cost).sum();
        assert!((sum - r.cost).abs() < 1e-6, "edge sum {sum} vs cost {}", r.cost);
        // union-find connectivity
        let mut parent: Vec<u32> = (0..g.num_vertices() as u32).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &e in &r.edges {
            let ep = g.endpoints(e);
            let (a, b) = (find(&mut parent, ep.u), find(&mut parent, ep.v));
            assert_ne!(a, b, "cycle in Steiner tree");
            parent[a as usize] = b;
        }
        let root = find(&mut parent, terminals[0]);
        for &t in terminals {
            assert_eq!(find(&mut parent, t), root, "terminal disconnected");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// On random grids, DW output is a connected, acyclic edge set of
        /// matching cost, and never beats... never loses to the MST of
        /// the metric closure (a known upper bound).
        #[test]
        fn random_instances_are_valid_trees(
            seedpts in proptest::collection::hash_set((0u32..5, 0u32..4), 2..5)
        ) {
            let grid = GridSpec::uniform(5, 4, 2).build();
            let g = grid.graph();
            let ts: Vec<VertexId> = seedpts.iter().map(|&(x, y)| grid.vertex(x, y, 0)).collect();
            let r = steiner_minimal_tree(g, &ts, |e| g.edge(e).base_cost);
            verify_tree(g, &ts, &r);
            // metric-closure MST upper bound (Prim over terminals)
            let mut dists = Vec::new();
            for &t in &ts {
                dists.push(cds_graph::dijkstra::shortest_distances(
                    g, &[(t, 0.0)], |e| g.edge(e).base_cost));
            }
            let kk = ts.len();
            let mut in_tree = vec![false; kk];
            in_tree[0] = true;
            let mut mst = 0.0;
            for _ in 1..kk {
                let mut best = (f64::INFINITY, 0usize);
                for i in 0..kk {
                    if in_tree[i] { continue; }
                    for j in 0..kk {
                        if !in_tree[j] { continue; }
                        let dd = dists[j][ts[i] as usize];
                        if dd < best.0 { best = (dd, i); }
                    }
                }
                mst += best.0;
                in_tree[best.1] = true;
            }
            prop_assert!(r.cost <= mst + 1e-9, "DW {} must be ≤ MST {}", r.cost, mst);
        }
    }
}
