//! Exact cost-distance optimum for tiny instances by exhaustive topology
//! enumeration.
//!
//! Every cost-distance Steiner tree can be made bifurcation compatible
//! without changing its objective (paper §I), and a bifurcation-compatible
//! tree's *shape* is a rooted full binary tree whose leaves are the sinks,
//! hung under the root. There are `(2k−3)!!` such shapes on `k` sinks;
//! for each, `cds-embed` finds the optimal embedding (it is exact for a
//! fixed shape), so the minimum over shapes is the true optimum.
//! Feasible up to `k ≈ 6` (945 shapes) — exactly what the approximation
//! ratio property tests need.

use cds_embed::{embed_topology, EmbedEnv};
use cds_geom::Point;
use cds_graph::VertexId;
use cds_topo::{EmbeddedTree, NodeId, Topology};

/// A rooted full binary leaf-labelled tree shape.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    Leaf(usize),
    Node(Box<Shape>, Box<Shape>),
}

/// All rooted full binary tree shapes over leaf set `mask` (bit `i` =
/// sink `i`).
fn shapes(mask: u32) -> Vec<Shape> {
    debug_assert!(mask != 0);
    if mask.count_ones() == 1 {
        return vec![Shape::Leaf(mask.trailing_zeros() as usize)];
    }
    let mut out = Vec::new();
    let low = mask & mask.wrapping_neg();
    // enumerate unordered partitions by forcing the lowest sink left
    let mut sub = (mask - 1) & mask;
    while sub > 0 {
        if sub & low != 0 && sub != mask {
            let other = mask ^ sub;
            for l in shapes(sub) {
                for r in shapes(other) {
                    out.push(Shape::Node(Box::new(l.clone()), Box::new(r.clone())));
                }
            }
        }
        sub = (sub - 1) & mask;
    }
    out
}

fn add_shape(topo: &mut Topology, shape: &Shape, parent: NodeId) {
    match shape {
        Shape::Leaf(s) => {
            topo.add_sink(*s, Point::new(0, 0), parent);
        }
        Shape::Node(l, r) => {
            let v = topo.add_steiner(Point::new(0, 0), parent);
            add_shape(topo, l, v);
            add_shape(topo, r, v);
        }
    }
}

/// Enumerates all bifurcation-compatible topology shapes on `num_sinks`
/// sinks (positions are placeholders; only the shape matters for
/// embedding).
///
/// # Panics
///
/// Panics if `num_sinks` is 0 or greater than 8 — `(2k−3)!!` explodes.
pub fn enumerate_topologies(num_sinks: usize) -> Vec<Topology> {
    assert!((1..=8).contains(&num_sinks), "enumeration feasible for 1..=8 sinks");
    let full = (1u32 << num_sinks) - 1;
    shapes(full)
        .into_iter()
        .map(|sh| {
            let mut t = Topology::new(Point::new(0, 0));
            let root = t.root();
            add_shape(&mut t, &sh, root);
            t
        })
        .collect()
}

/// The exact optimum of the cost-distance instance (objective (1) with
/// delay model (3)) over all embedded Steiner trees, found by exhaustive
/// shape enumeration plus optimal embedding.
///
/// Returns the optimal value and one optimal tree.
///
/// # Panics
///
/// Panics for more than 8 sinks (see [`enumerate_topologies`]).
pub fn optimal_cost_distance(
    env: &EmbedEnv<'_>,
    root_vertex: VertexId,
    sink_vertices: &[VertexId],
    weights: &[f64],
) -> (f64, EmbeddedTree) {
    let mut best: Option<(f64, EmbeddedTree)> = None;
    for topo in enumerate_topologies(sink_vertices.len()) {
        let tree = embed_topology(env, &topo, root_vertex, sink_vertices, weights);
        let val = tree.evaluate(env.cost, env.delay, weights, &env.bif).total;
        if best.as_ref().is_none_or(|(b, _)| val < *b) {
            best = Some((val, tree));
        }
    }
    best.expect("at least one shape exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::GridSpec;
    use cds_topo::BifurcationConfig;

    #[test]
    fn shape_counts_are_double_factorials() {
        // (2k-3)!! for k = 1..5 → 1, 1, 3, 15, 105
        assert_eq!(enumerate_topologies(1).len(), 1);
        assert_eq!(enumerate_topologies(2).len(), 1);
        assert_eq!(enumerate_topologies(3).len(), 3);
        assert_eq!(enumerate_topologies(4).len(), 15);
        assert_eq!(enumerate_topologies(5).len(), 105);
    }

    #[test]
    fn all_enumerated_shapes_are_compatible_and_distinct() {
        let ts = enumerate_topologies(4);
        for t in &ts {
            t.validate().unwrap();
            assert!(t.is_bifurcation_compatible());
            assert_eq!(t.sink_nodes().len(), 4);
        }
    }

    #[test]
    fn optimum_single_sink_is_weighted_shortest_path() {
        let grid = GridSpec::uniform(4, 4, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif: BifurcationConfig::ZERO };
        let root = grid.vertex(0, 0, 0);
        let sink = grid.vertex(3, 3, 0);
        let (val, tree) = optimal_cost_distance(&env, root, &[sink], &[2.0]);
        tree.validate(g, 1).unwrap();
        let sp = cds_graph::dijkstra::shortest_distances(g, &[(root, 0.0)], |e| {
            c[e as usize] + 2.0 * d[e as usize]
        });
        assert!((val - sp[sink as usize]).abs() < 1e-9);
    }

    #[test]
    fn optimum_is_a_lower_bound_for_any_shape() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        let g = grid.graph();
        let (c, d) = (g.base_costs(), g.delays());
        let bif = BifurcationConfig::new(3.0, 0.25);
        let env = EmbedEnv { graph: g, cost: &c, delay: &d, bif };
        let root = grid.vertex(0, 0, 0);
        let sinks = [grid.vertex(4, 0, 0), grid.vertex(0, 4, 0), grid.vertex(4, 4, 0)];
        let w = [3.0, 1.0, 0.5];
        let (opt, tree) = optimal_cost_distance(&env, root, &sinks, &w);
        tree.validate(g, 3).unwrap();
        for topo in enumerate_topologies(3) {
            let v = cds_embed::embed_value(&env, &topo, root, &sinks, &w);
            assert!(opt <= v + 1e-9);
        }
    }
}
