#![forbid(unsafe_code)]
//! Exact reference algorithms for testing and calibration.
//!
//! Heuristics need ground truth. This crate provides two exact solvers
//! that are tractable on small instances:
//!
//! * [`steiner_minimal_tree`] — the Dreyfus–Wagner subset DP for minimum
//!   Steiner trees under arbitrary edge lengths (`O(3^k n + 2^k n log n)`).
//!   Validates the RSMT heuristics on Hanan grids and the `w = 0`
//!   degenerate case of the cost-distance objective.
//! * [`optimal_cost_distance`] — the true optimum of the cost-distance
//!   objective (1)+(3) by enumerating all `(2k−3)!!` bifurcation-compatible
//!   topology shapes and optimally embedding each. This is the reference
//!   against which the `O(log t)` approximation guarantee of the paper's
//!   algorithm is property-tested.
//!
//! # Examples
//!
//! ```
//! use cds_exact::steiner_minimal_tree;
//! use cds_graph::{GraphBuilder, EdgeAttrs};
//!
//! // star: terminals 1, 2, 3 around center 0
//! let mut b = GraphBuilder::new(4);
//! for leaf in 1..4 {
//!     b.add_edge(0, leaf, EdgeAttrs::wire(1.0, 1.0));
//! }
//! let g = b.build();
//! let smt = steiner_minimal_tree(&g, &[1, 2, 3], |e| g.edge(e).base_cost);
//! assert_eq!(smt.cost, 3.0); // uses the Steiner center
//! ```

pub mod dreyfus_wagner;
pub mod enumerate;

pub use dreyfus_wagner::{steiner_minimal_tree, SteinerTreeResult};
pub use enumerate::{enumerate_topologies, optimal_cost_distance};
