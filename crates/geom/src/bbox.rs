//! Axis-aligned bounding boxes over gcell points.

use crate::point::Point;

/// An axis-aligned rectangle, inclusive on all sides.
///
/// ```
/// use cds_geom::{BoundingBox, Point};
/// let bb = BoundingBox::of(&[Point::new(1, 5), Point::new(4, 2)]).unwrap();
/// assert_eq!(bb.half_perimeter(), 3 + 3);
/// assert!(bb.contains(Point::new(2, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundingBox {
    /// lower-left corner
    pub min: Point,
    /// upper-right corner
    pub max: Point,
}

impl BoundingBox {
    /// Bounding box of a single point.
    pub fn point(p: Point) -> Self {
        BoundingBox { min: p, max: p }
    }

    /// Smallest box containing all `points`; `None` when empty.
    pub fn of(points: &[Point]) -> Option<Self> {
        let mut it = points.iter();
        let first = *it.next()?;
        let mut bb = BoundingBox::point(first);
        for &p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width + height (the HPWL of the contained point set).
    pub fn half_perimeter(&self) -> i64 {
        i64::from(self.max.x - self.min.x) + i64::from(self.max.y - self.min.y)
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// L1 distance from `p` to the box (0 when inside).
    pub fn l1_dist_to(&self, p: Point) -> i64 {
        let dx = (i64::from(self.min.x) - i64::from(p.x)).max(0)
            + (i64::from(p.x) - i64::from(self.max.x)).max(0);
        let dy = (i64::from(self.min.y) - i64::from(p.y)).max(0)
            + (i64::from(p.y) - i64::from(self.max.y)).max(0);
        dx + dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn of_empty_is_none() {
        assert!(BoundingBox::of(&[]).is_none());
    }

    #[test]
    fn dist_inside_is_zero() {
        let bb = BoundingBox::of(&[Point::new(0, 0), Point::new(10, 10)]).unwrap();
        assert_eq!(bb.l1_dist_to(Point::new(5, 5)), 0);
        assert_eq!(bb.l1_dist_to(Point::new(12, 5)), 2);
        assert_eq!(bb.l1_dist_to(Point::new(-1, -1)), 2);
    }

    proptest! {
        #[test]
        fn contains_all_inputs(pts in proptest::collection::vec((-100i32..100, -100i32..100), 1..20)) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let bb = BoundingBox::of(&pts).unwrap();
            for &p in &pts {
                prop_assert!(bb.contains(p));
                prop_assert_eq!(bb.l1_dist_to(p), 0);
            }
        }
    }
}
