//! Hanan grid construction.
//!
//! Hanan's theorem: some rectilinear Steiner minimal tree uses only Steiner
//! points at intersections of horizontal and vertical lines through the
//! terminals. Exact RSMT algorithms therefore restrict their search to this
//! grid.

use crate::point::Point;

/// Distinct, sorted x and y coordinates of a terminal set.
///
/// ```
/// use cds_geom::{hanan_xs_ys, Point};
/// let (xs, ys) = hanan_xs_ys(&[Point::new(3, 1), Point::new(0, 1)]);
/// assert_eq!(xs, vec![0, 3]);
/// assert_eq!(ys, vec![1]);
/// ```
pub fn hanan_xs_ys(terminals: &[Point]) -> (Vec<i32>, Vec<i32>) {
    let mut xs: Vec<i32> = terminals.iter().map(|p| p.x).collect();
    let mut ys: Vec<i32> = terminals.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    (xs, ys)
}

/// All Hanan grid points of a terminal set, in row-major order.
///
/// The result has `|xs| * |ys|` points and always contains every terminal.
///
/// ```
/// use cds_geom::{hanan_grid, Point};
/// let g = hanan_grid(&[Point::new(0, 0), Point::new(2, 3)]);
/// assert!(g.contains(&Point::new(0, 3)));
/// assert!(g.contains(&Point::new(2, 0)));
/// ```
pub fn hanan_grid(terminals: &[Point]) -> Vec<Point> {
    let (xs, ys) = hanan_xs_ys(terminals);
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for &y in &ys {
        for &x in &xs {
            out.push(Point::new(x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_of_collinear_points_is_the_points() {
        let pts = [Point::new(0, 5), Point::new(3, 5), Point::new(9, 5)];
        assert_eq!(hanan_grid(&pts), pts.to_vec());
    }

    proptest! {
        #[test]
        fn grid_contains_terminals_and_has_product_size(
            pts in proptest::collection::vec((-20i32..20, -20i32..20), 1..12)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let (xs, ys) = hanan_xs_ys(&pts);
            let grid = hanan_grid(&pts);
            prop_assert_eq!(grid.len(), xs.len() * ys.len());
            for &p in &pts {
                prop_assert!(grid.contains(&p));
            }
        }
    }
}
