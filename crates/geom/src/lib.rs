#![forbid(unsafe_code)]
//! Planar geometry primitives for global routing.
//!
//! Global routing operates on a grid of *gcells*; pins and Steiner points
//! live at integer gcell coordinates. This crate provides the [`Point`]
//! type, the L1 (rectilinear) metric used throughout the paper's baselines,
//! bounding boxes, and the Hanan grid construction used by exact
//! rectilinear Steiner tree algorithms.
//!
//! # Examples
//!
//! ```
//! use cds_geom::{Point, l1_dist, hanan_grid};
//!
//! let a = Point::new(0, 0);
//! let b = Point::new(3, 4);
//! assert_eq!(l1_dist(a, b), 7);
//!
//! let grid = hanan_grid(&[a, b, Point::new(3, 0)]);
//! assert_eq!(grid.len(), 4); // 2 distinct xs * 2 distinct ys
//! ```

pub mod bbox;
pub mod hanan;
pub mod point;

pub use bbox::BoundingBox;
pub use hanan::{hanan_grid, hanan_xs_ys};
pub use point::{l1_dist, Point};

/// Half-perimeter wirelength of a set of points — the classic lower bound
/// on the length of any rectilinear tree connecting them.
///
/// Returns 0 for fewer than two points.
///
/// ```
/// use cds_geom::{hpwl, Point};
/// let pts = [Point::new(0, 0), Point::new(2, 5), Point::new(4, 1)];
/// assert_eq!(hpwl(&pts), 4 + 5);
/// ```
pub fn hpwl(points: &[Point]) -> i64 {
    match BoundingBox::of(points) {
        Some(bb) => bb.half_perimeter(),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_empty_and_single() {
        assert_eq!(hpwl(&[]), 0);
        assert_eq!(hpwl(&[Point::new(5, 5)]), 0);
    }

    #[test]
    fn hpwl_is_lower_bound_on_star() {
        // HPWL <= sum of distances from any point to all others.
        let pts = [Point::new(0, 0), Point::new(10, 3), Point::new(4, 8), Point::new(7, 1)];
        let star: i64 = pts.iter().map(|&p| l1_dist(pts[0], p)).sum();
        assert!(hpwl(&pts) <= star);
    }
}
