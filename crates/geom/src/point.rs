//! Integer gcell coordinates and the rectilinear metric.

use std::fmt;

/// A point on the gcell grid (planar; layers are handled by `cds-graph`).
///
/// Coordinates are `i32` gcell indices. Distances are returned as `i64`
/// so that sums over many edges cannot overflow.
///
/// ```
/// use cds_geom::Point;
/// let p = Point::new(2, 3);
/// assert_eq!((p.x, p.y), (2, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// gcell column
    pub x: i32,
    /// gcell row
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// L1 distance to `other`.
    ///
    /// ```
    /// use cds_geom::Point;
    /// assert_eq!(Point::new(0, 0).l1(Point::new(-2, 3)), 5);
    /// ```
    pub fn l1(self, other: Point) -> i64 {
        l1_dist(self, other)
    }

    /// Component-wise clamp of `self` into the axis-aligned rectangle
    /// spanned by `a` and `b` (in either order). This is the nearest point
    /// to `self` (in L1) on that rectangle, used when projecting a sink
    /// onto a tree edge's bounding box (Prim–Dijkstra Steiner insertion).
    ///
    /// ```
    /// use cds_geom::Point;
    /// let p = Point::new(5, -1).clamp_to_rect(Point::new(0, 0), Point::new(3, 3));
    /// assert_eq!(p, Point::new(3, 0));
    /// ```
    pub fn clamp_to_rect(self, a: Point, b: Point) -> Point {
        let (lox, hix) = (a.x.min(b.x), a.x.max(b.x));
        let (loy, hiy) = (a.y.min(b.y), a.y.max(b.y));
        Point::new(self.x.clamp(lox, hix), self.y.clamp(loy, hiy))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

/// L1 (Manhattan) distance between two points.
///
/// ```
/// use cds_geom::{l1_dist, Point};
/// assert_eq!(l1_dist(Point::new(1, 1), Point::new(4, -3)), 7);
/// ```
pub fn l1_dist(a: Point, b: Point) -> i64 {
    (i64::from(a.x) - i64::from(b.x)).abs() + (i64::from(a.y) - i64::from(b.y)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (7, -2).into();
        assert_eq!(p.to_string(), "(7, -2)");
    }

    #[test]
    fn clamp_inside_is_identity() {
        let p = Point::new(1, 1);
        assert_eq!(p.clamp_to_rect(Point::new(0, 0), Point::new(2, 2)), p);
    }

    proptest! {
        #[test]
        fn l1_is_a_metric(ax in -1000i32..1000, ay in -1000i32..1000,
                          bx in -1000i32..1000, by in -1000i32..1000,
                          cx in -1000i32..1000, cy in -1000i32..1000) {
            let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
            prop_assert_eq!(l1_dist(a, b), l1_dist(b, a));
            prop_assert!(l1_dist(a, b) >= 0);
            prop_assert_eq!(l1_dist(a, a), 0);
            prop_assert!(l1_dist(a, c) <= l1_dist(a, b) + l1_dist(b, c));
        }

        #[test]
        fn clamp_is_nearest_rect_point(px in -100i32..100, py in -100i32..100,
                                       ax in -50i32..50, ay in -50i32..50,
                                       bx in -50i32..50, by in -50i32..50) {
            let p = Point::new(px, py);
            let (a, b) = (Point::new(ax, ay), Point::new(bx, by));
            let q = p.clamp_to_rect(a, b);
            // q is inside the rectangle
            prop_assert!(q.x >= a.x.min(b.x) && q.x <= a.x.max(b.x));
            prop_assert!(q.y >= a.y.min(b.y) && q.y <= a.y.max(b.y));
            // and no corner is closer
            for corner in [a, b, Point::new(a.x, b.y), Point::new(b.x, a.y)] {
                prop_assert!(l1_dist(p, q) <= l1_dist(p, corner));
            }
        }
    }
}
