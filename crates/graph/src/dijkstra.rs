//! Single- and multi-source Dijkstra labelling.
//!
//! These routines back the topology embedding DP (`cds-embed`), landmark
//! future costs, the exact reference algorithms (`cds-exact`), and a pile
//! of tests. The core algorithm of the paper (`cds-core`) has its own
//! specialised simultaneous search and does not use this module.

use crate::graph::{EdgeId, VertexId};
use crate::steiner::SteinerGraph;
use cds_heap::IndexedBinaryHeap;

/// Predecessor record: how a vertex was first permanently labelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// A source vertex (or unreached).
    None,
    /// Reached from `from` over `edge`.
    Edge {
        /// predecessor vertex
        from: VertexId,
        /// edge taken
        edge: EdgeId,
    },
}

/// Result of a Dijkstra run: distances and the shortest-path forest.
#[derive(Debug, Clone)]
pub struct SpTree {
    /// dist\[v\] = shortest distance from the closest source; `INFINITY`
    /// if unreachable.
    pub dist: Vec<f64>,
    /// parent\[v\] = how v was labelled.
    pub parent: Vec<Parent>,
}

impl SpTree {
    /// Walks parents from `v` back to a source, returning the edges in
    /// source→`v` order. Empty when `v` is a source; `None` when
    /// unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<EdgeId>> {
        if self.dist[v as usize].is_infinite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Parent::Edge { from, edge } = self.parent[cur as usize] {
            edges.push(edge);
            cur = from;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Multi-source Dijkstra over non-negative edge lengths given by `len`,
/// over any [`SteinerGraph`] backend.
///
/// `sources` are (vertex, initial distance) pairs — seeding with nonzero
/// offsets is what the embedding DP needs. Runs to exhaustion.
///
/// # Panics
///
/// Panics if `len` returns a negative or NaN value.
pub fn shortest_paths<G, F>(g: &G, sources: &[(VertexId, f64)], len: F) -> SpTree
where
    G: SteinerGraph + ?Sized,
    F: Fn(EdgeId) -> f64,
{
    shortest_paths_until(g, sources, len, |_, _| false)
}

/// Like [`shortest_paths`] but stops as soon as `stop(vertex, dist)`
/// returns `true` for a permanently labelled vertex (that vertex *is*
/// labelled). Distances of unsettled vertices are tentative.
pub fn shortest_paths_until<G, F, S>(
    g: &G,
    sources: &[(VertexId, f64)],
    len: F,
    mut stop: S,
) -> SpTree
where
    G: SteinerGraph + ?Sized,
    F: Fn(EdgeId) -> f64,
    S: FnMut(VertexId, f64) -> bool,
{
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![Parent::None; n];
    let mut heap = IndexedBinaryHeap::new(n);
    for &(s, d0) in sources {
        assert!(d0 >= 0.0, "negative source offset");
        if d0 < dist[s as usize] {
            dist[s as usize] = d0;
            parent[s as usize] = Parent::None;
            heap.push(s, d0);
        }
    }
    let mut settled = vec![false; n];
    let mut nbrs = Vec::new();
    while let Some((v, dv)) = heap.pop() {
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        if stop(v, dv) {
            break;
        }
        g.neighbors_into(v, &mut nbrs);
        for &(w, e) in &nbrs {
            if settled[w as usize] {
                continue;
            }
            let le = len(e);
            assert!(le >= 0.0 && !le.is_nan(), "invalid edge length");
            let cand = dv + le;
            if cand < dist[w as usize] {
                dist[w as usize] = cand;
                parent[w as usize] = Parent::Edge { from: v, edge: e };
                heap.push(w, cand);
            }
        }
    }
    SpTree { dist, parent }
}

/// Convenience wrapper returning only distances.
pub fn shortest_distances<G, F>(g: &G, sources: &[(VertexId, f64)], len: F) -> Vec<f64>
where
    G: SteinerGraph + ?Sized,
    F: Fn(EdgeId) -> f64,
{
    shortest_paths(g, sources, len).dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeAttrs, Graph, GraphBuilder};
    use proptest::prelude::*;

    fn line(n: usize, costs: &[f64]) -> Graph {
        let mut b = GraphBuilder::new(n);
        for (i, &c) in costs.iter().enumerate() {
            b.add_edge(i as u32, i as u32 + 1, EdgeAttrs::wire(c, 1.0));
        }
        b.build()
    }

    #[test]
    fn line_distances() {
        let g = line(4, &[1.0, 2.0, 4.0]);
        let t = shortest_paths(&g, &[(0, 0.0)], |e| g.edge(e).base_cost);
        assert_eq!(t.dist, vec![0.0, 1.0, 3.0, 7.0]);
        assert_eq!(t.path_to(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(t.path_to(0).unwrap(), Vec::<EdgeId>::new());
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = line(5, &[1.0; 4]);
        let t = shortest_paths(&g, &[(0, 0.0), (4, 0.0)], |e| g.edge(e).base_cost);
        assert_eq!(t.dist, vec![0.0, 1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn source_offsets_respected() {
        let g = line(3, &[1.0, 1.0]);
        let t = shortest_paths(&g, &[(0, 5.0), (2, 0.0)], |e| g.edge(e).base_cost);
        assert_eq!(t.dist, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn early_stop_labels_target() {
        let g = line(5, &[1.0; 4]);
        let t = shortest_paths_until(&g, &[(0, 0.0)], |e| g.edge(e).base_cost, |v, _| v == 2);
        assert_eq!(t.dist[2], 2.0);
        // vertex 4 must not have been settled (distance still tentative/inf)
        assert!(t.dist[4].is_infinite());
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
        let g = b.build();
        let t = shortest_paths(&g, &[(0, 0.0)], |e| g.edge(e).base_cost);
        assert!(t.path_to(2).is_none());
    }

    proptest! {
        /// Triangle inequality of the computed distances over random
        /// graphs: dist[w] <= dist[v] + len(v, w) for every edge.
        #[test]
        fn relaxed_fixpoint(
            edges in proptest::collection::vec((0u32..15, 0u32..15, 0.1f64..10.0), 1..60)
        ) {
            let mut b = GraphBuilder::new(15);
            for &(u, v, c) in &edges {
                if u != v { b.add_edge(u, v, EdgeAttrs::wire(c, 1.0)); }
            }
            let g = b.build();
            let t = shortest_paths(&g, &[(0, 0.0)], |e| g.edge(e).base_cost);
            for e in g.edge_ids() {
                let ep = g.endpoints(e);
                let c = g.edge(e).base_cost;
                for (a, bb) in [(ep.u, ep.v), (ep.v, ep.u)] {
                    if t.dist[a as usize].is_finite() {
                        prop_assert!(t.dist[bb as usize] <= t.dist[a as usize] + c + 1e-9);
                    }
                }
            }
            // path costs match distances
            for v in 0..15u32 {
                if let Some(path) = t.path_to(v) {
                    let sum: f64 = path.iter().map(|&e| g.edge(e).base_cost).sum();
                    prop_assert!((sum - t.dist[v as usize]).abs() < 1e-9);
                }
            }
        }
    }
}
