//! Generic undirected multigraph in CSR form.

/// Dense vertex identifier.
pub type VertexId = u32;
/// Dense edge identifier (undirected; one id per edge).
pub type EdgeId = u32;

/// What an edge physically is. Wire edges run within a layer, via edges
/// connect adjacent layers at the same gcell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// In-layer routing segment.
    Wire,
    /// Inter-layer connection.
    Via,
}

/// Static attributes of an edge. Congestion-dependent costs are computed
/// by the router on top of `base_cost`; solvers receive them as slices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeAttrs {
    /// Cost of the edge at zero congestion (length × per-unit cost).
    pub base_cost: f64,
    /// Delay of the edge in the linear delay model (ps).
    pub delay: f64,
    /// Routing capacity (tracks) available on the edge.
    pub capacity: f64,
    /// Physical length in gcell units (0 for vias); used for wirelength.
    pub length: f64,
    /// Wire or via.
    pub kind: EdgeKind,
    /// Routing layer (for vias: the lower of the two layers).
    pub layer: u8,
    /// Wire type index within the layer (0 for vias).
    pub wire_type: u8,
}

impl EdgeAttrs {
    /// A unit-length wire edge on layer 0, wire type 0, capacity 1 —
    /// convenient for tests and abstract instances.
    pub fn wire(base_cost: f64, delay: f64) -> Self {
        EdgeAttrs {
            base_cost,
            delay,
            capacity: 1.0,
            length: 1.0,
            kind: EdgeKind::Wire,
            layer: 0,
            wire_type: 0,
        }
    }

    /// A via edge between `layer` and `layer + 1`.
    pub fn via(base_cost: f64, delay: f64, layer: u8) -> Self {
        EdgeAttrs {
            base_cost,
            delay,
            capacity: 1.0,
            length: 0.0,
            kind: EdgeKind::Via,
            layer,
            wire_type: 0,
        }
    }
}

/// One endpoint record of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoints {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl Endpoints {
    /// The endpoint that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is neither endpoint.
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex not on edge");
            self.u
        }
    }
}

/// An undirected multigraph with dense vertex/edge ids and CSR adjacency.
///
/// Parallel edges (several wire types between the same gcell pair) are
/// first-class: every parallel edge keeps its own id and attributes.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    ends: Vec<Endpoints>,
    attrs: Vec<EdgeAttrs>,
    adj_start: Vec<u32>,
    adj: Vec<(VertexId, EdgeId)>,
}

impl Graph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.ends.len()
    }

    /// Endpoints of `e`.
    pub fn endpoints(&self, e: EdgeId) -> Endpoints {
        self.ends[e as usize]
    }

    /// Static attributes of `e`.
    pub fn edge(&self, e: EdgeId) -> &EdgeAttrs {
        &self.attrs[e as usize]
    }

    /// Neighbors of `v` as (neighbor, edge id) pairs; parallel edges
    /// appear once per edge.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let s = self.adj_start[v as usize] as usize;
        let t = self.adj_start[v as usize + 1] as usize;
        &self.adj[s..t]
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.ends.len() as EdgeId
    }

    /// Base costs of all edges as a dense slice (index = edge id) — the
    /// `c` input of solvers when congestion pricing is not in play.
    pub fn base_costs(&self) -> Vec<f64> {
        self.attrs.iter().map(|a| a.base_cost).collect()
    }

    /// Delays of all edges as a dense slice (index = edge id) — the `d`
    /// input of solvers.
    pub fn delays(&self) -> Vec<f64> {
        self.attrs.iter().map(|a| a.delay).collect()
    }

    /// [`delays`](Self::delays) into a caller-owned buffer (cleared
    /// first), for per-net loops that keep one warm buffer per worker.
    pub fn delays_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.attrs.iter().map(|a| a.delay));
    }

    /// Overwrites the routing capacity of `e` in place. Only the
    /// attribute changes — the CSR structure is untouched — so the
    /// streaming document reader can apply `ecap` overrides to an
    /// already-built graph instead of rebuilding it from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn set_edge_capacity(&mut self, e: EdgeId, capacity: f64) {
        self.attrs[e as usize].capacity = capacity;
    }
}

/// Incremental [`Graph`] construction.
///
/// ```
/// use cds_graph::{GraphBuilder, EdgeAttrs};
/// let mut b = GraphBuilder::new(2);
/// let e = b.add_edge(0, 1, EdgeAttrs::wire(1.0, 1.0));
/// let g = b.build();
/// assert_eq!(g.endpoints(e).other(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    ends: Vec<Endpoints>,
    attrs: Vec<EdgeAttrs>,
}

impl GraphBuilder {
    /// Starts a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, ends: Vec::new(), attrs: Vec::new() }
    }

    /// Adds `count` fresh vertices, returning the id of the first.
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let first = self.n as VertexId;
        self.n += count;
        first
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a self-loop.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, attrs: EdgeAttrs) -> EdgeId {
        assert!((u as usize) < self.n && (v as usize) < self.n, "endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed in routing graphs");
        let id = self.ends.len() as EdgeId;
        self.ends.push(Endpoints { u, v });
        self.attrs.push(attrs);
        id
    }

    /// Finalizes into CSR form.
    pub fn build(self) -> Graph {
        let mut degree = vec![0u32; self.n + 1];
        for e in &self.ends {
            degree[e.u as usize + 1] += 1;
            degree[e.v as usize + 1] += 1;
        }
        for i in 1..degree.len() {
            degree[i] += degree[i - 1];
        }
        let adj_start = degree.clone();
        let mut cursor = degree;
        let mut adj = vec![(0u32, 0u32); self.ends.len() * 2];
        for (i, e) in self.ends.iter().enumerate() {
            let id = i as EdgeId;
            adj[cursor[e.u as usize] as usize] = (e.v, id);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize] as usize] = (e.u, id);
            cursor[e.v as usize] += 1;
        }
        Graph { n: self.n, ends: self.ends, attrs: self.attrs, adj_start, adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path_graph(k: usize) -> Graph {
        let mut b = GraphBuilder::new(k);
        for i in 0..k - 1 {
            b.add_edge(i as u32, i as u32 + 1, EdgeAttrs::wire(1.0, 1.0));
        }
        b.build()
    }

    #[test]
    fn adjacency_of_path() {
        let g = path_graph(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[(1, 0)]);
        let mut n1: Vec<_> = g.neighbors(1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(0, 1, EdgeAttrs::wire(1.0, 4.0));
        let e1 = b.add_edge(0, 1, EdgeAttrs::wire(3.0, 1.0));
        let g = b.build();
        assert_ne!(e0, e1);
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.edge(e0).delay, 4.0);
        assert_eq!(g.edge(e1).delay, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        GraphBuilder::new(1).add_edge(0, 0, EdgeAttrs::wire(1.0, 1.0));
    }

    #[test]
    fn endpoints_other() {
        let g = path_graph(2);
        assert_eq!(g.endpoints(0).other(0), 1);
        assert_eq!(g.endpoints(0).other(1), 0);
    }

    proptest! {
        /// Every edge appears exactly twice in adjacency and degrees sum
        /// to 2m.
        #[test]
        fn csr_is_consistent(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)) {
            let mut b = GraphBuilder::new(20);
            for (u, v) in edges {
                if u != v { b.add_edge(u, v, EdgeAttrs::wire(1.0, 1.0)); }
            }
            let g = b.build();
            let mut seen = vec![0u32; g.num_edges()];
            let mut total = 0usize;
            for v in 0..g.num_vertices() as u32 {
                for &(w, e) in g.neighbors(v) {
                    prop_assert_eq!(g.endpoints(e).other(v), w);
                    seen[e as usize] += 1;
                    total += 1;
                }
            }
            prop_assert_eq!(total, 2 * g.num_edges());
            prop_assert!(seen.iter().all(|&c| c == 2));
        }
    }
}
