//! 3D grid graph construction: layers, preferred directions, wire types,
//! vias.

use crate::graph::{EdgeAttrs, EdgeKind, Graph, GraphBuilder, VertexId};
use cds_geom::Point;

/// Preferred routing direction of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Wires run along x.
    Horizontal,
    /// Wires run along y.
    Vertical,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }
}

/// A wire width/spacing configuration available on a layer. Wide wires
/// cost more routing capacity per track but are faster — this is the
/// cost/delay decoupling that motivates the cost-distance formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireTypeSpec {
    /// Congestion cost per gcell at zero usage.
    pub cost_per_gcell: f64,
    /// Delay per gcell (ps) in the linear delay model.
    pub delay_per_gcell: f64,
    /// Capacity each edge of this type offers (tracks per gcell boundary).
    pub capacity: f64,
}

/// One routing layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Preferred direction.
    pub dir: Direction,
    /// Available wire types; each becomes a parallel edge.
    pub wire_types: Vec<WireTypeSpec>,
}

/// Full grid description. `build` turns it into a [`GridGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// gcell columns.
    pub nx: u32,
    /// gcell rows.
    pub ny: u32,
    /// Layers bottom-up; layer 0 is the pin layer.
    pub layers: Vec<LayerSpec>,
    /// Base congestion cost of one via.
    pub via_cost: f64,
    /// Delay of one via (ps).
    pub via_delay: f64,
    /// Via capacity per gcell.
    pub via_capacity: f64,
    /// Physical gcell pitch in micrometres (for wirelength reporting).
    pub gcell_um: f64,
}

impl GridSpec {
    /// A small uniform test grid: `nl` alternating layers, one wire type,
    /// unit costs/delays. Layer 0 is horizontal.
    pub fn uniform(nx: u32, ny: u32, nl: u8) -> Self {
        let layers = (0..nl)
            .map(|l| LayerSpec {
                dir: if l % 2 == 0 { Direction::Horizontal } else { Direction::Vertical },
                wire_types: vec![WireTypeSpec {
                    cost_per_gcell: 1.0,
                    delay_per_gcell: 1.0,
                    capacity: 10.0,
                }],
            })
            .collect();
        GridSpec {
            nx,
            ny,
            layers,
            via_cost: 1.0,
            via_delay: 1.0,
            via_capacity: 20.0,
            gcell_um: 1.0,
        }
    }

    /// Builds the grid graph.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate (no gcells or no layers).
    pub fn build(self) -> GridGraph {
        GridGraph::new(self)
    }
}

/// Where a vertex sits in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VertexCoord {
    /// gcell column.
    pub x: u32,
    /// gcell row.
    pub y: u32,
    /// layer index.
    pub layer: u8,
}

impl VertexCoord {
    /// Planar projection.
    pub fn point(self) -> Point {
        Point::new(self.x as i32, self.y as i32)
    }
}

/// The 3D global routing graph: a [`Graph`] plus grid metadata needed for
/// pin mapping, A* future costs, and reporting.
#[derive(Debug, Clone)]
pub struct GridGraph {
    spec: GridSpec,
    graph: Graph,
    /// Fastest delay per gcell over all (layer, wire type) pairs; an
    /// admissible per-unit delay bound for A* (§III-C).
    min_delay_per_gcell: f64,
    /// Cheapest base cost per gcell over all (layer, wire type) pairs; an
    /// admissible per-unit connection cost bound when prices ≥ base.
    min_cost_per_gcell: f64,
}

impl GridGraph {
    /// Builds the graph for `spec`. See [`GridSpec::build`].
    pub fn new(spec: GridSpec) -> Self {
        assert!(spec.nx > 0 && spec.ny > 0, "empty grid");
        assert!(!spec.layers.is_empty(), "no layers");
        for (l, layer) in spec.layers.iter().enumerate() {
            assert!(!layer.wire_types.is_empty(), "layer {l} has no wire types");
        }
        let n = spec.nx as usize * spec.ny as usize * spec.layers.len();
        let mut b = GraphBuilder::new(n);
        let vid = |x: u32, y: u32, l: u8| -> VertexId { (l as u32 * spec.ny + y) * spec.nx + x };
        for (l, layer) in spec.layers.iter().enumerate() {
            let l = l as u8;
            for y in 0..spec.ny {
                for x in 0..spec.nx {
                    // wire edges along the preferred direction
                    let next = match layer.dir {
                        Direction::Horizontal if x + 1 < spec.nx => Some(vid(x + 1, y, l)),
                        Direction::Vertical if y + 1 < spec.ny => Some(vid(x, y + 1, l)),
                        _ => None,
                    };
                    if let Some(w) = next {
                        for (t, wt) in layer.wire_types.iter().enumerate() {
                            b.add_edge(
                                vid(x, y, l),
                                w,
                                EdgeAttrs {
                                    base_cost: wt.cost_per_gcell,
                                    delay: wt.delay_per_gcell,
                                    capacity: wt.capacity,
                                    length: 1.0,
                                    kind: EdgeKind::Wire,
                                    layer: l,
                                    wire_type: t as u8,
                                },
                            );
                        }
                    }
                    // via to the next layer up
                    if (l as usize) + 1 < spec.layers.len() {
                        b.add_edge(
                            vid(x, y, l),
                            vid(x, y, l + 1),
                            EdgeAttrs {
                                base_cost: spec.via_cost,
                                delay: spec.via_delay,
                                capacity: spec.via_capacity,
                                length: 0.0,
                                kind: EdgeKind::Via,
                                layer: l,
                                wire_type: 0,
                            },
                        );
                    }
                }
            }
        }
        let graph = b.build();
        let min_delay_per_gcell = spec
            .layers
            .iter()
            .flat_map(|l| l.wire_types.iter())
            .map(|wt| wt.delay_per_gcell)
            .fold(f64::INFINITY, f64::min);
        let min_cost_per_gcell = spec
            .layers
            .iter()
            .flat_map(|l| l.wire_types.iter())
            .map(|wt| wt.cost_per_gcell)
            .fold(f64::INFINITY, f64::min);
        GridGraph { spec, graph, min_delay_per_gcell, min_cost_per_gcell }
    }

    /// Reassembles a grid graph from a spec and a compatible graph whose
    /// edge attributes were post-processed (e.g. capacity depletion under
    /// macros). The graph must have the same vertex/edge structure the
    /// spec would build — only attributes may differ.
    ///
    /// # Panics
    ///
    /// Panics if the vertex count does not match the spec.
    pub fn from_parts(spec: GridSpec, graph: Graph) -> Self {
        let n = spec.nx as usize * spec.ny as usize * spec.layers.len();
        assert_eq!(graph.num_vertices(), n, "graph does not match the spec");
        let min_delay_per_gcell = spec
            .layers
            .iter()
            .flat_map(|l| l.wire_types.iter())
            .map(|wt| wt.delay_per_gcell)
            .fold(f64::INFINITY, f64::min);
        let min_cost_per_gcell = spec
            .layers
            .iter()
            .flat_map(|l| l.wire_types.iter())
            .map(|wt| wt.cost_per_gcell)
            .fold(f64::INFINITY, f64::min);
        GridGraph { spec, graph, min_delay_per_gcell, min_cost_per_gcell }
    }

    /// The underlying CSR graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The grid description.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Vertex id at grid coordinates.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn vertex(&self, x: u32, y: u32, layer: u8) -> VertexId {
        assert!(x < self.spec.nx && y < self.spec.ny, "gcell out of range");
        assert!((layer as usize) < self.spec.layers.len(), "layer out of range");
        (layer as u32 * self.spec.ny + y) * self.spec.nx + x
    }

    /// Vertex on the pin layer (layer 0) at a planar point.
    ///
    /// # Panics
    ///
    /// Panics if the point has negative coordinates or is out of range.
    pub fn vertex_at(&self, p: Point) -> VertexId {
        assert!(p.x >= 0 && p.y >= 0, "negative gcell coordinate");
        self.vertex(p.x as u32, p.y as u32, 0)
    }

    /// Grid coordinates of a vertex.
    pub fn coord(&self, v: VertexId) -> VertexCoord {
        let per_layer = self.spec.nx * self.spec.ny;
        VertexCoord {
            x: v % self.spec.nx,
            y: (v / self.spec.nx) % self.spec.ny,
            layer: (v / per_layer) as u8,
        }
    }

    /// Admissible lower bound on the *delay* of any `a`→`b` connection:
    /// L1 distance times the fastest per-gcell delay (§III-C: "delays are
    /// bounded based on L1-distance and the fastest layer and wire type
    /// combination").
    pub fn delay_lower_bound(&self, a: VertexId, b: VertexId) -> f64 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.point().l1(cb.point()) as f64 * self.min_delay_per_gcell
    }

    /// Admissible lower bound on the *base* connection cost of any
    /// `a`→`b` path (valid whenever prices are ≥ base costs, which the
    /// router guarantees).
    pub fn cost_lower_bound(&self, a: VertexId, b: VertexId) -> f64 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.point().l1(cb.point()) as f64 * self.min_cost_per_gcell
    }

    /// Fastest per-gcell delay over all layers and wire types.
    pub fn min_delay_per_gcell(&self) -> f64 {
        self.min_delay_per_gcell
    }

    /// Cheapest per-gcell base cost over all layers and wire types.
    pub fn min_cost_per_gcell(&self) -> f64 {
        self.min_cost_per_gcell
    }

    /// Overwrites one edge's capacity in place (see
    /// [`Graph::set_edge_capacity`]); the derived per-gcell bounds are
    /// unaffected because they depend only on the spec.
    pub fn set_edge_capacity(&mut self, e: crate::graph::EdgeId, capacity: f64) {
        self.graph.set_edge_capacity(e, capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_distances;

    #[test]
    fn vertex_coord_roundtrip() {
        let g = GridSpec::uniform(5, 4, 3).build();
        for l in 0..3u8 {
            for y in 0..4 {
                for x in 0..5 {
                    let v = g.vertex(x, y, l);
                    assert_eq!(g.coord(v), VertexCoord { x, y, layer: l });
                }
            }
        }
    }

    #[test]
    fn counts_match_formula() {
        let (nx, ny, nl) = (6u32, 5u32, 4u8);
        let g = GridSpec::uniform(nx, ny, nl).build();
        assert_eq!(g.graph().num_vertices(), (nx * ny * nl as u32) as usize);
        // horizontal layers (0, 2): (nx-1)*ny wire edges; vertical (1, 3): nx*(ny-1)
        let wires = 2 * (nx - 1) * ny + 2 * nx * (ny - 1);
        let vias = nx * ny * (nl as u32 - 1);
        assert_eq!(g.graph().num_edges(), (wires + vias) as usize);
    }

    #[test]
    fn preferred_directions_are_enforced() {
        let g = GridSpec::uniform(3, 3, 2).build();
        // On layer 0 (horizontal) there is no wire between (0,0) and (0,1).
        let v00 = g.vertex(0, 0, 0);
        let has_vertical_wire = g
            .graph()
            .neighbors(v00)
            .iter()
            .any(|&(w, e)| w == g.vertex(0, 1, 0) && g.graph().edge(e).kind == EdgeKind::Wire);
        assert!(!has_vertical_wire);
    }

    #[test]
    fn parallel_wire_types_exist() {
        let mut spec = GridSpec::uniform(2, 1, 1);
        spec.layers[0].wire_types.push(WireTypeSpec {
            cost_per_gcell: 2.0,
            delay_per_gcell: 0.25,
            capacity: 3.0,
        });
        let g = spec.build();
        assert_eq!(g.graph().num_edges(), 2);
        assert_eq!(g.min_delay_per_gcell(), 0.25);
        assert_eq!(g.min_cost_per_gcell(), 1.0);
    }

    #[test]
    fn shortest_path_respects_alternating_layers() {
        // To move vertically from layer 0 (H), a path must via up to layer 1.
        let g = GridSpec::uniform(3, 3, 2).build();
        let c: Vec<f64> = g.graph().base_costs();
        let from = g.vertex(0, 0, 0);
        let to = g.vertex(0, 2, 0);
        let dist = shortest_distances(g.graph(), &[(from, 0.0)], |e| c[e as usize]);
        // up via + 2 vertical wires + down via = 1+2+1 = 4
        assert_eq!(dist[to as usize], 4.0);
    }

    #[test]
    fn bounds_are_admissible_on_uniform_grid() {
        let g = GridSpec::uniform(4, 4, 2).build();
        let c = g.graph().base_costs();
        let d = g.graph().delays();
        let from = g.vertex(0, 0, 0);
        let dist_c = shortest_distances(g.graph(), &[(from, 0.0)], |e| c[e as usize]);
        let dist_d = shortest_distances(g.graph(), &[(from, 0.0)], |e| d[e as usize]);
        for v in 0..g.graph().num_vertices() as u32 {
            assert!(g.cost_lower_bound(from, v) <= dist_c[v as usize] + 1e-9);
            assert!(g.delay_lower_bound(from, v) <= dist_d[v as usize] + 1e-9);
        }
    }
}
