#![forbid(unsafe_code)]
//! The 3D global routing graph.
//!
//! The paper's instances are 3D global routing graphs: a grid of gcells per
//! routing layer, wire edges along each layer's preferred direction — with
//! a *parallel edge per wire type*, each with its own cost and delay — and
//! via edges between adjacent layers. Edge costs `c(e)` arise from current
//! congestion, edge delays `d(e)` from a linear delay model; the two are
//! essentially uncorrelated, which is the whole point of the cost-distance
//! formulation.
//!
//! This crate provides:
//!
//! * [`Graph`] / [`GraphBuilder`] — a generic undirected multigraph in CSR
//!   form, used directly by tests and by the exact reference algorithms;
//! * [`GridGraph`] / [`GridSpec`] — the 3D grid construction with layers,
//!   preferred directions, wire types and vias;
//! * [`SteinerGraph`] / [`RoutingSurface`] — the graph abstraction the
//!   solvers and oracles route over, with two backends: the
//!   materialized graphs above and the zero-copy [`WindowView`]
//!   (window-local dense vertex ids, global edge ids — route a window
//!   of the grid without building a per-net graph or slicing costs);
//! * [`dijkstra`] — single/multi-source shortest path labelling shared by
//!   the embedding DP, landmark future costs, and the exact algorithms.
//!
//! # Examples
//!
//! ```
//! use cds_graph::{GraphBuilder, EdgeAttrs, dijkstra::shortest_distances};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, EdgeAttrs::wire(1.0, 2.0));
//! b.add_edge(1, 2, EdgeAttrs::wire(1.0, 2.0));
//! let g = b.build();
//! let dist = shortest_distances(&g, &[(0, 0.0)], |e| g.edge(e).base_cost);
//! assert_eq!(dist[2], 2.0);
//! ```

pub mod dijkstra;
pub mod graph;
pub mod grid;
pub mod shard;
pub mod steiner;
pub mod window;

pub use graph::{EdgeAttrs, EdgeId, EdgeKind, Endpoints, Graph, GraphBuilder, VertexId};
pub use grid::{Direction, GridGraph, GridSpec, LayerSpec, VertexCoord, WireTypeSpec};
pub use shard::ShardGrid;
pub use steiner::{RoutingSurface, SteinerGraph};
pub use window::{window_bounds, EdgeIndex, GridWindow, WindowView};
