//! Die sharding geometry: a rectangular partition of the gcell plane
//! into regions ("shards") for region-parallel routing.
//!
//! The router classifies each net by the bounding rectangle of its
//! routing *window* (pins inflated by the window margin, see
//! [`window_bounds`](crate::window::window_bounds)): a net whose window
//! lies entirely inside one shard can be routed concurrently with any
//! net of any other shard without sharing search state, because per-net
//! results depend only on per-net inputs. Nets whose window crosses a
//! shard boundary — the "halo" nets — are handled in a separate
//! reconciliation pass. The geometry here is pure arithmetic over the
//! shard count and the die dimensions, so a shard id is a deterministic
//! function of the rectangle alone.

/// A fixed `sx × sy` grid of rectangular shards over an `nx × ny` die.
///
/// The shard count is factored as close to square as possible and the
/// larger factor is oriented along the larger die dimension, which
/// keeps shard aspect ratios (and therefore the boundary-net fraction)
/// low. Column/row strips are the standard balanced integer partition
/// `strip(x) = x·s / n`, so strip widths differ by at most one gcell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGrid {
    nx: u32,
    ny: u32,
    sx: u32,
    sy: u32,
}

impl ShardGrid {
    /// Partitions an `nx × ny` die into `shards` regions.
    ///
    /// # Panics
    ///
    /// Panics if the die is empty or `shards` is zero.
    pub fn new(nx: u32, ny: u32, shards: usize) -> Self {
        assert!(nx > 0 && ny > 0, "empty die");
        assert!(shards > 0, "shard count must be positive");
        let shards = shards as u32;
        // largest divisor of `shards` that is <= sqrt(shards)
        let mut small = (shards as f64).sqrt().floor() as u32;
        while small > 1 && !shards.is_multiple_of(small) {
            small -= 1;
        }
        let small = small.max(1);
        let large = shards / small;
        let (sx, sy) = if nx >= ny { (large, small) } else { (small, large) };
        ShardGrid { nx, ny, sx, sy }
    }

    /// Total number of shards (`sx × sy`).
    pub fn num_shards(&self) -> usize {
        (self.sx * self.sy) as usize
    }

    /// Column strips × row strips.
    pub fn dims(&self) -> (u32, u32) {
        (self.sx, self.sy)
    }

    /// The column strip containing gcell column `x`.
    fn strip_x(&self, x: u32) -> u32 {
        (u64::from(x) * u64::from(self.sx) / u64::from(self.nx)) as u32
    }

    /// The row strip containing gcell row `y`.
    fn strip_y(&self, y: u32) -> u32 {
        (u64::from(y) * u64::from(self.sy) / u64::from(self.ny)) as u32
    }

    /// The shard containing gcell `(x, y)`.
    ///
    /// Coordinates outside the die clamp into the last strip, so the
    /// result is total (window rectangles are already die-clamped by
    /// construction).
    pub fn shard_of(&self, x: u32, y: u32) -> usize {
        let cx = self.strip_x(x.min(self.nx - 1));
        let cy = self.strip_y(y.min(self.ny - 1));
        (cy * self.sx + cx) as usize
    }

    /// The single shard fully containing the inclusive rectangle
    /// `[x0, x1] × [y0, y1]`, or `None` when the rectangle crosses a
    /// shard boundary (a halo net for the reconciliation pass).
    pub fn shard_of_rect(&self, x0: u32, y0: u32, x1: u32, y1: u32) -> Option<usize> {
        let a = self.shard_of(x0, y0);
        if a == self.shard_of(x1, y1) {
            Some(a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factoring_is_near_square_with_large_factor_on_large_dim() {
        assert_eq!(ShardGrid::new(100, 50, 1).dims(), (1, 1));
        assert_eq!(ShardGrid::new(100, 50, 2).dims(), (2, 1));
        assert_eq!(ShardGrid::new(50, 100, 2).dims(), (1, 2));
        assert_eq!(ShardGrid::new(100, 50, 4).dims(), (2, 2));
        assert_eq!(ShardGrid::new(100, 50, 6).dims(), (3, 2));
        assert_eq!(ShardGrid::new(100, 50, 8).dims(), (4, 2));
        assert_eq!(ShardGrid::new(100, 50, 7).dims(), (7, 1));
        assert_eq!(ShardGrid::new(10, 10, 12).dims(), (4, 3));
    }

    #[test]
    fn every_gcell_lands_in_exactly_one_shard_and_all_are_used() {
        for shards in [1usize, 2, 3, 4, 6, 8] {
            let g = ShardGrid::new(17, 9, shards);
            let mut seen = vec![0usize; g.num_shards()];
            for y in 0..9 {
                for x in 0..17 {
                    seen[g.shard_of(x, y)] += 1;
                }
            }
            assert_eq!(seen.iter().sum::<usize>(), 17 * 9);
            assert!(seen.iter().all(|&c| c > 0), "{shards} shards: {seen:?}");
        }
    }

    #[test]
    fn strips_are_monotone_and_balanced() {
        let g = ShardGrid::new(10, 10, 4);
        // 2x2: columns 0-4 strip 0, 5-9 strip 1
        assert_eq!(g.shard_of(4, 0), 0);
        assert_eq!(g.shard_of(5, 0), 1);
        assert_eq!(g.shard_of(0, 4), 0);
        assert_eq!(g.shard_of(0, 5), 2);
    }

    #[test]
    fn rect_classification_detects_boundary_crossings() {
        let g = ShardGrid::new(10, 10, 4);
        assert_eq!(g.shard_of_rect(0, 0, 4, 4), Some(0));
        assert_eq!(g.shard_of_rect(5, 0, 9, 4), Some(1));
        assert_eq!(g.shard_of_rect(5, 5, 9, 9), Some(3));
        assert_eq!(g.shard_of_rect(3, 0, 6, 2), None); // crosses x split
        assert_eq!(g.shard_of_rect(0, 3, 2, 6), None); // crosses y split
        assert_eq!(g.shard_of_rect(0, 0, 9, 9), None); // die-wide
    }

    #[test]
    fn more_shards_than_gcells_still_total() {
        let g = ShardGrid::new(2, 1, 8);
        // degenerate but deterministic: every gcell maps somewhere
        for x in 0..2 {
            let s = g.shard_of(x, 0);
            assert!(s < g.num_shards());
        }
        // out-of-range coordinates clamp instead of panicking
        assert_eq!(g.shard_of(100, 100), g.shard_of(1, 0));
    }
}
