//! The graph abstraction the Steiner solvers route over.
//!
//! Routers do not want to *build* a graph per net — they want to *route
//! in a region* of the one global grid. [`SteinerGraph`] is the minimal
//! interface the solver core, the embedding DP, and the tree assembly
//! need: compact contiguous vertex ids, dense edge addressing, and
//! neighbor enumeration. Two backends implement it:
//!
//! * [`Graph`] (and [`GridGraph`] by delegation) — the materialized CSR
//!   multigraph; vertex and edge ids are its own dense ids;
//! * [`WindowView`](crate::window::WindowView) — a zero-copy rectangular
//!   window of the global grid: vertex ids are window-local and dense
//!   (so per-solve label slabs stay small), edge ids are the *global*
//!   edge ids (so global price/delay arrays index directly, no slicing).
//!
//! Both traits are dyn-compatible on purpose: the router's oracle layer
//! passes `&dyn RoutingSurface` so one trait object type covers both
//! backends, while generic (monomorphized) use remains available to the
//! solver's hot loops and to tests.
//!
//! # Determinism contract
//!
//! [`neighbors_into`](SteinerGraph::neighbors_into) must enumerate
//! neighbors in a backend-independent order for corresponding vertices:
//! `WindowView` yields the window-restricted neighbors in ascending
//! global edge id order, which is order-isomorphic to the CSR adjacency
//! order of the materialized window grid (grid edges are laid out
//! lexicographically in (layer, y, x), and translating a window does not
//! reorder them). This is what makes routing over a view bit-identical
//! to routing over a materialized window.

use crate::graph::{EdgeAttrs, EdgeId, Endpoints, Graph, VertexId};
use crate::grid::GridGraph;
use cds_geom::Point;

/// A routing graph with dense vertex and edge addressing — the solver
/// core's view of the world.
///
/// Vertex ids are contiguous in `0..num_vertices()`; per-solve label
/// tables may be dense arrays of that length. Edge ids are *not*
/// required to be contiguous, only bounded by
/// [`edge_bound`](Self::edge_bound): per-edge cost/delay inputs are
/// slices of at least that length, indexed by edge id.
pub trait SteinerGraph: Sync {
    /// Number of vertices; vertex ids are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;

    /// Exclusive upper bound on edge ids. Per-edge slices handed to
    /// solvers must have at least this length. For a materialized
    /// [`Graph`] this is `num_edges()`; for a window view it is the
    /// *global* edge count.
    fn edge_bound(&self) -> usize;

    /// Endpoints of `e`, as this backend's vertex ids.
    fn endpoints(&self, e: EdgeId) -> Endpoints;

    /// Static attributes of `e`.
    fn edge_attrs(&self, e: EdgeId) -> EdgeAttrs;

    /// Clears `out` and fills it with the (neighbor, edge id) pairs of
    /// `v`, one entry per parallel edge, in this backend's canonical
    /// order (see the module docs for the cross-backend guarantee).
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<(VertexId, EdgeId)>);
}

impl SteinerGraph for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }
    fn edge_bound(&self) -> usize {
        Graph::num_edges(self)
    }
    fn endpoints(&self, e: EdgeId) -> Endpoints {
        Graph::endpoints(self, e)
    }
    fn edge_attrs(&self, e: EdgeId) -> EdgeAttrs {
        *Graph::edge(self, e)
    }
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<(VertexId, EdgeId)>) {
        out.clear();
        out.extend_from_slice(Graph::neighbors(self, v));
    }
}

impl SteinerGraph for GridGraph {
    fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }
    fn edge_bound(&self) -> usize {
        self.graph().num_edges()
    }
    fn endpoints(&self, e: EdgeId) -> Endpoints {
        self.graph().endpoints(e)
    }
    fn edge_attrs(&self, e: EdgeId) -> EdgeAttrs {
        *self.graph().edge(e)
    }
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<(VertexId, EdgeId)>) {
        out.clear();
        out.extend_from_slice(self.graph().neighbors(v));
    }
}

/// A [`SteinerGraph`] that is also a *gridded routing region*: it has a
/// planar extent, pins map to layer-0 vertices, and admissible per-gcell
/// cost/delay bounds exist for goal-oriented search.
///
/// This is the surface the router's oracles route on; both the global
/// [`GridGraph`] (or a materialized window of it) and the zero-copy
/// [`WindowView`](crate::window::WindowView) implement it.
pub trait RoutingSurface: SteinerGraph {
    /// Planar extent `(nx, ny)` of this surface's vertex id space.
    /// Vertex ids are laid out `(layer · ny + y) · nx + x`.
    fn plane_dims(&self) -> (u32, u32);

    /// The layer-0 vertex at a planar point in *this surface's local
    /// coordinates*.
    ///
    /// # Panics
    ///
    /// Panics if the point is negative or outside the surface.
    fn vertex_at(&self, p: Point) -> VertexId;

    /// Translates a point from the enclosing grid's coordinates into
    /// this surface's local coordinates (identity for a whole grid).
    fn localize(&self, p: Point) -> Point;

    /// Cheapest per-gcell base cost over all layers and wire types — an
    /// admissible connection-cost bound when prices ≥ base costs.
    fn min_cost_per_gcell(&self) -> f64;

    /// Fastest per-gcell delay over all layers and wire types — an
    /// admissible delay bound (§III-C of the paper).
    fn min_delay_per_gcell(&self) -> f64;
}

impl RoutingSurface for GridGraph {
    fn plane_dims(&self) -> (u32, u32) {
        (self.spec().nx, self.spec().ny)
    }
    fn vertex_at(&self, p: Point) -> VertexId {
        GridGraph::vertex_at(self, p)
    }
    fn localize(&self, p: Point) -> Point {
        p
    }
    fn min_cost_per_gcell(&self) -> f64 {
        GridGraph::min_cost_per_gcell(self)
    }
    fn min_delay_per_gcell(&self) -> f64 {
        GridGraph::min_delay_per_gcell(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn graph_backend_matches_inherent_api() {
        let grid = GridSpec::uniform(4, 3, 2).build();
        let g = grid.graph();
        let sg: &dyn SteinerGraph = g;
        assert_eq!(sg.num_vertices(), g.num_vertices());
        assert_eq!(sg.edge_bound(), g.num_edges());
        let mut out = Vec::new();
        for v in 0..g.num_vertices() as VertexId {
            sg.neighbors_into(v, &mut out);
            assert_eq!(out, g.neighbors(v));
        }
        for e in g.edge_ids() {
            assert_eq!(sg.endpoints(e), g.endpoints(e));
            assert_eq!(sg.edge_attrs(e), *g.edge(e));
        }
    }

    #[test]
    fn grid_graph_is_a_routing_surface() {
        let grid = GridSpec::uniform(5, 4, 2).build();
        let s: &dyn RoutingSurface = &grid;
        assert_eq!(s.plane_dims(), (5, 4));
        assert_eq!(s.vertex_at(Point::new(2, 3)), grid.vertex(2, 3, 0));
        assert_eq!(s.localize(Point::new(2, 3)), Point::new(2, 3));
        assert_eq!(s.min_cost_per_gcell(), 1.0);
    }
}
