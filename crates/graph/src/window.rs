//! Windowed subgrids for per-net routing.
//!
//! Routers do not run net-level Steiner searches over the whole chip:
//! each net is routed inside a bounding-box window (plus margin) of the
//! global grid. [`GridWindow`] builds the sub-[`GridGraph`] for a window
//! and maps its edge ids back to the global graph so that prices can be
//! sliced in and usage accumulated out.

use crate::graph::{EdgeId, EdgeKind, VertexId};
use crate::grid::{GridGraph, GridSpec};
use cds_geom::Point;
use std::collections::HashMap;

/// Key identifying a global edge by its endpoints and flavour, used to
/// translate window edges to global ids.
fn edge_key(u: VertexId, v: VertexId, kind: EdgeKind, wire_type: u8) -> (u32, u32, bool, u8) {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    (a, b, kind == EdgeKind::Via, wire_type)
}

/// Precomputed lookup from (endpoints, flavour) to global edge id.
/// Build once per chip; shared by all windows.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    map: HashMap<(u32, u32, bool, u8), EdgeId>,
}

impl EdgeIndex {
    /// Indexes all edges of `grid`.
    pub fn new(grid: &GridGraph) -> Self {
        let g = grid.graph();
        let mut map = HashMap::with_capacity(g.num_edges());
        for e in g.edge_ids() {
            let ep = g.endpoints(e);
            let a = g.edge(e);
            map.insert(edge_key(ep.u, ep.v, a.kind, a.wire_type), e);
        }
        EdgeIndex { map }
    }
}

/// A rectangular window of a [`GridGraph`]: a self-contained sub-grid
/// plus translations to/from the global graph.
#[derive(Debug, Clone)]
pub struct GridWindow {
    /// The sub-grid (all layers, clipped x/y range).
    pub grid: GridGraph,
    /// Window origin in global gcell coordinates.
    pub x0: u32,
    /// Window origin in global gcell coordinates.
    pub y0: u32,
    /// For each window edge id, the corresponding global edge id.
    pub to_global_edge: Vec<EdgeId>,
}

impl GridWindow {
    /// Builds the window `[x0..=x1] × [y0..=y1]` (inclusive, clamped to
    /// the grid) of `grid`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty after clamping.
    pub fn build(grid: &GridGraph, index: &EdgeIndex, x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        let spec = grid.spec();
        let x1 = x1.min(spec.nx - 1);
        let y1 = y1.min(spec.ny - 1);
        assert!(x0 <= x1 && y0 <= y1, "empty window");
        let sub_spec = GridSpec {
            nx: x1 - x0 + 1,
            ny: y1 - y0 + 1,
            layers: spec.layers.clone(),
            via_cost: spec.via_cost,
            via_delay: spec.via_delay,
            via_capacity: spec.via_capacity,
            gcell_um: spec.gcell_um,
        };
        let sub = sub_spec.build();
        // translate each window edge to its global id
        let sg = sub.graph();
        let mut to_global_edge = Vec::with_capacity(sg.num_edges());
        for e in sg.edge_ids() {
            let ep = sg.endpoints(e);
            let a = sg.edge(e);
            let cu = sub.coord(ep.u);
            let cv = sub.coord(ep.v);
            let gu = grid.vertex(cu.x + x0, cu.y + y0, cu.layer);
            let gv = grid.vertex(cv.x + x0, cv.y + y0, cv.layer);
            let global = *index
                .map
                .get(&edge_key(gu, gv, a.kind, a.wire_type))
                .expect("window edge exists globally");
            to_global_edge.push(global);
        }
        GridWindow { grid: sub, x0, y0, to_global_edge }
    }

    /// Window around a set of planar points with the given margin.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or has out-of-grid coordinates.
    pub fn around(grid: &GridGraph, index: &EdgeIndex, points: &[Point], margin: u32) -> Self {
        assert!(!points.is_empty(), "window of no points");
        let xs: Vec<i32> = points.iter().map(|p| p.x).collect();
        let ys: Vec<i32> = points.iter().map(|p| p.y).collect();
        let x0 = (*xs.iter().min().expect("nonempty") as u32).saturating_sub(margin);
        let y0 = (*ys.iter().min().expect("nonempty") as u32).saturating_sub(margin);
        let x1 = *xs.iter().max().expect("nonempty") as u32 + margin;
        let y1 = *ys.iter().max().expect("nonempty") as u32 + margin;
        GridWindow::build(grid, index, x0, y0, x1, y1)
    }

    /// Translates a global planar point into the window.
    pub fn localize(&self, p: Point) -> Point {
        Point::new(p.x - self.x0 as i32, p.y - self.y0 as i32)
    }

    /// Slices a global per-edge array into window edge order.
    pub fn slice<T: Copy>(&self, global: &[T]) -> Vec<T> {
        self.to_global_edge.iter().map(|&e| global[e as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn window_edges_map_to_matching_global_edges() {
        let grid = GridSpec::uniform(8, 6, 3).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::build(&grid, &index, 2, 1, 5, 4);
        assert_eq!(w.grid.spec().nx, 4);
        assert_eq!(w.grid.spec().ny, 4);
        let sg = w.grid.graph();
        let gg = grid.graph();
        for e in sg.edge_ids() {
            let global = w.to_global_edge[e as usize];
            let (sa, ga) = (sg.edge(e), gg.edge(global));
            assert_eq!(sa.kind, ga.kind);
            assert_eq!(sa.layer, ga.layer);
            assert_eq!(sa.wire_type, ga.wire_type);
            // endpoints correspond under translation
            let sep = sg.endpoints(e);
            let (cu, cv) = (w.grid.coord(sep.u), w.grid.coord(sep.v));
            let gu = grid.vertex(cu.x + 2, cu.y + 1, cu.layer);
            let gv = grid.vertex(cv.x + 2, cv.y + 1, cv.layer);
            let gep = gg.endpoints(global);
            assert!(
                (gep.u == gu && gep.v == gv) || (gep.u == gv && gep.v == gu),
                "edge {e} endpoints mismatch"
            );
        }
    }

    #[test]
    fn around_clamps_to_grid() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::around(&grid, &index, &[Point::new(0, 0), Point::new(4, 4)], 10);
        assert_eq!(w.grid.spec().nx, 5);
        assert_eq!(w.grid.spec().ny, 5);
        assert_eq!(w.x0, 0);
    }

    #[test]
    fn localize_and_slice() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::build(&grid, &index, 1, 2, 4, 5);
        assert_eq!(w.localize(Point::new(3, 4)), Point::new(2, 2));
        let global: Vec<f64> = (0..grid.graph().num_edges()).map(|i| i as f64).collect();
        let local = w.slice(&global);
        for (le, &v) in local.iter().enumerate() {
            assert_eq!(v, w.to_global_edge[le] as f64);
        }
    }
}
