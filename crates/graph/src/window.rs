//! Windowed subgrids for per-net routing.
//!
//! Routers do not run net-level Steiner searches over the whole chip:
//! each net is routed inside a bounding-box window (plus margin) of the
//! global grid. Two window backends exist:
//!
//! * [`WindowView`] — the zero-copy backend: a
//!   [`SteinerGraph`]/[`RoutingSurface`] that routes directly over the
//!   global grid, restricted to the window. Vertex ids are window-local
//!   and dense; edge ids are *global*, so the global price and delay
//!   arrays index directly and nothing is materialized or sliced per
//!   net. This is what [`Router::run`](../cds_router/struct.Router.html)
//!   uses.
//! * [`GridWindow`] — the materialized backend: builds the
//!   sub-[`GridGraph`] for a window and maps its edge ids back to the
//!   global graph so that prices can be sliced in and usage accumulated
//!   out. Kept for harnesses that want a self-contained instance, and as
//!   the reference the view backend is checked against (routing over a
//!   `WindowView` is bit-identical to routing over the corresponding
//!   `GridWindow`).

use crate::graph::{EdgeAttrs, EdgeId, EdgeKind, Endpoints, VertexId};
use crate::grid::{GridGraph, GridSpec, VertexCoord};
use crate::steiner::{RoutingSurface, SteinerGraph};
use cds_geom::Point;

/// The inclusive window bounds `(x0, y0, x1, y1)` around a set of
/// planar points (global grid coordinates) with the given margin,
/// clamped to an `nx × ny` grid.
///
/// This is the single source of truth for per-net routing-window
/// extents: [`WindowView::around`], [`GridWindow::around`], and the
/// router's dirty-net drift certificate (which must cover *exactly*
/// the window a net routes in) all derive their bounds here.
///
/// # Panics
///
/// Panics if `points` is empty or contains a negative coordinate.
pub fn window_bounds(points: &[Point], margin: u32, nx: u32, ny: u32) -> (u32, u32, u32, u32) {
    assert!(!points.is_empty(), "window of no points");
    let (mut x0, mut y0, mut x1, mut y1) = (u32::MAX, u32::MAX, 0u32, 0u32);
    for p in points {
        assert!(p.x >= 0 && p.y >= 0, "negative gcell coordinate");
        x0 = x0.min(p.x as u32);
        y0 = y0.min(p.y as u32);
        x1 = x1.max(p.x as u32);
        y1 = y1.max(p.y as u32);
    }
    (
        x0.saturating_sub(margin),
        y0.saturating_sub(margin),
        (x1 + margin).min(nx - 1),
        (y1 + margin).min(ny - 1),
    )
}

/// Sentinel for "no edge in this slot".
const NO_EDGE: EdgeId = EdgeId::MAX;

/// Precomputed lookup from (endpoints, flavour) to global edge id.
/// Build once per chip; shared by all windows.
///
/// Dense by construction instead of hashed: every grid layer routes a
/// single preferred direction, so a global edge is uniquely addressed
/// by its **lower endpoint** plus a small slot — the wire type for wire
/// edges, or one extra slot for the via up. The lookup is a flat
/// `Vec<EdgeId>` indexed by `vertex · stride + slot`: no hashing, no
/// iteration-order hazard (the old `HashMap` keyed on endpoint pairs
/// was only ever probed, but a dense array makes order-independence
/// true by construction and is what `cds-lint`'s
/// `no-hash-on-solve-path` rule expects of this crate).
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// `slots[v · stride + slot]`, [`NO_EDGE`] where absent.
    slots: Vec<EdgeId>,
    /// Slots per vertex: max wire types over all layers, plus the via.
    stride: usize,
}

impl EdgeIndex {
    /// Indexes all edges of `grid`.
    ///
    /// # Panics
    ///
    /// Panics if two edges share a (lower endpoint, slot) address —
    /// impossible for grids built by [`GridSpec::build`], which emits
    /// one edge per (vertex, wire type) in the layer direction and one
    /// via up.
    pub fn new(grid: &GridGraph) -> Self {
        let g = grid.graph();
        let wire_types = grid.spec().layers.iter().map(|l| l.wire_types.len()).max().unwrap_or(0);
        let stride = wire_types + 1; // + the via slot
        let mut slots = vec![NO_EDGE; g.num_vertices() * stride];
        for e in g.edge_ids() {
            let ep = g.endpoints(e);
            let a = g.edge(e);
            let idx = slot_index(ep.u, ep.v, a.kind, a.wire_type, stride, wire_types);
            assert_eq!(slots[idx], NO_EDGE, "edge slot collision at edge {e}");
            slots[idx] = e;
        }
        EdgeIndex { slots, stride }
    }

    /// The global edge with the given endpoints and flavour, if one
    /// exists. Endpoint order does not matter.
    pub fn lookup(
        &self,
        grid: &GridGraph,
        u: VertexId,
        v: VertexId,
        kind: EdgeKind,
        wire_type: u8,
    ) -> Option<EdgeId> {
        let wire_types = self.stride - 1;
        if kind != EdgeKind::Via && usize::from(wire_type) >= wire_types {
            return None;
        }
        let idx = slot_index(u, v, kind, wire_type, self.stride, wire_types);
        let e = *self.slots.get(idx)?;
        if e == NO_EDGE {
            return None;
        }
        // the slot address ignores the upper endpoint; confirm the
        // candidate actually connects the queried pair
        let ep = grid.graph().endpoints(e);
        ((ep.u == u && ep.v == v) || (ep.u == v && ep.v == u)).then_some(e)
    }
}

/// Flat slot address of the edge `(u, v)` with the given flavour: the
/// lower endpoint picks the vertex row, the flavour picks the slot
/// (wire type, or the last slot for vias).
fn slot_index(
    u: VertexId,
    v: VertexId,
    kind: EdgeKind,
    wire_type: u8,
    stride: usize,
    wire_types: usize,
) -> usize {
    let lo = u.min(v) as usize;
    let slot = if kind == EdgeKind::Via { wire_types } else { usize::from(wire_type) };
    lo * stride + slot
}

/// A rectangular window of a [`GridGraph`]: a self-contained sub-grid
/// plus translations to/from the global graph.
#[derive(Debug, Clone)]
pub struct GridWindow {
    /// The sub-grid (all layers, clipped x/y range).
    pub grid: GridGraph,
    /// Window origin in global gcell coordinates.
    pub x0: u32,
    /// Window origin in global gcell coordinates.
    pub y0: u32,
    /// For each window edge id, the corresponding global edge id.
    pub to_global_edge: Vec<EdgeId>,
}

impl GridWindow {
    /// Builds the window `[x0..=x1] × [y0..=y1]` (inclusive, clamped to
    /// the grid) of `grid`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty after clamping.
    pub fn build(grid: &GridGraph, index: &EdgeIndex, x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        let spec = grid.spec();
        let x1 = x1.min(spec.nx - 1);
        let y1 = y1.min(spec.ny - 1);
        assert!(x0 <= x1 && y0 <= y1, "empty window");
        let sub_spec = GridSpec {
            nx: x1 - x0 + 1,
            ny: y1 - y0 + 1,
            layers: spec.layers.clone(),
            via_cost: spec.via_cost,
            via_delay: spec.via_delay,
            via_capacity: spec.via_capacity,
            gcell_um: spec.gcell_um,
        };
        let sub = sub_spec.build();
        // translate each window edge to its global id
        let sg = sub.graph();
        let mut to_global_edge = Vec::with_capacity(sg.num_edges());
        for e in sg.edge_ids() {
            let ep = sg.endpoints(e);
            let a = sg.edge(e);
            let cu = sub.coord(ep.u);
            let cv = sub.coord(ep.v);
            let gu = grid.vertex(cu.x + x0, cu.y + y0, cu.layer);
            let gv = grid.vertex(cv.x + x0, cv.y + y0, cv.layer);
            let global = index
                .lookup(grid, gu, gv, a.kind, a.wire_type)
                // INVARIANT: window vertices are grid cells inside the clip rect, so every window edge is a copy of a global edge the index contains.
                .expect("window edge exists globally");
            to_global_edge.push(global);
        }
        GridWindow { grid: sub, x0, y0, to_global_edge }
    }

    /// Window around a set of planar points with the given margin.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or has out-of-grid coordinates.
    pub fn around(grid: &GridGraph, index: &EdgeIndex, points: &[Point], margin: u32) -> Self {
        let spec = grid.spec();
        let (x0, y0, x1, y1) = window_bounds(points, margin, spec.nx, spec.ny);
        GridWindow::build(grid, index, x0, y0, x1, y1)
    }

    /// Translates a global planar point into the window.
    pub fn localize(&self, p: Point) -> Point {
        Point::new(p.x - self.x0 as i32, p.y - self.y0 as i32)
    }

    /// Slices a global per-edge array into window edge order.
    pub fn slice<T: Copy>(&self, global: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.slice_into(global, &mut out);
        out
    }

    /// [`slice`](Self::slice) into a caller-owned buffer (cleared
    /// first), so per-net slicing in a routing loop reuses one warm
    /// allocation per worker instead of building a fresh `Vec` per net.
    pub fn slice_into<T: Copy>(&self, global: &[T], out: &mut Vec<T>) {
        out.clear();
        out.extend(self.to_global_edge.iter().map(|&e| global[e as usize]));
    }
}

/// A zero-copy rectangular window of a [`GridGraph`]: routes over the
/// global grid without materializing a sub-graph.
///
/// Local vertex ids are dense, laid out exactly like the vertex ids of
/// the [`GridGraph`] a [`GridWindow`] of the same bounds would build
/// (`(layer · ny + y) · nx + x` in window coordinates), so per-solve
/// label slabs stay window-sized. Edge ids are the *global* edge ids,
/// so the chip-wide price/delay arrays index directly — no per-net
/// slicing — and routed edges come out in global ids with no
/// translation step.
///
/// ```
/// use cds_graph::{GridSpec, SteinerGraph, WindowView};
/// let grid = GridSpec::uniform(8, 6, 2).build();
/// let view = WindowView::new(&grid, 2, 1, 5, 4);
/// assert_eq!(view.num_vertices(), 4 * 4 * 2);
/// assert_eq!(view.edge_bound(), grid.graph().num_edges());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WindowView<'a> {
    grid: &'a GridGraph,
    x0: u32,
    y0: u32,
    nx: u32,
    ny: u32,
}

impl<'a> WindowView<'a> {
    /// The view of `[x0..=x1] × [y0..=y1]` (inclusive, clamped to the
    /// grid), all layers.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty after clamping.
    pub fn new(grid: &'a GridGraph, x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        let spec = grid.spec();
        let x1 = x1.min(spec.nx - 1);
        let y1 = y1.min(spec.ny - 1);
        assert!(x0 <= x1 && y0 <= y1, "empty window");
        WindowView { grid, x0, y0, nx: x1 - x0 + 1, ny: y1 - y0 + 1 }
    }

    /// View around a set of planar points (global coordinates) with the
    /// given margin — the same bounds [`GridWindow::around`] would use.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or has out-of-grid coordinates.
    pub fn around(grid: &'a GridGraph, points: &[Point], margin: u32) -> Self {
        let spec = grid.spec();
        let (x0, y0, x1, y1) = window_bounds(points, margin, spec.nx, spec.ny);
        WindowView::new(grid, x0, y0, x1, y1)
    }

    /// The global grid this view windows.
    pub fn grid(&self) -> &'a GridGraph {
        self.grid
    }

    /// Window origin in global gcell coordinates.
    pub fn origin(&self) -> (u32, u32) {
        (self.x0, self.y0)
    }

    /// Window extent `(nx, ny)` in gcells.
    pub fn dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Window coordinates of a local vertex id.
    pub fn coord(&self, v: VertexId) -> VertexCoord {
        let per_layer = self.nx * self.ny;
        VertexCoord { x: v % self.nx, y: (v / self.nx) % self.ny, layer: (v / per_layer) as u8 }
    }

    /// The global vertex id of local vertex `v`.
    pub fn to_global_vertex(&self, v: VertexId) -> VertexId {
        let c = self.coord(v);
        self.grid.vertex(c.x + self.x0, c.y + self.y0, c.layer)
    }

    /// The local vertex id of global vertex `g`, if it lies inside the
    /// window.
    pub fn to_local_vertex(&self, g: VertexId) -> Option<VertexId> {
        let c = self.grid.coord(g);
        let (x, y) = (c.x.wrapping_sub(self.x0), c.y.wrapping_sub(self.y0));
        if x < self.nx && y < self.ny {
            Some((c.layer as u32 * self.ny + y) * self.nx + x)
        } else {
            None
        }
    }
}

impl SteinerGraph for WindowView<'_> {
    fn num_vertices(&self) -> usize {
        self.nx as usize * self.ny as usize * self.grid.spec().layers.len()
    }

    fn edge_bound(&self) -> usize {
        self.grid.graph().num_edges()
    }

    /// Endpoints as *local* vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not lie inside the window — views only ever
    /// see edges discovered through their own neighbor enumeration.
    fn endpoints(&self, e: EdgeId) -> Endpoints {
        let ep = self.grid.graph().endpoints(e);
        Endpoints {
            // INVARIANT: e came from a window adjacency list, which only holds edges with both endpoints inside the window.
            u: self.to_local_vertex(ep.u).expect("edge endpoint inside the window"),
            // INVARIANT: same as u: window adjacency never stores a half-outside edge.
            v: self.to_local_vertex(ep.v).expect("edge endpoint inside the window"),
        }
    }

    fn edge_attrs(&self, e: EdgeId) -> EdgeAttrs {
        *self.grid.graph().edge(e)
    }

    /// Window-restricted neighbors, in ascending global edge id order —
    /// order-isomorphic to the CSR adjacency of the materialized window
    /// grid, which keeps the two backends bit-identical.
    ///
    /// This is the solver's per-settle inner call, so it avoids the
    /// generic `to_local_vertex` per neighbor: a grid edge steps
    /// exactly one of x/y/layer, which the global-id delta classifies
    /// with comparisons alone — no per-neighbor divisions.
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<(VertexId, EdgeId)>) {
        out.clear();
        let (lnx, lny) = (self.nx, self.ny);
        let lplane = lnx * lny;
        let x = v % lnx;
        let y = (v / lnx) % lny;
        let layer = v / lplane;
        let spec = self.grid.spec();
        let gnx = spec.nx;
        let gplane = gnx * spec.ny;
        let g = (layer * spec.ny + (y + self.y0)) * gnx + (x + self.x0);
        for &(w, e) in self.grid.graph().neighbors(g) {
            let lw = if w == g + 1 {
                if x + 1 < lnx {
                    v + 1
                } else {
                    continue;
                }
            } else if w == g.wrapping_sub(1) {
                if x > 0 {
                    v - 1
                } else {
                    continue;
                }
            } else if w == g + gnx {
                if y + 1 < lny {
                    v + lnx
                } else {
                    continue;
                }
            } else if w == g.wrapping_sub(gnx) {
                if y > 0 {
                    v - lnx
                } else {
                    continue;
                }
            } else if w == g + gplane {
                // vias keep their (x, y), so they always stay inside
                v + lplane
            } else {
                debug_assert_eq!(w, g - gplane, "unclassified grid edge delta");
                v - lplane
            };
            out.push((lw, e));
        }
    }
}

impl RoutingSurface for WindowView<'_> {
    fn plane_dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    fn vertex_at(&self, p: Point) -> VertexId {
        assert!(p.x >= 0 && p.y >= 0, "negative window coordinate");
        let (x, y) = (p.x as u32, p.y as u32);
        assert!(x < self.nx && y < self.ny, "point outside the window");
        y * self.nx + x
    }

    fn localize(&self, p: Point) -> Point {
        Point::new(p.x - self.x0 as i32, p.y - self.y0 as i32)
    }

    fn min_cost_per_gcell(&self) -> f64 {
        self.grid.min_cost_per_gcell()
    }

    fn min_delay_per_gcell(&self) -> f64 {
        self.grid.min_delay_per_gcell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn window_edges_map_to_matching_global_edges() {
        let grid = GridSpec::uniform(8, 6, 3).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::build(&grid, &index, 2, 1, 5, 4);
        assert_eq!(w.grid.spec().nx, 4);
        assert_eq!(w.grid.spec().ny, 4);
        let sg = w.grid.graph();
        let gg = grid.graph();
        for e in sg.edge_ids() {
            let global = w.to_global_edge[e as usize];
            let (sa, ga) = (sg.edge(e), gg.edge(global));
            assert_eq!(sa.kind, ga.kind);
            assert_eq!(sa.layer, ga.layer);
            assert_eq!(sa.wire_type, ga.wire_type);
            // endpoints correspond under translation
            let sep = sg.endpoints(e);
            let (cu, cv) = (w.grid.coord(sep.u), w.grid.coord(sep.v));
            let gu = grid.vertex(cu.x + 2, cu.y + 1, cu.layer);
            let gv = grid.vertex(cv.x + 2, cv.y + 1, cv.layer);
            let gep = gg.endpoints(global);
            assert!(
                (gep.u == gu && gep.v == gv) || (gep.u == gv && gep.v == gu),
                "edge {e} endpoints mismatch"
            );
        }
    }

    #[test]
    fn edge_index_round_trips_every_edge() {
        // every global edge — parallel wire types included — resolves
        // through the dense lookup, in either endpoint order
        let mut spec = GridSpec::uniform(5, 4, 3);
        spec.layers[1].wire_types.push(crate::grid::WireTypeSpec {
            cost_per_gcell: 2.0,
            delay_per_gcell: 0.25,
            capacity: 3.0,
        });
        let grid = spec.build();
        let index = EdgeIndex::new(&grid);
        let g = grid.graph();
        for e in g.edge_ids() {
            let ep = g.endpoints(e);
            let a = g.edge(e);
            assert_eq!(index.lookup(&grid, ep.u, ep.v, a.kind, a.wire_type), Some(e));
            assert_eq!(index.lookup(&grid, ep.v, ep.u, a.kind, a.wire_type), Some(e));
        }
        // misses: non-adjacent pair, absent wire type, wrong kind
        let (u, v) = (grid.vertex(0, 0, 0), grid.vertex(3, 3, 0));
        assert_eq!(index.lookup(&grid, u, v, EdgeKind::Wire, 0), None);
        let e0 = g.edge_ids().next().expect("edges exist");
        let ep = g.endpoints(e0);
        assert_eq!(index.lookup(&grid, ep.u, ep.v, EdgeKind::Wire, 9), None);
        assert_eq!(index.lookup(&grid, ep.u, ep.v, EdgeKind::Via, 0), None);
    }

    #[test]
    fn around_clamps_to_grid() {
        let grid = GridSpec::uniform(5, 5, 2).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::around(&grid, &index, &[Point::new(0, 0), Point::new(4, 4)], 10);
        assert_eq!(w.grid.spec().nx, 5);
        assert_eq!(w.grid.spec().ny, 5);
        assert_eq!(w.x0, 0);
    }

    #[test]
    fn view_matches_materialized_window_structure() {
        // The zero-copy view and the materialized window must agree:
        // same vertex id layout, and for every vertex the same neighbor
        // sequence under the local→global edge translation.
        let grid = GridSpec::uniform(9, 7, 3).build();
        let index = EdgeIndex::new(&grid);
        for (x0, y0, x1, y1) in [(2, 1, 6, 5), (0, 0, 8, 6), (3, 3, 3, 3), (7, 0, 20, 2)] {
            let w = GridWindow::build(&grid, &index, x0, y0, x1, y1);
            let v = WindowView::new(&grid, x0, y0, x1, y1);
            let sg = w.grid.graph();
            assert_eq!(v.num_vertices(), sg.num_vertices());
            assert_eq!(v.dims(), (w.grid.spec().nx, w.grid.spec().ny));
            let mut nbrs = Vec::new();
            for lv in 0..sg.num_vertices() as VertexId {
                v.neighbors_into(lv, &mut nbrs);
                let want: Vec<(VertexId, EdgeId)> = sg
                    .neighbors(lv)
                    .iter()
                    .map(|&(wv, we)| (wv, w.to_global_edge[we as usize]))
                    .collect();
                assert_eq!(nbrs, want, "window ({x0},{y0})-({x1},{y1}) vertex {lv}");
                for &(_, e) in &nbrs {
                    let ep = v.endpoints(e);
                    assert!(ep.u == lv || ep.v == lv, "endpoints map back into the window");
                }
            }
        }
    }

    #[test]
    fn view_around_matches_window_around() {
        let grid = GridSpec::uniform(10, 10, 2).build();
        let index = EdgeIndex::new(&grid);
        let pts = [Point::new(2, 3), Point::new(7, 5)];
        let w = GridWindow::around(&grid, &index, &pts, 2);
        let v = WindowView::around(&grid, &pts, 2);
        assert_eq!(v.origin(), (w.x0, w.y0));
        assert_eq!(v.dims(), (w.grid.spec().nx, w.grid.spec().ny));
        assert_eq!(v.localize(Point::new(4, 4)), w.localize(Point::new(4, 4)));
        let p = v.localize(pts[0]);
        assert_eq!(v.vertex_at(p), w.grid.vertex_at(p));
    }

    #[test]
    fn view_vertex_roundtrip_and_attrs() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let v = WindowView::new(&grid, 1, 2, 4, 5);
        for lv in 0..v.num_vertices() as VertexId {
            let g = v.to_global_vertex(lv);
            assert_eq!(v.to_local_vertex(g), Some(lv));
        }
        // vertices outside the window do not map
        assert_eq!(v.to_local_vertex(grid.vertex(0, 0, 0)), None);
        assert_eq!(v.to_local_vertex(grid.vertex(5, 5, 1)), None);
        // edge attrs come straight from the global graph
        let mut nbrs = Vec::new();
        v.neighbors_into(0, &mut nbrs);
        for &(_, e) in &nbrs {
            assert_eq!(v.edge_attrs(e), *grid.graph().edge(e));
        }
    }

    #[test]
    fn slice_into_reuses_buffer() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::build(&grid, &index, 1, 1, 4, 4);
        let global: Vec<f64> = (0..grid.graph().num_edges()).map(|i| i as f64).collect();
        let mut buf = vec![0.0; 3];
        w.slice_into(&global, &mut buf);
        assert_eq!(buf, w.slice(&global));
    }

    #[test]
    fn localize_and_slice() {
        let grid = GridSpec::uniform(6, 6, 2).build();
        let index = EdgeIndex::new(&grid);
        let w = GridWindow::build(&grid, &index, 1, 2, 4, 5);
        assert_eq!(w.localize(Point::new(3, 4)), Point::new(2, 2));
        let global: Vec<f64> = (0..grid.graph().num_edges()).map(|i| i as f64).collect();
        let local = w.slice(&global);
        for (le, &v) in local.iter().enumerate() {
            assert_eq!(v, w.to_global_edge[le] as f64);
        }
    }
}
