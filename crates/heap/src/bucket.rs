//! Monotone bucket (Dial) queue over quantized `f64` keys.
//!
//! Grid edge costs are bounded and near-uniform, so the label keys of a
//! windowed search cluster into a narrow band: a comparison heap pays
//! `O(log n)` per operation to maintain an order that an array of
//! buckets indexes directly. [`BucketQueue`] quantizes each key by a
//! per-solve quantum (derived from the minimum positive edge cost) and
//! files the label into `key / quantum`'s bucket; extraction walks a
//! cursor over the bucket array instead of sifting a heap.
//!
//! Two departures from a textbook Dial queue keep it *exact* rather
//! than approximate, because this solver cannot tolerate approximate
//! extraction order:
//!
//! * **Within a bucket, entries are a tiny binary heap** ordered by the
//!   total `(key, search, vertex)` order — the same order
//!   [`TwoLevelHeap`] serves. A plain FIFO bucket would pop equal-quantum
//!   labels in arrival order, which is both nondeterministic across
//!   queue implementations and *wrong* under A*: with a consistent
//!   lower bound, a relaxation may produce a key in the currently
//!   draining bucket but smaller than its remaining entries, and the
//!   merge solver never revisits settled vertices.
//! * **Keys are not assumed monotone.** Component merges seed fresh
//!   searches at low keys and `note_new_targets` lowers A* bounds
//!   mid-run, so the scan cursor rewinds whenever a push lands below
//!   it. Out-of-range keys (beyond the fixed bucket span, or pushed by
//!   callers with no meaningful quantum) go to an overflow heap that is
//!   consulted whenever the bucket array drains.
//!
//! Deleted and improved labels are removed *lazily*: a bucket entry is
//! live iff its search is alive and its key bit-equals the label slab's
//! current best for that (search, vertex); stale entries are pruned
//! when the cursor meets them. This is why [`BucketQueue::peek_key`]
//! takes `&mut self`, mirroring [`TwoLevelHeap::peek_key`].
//!
//! [`TwoLevelHeap`]: crate::TwoLevelHeap
//! [`TwoLevelHeap::peek_key`]: crate::TwoLevelHeap::peek_key

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of direct-mapped buckets; keys at or beyond
/// `NUM_BUCKETS × quantum` live in the overflow heap.
const NUM_BUCKETS: usize = 4096;

/// A queued label, packed into one word: the monotone bit image of the
/// key in the high 64 bits, then `search`, then `vertex`, so `u128`
/// integer order *is* the shared `(key, search, vertex)` total order
/// and each slot of a bucket heap is a single 16-byte word instead of
/// a padded tuple. `Reverse` makes each per-bucket heap (and the
/// overflow heap) a min-heap in that order.
type Entry = Reverse<u128>;

/// Monotone order-preserving map from a (non-NaN) `f64` key to the
/// high word of an [`Entry`]: non-negative keys get their sign bit
/// set, negative keys get all bits flipped, so unsigned integer order
/// on the images equals numeric order on the keys. `-0.0` is
/// canonicalized to `+0.0` *before* mapping: numerically (and under
/// `OrderedF64`, which both queue backends historically shared)
/// `-0.0 == +0.0`, so the tie must fall through to `(search, vertex)`
/// — the raw bit images would instead sort every `-0.0` strictly
/// first. The canonicalization is invisible to the label slab's
/// liveness check, which compares keys with `f64` equality.
#[inline]
fn pack(key: f64, search: u32, vertex: u32) -> u128 {
    let b = (key + 0.0).to_bits(); // -0.0 + 0.0 == +0.0; identity otherwise
    let ord = if b >> 63 == 1 { !b } else { b | (1u64 << 63) };
    ((ord as u128) << 64) | ((search as u128) << 32) | vertex as u128
}

/// Exact inverse of [`pack`] (up to the `-0.0 → +0.0`
/// canonicalization, which `f64` equality cannot observe).
#[inline]
fn unpack(e: u128) -> (f64, u32, u32) {
    let ord = (e >> 64) as u64;
    let b = if ord >> 63 == 1 { ord ^ (1u64 << 63) } else { !ord };
    (f64::from_bits(b), (e >> 32) as u32, e as u32)
}

/// Per-search label slab: best key per vertex, epoch-stamped so
/// clearing a retired search is an `O(1)` epoch bump and the backing
/// arrays stay warm across pooled reuse (same trick as the
/// `StampedPos` map backing [`TwoLevelHeap`](crate::TwoLevelHeap)).
#[derive(Debug, Clone)]
struct KeySlab {
    stamp: Vec<u32>,
    key: Vec<f64>,
    epoch: u32,
    /// Labels currently queued (created and not yet popped).
    live: usize,
}

impl Default for KeySlab {
    fn default() -> Self {
        // epochs start at 1: stamp 0 (the resize fill and the `remove`
        // sentinel) must never read as live
        KeySlab { stamp: Vec::new(), key: Vec::new(), epoch: 1, live: 0 }
    }
}

impl KeySlab {
    fn get(&self, v: u32) -> Option<f64> {
        match self.stamp.get(v as usize) {
            Some(&s) if s == self.epoch => Some(self.key[v as usize]),
            _ => None,
        }
    }

    fn set(&mut self, v: u32, k: f64) {
        let i = v as usize;
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
            self.key.resize(i + 1, 0.0);
        }
        self.stamp[i] = self.epoch;
        self.key[i] = k;
    }

    fn remove(&mut self, v: u32) {
        // 0 is never a live epoch (epochs start at 1)
        self.stamp[v as usize] = 0;
    }

    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.live = 0;
    }
}

/// Where [`BucketQueue::settle_min`] found the global minimum.
#[derive(Clone, Copy)]
enum Loc {
    Main(usize),
    Overflow,
}

/// Monotone bucket queue over (search, vertex, key) triples — the Dial
/// alternative to [`TwoLevelHeap`](crate::TwoLevelHeap), sharing its
/// exact surface *and its exact pop order* `(key, search, vertex)`, so
/// the solver can switch queues without changing a single routed bit.
///
/// ```
/// use cds_heap::BucketQueue;
/// let mut q = BucketQueue::new();
/// q.begin_solve(1.0); // quantum: min positive edge cost
/// let a = q.add_search();
/// let b = q.add_search();
/// q.push(a, 10, 2.0);
/// q.push(b, 20, 1.0);
/// q.push(a, 11, 3.0);
/// assert_eq!(q.pop(), Some((b, 20, 1.0)));
/// assert_eq!(q.pop(), Some((a, 10, 2.0)));
/// assert_eq!(q.pop(), Some((a, 11, 3.0)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct BucketQueue {
    /// `1 / quantum`; multiplying is cheaper than dividing per push.
    quantum_inv: f64,
    /// Direct-mapped buckets, each a tiny min-heap in the total order.
    /// Cleared lazily via `bucket_gen` so a solve touches only the
    /// buckets it uses.
    buckets: Vec<BinaryHeap<Entry>>,
    bucket_gen: Vec<u32>,
    epoch: u32,
    /// Keys at or beyond the bucket span. Strictly greater than every
    /// in-range key (disjoint quantized ranges), so it is consulted
    /// only when the bucket array holds no live entry.
    overflow: BinaryHeap<Entry>,
    /// No live entry sits in `buckets[..scan_from]`; pushes below the
    /// cursor rewind it (keys are not assumed monotone).
    scan_from: usize,
    slabs: Vec<Option<KeySlab>>,
    pool: Vec<KeySlab>,
    len: usize,
    scans: u64,
}

impl Default for BucketQueue {
    fn default() -> Self {
        BucketQueue {
            quantum_inv: 1.0,
            buckets: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            bucket_gen: vec![0; NUM_BUCKETS],
            epoch: 1,
            overflow: BinaryHeap::new(),
            scan_from: NUM_BUCKETS,
            slabs: Vec::new(),
            pool: Vec::new(),
            len: 0,
            scans: 0,
        }
    }
}

impl BucketQueue {
    /// Creates an empty queue with a quantum of 1.0; call
    /// [`begin_solve`](Self::begin_solve) to set the per-solve quantum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a new solve with the given key quantum (derived from
    /// the minimum positive edge cost of the instance). Any positive
    /// finite quantum is *correct* — extraction order never depends on
    /// it — a misestimate only shifts work between the bucket cursor
    /// (quantum too small: many empty buckets) and the per-bucket heaps
    /// (too large: fat buckets). Non-positive or non-finite hints fall
    /// back to 1.0. All allocations are kept.
    pub fn begin_solve(&mut self, quantum: f64) {
        self.clear();
        self.quantum_inv = if quantum.is_finite() && quantum > 0.0 { quantum.recip() } else { 1.0 };
    }

    /// Registers a new search and returns its id.
    pub fn add_search(&mut self) -> u32 {
        let id = self.slabs.len() as u32;
        let slab = self.pool.pop().unwrap_or_default();
        debug_assert_eq!(slab.live, 0, "pooled slabs are cleared on retire");
        self.slabs.push(Some(slab));
        id
    }

    /// Drops a search and all its queued labels; its bucket entries are
    /// pruned lazily when the scan cursor meets them. The slab's
    /// storage is retained for the next [`add_search`](Self::add_search).
    ///
    /// # Panics
    ///
    /// Panics if `search` was never added.
    pub fn remove_search(&mut self, search: u32) {
        let slot = &mut self.slabs[search as usize];
        if let Some(mut slab) = slot.take() {
            self.len -= slab.live;
            slab.clear();
            self.pool.push(slab);
        }
    }

    /// Removes every search and label while keeping all allocations.
    /// After `clear`, search ids restart from zero. Used buckets are
    /// invalidated by one epoch bump, not walked.
    pub fn clear(&mut self) {
        for slot in &mut self.slabs {
            if let Some(mut slab) = slot.take() {
                slab.clear();
                self.pool.push(slab);
            }
        }
        self.slabs.clear();
        if self.epoch == u32::MAX {
            for b in &mut self.buckets {
                b.clear();
            }
            self.bucket_gen.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.overflow.clear();
        self.scan_from = NUM_BUCKETS;
        self.len = 0;
        self.scans = 0;
    }

    /// Whether `search` is still alive.
    pub fn is_alive(&self, search: u32) -> bool {
        self.slabs.get(search as usize).is_some_and(|s| s.is_some())
    }

    /// Total number of queued labels over all live searches.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no labels are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buckets the cursor advanced over since
    /// [`begin_solve`](Self::begin_solve) — the price Dial pays instead
    /// of heap sifts.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Bucket index for `key`: `NUM_BUCKETS` means the overflow heap.
    /// Negative keys clamp to bucket 0 (the cast saturates), which is
    /// harmless: bucket 0 is scanned first, and order *within* a bucket
    /// is exact regardless of quantization.
    #[inline]
    fn bucket_of(&self, key: f64) -> usize {
        ((key * self.quantum_inv) as usize).min(NUM_BUCKETS)
    }

    /// The bucket at `b`, lazily cleared if it still holds entries from
    /// a pre-`clear` era.
    #[inline]
    fn bucket(&mut self, b: usize) -> &mut BinaryHeap<Entry> {
        if self.bucket_gen[b] != self.epoch {
            self.bucket_gen[b] = self.epoch;
            self.buckets[b].clear();
        }
        &mut self.buckets[b]
    }

    /// Whether a queued entry is live: its search alive and its key
    /// bit-equal to the slab's best (improvements are strict decreases,
    /// so an equal key can only be the entry that recorded it).
    #[inline]
    fn is_live(&self, search: u32, vertex: u32, key: f64) -> bool {
        self.slabs[search as usize].as_ref().is_some_and(|s| s.get(vertex) == Some(key))
    }

    /// Queues (or improves) the label of `vertex` in `search`.
    /// Returns `true` if the label changed. Quietly ignores dead
    /// searches.
    ///
    /// # Panics
    ///
    /// Panics if `key` is NaN.
    pub fn push(&mut self, search: u32, vertex: u32, key: f64) -> bool {
        assert!(!key.is_nan(), "NaN key");
        let Some(slab) = self.slabs[search as usize].as_mut() else {
            return false;
        };
        match slab.get(vertex) {
            Some(cur) if key >= cur => false,
            prior => {
                if prior.is_none() {
                    slab.live += 1;
                    self.len += 1;
                }
                slab.set(vertex, key);
                let b = self.bucket_of(key);
                let entry = Reverse(pack(key, search, vertex));
                if b == NUM_BUCKETS {
                    self.overflow.push(entry);
                } else {
                    self.bucket(b).push(entry);
                    if b < self.scan_from {
                        self.scan_from = b;
                    }
                }
                true
            }
        }
    }

    /// Minimum key over all searches, if any. `&mut self` for the same
    /// reason as [`TwoLevelHeap::peek_key`](crate::TwoLevelHeap::peek_key):
    /// deletions are lazy, and answering the question prunes dead
    /// entries and advances the scan cursor.
    pub fn peek_key(&mut self) -> Option<f64> {
        self.settle_min().map(|loc| {
            let Reverse(e) = *match loc {
                // INVARIANT: settle_min returns a location only after discarding dead tops and observing a live entry there.
                Loc::Main(b) => self.buckets[b].peek().expect("settled bucket has a live top"),
                // INVARIANT: settle_min discards dead overflow tops before returning Loc::Overflow.
                Loc::Overflow => self.overflow.peek().expect("settled overflow has a live top"),
            };
            unpack(e).0
        })
    }

    /// Extracts the globally smallest (search, vertex, key) under the
    /// total `(key, search, vertex)` order.
    pub fn pop(&mut self) -> Option<(u32, u32, f64)> {
        let loc = self.settle_min()?;
        let Reverse(e) = match loc {
            Loc::Main(b) => self.buckets[b].pop(),
            Loc::Overflow => self.overflow.pop(),
        }
        // INVARIANT: settle_min just observed a live top at loc, and nothing popped between.
        .expect("settled location has a live top");
        let (k, search, vertex) = unpack(e);
        // INVARIANT: a search's slab outlives its queue entries: remove_search clears entries before the slab is freed.
        let slab = self.slabs[search as usize].as_mut().expect("live entry has a live search");
        slab.remove(vertex);
        slab.live -= 1;
        self.len -= 1;
        Some((search, vertex, k))
    }

    /// Locates the global minimum live entry, pruning stale entries and
    /// advancing the cursor past drained buckets on the way. Quantized
    /// bucket ranges are disjoint and ordered, so the first bucket with
    /// a live top holds the minimum key, its per-bucket heap breaks the
    /// in-bucket tie exactly, and the overflow heap (all keys beyond
    /// the span) is correct to consult only when the array is empty.
    fn settle_min(&mut self) -> Option<Loc> {
        if self.len == 0 {
            return None;
        }
        while self.scan_from < NUM_BUCKETS {
            let b = self.scan_from;
            while let Some(&Reverse(e)) = self.bucket(b).peek() {
                let (k, s, v) = unpack(e);
                if self.is_live(s, v, k) {
                    return Some(Loc::Main(b));
                }
                self.bucket(b).pop();
            }
            self.scan_from += 1;
            self.scans += 1;
        }
        loop {
            let &Reverse(e) = self.overflow.peek()?;
            let (k, s, v) = unpack(e);
            if self.is_live(s, v, k) {
                return Some(Loc::Overflow);
            }
            self.overflow.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoLevelHeap;
    use proptest::prelude::*;

    #[test]
    fn single_search_behaves_like_heap() {
        let mut q = BucketQueue::new();
        q.begin_solve(1.0);
        let s = q.add_search();
        for (v, k) in [(5u32, 5.0), (1, 1.0), (3, 3.0)] {
            q.push(s, v, k);
        }
        assert_eq!(q.peek_key(), Some(1.0));
        assert_eq!(q.pop(), Some((s, 1, 1.0)));
        assert_eq!(q.pop(), Some((s, 3, 3.0)));
        assert_eq!(q.pop(), Some((s, 5, 5.0)));
        assert_eq!(q.pop(), None);
        assert!(q.scans() > 0, "the cursor did the ordering work");
    }

    #[test]
    fn decrease_key_refiles_and_prunes_the_stale_entry() {
        let mut q = BucketQueue::new();
        q.begin_solve(1.0);
        let a = q.add_search();
        let b = q.add_search();
        q.push(a, 0, 10.0);
        q.push(b, 0, 9.0);
        assert!(q.push(a, 0, 1.0), "decrease-key refiles into a lower bucket");
        assert!(!q.push(a, 0, 5.0), "increases are ignored");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((a, 0, 1.0)));
        assert_eq!(q.pop(), Some((b, 0, 9.0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn removed_search_is_skipped() {
        let mut q = BucketQueue::new();
        q.begin_solve(1.0);
        let a = q.add_search();
        let b = q.add_search();
        q.push(a, 1, 1.0);
        q.push(b, 2, 2.0);
        q.remove_search(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((b, 2, 2.0)));
        assert_eq!(q.pop(), None);
        assert!(!q.is_alive(a));
        assert!(!q.push(a, 9, 0.1), "push to dead search ignored");
    }

    #[test]
    fn overflow_keys_and_rewinds_stay_exact() {
        // keys beyond NUM_BUCKETS × quantum land in overflow; a later
        // low push must rewind the cursor and still win
        let mut q = BucketQueue::new();
        q.begin_solve(1.0);
        let s = q.add_search();
        q.push(s, 1, 1e9);
        q.push(s, 2, (NUM_BUCKETS as f64) + 0.5);
        assert_eq!(q.peek_key(), Some((NUM_BUCKETS as f64) + 0.5));
        q.push(s, 3, 2.25); // rewind below the (drained) array cursor
        assert_eq!(q.pop(), Some((s, 3, 2.25)));
        assert_eq!(q.pop(), Some((s, 2, (NUM_BUCKETS as f64) + 0.5)));
        assert_eq!(q.pop(), Some((s, 1, 1e9)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_keeps_reusable_state() {
        let mut q = BucketQueue::new();
        q.begin_solve(0.25);
        let a = q.add_search();
        let b = q.add_search();
        q.push(a, 1, 1.0);
        q.push(b, 2, 2.0);
        q.pop();
        q.begin_solve(2.0);
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        let s = q.add_search();
        assert_eq!(s, 0, "ids restart from zero");
        q.push(s, 7, 0.5);
        assert_eq!(q.pop(), Some((s, 7, 0.5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_keys_drain_by_search_then_vertex() {
        // same flood as the TwoLevelHeap test — one contract, two queues
        let mut q = BucketQueue::new();
        q.begin_solve(1.0);
        let a = q.add_search();
        let b = q.add_search();
        q.push(b, 9, 1.0);
        q.push(b, 2, 1.0);
        q.push(a, 7, 1.0);
        q.push(a, 3, 1.0);
        q.push(b, 50, 0.5);
        assert_eq!(q.pop(), Some((b, 50, 0.5)));
        assert_eq!(q.pop(), Some((a, 3, 1.0)));
        assert_eq!(q.pop(), Some((a, 7, 1.0)));
        assert_eq!(q.pop(), Some((b, 2, 1.0)));
        assert_eq!(q.pop(), Some((b, 9, 1.0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn negative_zero_ties_break_on_search_then_vertex() {
        // -0.0 == +0.0 numerically, so the tie must fall through to
        // (search, vertex) exactly as TwoLevelHeap resolves it: the
        // packed-word canonicalization is what keeps the raw bit image
        // of -0.0 from jumping the queue.
        let mut q = BucketQueue::new();
        let mut h = TwoLevelHeap::new();
        q.begin_solve(1.0);
        let a = q.add_search();
        let b = q.add_search();
        assert_eq!(a, h.add_search());
        assert_eq!(b, h.add_search());
        for (s, v, k) in [(b, 4u32, 0.0f64), (a, 9, -0.0), (a, 2, 0.0), (b, 1, -0.0)] {
            assert_eq!(q.push(s, v, k), h.push(s, v, k));
        }
        loop {
            let (x, y) = (q.pop(), h.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn packed_entries_round_trip_and_order_like_key_tuples() {
        // the u128 image must be an order isomorphism of the
        // (key, search, vertex) tuple order over non-NaN keys
        let keys = [-1.5e300, -2.0, -0.0, 0.0, 1e-300, 0.5, 1.0, 4096.5, 1.5e300];
        let mut entries = Vec::new();
        for &k in &keys {
            for s in [0u32, 1, u32::MAX] {
                for v in [0u32, 7, u32::MAX] {
                    let e = pack(k, s, v);
                    let (k2, s2, v2) = unpack(e);
                    assert_eq!(k2, k, "key survives the round trip under f64 equality");
                    assert_eq!((s2, v2), (s, v));
                    entries.push(((k, s, v), e));
                }
            }
        }
        for &((ka, sa, va), ea) in &entries {
            for &((kb, sb, vb), eb) in &entries {
                let tuple =
                    (ka, sa, va).partial_cmp(&(kb, sb, vb)).expect("no NaN keys in the table");
                assert_eq!(ea.cmp(&eb), tuple, "{ka}/{sa}/{va} vs {kb}/{sb}/{vb}");
            }
        }
    }

    proptest! {
        /// The cross-queue determinism contract, pinned: under random
        /// interleavings of pushes (including same-key floods from the
        /// tiny key pool and far-out overflow keys), peeks, pops, and
        /// search removals, `BucketQueue` and `TwoLevelHeap` agree on
        /// every observable — each pop's exact (search, vertex, key)
        /// triple, every peeked key, every push's return value, and the
        /// running length.
        #[test]
        fn pop_sequence_matches_two_level_heap(
            n_searches in 1usize..6,
            quantum in (0u8..3).prop_map(|q| [1.0f64, 0.125, 37.0][q as usize]),
            ops in proptest::collection::vec(
                (0u32..6, 0u32..40, (0u8..10).prop_map(|k| if k < 8 {
                    // mostly a tiny pool: same-key floods are the point
                    k as f64 * 0.5
                } else {
                    // overflow-bucket territory for every quantum above
                    (k - 7) as f64 * 200_000.0
                }), 0u8..10),
                1..300,
            ),
        ) {
            let mut heap = TwoLevelHeap::new();
            let mut dial = BucketQueue::new();
            dial.begin_solve(quantum);
            let mut sids: Vec<u32> = Vec::new();
            for _ in 0..n_searches {
                let s = heap.add_search();
                prop_assert_eq!(s, dial.add_search());
                sids.push(s);
            }
            for (s, v, k, action) in ops {
                let sid = sids[(s as usize) % n_searches];
                if action < 6 {
                    prop_assert_eq!(heap.push(sid, v, k), dial.push(sid, v, k));
                } else if action < 8 {
                    prop_assert_eq!(heap.peek_key(), dial.peek_key());
                    prop_assert_eq!(heap.pop(), dial.pop());
                } else if heap.is_alive(sid) {
                    heap.remove_search(sid);
                    dial.remove_search(sid);
                }
                prop_assert_eq!(heap.len(), dial.len());
            }
            loop {
                let (a, b) = (heap.pop(), dial.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
