//! Binary min-heaps over `u32` ids with decrease-key.
//!
//! The heap logic is generic over the *position map* that tracks where each
//! id sits in the heap array:
//!
//! * [`IndexedBinaryHeap`] uses a dense `Vec` — right for single-source
//!   Dijkstra over dense vertex ids (embedding, landmarks, baselines);
//! * [`StampedIndexedHeap`] uses a dense `Vec` with epoch stamps — the
//!   per-sink sub-heaps of [`TwoLevelHeap`](crate::TwoLevelHeap): ids are
//!   the solver's compact window-local vertex ids, slabs grow on demand
//!   and stay warm across pooled reuse, and `clear` is one epoch bump
//!   instead of an `O(n)` wipe;
//! * [`SparseIndexedHeap`] uses a `HashMap` — for callers whose id space
//!   is genuinely unbounded.

use std::collections::HashMap;

/// Maps an id to its index in the heap array.
///
/// Implementation detail of the heaps; sealed by being private to the
/// crate's public surface (only the two aliases below are exported).
pub trait PositionMap: Default {
    /// Creates a map able to hold ids `0..capacity` (dense) or any ids
    /// (sparse, capacity is a size hint).
    fn with_capacity(capacity: usize) -> Self;
    /// Position of `id`, if queued.
    fn get(&self, id: u32) -> Option<u32>;
    /// Records `id` at heap index `p`.
    fn set(&mut self, id: u32, p: u32);
    /// Forgets `id`.
    fn remove(&mut self, id: u32);
    /// Forgets everything.
    fn clear(&mut self);
}

/// Dense position map backed by a `Vec<u32>`.
#[derive(Debug, Clone, Default)]
pub struct DensePos(Vec<u32>);

const NOT_IN_HEAP: u32 = u32::MAX;

impl PositionMap for DensePos {
    fn with_capacity(capacity: usize) -> Self {
        DensePos(vec![NOT_IN_HEAP; capacity])
    }
    fn get(&self, id: u32) -> Option<u32> {
        match self.0[id as usize] {
            NOT_IN_HEAP => None,
            p => Some(p),
        }
    }
    fn set(&mut self, id: u32, p: u32) {
        self.0[id as usize] = p;
    }
    fn remove(&mut self, id: u32) {
        self.0[id as usize] = NOT_IN_HEAP;
    }
    fn clear(&mut self) {
        self.0.fill(NOT_IN_HEAP);
    }
}

/// Dense position map with epoch stamps: membership is `stamp[id] ==
/// epoch`, so [`clear`](PositionMap::clear) is an epoch bump — `O(1)` —
/// and the slabs survive pooled reuse warm. Slabs grow on demand, so ids
/// need no up-front capacity; sizing via `with_capacity` merely
/// pre-grows them.
#[derive(Debug, Clone)]
pub struct StampedPos {
    stamp: Vec<u32>,
    pos: Vec<u32>,
    epoch: u32,
}

impl Default for StampedPos {
    fn default() -> Self {
        StampedPos { stamp: Vec::new(), pos: Vec::new(), epoch: 1 }
    }
}

impl PositionMap for StampedPos {
    fn with_capacity(capacity: usize) -> Self {
        StampedPos { stamp: vec![0; capacity], pos: vec![0; capacity], epoch: 1 }
    }
    fn get(&self, id: u32) -> Option<u32> {
        match self.stamp.get(id as usize) {
            Some(&s) if s == self.epoch => Some(self.pos[id as usize]),
            _ => None,
        }
    }
    fn set(&mut self, id: u32, p: u32) {
        let i = id as usize;
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
            self.pos.resize(i + 1, 0);
        }
        self.stamp[i] = self.epoch;
        self.pos[i] = p;
    }
    fn remove(&mut self, id: u32) {
        // 0 is never a live epoch (epochs start at 1)
        self.stamp[id as usize] = 0;
    }
    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// Sparse position map backed by a `HashMap`.
#[derive(Debug, Clone, Default)]
pub struct SparsePos(HashMap<u32, u32>);

impl PositionMap for SparsePos {
    fn with_capacity(capacity: usize) -> Self {
        SparsePos(HashMap::with_capacity(capacity.min(64)))
    }
    fn get(&self, id: u32) -> Option<u32> {
        self.0.get(&id).copied()
    }
    fn set(&mut self, id: u32, p: u32) {
        self.0.insert(id, p);
    }
    fn remove(&mut self, id: u32) {
        self.0.remove(&id);
    }
    fn clear(&mut self) {
        self.0.clear();
    }
}

/// The shared heap implementation. Use via [`IndexedBinaryHeap`] or
/// [`SparseIndexedHeap`].
///
/// `TIE` selects the comparison: `false` orders by key alone (ties
/// resolve by heap structure — cheapest, and all single-source Dijkstra
/// callers are insensitive to it), `true` orders lexicographically by
/// `(key, id)` so equal-key pops drain in ascending id order. The
/// tie-ordered variant backs [`TwoLevelHeap`](crate::TwoLevelHeap),
/// whose pop sequence is part of the solver's determinism contract and
/// must be reproducible by [`BucketQueue`](crate::BucketQueue).
#[derive(Debug, Clone, Default)]
pub struct RawIndexedHeap<M: PositionMap, const TIE: bool = false> {
    heap: Vec<(f64, u32)>,
    pos: M,
}

/// Dense-id binary min-heap with decrease-key; the workhorse of every
/// single-source Dijkstra in this workspace.
///
/// ```
/// use cds_heap::IndexedBinaryHeap;
/// let mut h = IndexedBinaryHeap::new(3);
/// h.push(2, 9.0);
/// h.push(0, 5.0);
/// assert_eq!(h.peek(), Some((0, 5.0)));
/// h.decrease_key(2, 1.0);
/// assert_eq!(h.pop(), Some((2, 1.0)));
/// ```
pub type IndexedBinaryHeap = RawIndexedHeap<DensePos>;

/// Epoch-stamped dense-id binary min-heap with decrease-key; the
/// per-sink sub-heaps of [`TwoLevelHeap`](crate::TwoLevelHeap). Ids are
/// the solver's compact vertex ids; slabs grow on demand and `clear` is
/// `O(1)`.
///
/// ```
/// use cds_heap::StampedIndexedHeap;
/// let mut h = StampedIndexedHeap::new(0);
/// h.push(7, 2.0); // slabs grow on demand
/// h.clear(); // O(1): epoch bump
/// h.push(7, 1.0);
/// assert_eq!(h.pop(), Some((7, 1.0)));
/// ```
pub type StampedIndexedHeap = RawIndexedHeap<StampedPos>;

/// [`StampedIndexedHeap`] with the total `(key, id)` order: equal-key
/// pops drain in ascending id order instead of heap-structural order.
/// Backs the per-search sub-heaps of
/// [`TwoLevelHeap`](crate::TwoLevelHeap), where the pop sequence is
/// pinned by the cross-queue determinism contract (see
/// [`BucketQueue`](crate::BucketQueue)).
///
/// ```
/// use cds_heap::TieStampedIndexedHeap;
/// let mut h = TieStampedIndexedHeap::new(0);
/// h.push(9, 2.0);
/// h.push(4, 2.0);
/// assert_eq!(h.pop(), Some((4, 2.0))); // equal keys: smaller id first
/// assert_eq!(h.pop(), Some((9, 2.0)));
/// ```
pub type TieStampedIndexedHeap = RawIndexedHeap<StampedPos, true>;

/// Sparse-id binary min-heap with decrease-key, for unbounded id spaces.
///
/// ```
/// use cds_heap::SparseIndexedHeap;
/// let mut h = SparseIndexedHeap::new(0);
/// h.push(1_000_000, 2.0); // ids need not be dense
/// assert_eq!(h.pop(), Some((1_000_000, 2.0)));
/// ```
pub type SparseIndexedHeap = RawIndexedHeap<SparsePos>;

impl<M: PositionMap, const TIE: bool> RawIndexedHeap<M, TIE> {
    /// Creates an empty heap. For the dense variant `capacity` must bound
    /// all ids ever pushed; for the sparse variant it is a size hint.
    pub fn new(capacity: usize) -> Self {
        RawIndexedHeap { heap: Vec::new(), pos: M::with_capacity(capacity) }
    }

    /// Whether entry `a` sorts strictly before entry `b`: by key, with
    /// the id tie-break iff `TIE`.
    #[inline]
    fn before(&self, a: usize, b: usize) -> bool {
        let (ka, ia) = self.heap[a];
        let (kb, ib) = self.heap[b];
        if TIE {
            (ka, ia) < (kb, ib)
        } else {
            ka < kb
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Smallest (id, key) without removing it.
    pub fn peek(&self) -> Option<(u32, f64)> {
        self.heap.first().map(|&(k, id)| (id, k))
    }

    /// Current key of `id` if queued.
    pub fn key_of(&self, id: u32) -> Option<f64> {
        self.pos.get(id).map(|p| self.heap[p as usize].0)
    }

    /// Whether `id` is currently queued.
    pub fn contains(&self, id: u32) -> bool {
        self.pos.get(id).is_some()
    }

    /// Inserts `id` with `key`, or lowers its key if already queued with a
    /// larger one. Returns `true` if the heap changed.
    ///
    /// # Panics
    ///
    /// Panics if `key` is NaN (and, for the dense variant, if `id` exceeds
    /// the capacity).
    pub fn push(&mut self, id: u32, key: f64) -> bool {
        assert!(!key.is_nan(), "NaN key");
        match self.pos.get(id) {
            None => {
                self.heap.push((key, id));
                self.pos.set(id, (self.heap.len() - 1) as u32);
                self.sift_up(self.heap.len() - 1);
                true
            }
            Some(p) if key < self.heap[p as usize].0 => {
                self.heap[p as usize].0 = key;
                self.sift_up(p as usize);
                true
            }
            Some(_) => false,
        }
    }

    /// Lowers the key of a queued `id`. Equivalent to [`push`](Self::push)
    /// for already-queued ids; provided for intent-revealing call sites.
    pub fn decrease_key(&mut self, id: u32, key: f64) -> bool {
        self.push(id, key)
    }

    /// Removes and returns the smallest (id, key).
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let (key, id) = self.heap.swap_remove(0);
        self.pos.remove(id);
        if !self.heap.is_empty() {
            self.pos.set(self.heap[0].1, 0);
            self.sift_down(0);
        }
        Some((id, key))
    }

    /// Removes every element. Keeps the capacity.
    pub fn clear(&mut self) {
        self.pos.clear();
        self.heap.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.before(i, parent) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.before(l, smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.before(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.set(self.heap[a].1, a as u32);
        self.pos.set(self.heap[b].1, b as u32);
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.heap.len() {
            assert!(self.heap[(i - 1) / 2].0 <= self.heap[i].0, "heap order");
        }
        for (i, &(_, id)) in self.heap.iter().enumerate() {
            assert_eq!(self.pos.get(id), Some(i as u32), "pos map");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_pop_ordering() {
        let mut h = IndexedBinaryHeap::new(10);
        for (id, k) in [(3u32, 5.0), (1, 2.0), (7, 8.0), (2, 1.0)] {
            h.push(id, k);
            h.check_invariants();
        }
        let mut out = Vec::new();
        while let Some((id, _)) = h.pop() {
            out.push(id);
            h.check_invariants();
        }
        assert_eq!(out, vec![2, 1, 3, 7]);
    }

    #[test]
    fn push_existing_only_decreases() {
        let mut h = IndexedBinaryHeap::new(4);
        h.push(0, 5.0);
        assert!(!h.push(0, 7.0), "increase must be ignored");
        assert_eq!(h.key_of(0), Some(5.0));
        assert!(h.push(0, 3.0));
        assert_eq!(h.key_of(0), Some(3.0));
    }

    #[test]
    fn clear_resets_membership() {
        let mut h = IndexedBinaryHeap::new(4);
        h.push(1, 1.0);
        h.push(2, 2.0);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(1));
        h.push(1, 9.0);
        assert_eq!(h.pop(), Some((1, 9.0)));
    }

    #[test]
    fn sparse_accepts_large_ids() {
        let mut h = SparseIndexedHeap::new(0);
        h.push(u32::MAX - 1, 1.0);
        h.push(12345, 0.5);
        assert_eq!(h.pop(), Some((12345, 0.5)));
        assert_eq!(h.pop(), Some((u32::MAX - 1, 1.0)));
    }

    fn reference_run<M: PositionMap>(mut h: RawIndexedHeap<M>, ops: Vec<(u32, f64)>) {
        let mut reference: std::collections::HashMap<u32, f64> = Default::default();
        for (id, key) in ops {
            let cur = reference.get(&id).copied();
            h.push(id, key);
            if cur.is_none_or(|c| key < c) {
                reference.insert(id, key);
            }
            h.check_invariants();
        }
        let mut got = Vec::new();
        while let Some((id, k)) = h.pop() {
            got.push((id, k));
        }
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1, "non-decreasing pops");
        }
        let mut want: Vec<(u32, f64)> = reference.into_iter().collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        got.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        assert_eq!(got, want);
    }

    proptest! {
        /// Both variants agree with a sorted reference under random
        /// workloads, including decrease-key.
        #[test]
        fn matches_reference(ops in proptest::collection::vec((0u32..64, 0.0f64..100.0), 1..200)) {
            reference_run(IndexedBinaryHeap::new(64), ops.clone());
            reference_run(SparseIndexedHeap::new(0), ops);
        }

        /// The tie-ordered variant pops in exact `(key, id)` order, not
        /// merely non-decreasing keys — keys are drawn from a tiny pool
        /// so equal-key runs are the common case.
        #[test]
        fn tie_ordered_pops_in_key_then_id_order(
            ops in proptest::collection::vec((0u32..32, 0u8..4), 1..200),
        ) {
            let mut h = TieStampedIndexedHeap::new(0);
            let mut reference: std::collections::HashMap<u32, f64> = Default::default();
            for &(id, k) in &ops {
                let key = k as f64;
                h.push(id, key);
                let cur = reference.get(&id).copied();
                if cur.is_none_or(|c| key < c) {
                    reference.insert(id, key);
                }
                h.check_invariants();
            }
            let mut want: Vec<(f64, u32)> = reference.into_iter().map(|(id, k)| (k, id)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got = Vec::new();
            while let Some((id, k)) = h.pop() {
                got.push((k, id));
            }
            prop_assert_eq!(got, want, "pop order must be exactly (key, id)");
        }
    }
}
