//! Conventional lazy-deletion heap (ablation baseline).

use crate::ordered::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap without decrease-key: updates push duplicates and `pop`
/// skips entries that are stale with respect to `best`, the caller-supplied
/// current-distance array.
///
/// This is the textbook alternative to [`IndexedBinaryHeap`]; the `heaps`
/// Criterion bench compares the two on Dijkstra workloads.
///
/// ```
/// use cds_heap::LazyHeap;
/// let mut best = vec![f64::INFINITY; 3];
/// let mut h = LazyHeap::new();
/// h.push(0, 4.0); best[0] = 4.0;
/// h.push(0, 2.0); best[0] = 2.0; // duplicate; the 4.0 entry is now stale
/// assert_eq!(h.pop(&best), Some((0, 2.0)));
/// assert_eq!(h.pop(&best), None); // stale entry skipped
/// ```
///
/// [`IndexedBinaryHeap`]: crate::IndexedBinaryHeap
#[derive(Debug, Clone, Default)]
pub struct LazyHeap {
    heap: BinaryHeap<Reverse<(OrderedF64, u32)>>,
}

impl LazyHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue length including stale duplicates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries (not even stale ones) remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes `(id, key)` unconditionally.
    pub fn push(&mut self, id: u32, key: f64) {
        self.heap.push(Reverse((OrderedF64::new(key), id)));
    }

    /// Pops the smallest entry whose key still equals `best[id]`;
    /// entries with `key > best[id]` are discarded as stale.
    pub fn pop(&mut self, best: &[f64]) -> Option<(u32, f64)> {
        while let Some(Reverse((k, id))) = self.heap.pop() {
            if k.get() <= best[id as usize] {
                return Some((id, k.get()));
            }
        }
        None
    }

    /// Discards all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_stale_entries() {
        let mut best = vec![f64::INFINITY; 4];
        let mut h = LazyHeap::new();
        h.push(1, 10.0);
        best[1] = 10.0;
        h.push(1, 3.0);
        best[1] = 3.0;
        h.push(2, 5.0);
        best[2] = 5.0;
        assert_eq!(h.pop(&best), Some((1, 3.0)));
        assert_eq!(h.pop(&best), Some((2, 5.0)));
        assert_eq!(h.pop(&best), None);
        assert!(h.is_empty());
    }
}
