#![forbid(unsafe_code)]
//! Priority queues for label-propagation path searches.
//!
//! The paper (§III-B) observes that global routing graphs have `m ∈ O(n)`,
//! so plain binary heaps beat Fibonacci heaps in practice, and proposes a
//! *two-level* structure for the simultaneous multi-source searches of
//! Algorithm 1: one heap per active sink plus a top-level heap storing the
//! minimum key of each sink heap. This crate implements:
//!
//! * [`OrderedF64`] — a total order over non-NaN `f64` keys,
//! * [`IndexedBinaryHeap`] — a `u32`-keyed binary min-heap with
//!   `decrease-key`, the workhorse of every Dijkstra in this workspace,
//! * [`TwoLevelHeap`] — the paper's structure (§III-B), including the
//!   "operate with a single sink heap until the minimum label in the
//!   top-level heap is exceeded" fast path,
//! * [`BucketQueue`] — a monotone bucket (Dial) queue over quantized
//!   keys: grid edge costs are bounded and near-uniform, so an indexed
//!   bucket array replaces `O(log n)` heap sifts on the solver's hot
//!   path,
//! * [`LazyHeap`] — a conventional lazy-deletion heap used as the ablation
//!   baseline in the `heap` Criterion bench.
//!
//! [`TwoLevelHeap`] and [`BucketQueue`] share the [`LabelQueue`] surface
//! *and the total pop order* `(key, search, vertex)` — the determinism
//! contract that lets the solver switch queues (the
//! [`QueueKind`] knob) without changing a single routed bit.
//!
//! # Examples
//!
//! ```
//! use cds_heap::IndexedBinaryHeap;
//!
//! let mut h = IndexedBinaryHeap::new(4);
//! h.push(0, 3.0);
//! h.push(1, 1.0);
//! h.decrease_key(0, 0.5);
//! assert_eq!(h.pop(), Some((0, 0.5)));
//! assert_eq!(h.pop(), Some((1, 1.0)));
//! assert_eq!(h.pop(), None);
//! ```

pub mod bucket;
pub mod indexed;
pub mod lazy;
pub mod ordered;
pub mod two_level;

pub use bucket::BucketQueue;
pub use indexed::{
    IndexedBinaryHeap, SparseIndexedHeap, StampedIndexedHeap, TieStampedIndexedHeap,
};
pub use lazy::LazyHeap;
pub use ordered::OrderedF64;
pub use two_level::TwoLevelHeap;

/// Which label queue drives the solver's simultaneous searches.
///
/// Both serve the identical total pop order, so the choice is purely a
/// performance knob (`queue=heap|bucket` on the router surface):
/// results are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The paper's §III-B two-level comparison heap ([`TwoLevelHeap`]).
    Heap,
    /// The monotone bucket queue ([`BucketQueue`]) — the fast default.
    #[default]
    Bucket,
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueueKind::Heap => "heap",
            QueueKind::Bucket => "bucket",
        })
    }
}

impl std::str::FromStr for QueueKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueKind::Heap),
            "bucket" => Ok(QueueKind::Bucket),
            other => Err(format!("unknown queue kind {other:?} (expected heap|bucket)")),
        }
    }
}

/// The queue surface the solver's merge loop drives: simultaneous
/// searches with dense ids, decrease-only label pushes, and extraction
/// in the shared total order `(key, search, vertex)`.
///
/// `peek_key` takes `&mut self` deliberately: both implementations
/// delete lazily, and answering "what is the global minimum" prunes
/// dead entries — see
/// [`TwoLevelHeap::peek_key`](TwoLevelHeap::peek_key) for the full
/// argument.
pub trait LabelQueue {
    /// Resets for a new solve, keeping allocations. `quantum` is the
    /// key granularity hint (minimum positive edge cost); comparison
    /// queues ignore it, and any positive value is correct for the
    /// bucket queue.
    fn begin_solve(&mut self, quantum: f64);
    /// Registers a new search and returns its dense id.
    fn add_search(&mut self) -> u32;
    /// Drops a search and all its queued labels.
    fn remove_search(&mut self, search: u32);
    /// Whether `search` is still alive.
    fn is_alive(&self, search: u32) -> bool;
    /// Total queued labels over all live searches.
    fn len(&self) -> usize;
    /// Whether no labels are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Queues (or improves) the label of `vertex` in `search`; `true`
    /// if the label changed.
    fn push(&mut self, search: u32, vertex: u32, key: f64) -> bool;
    /// Minimum key over all searches, if any.
    fn peek_key(&mut self) -> Option<f64>;
    /// Extracts the globally smallest (search, vertex, key).
    fn pop(&mut self) -> Option<(u32, u32, f64)>;
    /// Buckets scanned since `begin_solve` (0 for comparison queues).
    fn bucket_scans(&self) -> u64;
}

impl LabelQueue for TwoLevelHeap {
    fn begin_solve(&mut self, _quantum: f64) {
        self.clear();
    }
    fn add_search(&mut self) -> u32 {
        TwoLevelHeap::add_search(self)
    }
    fn remove_search(&mut self, search: u32) {
        TwoLevelHeap::remove_search(self, search);
    }
    fn is_alive(&self, search: u32) -> bool {
        TwoLevelHeap::is_alive(self, search)
    }
    fn len(&self) -> usize {
        TwoLevelHeap::len(self)
    }
    fn push(&mut self, search: u32, vertex: u32, key: f64) -> bool {
        TwoLevelHeap::push(self, search, vertex, key)
    }
    fn peek_key(&mut self) -> Option<f64> {
        TwoLevelHeap::peek_key(self)
    }
    fn pop(&mut self) -> Option<(u32, u32, f64)> {
        TwoLevelHeap::pop(self)
    }
    fn bucket_scans(&self) -> u64 {
        0
    }
}

impl LabelQueue for BucketQueue {
    fn begin_solve(&mut self, quantum: f64) {
        BucketQueue::begin_solve(self, quantum);
    }
    fn add_search(&mut self) -> u32 {
        BucketQueue::add_search(self)
    }
    fn remove_search(&mut self, search: u32) {
        BucketQueue::remove_search(self, search);
    }
    fn is_alive(&self, search: u32) -> bool {
        BucketQueue::is_alive(self, search)
    }
    fn len(&self) -> usize {
        BucketQueue::len(self)
    }
    fn push(&mut self, search: u32, vertex: u32, key: f64) -> bool {
        BucketQueue::push(self, search, vertex, key)
    }
    fn peek_key(&mut self) -> Option<f64> {
        BucketQueue::peek_key(self)
    }
    fn pop(&mut self) -> Option<(u32, u32, f64)> {
        BucketQueue::pop(self)
    }
    fn bucket_scans(&self) -> u64 {
        self.scans()
    }
}
