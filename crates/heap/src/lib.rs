//! Priority queues for label-propagation path searches.
//!
//! The paper (§III-B) observes that global routing graphs have `m ∈ O(n)`,
//! so plain binary heaps beat Fibonacci heaps in practice, and proposes a
//! *two-level* structure for the simultaneous multi-source searches of
//! Algorithm 1: one heap per active sink plus a top-level heap storing the
//! minimum key of each sink heap. This crate implements:
//!
//! * [`OrderedF64`] — a total order over non-NaN `f64` keys,
//! * [`IndexedBinaryHeap`] — a `u32`-keyed binary min-heap with
//!   `decrease-key`, the workhorse of every Dijkstra in this workspace,
//! * [`TwoLevelHeap`] — the paper's structure (§III-B), including the
//!   "operate with a single sink heap until the minimum label in the
//!   top-level heap is exceeded" fast path,
//! * [`LazyHeap`] — a conventional lazy-deletion heap used as the ablation
//!   baseline in the `heap` Criterion bench.
//!
//! # Examples
//!
//! ```
//! use cds_heap::IndexedBinaryHeap;
//!
//! let mut h = IndexedBinaryHeap::new(4);
//! h.push(0, 3.0);
//! h.push(1, 1.0);
//! h.decrease_key(0, 0.5);
//! assert_eq!(h.pop(), Some((0, 0.5)));
//! assert_eq!(h.pop(), Some((1, 1.0)));
//! assert_eq!(h.pop(), None);
//! ```

pub mod indexed;
pub mod lazy;
pub mod ordered;
pub mod two_level;

pub use indexed::{IndexedBinaryHeap, SparseIndexedHeap, StampedIndexedHeap};
pub use lazy::LazyHeap;
pub use ordered::OrderedF64;
pub use two_level::TwoLevelHeap;
