//! A totally ordered wrapper around `f64`.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` that is guaranteed not to be NaN and therefore totally ordered.
///
/// All costs and delays in this workspace are finite non-negative reals, so
/// a NaN is always a bug; construction panics on NaN to surface it early.
///
/// ```
/// use cds_heap::OrderedF64;
/// let a = OrderedF64::new(1.5);
/// let b = OrderedF64::new(2.0);
/// assert!(a < b);
/// assert_eq!(a.get(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN key in priority queue");
        OrderedF64(v)
    }

    /// Returns the wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // INVARIANT: NaN is excluded at construction, so partial_cmp is
        // total over every pair of stored values.
        self.0.partial_cmp(&other.0).expect("NaN in OrderedF64")
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let mut v = [3.0, 1.0, 2.0].map(OrderedF64::new);
        v.sort();
        assert_eq!(v.map(OrderedF64::get), [1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = OrderedF64::new(f64::NAN);
    }
}
