//! The paper's two-level heap (§III-B).
//!
//! Algorithm 1 runs one Dijkstra per active sink *simultaneously* and must
//! repeatedly extract the globally smallest label. The two-level structure
//! keeps one heap per sink plus a top-level heap over the sinks' minimum
//! keys, and — the practical point of §III-B — keeps operating within a
//! single sink heap for as long as its minimum does not exceed the best
//! other sink, avoiding top-level traffic on every push/pop.

use crate::indexed::TieStampedIndexedHeap;
use crate::ordered::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Two-level priority queue over (search, vertex, key) triples.
///
/// Searches are identified by dense `u32` ids assigned by the caller;
/// vertices are dense `u32` ids keyed by epoch-stamped per-search slabs
/// that grow on demand and stay warm across pooled reuse. The top-level
/// heap is maintained lazily: entries may be stale and are validated
/// against the actual sub-heap minimum on extraction, which is exactly
/// what lets the structure stay within one sub-heap cheaply.
///
/// Pops are served in the **total order `(key, search, vertex)`** — the
/// sub-heaps break equal-key ties by ascending vertex id, and the top
/// level breaks equal sub-minima by ascending search id. This is the
/// determinism contract every label queue in the workspace shares:
/// [`BucketQueue`](crate::BucketQueue) reproduces the exact same pop
/// sequence, which is what lets the solver switch queues without
/// changing a single routed bit.
///
/// ```
/// use cds_heap::TwoLevelHeap;
/// let mut h = TwoLevelHeap::new();
/// let a = h.add_search();
/// let b = h.add_search();
/// h.push(a, 10, 2.0);
/// h.push(b, 20, 1.0);
/// h.push(a, 11, 3.0);
/// assert_eq!(h.pop(), Some((b, 20, 1.0)));
/// assert_eq!(h.pop(), Some((a, 10, 2.0)));
/// assert_eq!(h.pop(), Some((a, 11, 3.0)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct TwoLevelHeap {
    subs: Vec<Option<TieStampedIndexedHeap>>,
    /// Lazy top-level heap of (sub-min key, search id); may hold stale
    /// entries whose key is *lower* than the search's actual minimum
    /// (pops raise sub-minima) — never higher, because pushes that lower a
    /// sub-minimum insert a fresh entry.
    top: BinaryHeap<Reverse<(OrderedF64, u32)>>,
    /// Search the last pop was served from; kept hot to exploit locality.
    current: Option<u32>,
    len: usize,
    /// Retired sub-heaps kept for reuse: a solver session adds and
    /// removes thousands of searches, and recycling the sub-heaps keeps
    /// their backing arrays (and hash tables) warm across searches *and*
    /// across [`clear`](Self::clear)ed runs.
    pool: Vec<TieStampedIndexedHeap>,
}

impl TwoLevelHeap {
    /// Creates an empty structure with no searches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new search and returns its id.
    pub fn add_search(&mut self) -> u32 {
        let id = self.subs.len() as u32;
        let sub = self.pool.pop().unwrap_or_else(|| TieStampedIndexedHeap::new(0));
        debug_assert!(sub.is_empty(), "pooled sub-heaps are cleared on retire");
        self.subs.push(Some(sub));
        id
    }

    /// Drops a search and all its queued labels (used when a terminal is
    /// merged and its Dijkstra dies). The sub-heap's storage is retained
    /// for the next [`add_search`](Self::add_search).
    ///
    /// # Panics
    ///
    /// Panics if `search` was never added.
    pub fn remove_search(&mut self, search: u32) {
        let slot = &mut self.subs[search as usize];
        if let Some(mut sub) = slot.take() {
            self.len -= sub.len();
            sub.clear();
            self.pool.push(sub);
        }
        if self.current == Some(search) {
            self.current = None;
        }
    }

    /// Removes every search and label while keeping all allocations —
    /// the reset path of a reused
    /// [`SolverWorkspace`](../cds_core/struct.SolverWorkspace.html).
    /// After `clear`, search ids restart from zero.
    pub fn clear(&mut self) {
        for slot in &mut self.subs {
            if let Some(mut sub) = slot.take() {
                sub.clear();
                self.pool.push(sub);
            }
        }
        self.subs.clear();
        self.top.clear();
        self.current = None;
        self.len = 0;
    }

    /// Whether `search` is still alive.
    pub fn is_alive(&self, search: u32) -> bool {
        self.subs.get(search as usize).is_some_and(|s| s.is_some())
    }

    /// Total number of queued labels over all live searches.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no labels are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues (or improves) the label of `vertex` in `search`.
    /// Returns `true` if the label changed. Quietly ignores dead searches.
    pub fn push(&mut self, search: u32, vertex: u32, key: f64) -> bool {
        let Some(sub) = self.subs[search as usize].as_mut() else {
            return false;
        };
        let before = sub.len();
        let old_min = sub.peek().map(|(_, k)| k);
        let changed = sub.push(vertex, key);
        self.len += sub.len() - before;
        if changed && old_min.is_none_or(|m| key < m) {
            // New sub-minimum: publish to the top level.
            self.top.push(Reverse((OrderedF64::new(key), search)));
        }
        changed
    }

    /// Minimum key over all searches, if any.
    ///
    /// Takes `&mut self` by design, not by accident: the top level is
    /// maintained *lazily*, so at peek time it may hold entries for
    /// drained or removed searches and stale-low keys that pops have
    /// since raised. Answering "what is the global minimum" requires
    /// popping those dead entries and re-inserting corrected ones
    /// (the internal `refresh_top`) — a structural mutation. A
    /// `&self` peek would need interior mutability or an `O(searches)`
    /// scan per call; both cost more than the borrow is worth, since the
    /// solver always holds the queue exclusively anyway.
    /// [`BucketQueue`](crate::BucketQueue) mirrors the same signature
    /// for the same reason (its lazy deletions are pruned at peek time),
    /// so the two queues share one trait-shaped surface.
    pub fn peek_key(&mut self) -> Option<f64> {
        self.refresh_top();
        // After refresh, compare the hot search against the top entry.
        let cur = self.current_min();
        let top = self.top.peek().map(|Reverse((k, _))| k.get());
        match (cur, top) {
            (Some(c), Some(t)) => Some(c.min(t)),
            (Some(c), None) => Some(c),
            (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    /// Extracts the globally smallest (search, vertex, key) under the
    /// total `(key, search, vertex)` order.
    pub fn pop(&mut self) -> Option<(u32, u32, f64)> {
        // Fast path (§III-B): if the current search is the `(key, sid)`
        // minimum, serve it without top maintenance. After the refresh
        // in `valid_top_peek`, the top head is accurate, so the
        // lexicographic comparison decides ties by search id exactly as
        // the total order demands (the head entry may be `cur` itself,
        // in which case equality holds and `cur` wins).
        if let Some(cur) = self.current {
            if let Some(cmin) = self.current_min() {
                let beats_top = match self.valid_top_peek() {
                    Some((tkey, tsid)) => (cmin, cur) <= (tkey, tsid),
                    None => true,
                };
                if beats_top {
                    return self.pop_from(cur);
                }
            }
        }
        self.refresh_top();
        let &Reverse((_, sid)) = self.top.peek()?;
        self.current = Some(sid);
        self.pop_from(sid)
    }

    fn pop_from(&mut self, sid: u32) -> Option<(u32, u32, f64)> {
        let sub = self.subs[sid as usize].as_mut()?;
        let (v, k) = sub.pop()?;
        self.len -= 1;
        Some((sid, v, k))
    }

    fn current_min(&self) -> Option<f64> {
        let cur = self.current?;
        self.subs[cur as usize].as_ref()?.peek().map(|(_, k)| k)
    }

    /// Pops stale/dead top entries and re-inserts corrected ones until the
    /// top of the heap is accurate.
    fn refresh_top(&mut self) {
        while let Some(&Reverse((k, sid))) = self.top.peek() {
            match self.subs[sid as usize].as_ref().and_then(|s| s.peek()) {
                None => {
                    self.top.pop(); // dead or drained search
                }
                Some((_, actual)) if actual > k.get() => {
                    self.top.pop(); // stale-low entry; correct it
                    self.top.push(Reverse((OrderedF64::new(actual), sid)));
                }
                Some(_) => break, // accurate
            }
        }
    }

    /// Accurate top-level minimum (key, search), if any.
    fn valid_top_peek(&mut self) -> Option<(f64, u32)> {
        self.refresh_top();
        self.top.peek().map(|&Reverse((k, sid))| (k.get(), sid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_search_behaves_like_heap() {
        let mut h = TwoLevelHeap::new();
        let s = h.add_search();
        for (v, k) in [(5u32, 5.0), (1, 1.0), (3, 3.0)] {
            h.push(s, v, k);
        }
        assert_eq!(h.pop(), Some((s, 1, 1.0)));
        assert_eq!(h.pop(), Some((s, 3, 3.0)));
        assert_eq!(h.pop(), Some((s, 5, 5.0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn decrease_key_across_searches() {
        let mut h = TwoLevelHeap::new();
        let a = h.add_search();
        let b = h.add_search();
        h.push(a, 0, 10.0);
        h.push(b, 0, 9.0);
        assert!(h.push(a, 0, 1.0), "decrease-key in sub-heap");
        assert_eq!(h.pop(), Some((a, 0, 1.0)));
        assert_eq!(h.pop(), Some((b, 0, 9.0)));
    }

    #[test]
    fn removed_search_is_skipped() {
        let mut h = TwoLevelHeap::new();
        let a = h.add_search();
        let b = h.add_search();
        h.push(a, 1, 1.0);
        h.push(b, 2, 2.0);
        h.remove_search(a);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(), Some((b, 2, 2.0)));
        assert_eq!(h.pop(), None);
        assert!(!h.is_alive(a));
        assert!(!h.push(a, 9, 0.1), "push to dead search ignored");
    }

    #[test]
    fn clear_keeps_reusable_state() {
        let mut h = TwoLevelHeap::new();
        let a = h.add_search();
        let b = h.add_search();
        h.push(a, 1, 1.0);
        h.push(b, 2, 2.0);
        h.pop();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.peek_key(), None);
        // ids restart from zero and the structure behaves like new
        let s = h.add_search();
        assert_eq!(s, 0);
        h.push(s, 7, 0.5);
        assert_eq!(h.pop(), Some((s, 7, 0.5)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn interleaved_pushes_keep_global_order() {
        let mut h = TwoLevelHeap::new();
        let a = h.add_search();
        let b = h.add_search();
        h.push(a, 1, 5.0);
        h.push(b, 2, 4.0);
        assert_eq!(h.pop(), Some((b, 2, 4.0)));
        // while "current" is b, a push to a with a smaller key must win
        h.push(b, 3, 6.0);
        h.push(a, 4, 0.5);
        assert_eq!(h.pop(), Some((a, 4, 0.5)));
        assert_eq!(h.pop(), Some((a, 1, 5.0)));
        assert_eq!(h.pop(), Some((b, 3, 6.0)));
    }

    #[test]
    fn equal_keys_drain_by_search_then_vertex() {
        // The cross-queue determinism contract: ties resolve by search
        // id first, vertex id second — regardless of push order or
        // which search is "current".
        let mut h = TwoLevelHeap::new();
        let a = h.add_search();
        let b = h.add_search();
        h.push(b, 9, 1.0);
        h.push(b, 2, 1.0);
        h.push(a, 7, 1.0);
        h.push(a, 3, 1.0);
        // make b "current" at a higher key, then flood equal keys
        h.push(b, 50, 0.5);
        assert_eq!(h.pop(), Some((b, 50, 0.5)));
        assert_eq!(h.pop(), Some((a, 3, 1.0)));
        assert_eq!(h.pop(), Some((a, 7, 1.0)));
        assert_eq!(h.pop(), Some((b, 2, 1.0)));
        assert_eq!(h.pop(), Some((b, 9, 1.0)));
        assert_eq!(h.pop(), None);
    }

    proptest! {
        /// Pops come out in globally non-decreasing key order and match a
        /// flat reference heap, under random interleavings of pushes,
        /// pops, and search removals.
        #[test]
        fn matches_flat_reference(
            n_searches in 1usize..6,
            ops in proptest::collection::vec((0u32..6, 0u32..40, 0.0f64..100.0, 0u8..10), 1..300)
        ) {
            let mut h = TwoLevelHeap::new();
            let sids: Vec<u32> = (0..n_searches).map(|_| h.add_search()).collect();
            // reference: best key per (search, vertex)
            let mut reference: std::collections::HashMap<(u32, u32), f64> = Default::default();
            for (s, v, k, action) in ops {
                let sid = sids[(s as usize) % n_searches];
                if action < 7 {
                    if h.push(sid, v, k) {
                        let e = reference.entry((sid, v)).or_insert(f64::INFINITY);
                        *e = e.min(k);
                    }
                } else if action == 7 {
                    // pop once and compare against the reference minimum
                    let want = reference.iter()
                        .min_by(|x, y| x.1.partial_cmp(y.1).unwrap());
                    match (h.pop(), want) {
                        (Some((gs, gv, gk)), Some((&(ws, wv), &wk))) => {
                            prop_assert_eq!(gk, wk);
                            // ties may resolve differently; remove what we got
                            prop_assert!(reference.remove(&(gs, gv)).is_some());
                            let _ = (ws, wv);
                        }
                        (None, None) => {}
                        (got, want) => prop_assert!(false, "mismatch {:?} vs {:?}", got, want),
                    }
                } else {
                    let sid = sids[(s as usize) % n_searches];
                    h.remove_search(sid);
                    reference.retain(|&(rs, _), _| rs != sid);
                }
                prop_assert_eq!(h.len(), reference.len());
            }
            // drain
            let mut drained: Vec<f64> = Vec::new();
            while let Some((_, _, k)) = h.pop() { drained.push(k); }
            let mut want: Vec<f64> = reference.values().copied().collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in drained.windows(2) { prop_assert!(w[0] <= w[1]); }
            let mut got = drained.clone();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(got, want);
        }
    }
}
