//! Plain-text serialization of chips and nets.
//!
//! Experiments should be shareable without re-running the generator:
//! this module writes and parses a compact line-oriented format for
//! [`Net`] lists and timing chains, so harvested workloads can be
//! archived next to EXPERIMENTS.md and replayed byte-identically. The
//! [`doc`] submodule extends the same records into the full `cdst/1`
//! *chip document* format (grid, layers, capacities, workload, config
//! overrides) used by `cds-cli` and the `tests/fixtures/` archive.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! net <root_x> <root_y> : [<x> <y> ...]
//! chain <rat_ps> : <net>[/<cont_sink>] ...
//! ```
//!
//! Serialization is *total*: every line the writers emit parses back to
//! the value it came from, bit-identically. Floats are printed with
//! shortest-round-trip (`{:?}`) formatting, and a sink-less net's
//! `net x y :` record is accepted by [`parse_nets`] (it used to be
//! rejected, making write → parse partial).
//!
//! # Examples
//!
//! ```
//! use cds_instgen::io::{nets_to_string, parse_nets};
//! use cds_instgen::Net;
//! use cds_geom::Point;
//!
//! let nets = vec![Net { root: Point::new(1, 2), sinks: vec![Point::new(3, 4)] }];
//! let text = nets_to_string(&nets);
//! assert_eq!(parse_nets(&text).unwrap(), nets);
//! ```

pub mod doc;

use crate::{Chain, ChainLink, Net};
use cds_geom::Point;
use std::fmt::Write as _;

/// Error from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseWorkloadError {}

/// Serializes nets to the text format.
pub fn nets_to_string(nets: &[Net]) -> String {
    let mut out = String::new();
    for n in nets {
        let _ = write!(out, "net {} {} :", n.root.x, n.root.y);
        for s in &n.sinks {
            let _ = write!(out, " {} {}", s.x, s.y);
        }
        out.push('\n');
    }
    out
}

/// Serializes chains to the text format.
pub fn chains_to_string(chains: &[Chain]) -> String {
    let mut out = String::new();
    for c in chains {
        // {:?} is shortest-round-trip: parse_chains recovers rat_ps
        // bit-exactly ({} used to truncate to ~1e-9 relative error)
        let _ = write!(out, "chain {:?} :", c.rat_ps);
        for l in &c.links {
            match l.cont_sink {
                Some(s) => {
                    let _ = write!(out, " {}/{}", l.net, s);
                }
                None => {
                    let _ = write!(out, " {}", l.net);
                }
            }
        }
        out.push('\n');
    }
    out
}

fn err(line: usize, message: impl Into<String>) -> ParseWorkloadError {
    ParseWorkloadError { line, message: message.into() }
}

/// Parses the payload of one `net` record (everything after `net `).
/// Shared by [`parse_nets`] and the [`doc`] parser so the record grammar
/// exists exactly once.
pub(crate) fn parse_net_record(rest: &str, line: usize) -> Result<Net, ParseWorkloadError> {
    let (head, tail) = rest.split_once(':').ok_or_else(|| err(line, "missing ':' separator"))?;
    let mut hp = head.split_whitespace();
    let root = Point::new(
        hp.next().and_then(|v| v.parse().ok()).ok_or_else(|| err(line, "bad root x"))?,
        hp.next().and_then(|v| v.parse().ok()).ok_or_else(|| err(line, "bad root y"))?,
    );
    if let Some(extra) = hp.next() {
        return Err(err(line, format!("unexpected token {extra} after root coordinates")));
    }
    let coords: Vec<i32> = tail
        .split_whitespace()
        .map(|v| v.parse().map_err(|_| err(line, format!("bad coordinate {v}"))))
        .collect::<Result<_, _>>()?;
    // an empty tail is a sink-less net: the writer emits `net x y :` for
    // it, so the parser must accept it (serialization is total)
    if !coords.len().is_multiple_of(2) {
        return Err(err(line, "sink coordinates must come in pairs"));
    }
    let sinks = coords.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
    Ok(Net { root, sinks })
}

/// Parses the payload of one `chain` record (everything after `chain `).
pub(crate) fn parse_chain_record(rest: &str, line: usize) -> Result<Chain, ParseWorkloadError> {
    let (head, tail) = rest.split_once(':').ok_or_else(|| err(line, "missing ':' separator"))?;
    let rat_ps: f64 = head.trim().parse().map_err(|_| err(line, "bad RAT"))?;
    let mut links = Vec::new();
    for tok in tail.split_whitespace() {
        let link = match tok.split_once('/') {
            Some((n, s)) => ChainLink {
                net: n.parse().map_err(|_| err(line, format!("bad net {n}")))?,
                cont_sink: Some(s.parse().map_err(|_| err(line, format!("bad sink {s}")))?),
            },
            None => ChainLink {
                net: tok.parse().map_err(|_| err(line, format!("bad net {tok}")))?,
                cont_sink: None,
            },
        };
        links.push(link);
    }
    if links.is_empty() {
        return Err(err(line, "empty chain"));
    }
    // INVARIANT: the empty-chain case returned an error just above, so links is nonempty.
    if links.last().expect("nonempty").cont_sink.is_some() {
        return Err(err(line, "last link must not continue"));
    }
    Ok(Chain { links, rat_ps })
}

/// Parses nets from the text format (ignoring chain lines and comments).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_nets(text: &str) -> Result<Vec<Net>, ParseWorkloadError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("chain ") {
            continue;
        }
        let Some(rest) = line.strip_prefix("net ") else {
            return Err(err(i + 1, format!("unknown record: {line}")));
        };
        out.push(parse_net_record(rest, i + 1)?);
    }
    Ok(out)
}

/// Parses chains from the text format (ignoring net lines and comments).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_chains(text: &str) -> Result<Vec<Chain>, ParseWorkloadError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("net ") {
            continue;
        }
        let Some(rest) = line.strip_prefix("chain ") else {
            return Err(err(i + 1, format!("unknown record: {line}")));
        };
        out.push(parse_chain_record(rest, i + 1)?);
    }
    Ok(out)
}

/// Serializes a full workload (nets + chains) to one document.
pub fn workload_to_string(nets: &[Net], chains: &[Chain]) -> String {
    format!(
        "# cdst workload: {} nets, {} chains\n{}{}",
        nets.len(),
        chains.len(),
        nets_to_string(nets),
        chains_to_string(chains)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipSpec;

    #[test]
    fn roundtrip_generated_chip() {
        let chip = ChipSpec::small_test(5).generate();
        let doc = workload_to_string(&chip.nets, &chip.chains);
        let nets = parse_nets(&doc).unwrap();
        let chains = parse_chains(&doc).unwrap();
        assert_eq!(nets, chip.nets);
        // {:?} RAT formatting makes the round trip bit-exact
        assert_eq!(chains, chip.chains);
    }

    #[test]
    fn rat_round_trips_bit_exactly() {
        // Regression: rat_ps used to be written with `{}` (Display),
        // which truncates — round trips only held to ~1e-9 relative
        // error. Shortest-round-trip `{:?}` formatting recovers the
        // exact bits, including awkward values.
        let chains: Vec<Chain> = [0.1 + 0.2, 1.0 / 3.0, 1e-300, 7.0e300, 123456.78901234567]
            .into_iter()
            .map(|rat_ps| Chain { links: vec![ChainLink { net: 0, cont_sink: None }], rat_ps })
            .collect();
        let parsed = parse_chains(&chains_to_string(&chains)).unwrap();
        assert_eq!(parsed.len(), chains.len());
        for (a, b) in parsed.iter().zip(&chains) {
            assert_eq!(a.rat_ps.to_bits(), b.rat_ps.to_bits(), "{} drifted", b.rat_ps);
        }
    }

    #[test]
    fn sink_less_net_round_trips() {
        // Regression: the writer emits `net x y :` for a sink-less net,
        // which the parser used to reject — write → parse was partial.
        let nets = vec![
            Net { root: Point::new(3, -4), sinks: Vec::new() },
            Net { root: Point::new(0, 0), sinks: vec![Point::new(1, 1)] },
        ];
        let text = nets_to_string(&nets);
        assert_eq!(parse_nets(&text).unwrap(), nets);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let doc = "# comment\n\nnet 0 0 : 1 1\n";
        assert_eq!(parse_nets(doc).unwrap().len(), 1);
        assert!(parse_chains(doc).unwrap().is_empty());
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let doc = "net 0 0 : 1\n";
        let e = parse_nets(doc).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("pairs"));

        let e = parse_nets("# ok\n\nnet 0 0 0 : 1 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("after root"), "{e}");

        let e = parse_chains("chain x : 1\n").unwrap_err();
        assert!(e.message.contains("RAT"));

        let e = parse_chains("chain 5 : 1/0\n").unwrap_err();
        assert!(e.message.contains("continue"), "{e}");
    }

    #[test]
    fn display_formats_error() {
        let e = ParseWorkloadError { line: 3, message: "boom".into() };
        assert_eq!(e.to_string(), "line 3: boom");
    }
}
