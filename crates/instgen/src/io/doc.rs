//! The `cdst/1` chip document format.
//!
//! A chip document is everything a routing run needs, in one versioned,
//! line-oriented text file: the grid (dimensions, layers, wire types,
//! per-edge capacity overrides), the technology the delay model is
//! calibrated from, the workload (nets and timing chains), optional
//! per-net delay weights and budgets (the post-route instance archive),
//! router configuration overrides, and optional solver-level `request`
//! records for archiving raw cost-distance request streams. `cds-cli`
//! reads and writes this format, and the pinned experiment chips live
//! under `tests/fixtures/` as chip documents.
//!
//! # Grammar
//!
//! One record per line; blank lines and `#` comments are ignored
//! anywhere. Floats use shortest-round-trip (`{:?}`) formatting, so
//! every value survives write → parse bit-identically. Records must
//! appear in section order (header, preamble, grid, layers, capacity
//! overrides, nets, chains, weights/budgets, requests):
//!
//! ```text
//! cdst/1
//! chip <name>
//! tech <num_layers>
//! celldelay <ps>
//! config <key> <value>                                  (0+)
//! grid <nx> <ny> <nlayers> <via_cost> <via_delay> <via_capacity> <gcell_um>
//! layer <H|V> : <cost> <delay> <capacity> [...]         (exactly nlayers)
//! ecap <edge_id> <capacity>                             (0+, ids strictly increasing)
//! net <root_x> <root_y> : [<x> <y> ...]                 (0+)
//! chain <rat_ps> : <net>[/<cont_sink>] ...              (0+)
//! weights <net> : <w> ...                               (0+, net ids strictly increasing)
//! budgets <net> : <b> ...                               (0+, net ids strictly increasing)
//! request <seed> <dbif> <eta> : <x> <y> <l> : <x> <y> <l> ... : <w> ...
//! ```
//!
//! A `cdst/2` document may additionally end with a `state` section — a
//! mid-run checkpoint of the rip-up loop (see [`StateSection`]) that
//! `cds-cli route --resume` restores bit-identically:
//!
//! ```text
//! state iter <completed_iterations>                     (first state record)
//! state stats : <rerouted> ...                          (one count per iteration)
//! state counters <dirty x6> <recounts> <retimed> <kernel x5>
//! state usage <offset> : <u> ...                        (chunks of 16, offsets must chain)
//! state hist <offset> : <h> ...
//! state prices <offset> : <p> ...                       (omitted for full-reroute runs)
//! state net <id> <routed> <drift> : <w> ... : <b>|- : <w_ref> ... : <b_ref>|-
//! state tree <id> <wl> <vias> : <kind vertex parent plen> ... : <edge> ... : <delay> ...
//! ```
//!
//! `state net` records must cover every net in order; `state tree`
//! records cover exactly the routed nets, strictly increasing. A
//! truncated or tampered state section is rejected with the offending
//! line number (chunk offsets must chain; the end-of-document check
//! requires full ledgers and net coverage).
//!
//! `ecap` records override the capacity of single edges of the graph
//! the grid spec builds (macro depletion, harvested congestion maps);
//! edge ids refer to the deterministic build order of
//! [`GridSpec::build`]. `config` records are opaque `key value` pairs
//! interpreted by `cds_router::RouterConfig::set_knob`. The delay model
//! is rebuilt from `tech` via
//! [`Technology::five_nm_like`](cds_delay::Technology::five_nm_like)
//! calibrated at the grid's `gcell_um`, which reproduces the generator's
//! model exactly.
//!
//! # Totality and round-trip contract
//!
//! [`chip_doc_to_string`] validates before emitting; every string it
//! returns is accepted by [`parse_chip_doc`], and
//! `parse_chip_doc(chip_doc_to_string(d)?) == d` with every float
//! bit-identical (enforced by proptest in `tests/chipdoc.rs`). The one
//! excluded value is NaN, which cannot round-trip bit-exactly through
//! any decimal text; the writer rejects it with a typed error. The
//! parser is streaming — it reads from any [`BufRead`] one line at a
//! time and never materializes more than one record — and every parse
//! error carries the 1-based line number it occurred on.
//!
//! # Examples
//!
//! ```
//! use cds_instgen::io::doc::{chip_doc_to_string, parse_chip_doc, ChipDoc};
//! use cds_instgen::ChipSpec;
//!
//! let chip = ChipSpec::small_test(1).generate();
//! let doc = ChipDoc::from_chip(&chip).unwrap();
//! let text = chip_doc_to_string(&doc).unwrap();
//! let parsed = parse_chip_doc(&text).unwrap();
//! assert_eq!(parsed, doc);
//! let rebuilt = parsed.build_chip();
//! assert_eq!(rebuilt.nets, chip.nets);
//! ```

use super::{parse_chain_record, parse_net_record, ParseWorkloadError};
use crate::{Chain, Chip, Net};
use cds_delay::Technology;
use cds_geom::Point;
use cds_graph::{Direction, EdgeId, GridGraph, GridSpec, LayerSpec, WireTypeSpec};
use std::fmt::Write as _;
use std::io::BufRead;

/// The version header every stateless chip document starts with.
pub const FORMAT_VERSION: &str = "cdst/1";

/// The version header of documents carrying a `state` section (mid-run
/// checkpoints). `cdst/2` is a strict superset of `cdst/1`: every
/// `cdst/1` document parses unchanged under either header, and the
/// `state` records described below are the only addition.
pub const FORMAT_VERSION_STATE: &str = "cdst/2";

/// Per-net scheduler and Lagrangean state at a checkpoint, one record
/// per net in net order. Arities are validated against the net's sink
/// count on both read and write.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateNet {
    /// Whether the dirty tracker has seen this net routed (always true
    /// after iteration 0 completes, but serialized for totality).
    pub routed: bool,
    /// Accumulated window price drift since the net last routed.
    pub drift: f64,
    /// Current per-sink delay weights.
    pub weights: Vec<f64>,
    /// Current per-sink delay budgets (`None` before the first STA).
    pub budgets: Option<Vec<f64>>,
    /// Weights snapshot from the net's last actual route (the dirty
    /// tracker's reference); empty when unavailable (full-reroute runs).
    pub weight_ref: Vec<f64>,
    /// Budgets snapshot from the net's last actual route.
    pub budget_ref: Option<Vec<f64>>,
}

/// One routed tree at a checkpoint: node structure (attachment order),
/// per-node path edges, per-sink delays, and the summary scalars.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateTree {
    /// Node kinds in attachment order: `-1` root, `-2` Steiner,
    /// `>= 0` the sink index. Node 0 is always the root.
    pub kinds: Vec<i64>,
    /// Grid vertex of each node.
    pub vertices: Vec<u32>,
    /// Parent node of each node (attachment order guarantees
    /// `parent < node`); entry 0 is unused and serialized as 0.
    pub parents: Vec<u32>,
    /// Number of path edges from each node to its parent (0 for the
    /// root).
    pub path_len: Vec<u32>,
    /// Concatenated parent-path edge ids, `path_len[v]` per node.
    pub path_edges: Vec<u32>,
    /// Per-sink routed delays (arity = the net's sink count).
    pub sink_delays: Vec<f64>,
    /// Routed wirelength in gcells.
    pub wirelength_gcells: f64,
    /// Via count.
    pub vias: u64,
}

/// Deterministic work counters of the completed iterations, serialized
/// so a resumed run's cumulative statistics continue seamlessly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateStats {
    /// Nets rerouted per completed iteration (length = the checkpoint's
    /// iteration counter).
    pub rerouted_per_iter: Vec<usize>,
    /// Dirty-cause tallies: fresh, overflow, timing, price, weight,
    /// budget.
    pub dirty: [usize; 6],
    /// Exact usage-ledger recounts performed.
    pub usage_recounts: usize,
    /// STA nodes re-timed so far.
    pub sta_nodes_retimed: usize,
    /// Kernel op-counters: settled, pushed, popped, decreased,
    /// bucket scans.
    pub kernel: [u64; 5],
}

/// The `cdst/2` `state` section: everything the rip-up loop needs to
/// resume after `iteration` completed iterations and reproduce the
/// uninterrupted run's checksum bit-for-bit. Ledger lengths are
/// validated against the document's grid, per-net arities against its
/// nets — on both read and write, so checkpoints stay round-trip-total.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateSection {
    /// Completed rip-up iterations (≥ 1; a checkpoint is only written
    /// after an iteration completes).
    pub iteration: usize,
    /// Per-edge usage ledger (length = the grid's edge count).
    pub usage: Vec<f64>,
    /// Exponentially blended usage history the price schedule reads.
    pub usage_hist: Vec<f64>,
    /// Prices of the last completed iteration — the dirty tracker's
    /// drift reference. Empty for full-reroute (non-incremental) runs.
    pub prices: Vec<f64>,
    /// Per-net scheduler/weight state, exactly one per net, in order.
    pub nets: Vec<StateNet>,
    /// Routed trees `(net id, tree)`, strictly increasing by net id;
    /// exactly the nets with `routed` set carry a tree.
    pub trees: Vec<(usize, StateTree)>,
    /// Work counters of the completed iterations.
    pub stats: StateStats,
}

/// One archived solver-level request: a raw cost-distance instance on
/// the document's grid (root, sinks and their layers, delay weights,
/// bifurcation penalty, seed). Used to archive request streams that are
/// not chip workloads — e.g. the pinned 120-request determinism stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// RNG seed of the solve.
    pub seed: u64,
    /// Bifurcation penalty `d_bif` (ps); 0 disables penalties.
    pub dbif: f64,
    /// Shielding limit η in `[0, 1/2]`.
    pub eta: f64,
    /// Root `(x, y, layer)`.
    pub root: (u32, u32, u8),
    /// Sinks `(x, y, layer)`, at least one.
    pub sinks: Vec<(u32, u32, u8)>,
    /// Delay weight per sink (same arity as `sinks`).
    pub weights: Vec<f64>,
}

/// An in-memory chip document: the parsed form of a `cdst/1` file and
/// the value the writer serializes. See the module docs for the
/// grammar; [`build_chip`](ChipDoc::build_chip) turns it into a
/// routable [`Chip`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipDoc {
    /// Chip name (one whitespace-free token).
    pub name: String,
    /// Metal layer count the delay model is calibrated for (≥ 2).
    pub tech_layers: u8,
    /// Fixed cell delay between chain stages (ps).
    pub cell_delay_ps: f64,
    /// Router configuration overrides, in document order (opaque
    /// `key value` pairs for `RouterConfig::set_knob`).
    pub config: Vec<(String, String)>,
    /// The grid description.
    pub grid: GridSpec,
    /// Per-edge capacity overrides `(edge id, capacity)` on the graph
    /// built from `grid`, strictly increasing by edge id.
    pub ecap: Vec<(EdgeId, f64)>,
    /// The nets.
    pub nets: Vec<Net>,
    /// The timing chains.
    pub chains: Vec<Chain>,
    /// Per-net delay weights `(net, weight per sink)`, strictly
    /// increasing by net id (the harvest archive).
    pub weights: Vec<(usize, Vec<f64>)>,
    /// Per-net delay budgets `(net, budget per sink)`, strictly
    /// increasing by net id.
    pub budgets: Vec<(usize, Vec<f64>)>,
    /// Archived solver-level requests.
    pub requests: Vec<RequestRecord>,
    /// Mid-run checkpoint state. `Some` makes this a `cdst/2` document
    /// (the writer switches headers); `cds-cli route --resume` restores
    /// it.
    pub state: Option<StateSection>,
}

/// Error from serializing a value the format cannot represent (NaN
/// floats, multi-token names, pins outside the grid, a grid whose
/// non-capacity edge attributes differ from its spec, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocWriteError {
    /// What cannot be represented, and where.
    pub message: String,
}

impl std::fmt::Display for DocWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot serialize chip document: {}", self.message)
    }
}

impl std::error::Error for DocWriteError {}

fn werr(message: impl Into<String>) -> DocWriteError {
    DocWriteError { message: message.into() }
}

fn perr(line: usize, message: impl Into<String>) -> ParseWorkloadError {
    ParseWorkloadError { line, message: message.into() }
}

/// Number of edges [`GridSpec::build`] creates, without building: per
/// layer, one wire edge per wire type across every gcell boundary in
/// the preferred direction, plus one via per gcell up to the next
/// layer. Lets the streaming parser range-check `ecap` records.
pub fn spec_num_edges(spec: &GridSpec) -> usize {
    let (nx, ny) = (spec.nx as usize, spec.ny as usize);
    let mut edges = 0usize;
    for (l, layer) in spec.layers.iter().enumerate() {
        let boundaries = match layer.dir {
            Direction::Horizontal => (nx - 1) * ny,
            Direction::Vertical => nx * (ny - 1),
        };
        edges += boundaries * layer.wire_types.len();
        if l + 1 < spec.layers.len() {
            edges += nx * ny;
        }
    }
    edges
}

impl ChipDoc {
    /// Captures a [`Chip`] as a document with empty workload extras
    /// (no config overrides, weights, budgets, or requests).
    ///
    /// # Errors
    ///
    /// Returns [`DocWriteError`] when the chip is not representable:
    /// its delay model is not `five_nm_like(tech).calibrate(gcell_um)`,
    /// or its graph differs from the spec's build in anything other
    /// than edge capacities.
    pub fn from_chip(chip: &Chip) -> Result<Self, DocWriteError> {
        let spec = chip.grid.spec().clone();
        let tech_layers =
            u8::try_from(chip.delay_model.num_layers()).map_err(|_| werr("too many layers"))?;
        if tech_layers < 2 {
            return Err(werr("delay model needs at least 2 layers"));
        }
        let rebuilt = Technology::five_nm_like(tech_layers).calibrate(spec.gcell_um);
        if rebuilt != chip.delay_model {
            return Err(werr(
                "delay model is not reproducible from `tech` + gcell pitch; \
                 cdst/1 stores the model by construction, not by value",
            ));
        }
        // diff the actual graph against the spec's pristine build: only
        // capacity may differ (macro depletion), and those diffs become
        // ecap records
        let pristine = spec.clone().build();
        let (pg, cg) = (pristine.graph(), chip.grid.graph());
        if pg.num_edges() != cg.num_edges() {
            return Err(werr("graph edge count differs from the spec's build"));
        }
        let mut ecap = Vec::new();
        for e in 0..pg.num_edges() as EdgeId {
            let (p, c) = (pg.edge(e), cg.edge(e));
            if pg.endpoints(e) != cg.endpoints(e) {
                return Err(werr(format!("edge {e}: endpoints differ from the spec's build")));
            }
            let same_static = p.base_cost.to_bits() == c.base_cost.to_bits()
                && p.delay.to_bits() == c.delay.to_bits()
                && p.length.to_bits() == c.length.to_bits()
                && p.kind == c.kind
                && p.layer == c.layer
                && p.wire_type == c.wire_type;
            if !same_static {
                return Err(werr(format!(
                    "edge {e}: non-capacity attributes differ from the spec's build \
                     (only capacity overrides are representable)"
                )));
            }
            if p.capacity.to_bits() != c.capacity.to_bits() {
                ecap.push((e, c.capacity));
            }
        }
        let doc = ChipDoc {
            name: chip.name.clone(),
            tech_layers,
            cell_delay_ps: chip.cell_delay_ps,
            config: Vec::new(),
            grid: spec,
            ecap,
            nets: chip.nets.clone(),
            chains: chip.chains.clone(),
            weights: Vec::new(),
            budgets: Vec::new(),
            requests: Vec::new(),
            state: None,
        };
        validate_doc(&doc).map_err(werr)?;
        Ok(doc)
    }

    /// Builds the routable chip: pristine grid from the spec, `ecap`
    /// overrides applied, delay model calibrated from `tech`.
    ///
    /// # Panics
    ///
    /// Panics only on documents that bypassed parse/write validation
    /// (e.g. a hand-built `ChipDoc` with out-of-range `ecap` ids).
    pub fn build_chip(&self) -> Chip {
        let mut grid = self.grid.clone().build();
        let num_edges = grid.graph().num_edges();
        for &(e, cap) in &self.ecap {
            assert!((e as usize) < num_edges, "ecap edge id out of range");
            grid.set_edge_capacity(e, cap);
        }
        let delay_model = Technology::five_nm_like(self.tech_layers).calibrate(self.grid.gcell_um);
        Chip {
            name: self.name.clone(),
            grid,
            delay_model,
            nets: self.nets.clone(),
            chains: self.chains.clone(),
            cell_delay_ps: self.cell_delay_ps,
        }
    }
}

/// Whether `v` is one whitespace-free printable token the line format
/// can carry losslessly.
fn is_token(v: &str) -> bool {
    !v.is_empty() && !v.contains(char::is_whitespace) && !v.contains('#')
}

fn finite_or_err(v: f64, what: &str) -> Result<(), String> {
    if v.is_nan() {
        return Err(format!("{what} is NaN, which cannot round-trip through text"));
    }
    Ok(())
}

/// Full write-time validation: everything the parser would reject (or
/// that would not round-trip bit-identically) is refused here, which is
/// what makes the writer total.
fn validate_doc(doc: &ChipDoc) -> Result<(), String> {
    if !is_token(&doc.name) {
        return Err(format!(
            "chip name {:?} must be one non-empty whitespace-free token without '#'",
            doc.name
        ));
    }
    if doc.tech_layers < 2 {
        return Err("tech needs at least 2 layers".into());
    }
    finite_or_err(doc.cell_delay_ps, "celldelay")?;
    for (k, v) in &doc.config {
        if !is_token(k) || !is_token(v) {
            return Err(format!("config pair {k:?} {v:?} must be two whitespace-free tokens"));
        }
    }
    let spec = &doc.grid;
    if spec.nx == 0 || spec.ny == 0 {
        return Err("grid must have at least one gcell".into());
    }
    if spec.layers.is_empty() {
        return Err("grid must have at least one layer".into());
    }
    if spec.gcell_um.is_nan() || spec.gcell_um <= 0.0 {
        return Err("gcell pitch must be positive".into());
    }
    for v in [spec.via_cost, spec.via_delay, spec.via_capacity] {
        finite_or_err(v, "grid via parameter")?;
    }
    for (l, layer) in spec.layers.iter().enumerate() {
        if layer.wire_types.is_empty() {
            return Err(format!("layer {l} has no wire types"));
        }
        for wt in &layer.wire_types {
            for v in [wt.cost_per_gcell, wt.delay_per_gcell, wt.capacity] {
                finite_or_err(v, "wire type parameter")?;
            }
        }
    }
    let num_edges = spec_num_edges(spec);
    let mut prev_edge = None;
    for &(e, cap) in &doc.ecap {
        if (e as usize) >= num_edges {
            return Err(format!("ecap edge {e} out of range (grid has {num_edges} edges)"));
        }
        if prev_edge.is_some_and(|p| e <= p) {
            return Err("ecap edge ids must be strictly increasing".into());
        }
        prev_edge = Some(e);
        finite_or_err(cap, "ecap capacity")?;
    }
    let in_grid =
        |p: Point| p.x >= 0 && p.y >= 0 && (p.x as u32) < spec.nx && (p.y as u32) < spec.ny;
    for (i, net) in doc.nets.iter().enumerate() {
        for &p in std::iter::once(&net.root).chain(&net.sinks) {
            if !in_grid(p) {
                return Err(format!("net {i} pin ({}, {}) outside the grid", p.x, p.y));
            }
        }
    }
    for (i, chain) in doc.chains.iter().enumerate() {
        finite_or_err(chain.rat_ps, "chain RAT")?;
        if chain.links.is_empty() {
            return Err(format!("chain {i} is empty"));
        }
        // INVARIANT: the empty-links case returned an error just above.
        if chain.links.last().expect("nonempty").cont_sink.is_some() {
            return Err(format!("chain {i}: last link must not continue"));
        }
        for link in &chain.links {
            if link.net >= doc.nets.len() {
                return Err(format!("chain {i} references unknown net {}", link.net));
            }
            if let Some(s) = link.cont_sink {
                if s >= doc.nets[link.net].sinks.len() {
                    return Err(format!("chain {i}: net {} has no sink {s}", link.net));
                }
            }
        }
    }
    for (label, list) in [("weights", &doc.weights), ("budgets", &doc.budgets)] {
        let mut prev = None;
        for (net, values) in list {
            if *net >= doc.nets.len() {
                return Err(format!("{label} for unknown net {net}"));
            }
            if prev.is_some_and(|p| *net <= p) {
                return Err(format!("{label} net ids must be strictly increasing"));
            }
            prev = Some(*net);
            if values.len() != doc.nets[*net].sinks.len() {
                return Err(format!(
                    "{label} for net {net}: {} values for {} sinks",
                    values.len(),
                    doc.nets[*net].sinks.len()
                ));
            }
            for &v in values {
                finite_or_err(v, label)?;
            }
        }
    }
    for (i, req) in doc.requests.iter().enumerate() {
        if req.dbif.is_nan() || req.dbif < 0.0 {
            return Err(format!("request {i}: dbif must be non-negative"));
        }
        if !(0.0..=0.5).contains(&req.eta) {
            return Err(format!("request {i}: eta must lie in [0, 1/2]"));
        }
        if req.sinks.is_empty() {
            return Err(format!("request {i} has no sinks"));
        }
        if req.weights.len() != req.sinks.len() {
            return Err(format!("request {i}: weight count differs from sink count"));
        }
        for &w in &req.weights {
            finite_or_err(w, "request weight")?;
        }
        let nl = spec.layers.len();
        for &(x, y, l) in std::iter::once(&req.root).chain(&req.sinks) {
            if x >= spec.nx || y >= spec.ny || (l as usize) >= nl {
                return Err(format!("request {i}: pin ({x}, {y}, {l}) outside the grid"));
            }
        }
    }
    if let Some(state) = &doc.state {
        let num_vertices = spec.nx as usize * spec.ny as usize * spec.layers.len();
        validate_state(state, num_edges, num_vertices, &doc.nets)?;
    }
    Ok(())
}

/// Structural validation of a checkpoint section against its document:
/// ledger lengths match the grid, per-net arities match the nets, trees
/// are well-formed and cover exactly the routed nets. Shared by the
/// writer (totality) and the parser's end-of-document check, so a
/// checkpoint is accepted if and only if it can be re-serialized.
fn validate_state(
    state: &StateSection,
    num_edges: usize,
    num_vertices: usize,
    nets: &[Net],
) -> Result<(), String> {
    if state.iteration == 0 {
        return Err("state iteration counter must be at least 1".into());
    }
    if state.stats.rerouted_per_iter.len() != state.iteration {
        return Err(format!(
            "state stats record {} reroute counts for {} iterations",
            state.stats.rerouted_per_iter.len(),
            state.iteration
        ));
    }
    for (label, ledger) in [("usage", &state.usage), ("hist", &state.usage_hist)] {
        if ledger.len() != num_edges {
            return Err(format!(
                "state {label} has {} values for a grid with {num_edges} edges",
                ledger.len()
            ));
        }
    }
    if !state.prices.is_empty() && state.prices.len() != num_edges {
        return Err(format!(
            "state prices has {} values for a grid with {num_edges} edges",
            state.prices.len()
        ));
    }
    for ledger in [&state.usage, &state.usage_hist, &state.prices] {
        for &v in ledger.iter() {
            finite_or_err(v, "state ledger value")?;
        }
    }
    if state.nets.len() != nets.len() {
        return Err(format!(
            "state has {} net records for {} nets (one per net required)",
            state.nets.len(),
            nets.len()
        ));
    }
    for (i, n) in state.nets.iter().enumerate() {
        let sinks = nets[i].sinks.len();
        finite_or_err(n.drift, "state net drift")?;
        if n.weights.len() != sinks {
            return Err(format!("state net {i}: {} weights for {sinks} sinks", n.weights.len()));
        }
        if !n.weight_ref.is_empty() && n.weight_ref.len() != sinks {
            return Err(format!(
                "state net {i}: {} reference weights for {sinks} sinks",
                n.weight_ref.len()
            ));
        }
        for (label, budgets) in [("budgets", &n.budgets), ("reference budgets", &n.budget_ref)] {
            if let Some(b) = budgets {
                if b.len() != sinks {
                    return Err(format!("state net {i}: {} {label} for {sinks} sinks", b.len()));
                }
            }
        }
        for v in n
            .weights
            .iter()
            .chain(n.weight_ref.iter())
            .chain(n.budgets.iter().flatten())
            .chain(n.budget_ref.iter().flatten())
        {
            finite_or_err(*v, "state net value")?;
        }
    }
    let mut prev_tree = None;
    for &(id, ref tree) in &state.trees {
        if prev_tree.is_some_and(|p| id <= p) {
            return Err("state tree net ids must be strictly increasing".into());
        }
        prev_tree = Some(id);
        if id >= nets.len() {
            return Err(format!("state tree for unknown net {id}"));
        }
        if !state.nets[id].routed {
            return Err(format!("state tree for net {id}, which is not marked routed"));
        }
        validate_state_tree(tree, num_vertices, num_edges, nets[id].sinks.len())
            .map_err(|m| format!("state tree for net {id}: {m}"))?;
    }
    let routed = state.nets.iter().filter(|n| n.routed).count();
    if state.trees.len() != routed {
        return Err(format!(
            "state has {} trees for {routed} routed nets (every routed net needs its tree)",
            state.trees.len()
        ));
    }
    Ok(())
}

/// Well-formedness of one checkpoint tree: attachment order, in-range
/// vertices/edges/sink indices, path-edge framing, sink-delay arity.
fn validate_state_tree(
    t: &StateTree,
    num_vertices: usize,
    num_edges: usize,
    num_sinks: usize,
) -> Result<(), String> {
    let n = t.kinds.len();
    if n == 0 {
        return Err("tree has no nodes".into());
    }
    if t.vertices.len() != n || t.parents.len() != n || t.path_len.len() != n {
        return Err("node arrays disagree on the node count".into());
    }
    for (v, &k) in t.kinds.iter().enumerate() {
        if v == 0 {
            if k != -1 {
                return Err("node 0 must be the root (kind -1)".into());
            }
            if t.parents[0] != 0 || t.path_len[0] != 0 {
                return Err("the root has no parent or parent path".into());
            }
        } else {
            if k == -1 {
                return Err(format!("node {v} repeats the root kind"));
            }
            if k != -2 && !(0..num_sinks as i64).contains(&k) {
                return Err(format!("node {v} kind {k} is not a Steiner node or a sink index"));
            }
            if t.parents[v] as usize >= v {
                return Err(format!(
                    "node {v} parent {} breaks attachment order (parent must precede node)",
                    t.parents[v]
                ));
            }
        }
        if t.vertices[v] as usize >= num_vertices {
            return Err(format!("node {v} vertex {} outside the grid", t.vertices[v]));
        }
    }
    let total: u64 = t.path_len.iter().map(|&l| u64::from(l)).sum();
    if total != t.path_edges.len() as u64 {
        return Err(format!(
            "{} path edges for a total path length of {total}",
            t.path_edges.len()
        ));
    }
    for &e in &t.path_edges {
        if e as usize >= num_edges {
            return Err(format!("path edge {e} out of range (grid has {num_edges} edges)"));
        }
    }
    if t.sink_delays.len() != num_sinks {
        return Err(format!("{} sink delays for {num_sinks} sinks", t.sink_delays.len()));
    }
    for &d in &t.sink_delays {
        finite_or_err(d, "sink delay")?;
    }
    finite_or_err(t.wirelength_gcells, "tree wirelength")?;
    Ok(())
}

/// Serializes a chip document. The output is canonical: parsing it
/// recovers the input bit-identically, and re-serializing the parse
/// reproduces the string byte-for-byte.
///
/// # Errors
///
/// Returns [`DocWriteError`] for documents the format cannot represent
/// (see the totality rules in the module docs).
pub fn chip_doc_to_string(doc: &ChipDoc) -> Result<String, DocWriteError> {
    validate_doc(doc).map_err(werr)?;
    let mut out = String::new();
    let header = if doc.state.is_some() { FORMAT_VERSION_STATE } else { FORMAT_VERSION };
    let _ = writeln!(out, "{header}");
    let _ = writeln!(
        out,
        "# chip document: {} nets, {} chains, {} capacity overrides, {} requests",
        doc.nets.len(),
        doc.chains.len(),
        doc.ecap.len(),
        doc.requests.len()
    );
    let _ = writeln!(out, "chip {}", doc.name);
    let _ = writeln!(out, "tech {}", doc.tech_layers);
    let _ = writeln!(out, "celldelay {:?}", doc.cell_delay_ps);
    for (k, v) in &doc.config {
        let _ = writeln!(out, "config {k} {v}");
    }
    let spec = &doc.grid;
    let _ = writeln!(
        out,
        "grid {} {} {} {:?} {:?} {:?} {:?}",
        spec.nx,
        spec.ny,
        spec.layers.len(),
        spec.via_cost,
        spec.via_delay,
        spec.via_capacity,
        spec.gcell_um
    );
    for layer in &spec.layers {
        let dir = match layer.dir {
            Direction::Horizontal => 'H',
            Direction::Vertical => 'V',
        };
        let _ = write!(out, "layer {dir} :");
        for wt in &layer.wire_types {
            let _ =
                write!(out, " {:?} {:?} {:?}", wt.cost_per_gcell, wt.delay_per_gcell, wt.capacity);
        }
        out.push('\n');
    }
    for &(e, cap) in &doc.ecap {
        let _ = writeln!(out, "ecap {e} {cap:?}");
    }
    out.push_str(&super::nets_to_string(&doc.nets));
    out.push_str(&super::chains_to_string(&doc.chains));
    for (label, list) in [("weights", &doc.weights), ("budgets", &doc.budgets)] {
        for (net, values) in list {
            let _ = write!(out, "{label} {net} :");
            for v in values {
                let _ = write!(out, " {v:?}");
            }
            out.push('\n');
        }
    }
    for req in &doc.requests {
        let _ = write!(
            out,
            "request {} {:?} {:?} : {} {} {} :",
            req.seed, req.dbif, req.eta, req.root.0, req.root.1, req.root.2
        );
        for &(x, y, l) in &req.sinks {
            let _ = write!(out, " {x} {y} {l}");
        }
        let _ = write!(out, " :");
        for w in &req.weights {
            let _ = write!(out, " {w:?}");
        }
        out.push('\n');
    }
    if let Some(state) = &doc.state {
        write_state_section(&mut out, state);
    }
    Ok(out)
}

/// Emits the canonical `state` section (assumes [`validate_state`]
/// passed). Ledgers are chunked 16 values per line so checkpoint files
/// stay diffable and a truncated write is caught by the chunk-offset
/// check rather than producing a silently short ledger.
fn write_state_section(out: &mut String, state: &StateSection) {
    let _ = writeln!(out, "state iter {}", state.iteration);
    let s = &state.stats;
    let _ = write!(out, "state stats :");
    for r in &s.rerouted_per_iter {
        let _ = write!(out, " {r}");
    }
    out.push('\n');
    let _ = write!(out, "state counters");
    for v in s.dirty {
        let _ = write!(out, " {v}");
    }
    let _ = write!(out, " {} {}", s.usage_recounts, s.sta_nodes_retimed);
    for v in s.kernel {
        let _ = write!(out, " {v}");
    }
    out.push('\n');
    for (label, ledger) in
        [("usage", &state.usage), ("hist", &state.usage_hist), ("prices", &state.prices)]
    {
        for (ci, chunk) in ledger.chunks(16).enumerate() {
            let _ = write!(out, "state {label} {} :", ci * 16);
            for v in chunk {
                let _ = write!(out, " {v:?}");
            }
            out.push('\n');
        }
    }
    let write_opt = |out: &mut String, values: &Option<Vec<f64>>| match values {
        Some(vs) => {
            for v in vs {
                let _ = write!(out, " {v:?}");
            }
        }
        None => out.push_str(" -"),
    };
    for (i, n) in state.nets.iter().enumerate() {
        let _ = write!(out, "state net {i} {} {:?} :", u8::from(n.routed), n.drift);
        for v in &n.weights {
            let _ = write!(out, " {v:?}");
        }
        out.push_str(" :");
        write_opt(out, &n.budgets);
        out.push_str(" :");
        for v in &n.weight_ref {
            let _ = write!(out, " {v:?}");
        }
        out.push_str(" :");
        write_opt(out, &n.budget_ref);
        out.push('\n');
    }
    for &(id, ref t) in &state.trees {
        let _ = write!(out, "state tree {id} {:?} {} :", t.wirelength_gcells, t.vias);
        for v in 0..t.kinds.len() {
            let _ =
                write!(out, " {} {} {} {}", t.kinds[v], t.vertices[v], t.parents[v], t.path_len[v]);
        }
        out.push_str(" :");
        for e in &t.path_edges {
            let _ = write!(out, " {e}");
        }
        out.push_str(" :");
        for d in &t.sink_delays {
            let _ = write!(out, " {d:?}");
        }
        out.push('\n');
    }
}

/// Section ranks of the record kinds; records must appear in
/// non-decreasing rank order.
fn record_rank(kind: &str) -> Option<u8> {
    Some(match kind {
        "chip" | "tech" | "celldelay" | "config" => 1,
        "grid" => 2,
        "layer" => 3,
        "ecap" => 4,
        "net" => 5,
        "chain" => 6,
        "weights" | "budgets" => 7,
        "request" => 8,
        "state" => 9,
        _ => return None,
    })
}

/// Where parsed `ecap` overrides go. The owned parse collects them into
/// the [`ChipDoc`]; the streaming parse builds the [`GridGraph`] as soon
/// as the layer records complete the spec and applies each override in
/// place, so the overrides are never materialized as a list.
enum EcapSink {
    Collect(Vec<(EdgeId, f64)>),
    Apply { grid: Option<GridGraph>, applied: usize },
}

/// Streaming parser state; consumes one trimmed record line at a time.
struct DocParser {
    rank: u8,
    header_seen: bool,
    /// Format version from the header (1 or 2); `state` records need 2.
    version: u8,
    name: Option<String>,
    tech: Option<u8>,
    cell_delay: Option<f64>,
    config: Vec<(String, String)>,
    /// `grid` line fields until the layer records complete the spec.
    grid_head: Option<(u32, u32, usize, f64, f64, f64, f64)>,
    layers: Vec<LayerSpec>,
    spec: Option<GridSpec>,
    num_edges: usize,
    num_vertices: usize,
    sink: EcapSink,
    /// Last `ecap` edge id, for the strict-increase check in both sinks.
    last_ecap: Option<EdgeId>,
    nets: Vec<Net>,
    chains: Vec<Chain>,
    weights: Vec<(usize, Vec<f64>)>,
    budgets: Vec<(usize, Vec<f64>)>,
    requests: Vec<RequestRecord>,
    /// Checkpoint section under construction; `Some` once `state iter`
    /// was seen.
    state: Option<StateSection>,
    state_stats_seen: bool,
    state_counters_seen: bool,
}

/// Parses the next whitespace token of `it` as `T`.
fn tok<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, ParseWorkloadError> {
    let raw = it.next().ok_or_else(|| perr(line, format!("missing {what}")))?;
    raw.parse().map_err(|_| perr(line, format!("bad {what} {raw}")))
}

/// Asserts `it` is exhausted.
fn no_more(mut it: std::str::SplitWhitespace<'_>, line: usize) -> Result<(), ParseWorkloadError> {
    match it.next() {
        Some(extra) => Err(perr(line, format!("unexpected trailing token {extra}"))),
        None => Ok(()),
    }
}

/// Parses one float token, rejecting NaN — the parser enforces the
/// same exclusion as the writer, so everything it accepts can be
/// re-serialized (and NaN never reaches routing arithmetic).
fn ftok(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<f64, ParseWorkloadError> {
    let v: f64 = tok(it, line, what)?;
    nan_check(v, line, what)?;
    Ok(v)
}

fn nan_check(v: f64, line: usize, what: &str) -> Result<(), ParseWorkloadError> {
    if v.is_nan() {
        return Err(perr(line, format!("{what} is NaN, which cdst/1 does not represent")));
    }
    Ok(())
}

impl DocParser {
    fn new(sink: EcapSink) -> Self {
        DocParser {
            rank: 0,
            header_seen: false,
            version: 0,
            name: None,
            tech: None,
            cell_delay: None,
            config: Vec::new(),
            grid_head: None,
            layers: Vec::new(),
            spec: None,
            num_edges: 0,
            num_vertices: 0,
            sink,
            last_ecap: None,
            nets: Vec::new(),
            chains: Vec::new(),
            weights: Vec::new(),
            budgets: Vec::new(),
            requests: Vec::new(),
            state: None,
            state_stats_seen: false,
            state_counters_seen: false,
        }
    }

    fn layers_missing(&self) -> usize {
        if self.spec.is_some() {
            return 0;
        }
        self.grid_head.map_or(0, |(_, _, nl, ..)| nl - self.layers.len())
    }

    fn record(&mut self, line: usize, text: &str) -> Result<(), ParseWorkloadError> {
        // INVARIANT: the parse loop skips blank lines before calling record, so a first token exists.
        let kind = text.split_whitespace().next().expect("caller skips blank lines");
        if !self.header_seen {
            if text == FORMAT_VERSION || text == FORMAT_VERSION_STATE {
                self.header_seen = true;
                self.version = if text == FORMAT_VERSION { 1 } else { 2 };
                self.rank = 1;
                return Ok(());
            }
            if kind.starts_with("cdst/") {
                return Err(perr(
                    line,
                    format!("unsupported version {kind} (want cdst/1 or cdst/2)"),
                ));
            }
            return Err(perr(line, "missing cdst/1 header before the first record"));
        }
        let rank =
            record_rank(kind).ok_or_else(|| perr(line, format!("unknown record: {kind}")))?;
        if rank < self.rank {
            return Err(perr(line, format!("{kind} record out of section order")));
        }
        if self.layers_missing() > 0 && kind != "layer" {
            return Err(perr(
                line,
                format!("expected {} more layer record(s) before {kind}", self.layers_missing()),
            ));
        }
        if rank >= 4 && self.spec.is_none() {
            return Err(perr(line, format!("missing grid record before {kind}")));
        }
        self.rank = rank;
        let rest = text[kind.len()..].trim_start();
        match kind {
            "chip" => self.chip(line, rest),
            "tech" => self.tech(line, rest),
            "celldelay" => self.celldelay(line, rest),
            "config" => self.config(line, rest),
            "grid" => self.grid(line, rest),
            "layer" => self.layer(line, rest),
            "ecap" => self.ecap(line, rest),
            "net" => self.net(line, rest),
            "chain" => self.chain(line, rest),
            "weights" | "budgets" => self.weights_budgets(line, rest, kind),
            "request" => self.request(line, rest),
            "state" => self.state_record(line, rest),
            // INVARIANT: record_rank returned a rank for this kind, and the match above lists every ranked kind.
            _ => unreachable!("record_rank screened the kind"),
        }
    }

    fn chip(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.name.is_some() {
            return Err(perr(line, "duplicate chip record"));
        }
        let mut it = rest.split_whitespace();
        let name = it.next().ok_or_else(|| perr(line, "missing chip name"))?;
        no_more(it, line)?;
        self.name = Some(name.to_string());
        Ok(())
    }

    fn tech(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.tech.is_some() {
            return Err(perr(line, "duplicate tech record"));
        }
        let mut it = rest.split_whitespace();
        let layers: u8 = tok(&mut it, line, "tech layer count")?;
        no_more(it, line)?;
        if layers < 2 {
            return Err(perr(line, "tech needs at least 2 layers"));
        }
        self.tech = Some(layers);
        Ok(())
    }

    fn celldelay(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.cell_delay.is_some() {
            return Err(perr(line, "duplicate celldelay record"));
        }
        let mut it = rest.split_whitespace();
        let ps: f64 = ftok(&mut it, line, "cell delay")?;
        no_more(it, line)?;
        self.cell_delay = Some(ps);
        Ok(())
    }

    fn config(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        let mut it = rest.split_whitespace();
        let key = it.next().ok_or_else(|| perr(line, "missing config key"))?;
        let value = it.next().ok_or_else(|| perr(line, "missing config value"))?;
        no_more(it, line)?;
        self.config.push((key.to_string(), value.to_string()));
        Ok(())
    }

    fn grid(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.grid_head.is_some() {
            return Err(perr(line, "duplicate grid record"));
        }
        let mut it = rest.split_whitespace();
        let nx: u32 = tok(&mut it, line, "grid nx")?;
        let ny: u32 = tok(&mut it, line, "grid ny")?;
        let nl: usize = tok(&mut it, line, "grid layer count")?;
        let via_cost: f64 = ftok(&mut it, line, "via cost")?;
        let via_delay: f64 = ftok(&mut it, line, "via delay")?;
        let via_capacity: f64 = ftok(&mut it, line, "via capacity")?;
        let gcell_um: f64 = ftok(&mut it, line, "gcell pitch")?;
        no_more(it, line)?;
        if nx == 0 || ny == 0 {
            return Err(perr(line, "grid must have at least one gcell"));
        }
        if nl == 0 {
            return Err(perr(line, "grid must have at least one layer"));
        }
        if gcell_um.is_nan() || gcell_um <= 0.0 {
            return Err(perr(line, "gcell pitch must be positive"));
        }
        self.grid_head = Some((nx, ny, nl, via_cost, via_delay, via_capacity, gcell_um));
        Ok(())
    }

    fn layer(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.grid_head.is_none() || self.layers_missing() == 0 {
            return Err(perr(line, "unexpected layer record"));
        }
        let (head, tail) =
            rest.split_once(':').ok_or_else(|| perr(line, "missing ':' separator"))?;
        let dir = match head.trim() {
            "H" => Direction::Horizontal,
            "V" => Direction::Vertical,
            other => return Err(perr(line, format!("bad layer direction {other} (want H or V)"))),
        };
        let values: Vec<f64> = tail
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| perr(line, format!("bad wire type value {v}"))))
            .collect::<Result<_, _>>()?;
        for &v in &values {
            nan_check(v, line, "wire type value")?;
        }
        if values.is_empty() || !values.len().is_multiple_of(3) {
            return Err(perr(
                line,
                "wire types must come as non-empty (cost delay capacity) triples",
            ));
        }
        let wire_types = values
            .chunks(3)
            .map(|c| WireTypeSpec { cost_per_gcell: c[0], delay_per_gcell: c[1], capacity: c[2] })
            .collect();
        self.layers.push(LayerSpec { dir, wire_types });
        if self.layers_missing() == 0 {
            let (nx, ny, _, via_cost, via_delay, via_capacity, gcell_um) =
                // INVARIANT: record_rank rejects a layer record before the grid record, so grid_head is set here.
                self.grid_head.expect("layer records require a grid");
            let spec = GridSpec {
                nx,
                ny,
                layers: std::mem::take(&mut self.layers),
                via_cost,
                via_delay,
                via_capacity,
                gcell_um,
            };
            self.num_edges = spec_num_edges(&spec);
            self.num_vertices = nx as usize * ny as usize * spec.layers.len();
            if let EcapSink::Apply { grid, .. } = &mut self.sink {
                // streaming mode: build the graph the moment the spec is
                // complete, so ecap overrides apply in place and nets
                // stream straight into their tables
                *grid = Some(spec.clone().build());
            }
            self.spec = Some(spec);
        }
        Ok(())
    }

    fn ecap(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        let mut it = rest.split_whitespace();
        let e: EdgeId = tok(&mut it, line, "edge id")?;
        let cap: f64 = ftok(&mut it, line, "capacity")?;
        no_more(it, line)?;
        if (e as usize) >= self.num_edges {
            return Err(perr(
                line,
                format!("ecap edge {e} out of range (grid has {} edges)", self.num_edges),
            ));
        }
        if self.last_ecap.is_some_and(|p| e <= p) {
            return Err(perr(line, "ecap edge ids must be strictly increasing"));
        }
        self.last_ecap = Some(e);
        match &mut self.sink {
            EcapSink::Collect(list) => list.push((e, cap)),
            EcapSink::Apply { grid, applied } => {
                // INVARIANT: rank order puts grid before ecap, and spec completion built the graph.
                grid.as_mut().expect("rank order puts grid before ecap").set_edge_capacity(e, cap);
                *applied += 1;
            }
        }
        Ok(())
    }

    fn net(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        let net = parse_net_record(rest, line)?;
        // INVARIANT: record_rank orders grid before nets, and the grid record built spec.
        let spec = self.spec.as_ref().expect("rank order puts grid before nets");
        for &p in std::iter::once(&net.root).chain(&net.sinks) {
            if p.x < 0 || p.y < 0 || (p.x as u32) >= spec.nx || (p.y as u32) >= spec.ny {
                return Err(perr(line, format!("pin ({}, {}) outside the grid", p.x, p.y)));
            }
        }
        self.nets.push(net);
        Ok(())
    }

    fn chain(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        let chain = parse_chain_record(rest, line)?;
        nan_check(chain.rat_ps, line, "chain RAT")?;
        for link in &chain.links {
            if link.net >= self.nets.len() {
                return Err(perr(line, format!("chain references unknown net {}", link.net)));
            }
            if let Some(s) = link.cont_sink {
                if s >= self.nets[link.net].sinks.len() {
                    return Err(perr(line, format!("net {} has no sink {s}", link.net)));
                }
            }
        }
        self.chains.push(chain);
        Ok(())
    }

    fn weights_budgets(
        &mut self,
        line: usize,
        rest: &str,
        kind: &str,
    ) -> Result<(), ParseWorkloadError> {
        let (head, tail) =
            rest.split_once(':').ok_or_else(|| perr(line, "missing ':' separator"))?;
        let net: usize =
            head.trim().parse().map_err(|_| perr(line, format!("bad net id {}", head.trim())))?;
        if net >= self.nets.len() {
            return Err(perr(line, format!("{kind} for unknown net {net}")));
        }
        let values: Vec<f64> = tail
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| perr(line, format!("bad value {v}"))))
            .collect::<Result<_, _>>()?;
        for &v in &values {
            nan_check(v, line, kind)?;
        }
        if values.len() != self.nets[net].sinks.len() {
            return Err(perr(
                line,
                format!(
                    "{kind} for net {net}: {} values for {} sinks",
                    values.len(),
                    self.nets[net].sinks.len()
                ),
            ));
        }
        let list = if kind == "weights" { &mut self.weights } else { &mut self.budgets };
        if list.last().is_some_and(|&(p, _)| net <= p) {
            return Err(perr(line, format!("{kind} net ids must be strictly increasing")));
        }
        list.push((net, values));
        Ok(())
    }

    fn request(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        let mut sections = rest.split(':');
        // INVARIANT: split always yields at least one (possibly empty) part.
        let head = sections.next().expect("split yields at least one part");
        let root_part =
            sections.next().ok_or_else(|| perr(line, "missing root section after ':'"))?;
        let sinks_part =
            sections.next().ok_or_else(|| perr(line, "missing sinks section after ':'"))?;
        let weights_part =
            sections.next().ok_or_else(|| perr(line, "missing weights section after ':'"))?;
        if sections.next().is_some() {
            return Err(perr(line, "too many ':' sections in request record"));
        }
        let mut it = head.split_whitespace();
        let seed: u64 = tok(&mut it, line, "seed")?;
        let dbif: f64 = tok(&mut it, line, "dbif")?;
        let eta: f64 = tok(&mut it, line, "eta")?;
        no_more(it, line)?;
        if dbif.is_nan() || dbif < 0.0 {
            return Err(perr(line, "dbif must be non-negative"));
        }
        if !(0.0..=0.5).contains(&eta) {
            return Err(perr(line, "eta must lie in [0, 1/2]"));
        }
        // INVARIANT: record_rank orders grid before requests, and the grid record built spec.
        let spec = self.spec.as_ref().expect("rank order puts grid before requests");
        let nl = spec.layers.len();
        let pin = |x: u32, y: u32, l: u8| -> Result<(u32, u32, u8), ParseWorkloadError> {
            if x >= spec.nx || y >= spec.ny || (l as usize) >= nl {
                return Err(perr(line, format!("pin ({x}, {y}, {l}) outside the grid")));
            }
            Ok((x, y, l))
        };
        let mut rt = root_part.split_whitespace();
        let root = pin(
            tok(&mut rt, line, "root x")?,
            tok(&mut rt, line, "root y")?,
            tok(&mut rt, line, "root layer")?,
        )?;
        no_more(rt, line)?;
        let sink_vals: Vec<&str> = sinks_part.split_whitespace().collect();
        if sink_vals.is_empty() || !sink_vals.len().is_multiple_of(3) {
            return Err(perr(line, "sinks must come as non-empty (x y layer) triples"));
        }
        let mut sinks = Vec::with_capacity(sink_vals.len() / 3);
        for c in sink_vals.chunks(3) {
            let parse = |v: &str, what: &str| -> Result<u64, ParseWorkloadError> {
                v.parse().map_err(|_| perr(line, format!("bad sink {what} {v}")))
            };
            let x = parse(c[0], "x")?;
            let y = parse(c[1], "y")?;
            let l = parse(c[2], "layer")?;
            let (x, y, l) = (
                u32::try_from(x).map_err(|_| perr(line, format!("bad sink x {x}")))?,
                u32::try_from(y).map_err(|_| perr(line, format!("bad sink y {y}")))?,
                u8::try_from(l).map_err(|_| perr(line, format!("bad sink layer {l}")))?,
            );
            sinks.push(pin(x, y, l)?);
        }
        let weights: Vec<f64> = weights_part
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| perr(line, format!("bad weight {v}"))))
            .collect::<Result<_, _>>()?;
        for &w in &weights {
            nan_check(w, line, "request weight")?;
        }
        if weights.len() != sinks.len() {
            return Err(perr(line, "weight count differs from sink count"));
        }
        self.requests.push(RequestRecord { seed, dbif, eta, root, sinks, weights });
        Ok(())
    }

    /// Dispatches a `state <kind> ...` record (cdst/2 checkpoints).
    fn state_record(&mut self, line: usize, rest: &str) -> Result<(), ParseWorkloadError> {
        if self.version < 2 {
            return Err(perr(line, "state records require a cdst/2 header"));
        }
        let sub = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| perr(line, "missing state record kind"))?;
        let tail = rest[rest.find(sub).unwrap_or(0) + sub.len()..].trim_start();
        if sub != "iter" && self.state.is_none() {
            return Err(perr(line, "state iter must precede other state records"));
        }
        match sub {
            "iter" => self.state_iter(line, tail),
            "stats" => self.state_stats(line, tail),
            "counters" => self.state_counters(line, tail),
            "usage" | "hist" | "prices" => self.state_ledger(line, tail, sub),
            "net" => self.state_net(line, tail),
            "tree" => self.state_tree(line, tail),
            other => Err(perr(line, format!("unknown state record {other}"))),
        }
    }

    fn state_iter(&mut self, line: usize, tail: &str) -> Result<(), ParseWorkloadError> {
        if self.state.is_some() {
            return Err(perr(line, "duplicate state iter record"));
        }
        let mut it = tail.split_whitespace();
        let iteration: usize = tok(&mut it, line, "state iteration counter")?;
        no_more(it, line)?;
        if iteration == 0 {
            return Err(perr(line, "state iteration counter must be at least 1"));
        }
        self.state = Some(StateSection { iteration, ..Default::default() });
        Ok(())
    }

    fn state_stats(&mut self, line: usize, tail: &str) -> Result<(), ParseWorkloadError> {
        if self.state_stats_seen {
            return Err(perr(line, "duplicate state stats record"));
        }
        self.state_stats_seen = true;
        let tail = tail.strip_prefix(':').ok_or_else(|| perr(line, "missing ':' separator"))?;
        let counts: Vec<usize> = tail
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| perr(line, format!("bad reroute count {v}"))))
            .collect::<Result<_, _>>()?;
        // INVARIANT: state_record gates every non-iter sub-record on state being set.
        self.state.as_mut().expect("gated on state iter").stats.rerouted_per_iter = counts;
        Ok(())
    }

    fn state_counters(&mut self, line: usize, tail: &str) -> Result<(), ParseWorkloadError> {
        if self.state_counters_seen {
            return Err(perr(line, "duplicate state counters record"));
        }
        self.state_counters_seen = true;
        let mut it = tail.split_whitespace();
        // INVARIANT: state_record gates every non-iter sub-record on state being set.
        let stats = &mut self.state.as_mut().expect("gated on state iter").stats;
        for slot in &mut stats.dirty {
            *slot = tok(&mut it, line, "dirty-cause counter")?;
        }
        stats.usage_recounts = tok(&mut it, line, "usage recount counter")?;
        stats.sta_nodes_retimed = tok(&mut it, line, "STA retime counter")?;
        for slot in &mut stats.kernel {
            *slot = tok(&mut it, line, "kernel counter")?;
        }
        no_more(it, line)?;
        Ok(())
    }

    /// `state usage|hist|prices <start> : <v>...` — ledger values arrive
    /// in chunks whose declared start offset must equal the values
    /// already accumulated, so a dropped or reordered chunk is an error
    /// on the exact line it happens.
    fn state_ledger(
        &mut self,
        line: usize,
        tail: &str,
        sub: &str,
    ) -> Result<(), ParseWorkloadError> {
        let (head, vals) =
            tail.split_once(':').ok_or_else(|| perr(line, "missing ':' separator"))?;
        let start: usize = head
            .trim()
            .parse()
            .map_err(|_| perr(line, format!("bad chunk offset {}", head.trim())))?;
        let num_edges = self.num_edges;
        // INVARIANT: state_record gates every non-iter sub-record on state being set.
        let state = self.state.as_mut().expect("gated on state iter");
        let ledger = match sub {
            "usage" => &mut state.usage,
            "hist" => &mut state.usage_hist,
            _ => &mut state.prices,
        };
        if start != ledger.len() {
            return Err(perr(
                line,
                format!("state {sub} chunk starts at {start}, expected {}", ledger.len()),
            ));
        }
        for v in vals.split_whitespace() {
            let value: f64 = v.parse().map_err(|_| perr(line, format!("bad {sub} value {v}")))?;
            nan_check(value, line, "state ledger value")?;
            if ledger.len() >= num_edges {
                return Err(perr(
                    line,
                    format!("state {sub} has more values than the grid's {num_edges} edges"),
                ));
            }
            ledger.push(value);
        }
        Ok(())
    }

    fn state_net(&mut self, line: usize, tail: &str) -> Result<(), ParseWorkloadError> {
        let mut sections = tail.split(':');
        // INVARIANT: split always yields at least one (possibly empty) part.
        let head = sections.next().expect("split yields at least one part");
        let w_part =
            sections.next().ok_or_else(|| perr(line, "missing weights section after ':'"))?;
        let b_part =
            sections.next().ok_or_else(|| perr(line, "missing budgets section after ':'"))?;
        let wr_part = sections
            .next()
            .ok_or_else(|| perr(line, "missing reference-weights section after ':'"))?;
        let br_part = sections
            .next()
            .ok_or_else(|| perr(line, "missing reference-budgets section after ':'"))?;
        if sections.next().is_some() {
            return Err(perr(line, "too many ':' sections in state net record"));
        }
        let mut it = head.split_whitespace();
        let id: usize = tok(&mut it, line, "net id")?;
        let routed_raw: u8 = tok(&mut it, line, "routed flag")?;
        let drift: f64 = ftok(&mut it, line, "drift")?;
        no_more(it, line)?;
        let routed = match routed_raw {
            0 => false,
            1 => true,
            other => return Err(perr(line, format!("bad routed flag {other} (want 0 or 1)"))),
        };
        let seen = self.state.as_ref().map_or(0, |s| s.nets.len());
        if id != seen {
            return Err(perr(line, format!("state net {id} out of order (expected net {seen})")));
        }
        if id >= self.nets.len() {
            return Err(perr(line, format!("state net {id} for unknown net")));
        }
        let sinks = self.nets[id].sinks.len();
        let weights = parse_f64_list(w_part, line, "state net weight")?;
        let budgets = parse_opt_f64_list(b_part, line, "state net budget")?;
        let weight_ref = parse_f64_list(wr_part, line, "state net reference weight")?;
        let budget_ref = parse_opt_f64_list(br_part, line, "state net reference budget")?;
        if weights.len() != sinks {
            return Err(perr(
                line,
                format!("state net {id}: {} weights for {sinks} sinks", weights.len()),
            ));
        }
        if !weight_ref.is_empty() && weight_ref.len() != sinks {
            return Err(perr(
                line,
                format!("state net {id}: {} reference weights for {sinks} sinks", weight_ref.len()),
            ));
        }
        for (label, list) in [("budgets", &budgets), ("reference budgets", &budget_ref)] {
            if let Some(b) = list {
                if b.len() != sinks {
                    return Err(perr(
                        line,
                        format!("state net {id}: {} {label} for {sinks} sinks", b.len()),
                    ));
                }
            }
        }
        // INVARIANT: state_record gates every non-iter sub-record on state being set.
        self.state.as_mut().expect("gated on state iter").nets.push(StateNet {
            routed,
            drift,
            weights,
            budgets,
            weight_ref,
            budget_ref,
        });
        Ok(())
    }

    fn state_tree(&mut self, line: usize, tail: &str) -> Result<(), ParseWorkloadError> {
        let mut sections = tail.split(':');
        // INVARIANT: split always yields at least one (possibly empty) part.
        let head = sections.next().expect("split yields at least one part");
        let nodes_part =
            sections.next().ok_or_else(|| perr(line, "missing nodes section after ':'"))?;
        let edges_part =
            sections.next().ok_or_else(|| perr(line, "missing path-edges section after ':'"))?;
        let delays_part =
            sections.next().ok_or_else(|| perr(line, "missing sink-delays section after ':'"))?;
        if sections.next().is_some() {
            return Err(perr(line, "too many ':' sections in state tree record"));
        }
        let mut it = head.split_whitespace();
        let id: usize = tok(&mut it, line, "net id")?;
        let wirelength_gcells: f64 = ftok(&mut it, line, "tree wirelength")?;
        let vias: u64 = tok(&mut it, line, "tree via count")?;
        no_more(it, line)?;
        if id >= self.nets.len() {
            return Err(perr(line, format!("state tree for unknown net {id}")));
        }
        let sinks = self.nets[id].sinks.len();
        let node_vals: Vec<i64> = nodes_part
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| perr(line, format!("bad tree node value {v}"))))
            .collect::<Result<_, _>>()?;
        if node_vals.is_empty() || !node_vals.len().is_multiple_of(4) {
            return Err(perr(
                line,
                "tree nodes must come as non-empty (kind vertex parent pathlen) quadruples",
            ));
        }
        let n = node_vals.len() / 4;
        let mut tree = StateTree {
            kinds: Vec::with_capacity(n),
            vertices: Vec::with_capacity(n),
            parents: Vec::with_capacity(n),
            path_len: Vec::with_capacity(n),
            path_edges: Vec::new(),
            sink_delays: Vec::new(),
            wirelength_gcells,
            vias,
        };
        let as_u32 = |v: i64, what: &str| -> Result<u32, ParseWorkloadError> {
            u32::try_from(v).map_err(|_| perr(line, format!("bad tree node {what} {v}")))
        };
        for quad in node_vals.chunks(4) {
            tree.kinds.push(quad[0]);
            tree.vertices.push(as_u32(quad[1], "vertex")?);
            tree.parents.push(as_u32(quad[2], "parent")?);
            tree.path_len.push(as_u32(quad[3], "path length")?);
        }
        for v in edges_part.split_whitespace() {
            let e: u32 = v.parse().map_err(|_| perr(line, format!("bad path edge {v}")))?;
            tree.path_edges.push(e);
        }
        tree.sink_delays = parse_f64_list(delays_part, line, "sink delay")?;
        validate_state_tree(&tree, self.num_vertices, self.num_edges, sinks)
            .map_err(|m| perr(line, format!("state tree for net {id}: {m}")))?;
        // INVARIANT: state_record gates every non-iter sub-record on state being set.
        let state = self.state.as_mut().expect("gated on state iter");
        if state.trees.last().is_some_and(|&(p, _)| id <= p) {
            return Err(perr(line, "state tree net ids must be strictly increasing"));
        }
        state.trees.push((id, tree));
        Ok(())
    }

    /// End-of-document completeness checks shared by the owned and
    /// streaming finishers. `lines` is the physical line count; errors
    /// report one past it (the EOF position).
    fn check_complete(&self, lines: usize) -> Result<(), ParseWorkloadError> {
        let eof = lines + 1;
        if !self.header_seen {
            return Err(perr(1, "missing cdst/1 header"));
        }
        let missing = self.layers_missing();
        if missing > 0 {
            return Err(perr(eof, format!("missing {missing} layer record(s)")));
        }
        if self.spec.is_none() {
            return Err(perr(eof, "missing grid record"));
        }
        if self.name.is_none() {
            return Err(perr(eof, "missing chip record"));
        }
        if self.tech.is_none() {
            return Err(perr(eof, "missing tech record"));
        }
        if self.cell_delay.is_none() {
            return Err(perr(eof, "missing celldelay record"));
        }
        if let Some(state) = &self.state {
            // a checkpoint is all-or-nothing: a truncated state section
            // (short ledger, missing nets or trees) is rejected here
            validate_state(state, self.num_edges, self.num_vertices, &self.nets)
                .map_err(|m| perr(eof, format!("incomplete state section: {m}")))?;
        }
        Ok(())
    }

    fn finish(self, lines: usize) -> Result<ChipDoc, ParseWorkloadError> {
        self.check_complete(lines)?;
        let EcapSink::Collect(ecap) = self.sink else {
            // INVARIANT: finish is only called by the owned parse, which constructs the Collect sink.
            unreachable!("owned parse uses the collect sink")
        };
        Ok(ChipDoc {
            // INVARIANT: check_complete verified the chip record is present.
            name: self.name.expect("checked complete"),
            // INVARIANT: check_complete verified the tech record is present.
            tech_layers: self.tech.expect("checked complete"),
            // INVARIANT: check_complete verified the celldelay record is present.
            cell_delay_ps: self.cell_delay.expect("checked complete"),
            config: self.config,
            // INVARIANT: check_complete verified the grid record is present.
            grid: self.spec.expect("checked complete"),
            ecap,
            nets: self.nets,
            chains: self.chains,
            weights: self.weights,
            budgets: self.budgets,
            requests: self.requests,
            state: self.state,
        })
    }

    fn finish_streamed(
        self,
        lines: usize,
        mut stats: ReaderStats,
    ) -> Result<StreamedChip, ParseWorkloadError> {
        self.check_complete(lines)?;
        let EcapSink::Apply { grid, applied } = self.sink else {
            // INVARIANT: finish_streamed is only called by the streaming parse, which constructs the Apply sink.
            unreachable!("streaming parse uses the apply sink")
        };
        stats.ecap_applied = applied;
        // INVARIANT: check_complete verified the grid record, and spec completion built the graph.
        let grid = grid.expect("checked complete");
        // INVARIANT: check_complete verified every required record is present.
        let tech_layers = self.tech.expect("checked complete");
        let delay_model = Technology::five_nm_like(tech_layers).calibrate(grid.spec().gcell_um);
        Ok(StreamedChip {
            chip: Chip {
                // INVARIANT: check_complete verified the chip record is present.
                name: self.name.expect("checked complete"),
                grid,
                delay_model,
                nets: self.nets,
                chains: self.chains,
                // INVARIANT: check_complete verified the celldelay record is present.
                cell_delay_ps: self.cell_delay.expect("checked complete"),
            },
            tech_layers,
            config: self.config,
            weights: self.weights,
            budgets: self.budgets,
            requests: self.requests,
            state: self.state,
            stats,
        })
    }
}

/// Parses a `':'`-delimited section as whitespace-separated finite
/// floats (possibly none).
fn parse_f64_list(part: &str, line: usize, what: &str) -> Result<Vec<f64>, ParseWorkloadError> {
    let values: Vec<f64> = part
        .split_whitespace()
        .map(|v| v.parse().map_err(|_| perr(line, format!("bad {what} {v}"))))
        .collect::<Result<_, _>>()?;
    for &v in &values {
        nan_check(v, line, what)?;
    }
    Ok(values)
}

/// Like [`parse_f64_list`], but a lone `-` means `None`.
fn parse_opt_f64_list(
    part: &str,
    line: usize,
    what: &str,
) -> Result<Option<Vec<f64>>, ParseWorkloadError> {
    if part.trim() == "-" {
        return Ok(None);
    }
    parse_f64_list(part, line, what).map(Some)
}

/// Streaming parse from any reader: lines are consumed one at a time
/// (a line buffer is the only transient state), so arbitrarily large
/// documents parse in O(largest record) memory on top of the output.
///
/// # Errors
///
/// The first malformed line, with its 1-based line number; reader
/// errors are reported on the line they interrupted.
pub fn read_chip_doc<R: BufRead>(mut reader: R) -> Result<ChipDoc, ParseWorkloadError> {
    let mut parser = DocParser::new(EcapSink::Collect(Vec::new()));
    let mut buf = String::new();
    let mut line = 0usize;
    loop {
        buf.clear();
        line += 1;
        let n = reader.read_line(&mut buf).map_err(|e| perr(line, format!("read error: {e}")))?;
        if n == 0 {
            return parser.finish(line - 1);
        }
        let text = buf.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        parser.record(line, text)?;
    }
}

/// Work counters of one streaming read, for the peak-memory
/// experiments: the owned parse materializes a [`ChipDoc`] (an `ecap`
/// list plus a second copy of every net) before building the chip,
/// while the streaming reader's transient state is one line buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReaderStats {
    /// Non-blank, non-comment record lines consumed.
    pub records: usize,
    /// `ecap` overrides applied in place to the already-built graph.
    pub ecap_applied: usize,
    /// Largest single line buffered (bytes) — the reader's only
    /// transient allocation, so this bounds its working set on top of
    /// the output.
    pub peak_line_bytes: usize,
}

/// Result of [`read_chip_streaming`]: the routable chip plus the
/// document extras that are not part of [`Chip`], without the
/// intermediate [`ChipDoc`] the owned parse materializes.
#[derive(Debug, Clone)]
pub struct StreamedChip {
    /// The routable chip (graph built during the parse, `ecap` applied
    /// in place).
    pub chip: Chip,
    /// Metal layer count the delay model was calibrated from.
    pub tech_layers: u8,
    /// Router configuration overrides, in document order.
    pub config: Vec<(String, String)>,
    /// Per-net delay weights (the harvest archive).
    pub weights: Vec<(usize, Vec<f64>)>,
    /// Per-net delay budgets.
    pub budgets: Vec<(usize, Vec<f64>)>,
    /// Archived solver-level requests.
    pub requests: Vec<RequestRecord>,
    /// Mid-run checkpoint state (cdst/2 documents).
    pub state: Option<StateSection>,
    /// Work counters of the read.
    pub stats: ReaderStats,
}

/// Streaming parse that feeds records straight into the chip being
/// built: the grid graph is constructed the moment the layer records
/// complete the spec, `ecap` overrides are applied to it in place, and
/// nets/chains accumulate directly in their final tables. Peak memory
/// is the finished chip plus one line buffer — no intermediate
/// [`ChipDoc`] (which would hold a second copy of the workload) exists
/// at any point.
///
/// Accepts exactly the documents [`read_chip_doc`] accepts, and rejects
/// malformed input with the same first-error line number (enforced by
/// proptest in `tests/chipdoc.rs`).
///
/// # Errors
///
/// The first malformed line, with its 1-based line number; reader
/// errors are reported on the line they interrupted.
pub fn read_chip_streaming<R: BufRead>(mut reader: R) -> Result<StreamedChip, ParseWorkloadError> {
    let mut parser = DocParser::new(EcapSink::Apply { grid: None, applied: 0 });
    let mut buf = String::new();
    let mut line = 0usize;
    let mut stats = ReaderStats::default();
    loop {
        buf.clear();
        line += 1;
        let n = reader.read_line(&mut buf).map_err(|e| perr(line, format!("read error: {e}")))?;
        if n == 0 {
            return parser.finish_streamed(line - 1, stats);
        }
        stats.peak_line_bytes = stats.peak_line_bytes.max(buf.len());
        let text = buf.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        stats.records += 1;
        parser.record(line, text)?;
    }
}

/// Parses a chip document from a string. See [`read_chip_doc`].
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_chip_doc(text: &str) -> Result<ChipDoc, ParseWorkloadError> {
    read_chip_doc(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipSpec;

    fn small_doc() -> ChipDoc {
        ChipDoc::from_chip(&ChipSpec::small_test(3).generate()).unwrap()
    }

    #[test]
    fn spec_num_edges_matches_build() {
        for spec in [
            GridSpec::uniform(6, 5, 4),
            GridSpec::uniform(1, 9, 2),
            ChipSpec::small_test(7).generate().grid.spec().clone(),
        ] {
            let built = spec.clone().build();
            assert_eq!(spec_num_edges(&spec), built.graph().num_edges());
        }
    }

    #[test]
    fn generated_chip_round_trips_bit_identically() {
        let chip = ChipSpec { num_nets: 200, ..ChipSpec::small_test(11) }.generate();
        let doc = ChipDoc::from_chip(&chip).unwrap();
        assert!(!doc.ecap.is_empty(), "macro depletion should produce capacity overrides");
        let text = chip_doc_to_string(&doc).unwrap();
        let parsed = parse_chip_doc(&text).unwrap();
        assert_eq!(parsed, doc);
        // canonical writer: write ∘ parse is the identity on writer output
        assert_eq!(chip_doc_to_string(&parsed).unwrap(), text);

        let rebuilt = parsed.build_chip();
        assert_eq!(rebuilt.name, chip.name);
        assert_eq!(rebuilt.nets, chip.nets);
        assert_eq!(rebuilt.chains, chip.chains);
        assert_eq!(rebuilt.cell_delay_ps.to_bits(), chip.cell_delay_ps.to_bits());
        assert_eq!(rebuilt.delay_model, chip.delay_model);
        assert_eq!(rebuilt.grid.spec(), chip.grid.spec());
        let (a, b) = (rebuilt.grid.graph(), chip.grid.graph());
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.edge(e).capacity.to_bits(), b.edge(e).capacity.to_bits(), "edge {e}");
            assert_eq!(a.edge(e).base_cost.to_bits(), b.edge(e).base_cost.to_bits());
            assert_eq!(a.edge(e).delay.to_bits(), b.edge(e).delay.to_bits());
        }
    }

    #[test]
    fn extras_round_trip() {
        let mut doc = small_doc();
        doc.config = vec![
            ("oracle".into(), "cd".into()),
            ("iterations".into(), "3".into()),
            ("price_tol".into(), "0.5".into()),
        ];
        let k = doc.nets[2].sinks.len();
        doc.weights = vec![(2, vec![0.05; k]), (5, vec![1.25; doc.nets[5].sinks.len()])];
        doc.budgets = vec![(2, vec![312.5; k])];
        doc.requests = vec![RequestRecord {
            seed: 99,
            dbif: 3.5,
            eta: 0.25,
            root: (0, 0, 0),
            sinks: vec![(3, 1, 0), (2, 2, 1)],
            weights: vec![0.1, 2.0],
        }];
        let text = chip_doc_to_string(&doc).unwrap();
        assert_eq!(parse_chip_doc(&text).unwrap(), doc);
    }

    #[test]
    fn streaming_reader_matches_str_parse() {
        let text = chip_doc_to_string(&small_doc()).unwrap();
        let via_str = parse_chip_doc(&text).unwrap();
        let via_reader = read_chip_doc(std::io::BufReader::with_capacity(7, text.as_bytes()));
        assert_eq!(via_reader.unwrap(), via_str);
    }

    #[test]
    fn writer_rejects_unrepresentable_documents() {
        let mut doc = small_doc();
        doc.name = "two words".into();
        assert!(chip_doc_to_string(&doc).unwrap_err().message.contains("name"));

        let mut doc = small_doc();
        doc.chains[0].rat_ps = f64::NAN;
        assert!(chip_doc_to_string(&doc).unwrap_err().message.contains("NaN"));

        let mut doc = small_doc();
        doc.nets[0].root = Point::new(-1, 0);
        assert!(chip_doc_to_string(&doc).unwrap_err().message.contains("outside"));

        let mut doc = small_doc();
        doc.ecap = vec![(u32::MAX, 1.0)];
        assert!(chip_doc_to_string(&doc).unwrap_err().message.contains("out of range"));

        let mut doc = small_doc();
        doc.weights = vec![(0, vec![])];
        if !doc.nets[0].sinks.is_empty() {
            assert!(chip_doc_to_string(&doc).unwrap_err().message.contains("sinks"));
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("chip x\n", 1, "missing cdst/1 header"),
            ("cdst/3\n", 1, "unsupported version"),
            ("cdst/1\ncdst/1\n", 2, "unknown record"),
            ("cdst/1\n# c\nbogus 1\n", 3, "unknown record"),
            ("cdst/1\nchip a\nchip b\n", 3, "duplicate chip"),
            ("cdst/1\ntech 1\n", 2, "at least 2"),
            ("cdst/1\ngrid 0 4 1 1.0 1.0 1.0 1.0\n", 2, "at least one gcell"),
            ("cdst/1\ngrid 4 4 2 1.0 1.0 1.0 1.0\nnet 0 0 :\n", 3, "layer record"),
            ("cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer X : 1.0 1.0 1.0\n", 3, "direction"),
            ("cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0\n", 3, "triples"),
            (
                "cdst/1\ngrid 2 2 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\necap 99 1.0\n",
                4,
                "out of range",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\nnet 9 0 :\n",
                4,
                "outside the grid",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\nchain 5.0 : 0\n",
                4,
                "unknown net",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 net 0 0 : 1 1\nweights 0 : 0.5 0.5\n",
                5,
                "sinks",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 net 0 0 : 1 1\nchain 5.0 : 0\nnet 1 1 : 0 0\n",
                6,
                "out of section order",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 request 7 0.0 0.9 : 0 0 0 : 1 1 0 : 1.0\n",
                4,
                "eta",
            ),
            ("cdst/1\nchip a\ntech 2\ncelldelay 1.0\n", 5, "missing grid"),
            ("cdst/1\nnet 0 0 : 1 1\n", 2, "missing grid record before net"),
            // the parser enforces the writer's NaN exclusion, so every
            // accepted document can be re-serialized
            ("cdst/1\ncelldelay NaN\n", 2, "NaN"),
            ("cdst/1\ngrid 4 4 1 NaN 1.0 1.0 1.0\n", 2, "NaN"),
            ("cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 NaN 1.0\n", 3, "NaN"),
            ("cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\necap 0 NaN\n", 4, "NaN"),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 net 0 0 : 1 1\nchain NaN : 0\n",
                5,
                "NaN",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 net 0 0 : 1 1\nweights 0 : NaN\n",
                5,
                "NaN",
            ),
            (
                "cdst/1\ngrid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n\
                 request 7 0.0 0.25 : 0 0 0 : 1 1 0 : NaN\n",
                4,
                "NaN",
            ),
            ("cdst/1\ngrid 4 4 2 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n", 4, "layer record"),
        ];
        for (text, line, needle) in cases {
            let e = parse_chip_doc(text).unwrap_err();
            assert_eq!(e.line, *line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn missing_preamble_records_are_reported_at_eof() {
        let text = "cdst/1\ngrid 2 2 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\n";
        let e = parse_chip_doc(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("missing chip"), "{e}");
    }

    #[test]
    fn build_chip_applies_ecap_overrides() {
        let mut doc = small_doc();
        doc.ecap = vec![(0, 0.5), (7, 123.25)];
        let chip = doc.build_chip();
        assert_eq!(chip.grid.graph().edge(0).capacity, 0.5);
        assert_eq!(chip.grid.graph().edge(7).capacity, 123.25);
        // neighbours keep the spec capacity
        let pristine = doc.grid.clone().build();
        assert_eq!(chip.grid.graph().edge(1).capacity, pristine.graph().edge(1).capacity);
    }

    #[test]
    fn comments_and_blank_lines_ignored_everywhere() {
        let doc = small_doc();
        let text = chip_doc_to_string(&doc).unwrap();
        let noisy: String =
            text.lines().flat_map(|l| [l, "", "# noise"]).collect::<Vec<_>>().join("\n");
        assert_eq!(parse_chip_doc(&noisy).unwrap(), doc);
    }

    /// A synthetic but fully valid checkpoint over `small_doc`'s nets:
    /// every net routed, a one-node tree per net rooted at its root
    /// vertex (zero sinks would be invalid, so sinks get delays and
    /// sink nodes attached to the root with empty paths).
    fn doc_with_state() -> ChipDoc {
        let mut doc = small_doc();
        let num_edges = spec_num_edges(&doc.grid);
        let mut state = StateSection {
            iteration: 2,
            usage: (0..num_edges).map(|e| (e % 3) as f64 * 0.5).collect(),
            usage_hist: (0..num_edges).map(|e| (e % 5) as f64 * 0.25).collect(),
            prices: (0..num_edges).map(|e| 1.0 + (e % 7) as f64).collect(),
            stats: StateStats {
                rerouted_per_iter: vec![doc.nets.len(), 3],
                dirty: [doc.nets.len(), 1, 0, 2, 0, 0],
                usage_recounts: 1,
                sta_nodes_retimed: 17,
                kernel: [100, 90, 80, 7, 3],
            },
            ..Default::default()
        };
        let vertex = |p: Point| p.y as u32 * doc.grid.nx + p.x as u32;
        for net in &doc.nets {
            let k = net.sinks.len();
            state.nets.push(StateNet {
                routed: true,
                drift: 0.125,
                weights: vec![0.5; k],
                budgets: Some(vec![250.0; k]),
                weight_ref: vec![0.5; k],
                budget_ref: None,
            });
        }
        for (i, net) in doc.nets.iter().enumerate() {
            let k = net.sinks.len();
            let mut tree = StateTree {
                kinds: vec![-1],
                vertices: vec![vertex(net.root)],
                parents: vec![0],
                path_len: vec![0],
                path_edges: vec![],
                sink_delays: vec![42.5; k],
                wirelength_gcells: k as f64,
                vias: 1,
            };
            for (s, &sink) in net.sinks.iter().enumerate() {
                tree.kinds.push(s as i64);
                tree.vertices.push(vertex(sink));
                tree.parents.push(0);
                tree.path_len.push(0);
            }
            state.trees.push((i, tree));
        }
        doc.state = Some(state);
        doc
    }

    #[test]
    fn state_section_round_trips_bit_identically() {
        let doc = doc_with_state();
        let text = chip_doc_to_string(&doc).unwrap();
        assert!(text.starts_with("cdst/2\n"), "state docs get the cdst/2 header");
        let parsed = parse_chip_doc(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(chip_doc_to_string(&parsed).unwrap(), text);
        // the streaming reader recovers the same state section
        let streamed = read_chip_streaming(text.as_bytes()).unwrap();
        assert_eq!(streamed.state, doc.state);
    }

    #[test]
    fn state_records_require_the_cdst2_header() {
        let text = "cdst/1\nchip a\ntech 2\ncelldelay 1.0\n\
                    grid 4 4 1 1.0 1.0 1.0 1.0\nlayer H : 1.0 1.0 1.0\nstate iter 1\n";
        let e = parse_chip_doc(text).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("cdst/2"), "{e}");
    }

    #[test]
    fn truncated_or_tampered_state_is_rejected_with_line_numbers() {
        let doc = doc_with_state();
        let text = chip_doc_to_string(&doc).unwrap();

        // truncation anywhere in the state section: incomplete at EOF
        let state_start = text.lines().position(|l| l.starts_with("state ")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for cut in state_start + 1..lines.len() {
            let truncated = lines[..cut].join("\n") + "\n";
            let e = parse_chip_doc(&truncated).unwrap_err();
            assert_eq!(e.line, cut + 1, "cut at {cut}: {e}");
            assert!(e.message.contains("incomplete state section"), "cut at {cut}: {e}");
        }

        // a dropped ledger chunk breaks the offset chain on the next line
        let usage_lines: Vec<usize> =
            (0..lines.len()).filter(|&i| lines[i].starts_with("state usage")).collect();
        if usage_lines.len() >= 2 {
            let mut dropped = lines.clone();
            dropped.remove(usage_lines[0]);
            let e = parse_chip_doc(&(dropped.join("\n") + "\n")).unwrap_err();
            assert_eq!(e.line, usage_lines[1]); // the old line i+1 is now line i (1-based)
            assert!(e.message.contains("chunk starts at"), "{e}");
        }

        // state records under a cdst/1 body position are still ordered:
        // a net record after the state section is out of section order
        let with_trailer = text.clone() + "net 0 0 : 1 1\n";
        let e = parse_chip_doc(&with_trailer).unwrap_err();
        assert!(e.message.contains("out of section order"), "{e}");

        // tampering a tree record is caught on its own line
        let tree_line = (0..lines.len()).find(|&i| lines[i].starts_with("state tree")).unwrap();
        let mut tampered = lines.clone();
        let bad = lines[tree_line].replacen(" : ", " 9999 : ", 1); // stray token in the head
        tampered[tree_line] = &bad;
        let e = parse_chip_doc(&(tampered.join("\n") + "\n")).unwrap_err();
        assert_eq!(e.line, tree_line + 1);
        assert!(e.message.contains("unexpected trailing token"), "{e}");
    }

    #[test]
    fn streaming_reader_reports_work_counters() {
        let doc = small_doc();
        let text = chip_doc_to_string(&doc).unwrap();
        let streamed = read_chip_streaming(text.as_bytes()).unwrap();
        assert_eq!(streamed.stats.ecap_applied, doc.ecap.len());
        assert!(streamed.stats.records > 0);
        assert!(streamed.stats.peak_line_bytes > 0);
        // the streamed chip equals the owned build
        let owned = doc.build_chip();
        assert_eq!(streamed.chip.nets, owned.nets);
        assert_eq!(streamed.chip.chains, owned.chains);
        assert_eq!(streamed.chip.delay_model, owned.delay_model);
        let (a, b) = (streamed.chip.grid.graph(), owned.grid.graph());
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.edge(e).capacity.to_bits(), b.edge(e).capacity.to_bits(), "edge {e}");
        }
    }
}
