#![forbid(unsafe_code)]
//! Synthetic chip and instance generation.
//!
//! The paper evaluates on eight industrial 5nm microprocessor/ASIC units
//! (Table III) that are not public. This crate generates synthetic
//! stand-ins with the same *structure*: the identical layer counts, net
//! counts scaled to laptop size, a power-law pin-count distribution
//! matching the Table I/II bucket proportions, clustered placements,
//! timing chains with required arrival times, and capacities calibrated
//! to a target utilization so congestion is real. The routing algorithms
//! only ever see the graph, pins, prices and weights, so relative
//! algorithm behaviour is preserved (see DESIGN.md, "Substitutions").
//!
//! # Examples
//!
//! ```
//! use cds_instgen::ChipSpec;
//!
//! let chip = ChipSpec::small_test(42).generate();
//! assert!(!chip.nets.is_empty());
//! assert!(chip.grid.graph().num_vertices() > 0);
//! ```

pub mod io;

use cds_delay::{DelayModel, Technology};
use cds_geom::{hpwl, Point};
use cds_graph::{Direction, GridGraph, GridSpec, LayerSpec, WireTypeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A net: one root (source) pin and one or more sink pins, in gcell
/// coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Source pin.
    pub root: Point,
    /// Sink pins.
    pub sinks: Vec<Point>,
}

/// One stage of a timing chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// Net index into [`Chip::nets`].
    pub net: usize,
    /// Sink of this net that drives the next stage (`None` for the last
    /// link).
    pub cont_sink: Option<usize>,
}

/// A combinational path: a sequence of nets separated by cells, with a
/// required arrival time at the final net's sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The stages in order.
    pub links: Vec<ChainLink>,
    /// Required arrival time (ps) at the last net's sinks.
    pub rat_ps: f64,
}

/// A generated chip: grid, delay model, nets, and timing structure.
#[derive(Debug, Clone)]
pub struct Chip {
    /// Chip name (`c1`…`c8` for the paper suite).
    pub name: String,
    /// The 3D global routing graph.
    pub grid: GridGraph,
    /// Calibrated linear delay model (also the source of `d_bif`).
    pub delay_model: DelayModel,
    /// All nets.
    pub nets: Vec<Net>,
    /// Timing chains covering every net exactly once.
    pub chains: Vec<Chain>,
    /// Fixed cell delay between chain stages (ps).
    pub cell_delay_ps: f64,
}

/// The per-gcell delay of a mid-stack layer — what a net can typically
/// achieve given that the fastest top layers have little capacity.
/// Timing budgets (RATs, SL budgets) are based on this.
pub fn typical_delay_per_gcell(model: &DelayModel) -> f64 {
    let mid = (model.num_layers() / 2) as u8;
    model.wire_delay_per_gcell(mid, 0)
}

/// Shape of the per-net sink-count/placement distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkProfile {
    /// The Table I/II bucket shape: mostly 1-5 sinks, a thin tail up
    /// to ~60, sinks clustered near their root.
    #[default]
    Mixed,
    /// Clock-tree-like: few drivers, every net fans out to 30-80 sinks
    /// spread across the die (sinks are mostly *not* clustered near the
    /// root) — the high-fanout regime where tree topology dominates.
    FanoutHeavy,
}

/// Parameters of a synthetic chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Chip name.
    pub name: String,
    /// Number of nets to generate.
    pub num_nets: usize,
    /// Metal layer count (Table III: 7-15).
    pub num_layers: u8,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// gcell pitch (µm).
    pub gcell_um: f64,
    /// Target average utilization for capacity calibration (0, 1];
    /// higher = more congestion.
    pub utilization: f64,
    /// RAT slack factor: 1.0 makes direct-routed paths exactly meet
    /// timing; smaller is tighter.
    pub rat_tightness: f64,
    /// Maximum nets per timing chain.
    pub max_chain_len: usize,
    /// Sink-count/placement distribution (see [`SinkProfile`]).
    pub profile: SinkProfile,
}

impl ChipSpec {
    /// A tiny chip for tests and the quickstart example.
    pub fn small_test(seed: u64) -> Self {
        ChipSpec {
            name: "test".into(),
            num_nets: 60,
            num_layers: 4,
            seed,
            gcell_um: 20.0,
            utilization: 0.33,
            rat_tightness: 1.25,
            max_chain_len: 3,
            profile: SinkProfile::Mixed,
        }
    }

    /// The scaled Table III suite: identical layer counts, net counts
    /// divided by `divisor` (the paper's chips have 49 734 - 941 271
    /// nets; `divisor = 400` gives a few-minute laptop run).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn paper_suite(divisor: usize, seed: u64) -> Vec<ChipSpec> {
        assert!(divisor > 0, "divisor must be positive");
        let table_iii: [(&str, usize, u8); 8] = [
            ("c1", 49_734, 8),
            ("c2", 66_500, 9),
            ("c3", 286_619, 7),
            ("c4", 305_094, 15),
            ("c5", 420_131, 9),
            ("c6", 590_060, 9),
            ("c7", 650_127, 15),
            ("c8", 941_271, 15),
        ];
        table_iii
            .iter()
            .enumerate()
            .map(|(i, &(name, nets, layers))| ChipSpec {
                name: name.into(),
                num_nets: (nets / divisor).max(40),
                num_layers: layers,
                seed: seed.wrapping_add(i as u64 * 7919),
                gcell_um: 20.0,
                utilization: 0.33,
                rat_tightness: 1.25,
                max_chain_len: 4,
                profile: SinkProfile::Mixed,
            })
            .collect()
    }

    /// Generates the chip.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero nets, fewer than 2 layers).
    pub fn generate(&self) -> Chip {
        assert!(self.num_nets > 0, "need nets");
        assert!(self.num_layers >= 2, "need at least 2 layers");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // grid dimensions: roughly one net per 1.5 gcells of area
        let side = ((self.num_nets as f64 * 1.5).sqrt().ceil() as u32).max(12) + 8;
        let (nx, ny) = (side, side);

        // macro blockages first: pins must stay outside them
        let macros = self.macros(&mut rng, nx, ny);

        // pins
        let nets = self.generate_nets(&mut rng, nx, ny, &macros);

        // technology & delay model
        let tech = Technology::five_nm_like(self.num_layers);
        let delay_model = tech.calibrate(self.gcell_um);

        // capacity calibration: spread expected demand over wire edges
        let total_wl: f64 = nets
            .iter()
            .map(|n| {
                let mut pts = n.sinks.clone();
                pts.push(n.root);
                hpwl(&pts) as f64 * 1.15 + 2.0
            })
            .sum();
        // averaged over the two routing directions
        let wire_edges_per_layer = ((nx - 1) * ny + nx * (ny - 1)) / 2;
        // demand concentrates on the lower layers (pins are at layer 0 and
        // vias cost); provision capacity as if it all lands on four layers
        let effective_layers = (self.num_layers as f64).min(2.5);
        let num_wire_edges = wire_edges_per_layer as f64 * effective_layers;
        let cap = (total_wl / num_wire_edges / self.utilization).max(2.0);

        // layers: alternate directions; wide wire type from layer 4 up
        let layers: Vec<LayerSpec> = (0..self.num_layers)
            .map(|l| {
                let mut wire_types = vec![WireTypeSpec {
                    cost_per_gcell: 1.0,
                    delay_per_gcell: delay_model.wire_delay_per_gcell(l, 0),
                    capacity: cap,
                }];
                if usize::from(l) < delay_model.num_layers() && delay_model.num_wire_types(l) > 1 {
                    wire_types.push(WireTypeSpec {
                        // wide wires burn two tracks: twice the cost
                        cost_per_gcell: 2.0,
                        delay_per_gcell: delay_model.wire_delay_per_gcell(l, 1),
                        capacity: cap,
                    });
                }
                LayerSpec {
                    dir: if l % 2 == 0 { Direction::Horizontal } else { Direction::Vertical },
                    wire_types,
                }
            })
            .collect();
        let spec = GridSpec {
            nx,
            ny,
            layers,
            via_cost: 1.0,
            via_delay: delay_model.via_delay_ps(),
            via_capacity: cap * 2.0,
            gcell_um: self.gcell_um,
        };
        // Macro blockages: industrial units have macros that deplete
        // lower-layer capacity locally, producing the congestion hot
        // spots that differentiate congestion-aware routing. Modelled by
        // slashing wire capacity inside a few random rectangles.
        let mut grid = spec.clone().build();
        if !macros.is_empty() {
            // GridSpec capacities are uniform per wire type, so deplete
            // per-edge attributes in a rebuild pass
            let graph = grid.graph();
            let mut b = cds_graph::GraphBuilder::new(graph.num_vertices());
            let inside = |x: u32, y: u32| {
                macros
                    .iter()
                    .any(|&(mx0, my0, mx1, my1)| x >= mx0 && x <= mx1 && y >= my0 && y <= my1)
            };
            for e in graph.edge_ids() {
                let ep = graph.endpoints(e);
                let mut attrs = *graph.edge(e);
                if attrs.kind == cds_graph::EdgeKind::Wire && attrs.layer < 4 {
                    let (cu, cv) = (grid.coord(ep.u), grid.coord(ep.v));
                    if inside(cu.x, cu.y) && inside(cv.x, cv.y) {
                        attrs.capacity *= 0.35;
                    }
                }
                b.add_edge(ep.u, ep.v, attrs);
            }
            grid = GridGraph::from_parts(spec, b.build());
        }

        // timing chains
        let chains = self.generate_chains(&mut rng, &nets, &grid, &delay_model);

        Chip { name: self.name.clone(), grid, delay_model, nets, chains, cell_delay_ps: 18.0 }
    }

    /// Pin-count distribution per [`SinkProfile`]: the mixed Table I/II
    /// bucket shape (mostly 1-5 sinks, a thin tail up to ~60), or the
    /// uniformly high-fanout clock-tree regime.
    fn sink_count(&self, rng: &mut StdRng) -> usize {
        match self.profile {
            SinkProfile::Mixed => {
                let r: f64 = rng.gen();
                if r < 0.40 {
                    1
                } else if r < 0.60 {
                    2
                } else if r < 0.84 {
                    rng.gen_range(3..=5)
                } else if r < 0.94 {
                    rng.gen_range(6..=14)
                } else if r < 0.985 {
                    rng.gen_range(15..=29)
                } else {
                    rng.gen_range(30..=60)
                }
            }
            SinkProfile::FanoutHeavy => rng.gen_range(30..=80),
        }
    }

    fn generate_nets(
        &self,
        rng: &mut StdRng,
        nx: u32,
        ny: u32,
        macros: &[(u32, u32, u32, u32)],
    ) -> Vec<Net> {
        let cluster_radius = (nx.min(ny) / 8).max(2) as i32;
        let blocked = |p: Point| {
            macros.iter().any(|&(x0, y0, x1, y1)| {
                p.x as u32 >= x0 && p.x as u32 <= x1 && p.y as u32 >= y0 && p.y as u32 <= y1
            })
        };
        // rejection-sample pins outside macro blockages (cells do not sit
        // inside macros; macro pins are rare and live on their boundary)
        let sample = |rng: &mut StdRng, near: Option<Point>| -> Point {
            for _ in 0..64 {
                let p = match near {
                    Some(c) => Point::new(
                        (c.x + rng.gen_range(-cluster_radius..=cluster_radius))
                            .clamp(0, nx as i32 - 1),
                        (c.y + rng.gen_range(-cluster_radius..=cluster_radius))
                            .clamp(0, ny as i32 - 1),
                    ),
                    None => Point::new(rng.gen_range(0..nx as i32), rng.gen_range(0..ny as i32)),
                };
                if !blocked(p) {
                    return p;
                }
            }
            Point::new(0, 0) // pathological macro coverage; keep going
        };
        // mixed nets cluster sinks near the root; fanout-heavy nets
        // spread them across the die (clock-tree-like distribution)
        let near_p = match self.profile {
            SinkProfile::Mixed => 0.75,
            SinkProfile::FanoutHeavy => 0.2,
        };
        (0..self.num_nets)
            .map(|_| {
                let root = sample(rng, None);
                let k = self.sink_count(rng);
                let sinks = (0..k)
                    .map(|_| {
                        let near = (rng.gen::<f64>() < near_p).then_some(root);
                        sample(rng, near)
                    })
                    .collect();
                Net { root, sinks }
            })
            .collect()
    }

    fn generate_chains(
        &self,
        rng: &mut StdRng,
        nets: &[Net],
        grid: &GridGraph,
        delay_model: &DelayModel,
    ) -> Vec<Chain> {
        // estimated *achievable* delay of a root→sink connection: based
        // on a mid-stack layer (the fastest layers have little capacity)
        // plus a detour allowance
        let typ = typical_delay_per_gcell(delay_model);
        let est = |a: Point, b: Point| -> f64 {
            a.l1(b) as f64 * typ * 1.15 + 2.0 * grid.spec().via_delay
        };
        let mut order: Vec<usize> = (0..nets.len()).collect();
        // deterministic shuffle
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut chains = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let len = rng.gen_range(1..=self.max_chain_len).min(order.len() - i);
            let members: Vec<usize> = order[i..i + len].to_vec();
            i += len;
            let mut links = Vec::with_capacity(len);
            let mut est_delay = 0.0;
            for (j, &net) in members.iter().enumerate() {
                let cont_sink = if j + 1 < len {
                    // continue through the sink nearest the next root
                    let next_root = nets[members[j + 1]].root;
                    let (best, _) = nets[net]
                        .sinks
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &s)| s.l1(next_root))
                        // generated nets always carry at least one sink, so the minimum exists
                        .expect("nets have sinks");
                    Some(best)
                } else {
                    None
                };
                let stage_sink = match cont_sink {
                    Some(s) => nets[net].sinks[s],
                    // last stage: budget for the slowest sink
                    None => *nets[net]
                        .sinks
                        .iter()
                        .max_by_key(|&&s| s.l1(nets[net].root))
                        // generated nets always carry at least one sink, so the maximum exists
                        .expect("nets have sinks"),
                };
                est_delay += est(nets[net].root, stage_sink) + self.cell_delay();
                links.push(ChainLink { net, cont_sink });
            }
            let jitter = rng.gen_range(0.85..1.30);
            chains.push(Chain { links, rat_ps: est_delay * self.rat_tightness * jitter });
        }
        chains
    }

    fn cell_delay(&self) -> f64 {
        18.0
    }

    /// Random macro rectangles (x0, y0, x1, y1); roughly one per 150
    /// nets, each about a sixth of the die on a side.
    fn macros(&self, rng: &mut StdRng, nx: u32, ny: u32) -> Vec<(u32, u32, u32, u32)> {
        let count = (self.num_nets / 150).min(6);
        (0..count)
            .map(|_| {
                let w = (nx / 6).max(3);
                let h = (ny / 6).max(3);
                let x0 = rng.gen_range(0..nx.saturating_sub(w).max(1));
                let y0 = rng.gen_range(0..ny.saturating_sub(h).max(1));
                (x0, y0, x0 + w, y0 + h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = ChipSpec::small_test(7).generate();
        let b = ChipSpec::small_test(7).generate();
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.chains.len(), b.chains.len());
        for (x, y) in a.chains.iter().zip(&b.chains) {
            assert_eq!(x.links, y.links);
            assert!((x.rat_ps - y.rat_ps).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChipSpec::small_test(1).generate();
        let b = ChipSpec::small_test(2).generate();
        assert_ne!(a.nets, b.nets);
    }

    #[test]
    fn chains_cover_every_net_once() {
        let chip = ChipSpec::small_test(3).generate();
        let mut seen = HashSet::new();
        for chain in &chip.chains {
            assert!(!chain.links.is_empty());
            assert!(chain.rat_ps > 0.0);
            for link in &chain.links {
                assert!(seen.insert(link.net), "net {} in two chains", link.net);
                if let Some(s) = link.cont_sink {
                    assert!(s < chip.nets[link.net].sinks.len());
                }
            }
            assert!(chain.links.last().expect("nonempty").cont_sink.is_none());
        }
        assert_eq!(seen.len(), chip.nets.len());
    }

    #[test]
    fn pins_are_on_grid() {
        let chip = ChipSpec::small_test(4).generate();
        let spec = chip.grid.spec();
        for net in &chip.nets {
            for &p in std::iter::once(&net.root).chain(&net.sinks) {
                assert!(p.x >= 0 && (p.x as u32) < spec.nx);
                assert!(p.y >= 0 && (p.y as u32) < spec.ny);
            }
        }
    }

    #[test]
    fn paper_suite_matches_table_iii_layers() {
        let suite = ChipSpec::paper_suite(400, 99);
        assert_eq!(suite.len(), 8);
        let layers: Vec<u8> = suite.iter().map(|c| c.num_layers).collect();
        assert_eq!(layers, vec![8, 9, 7, 15, 9, 9, 15, 15]);
        assert!(suite[7].num_nets > suite[0].num_nets, "c8 is the biggest");
    }

    #[test]
    fn sink_distribution_has_big_nets() {
        let chip = ChipSpec { num_nets: 2000, ..ChipSpec::small_test(11) }.generate();
        let buckets = chip.nets.iter().fold([0usize; 4], |mut b, n| {
            match n.sinks.len() {
                0..=5 => b[0] += 1,
                6..=14 => b[1] += 1,
                15..=29 => b[2] += 1,
                _ => b[3] += 1,
            }
            b
        });
        assert!(buckets[0] > buckets[1]);
        assert!(buckets[1] > buckets[2]);
        assert!(buckets[3] > 0, "some >=30-sink nets must exist");
    }

    #[test]
    fn fanout_heavy_profile_generates_wide_spread_nets() {
        let spec = ChipSpec {
            num_nets: 24,
            profile: SinkProfile::FanoutHeavy,
            ..ChipSpec::small_test(11)
        };
        let chip = spec.generate();
        assert_eq!(chip.nets.len(), 24);
        for net in &chip.nets {
            let k = net.sinks.len();
            assert!((30..=80).contains(&k), "fanout-heavy net has {k} sinks");
        }
        // sinks spread die-wide: the average net's bounding box covers
        // most of the grid (mixed-profile nets cluster tightly)
        let side = chip.grid.spec().nx.max(chip.grid.spec().ny) as f64;
        let avg_span: f64 = chip
            .nets
            .iter()
            .map(|n| {
                let xs: Vec<i32> = n.sinks.iter().map(|p| p.x).collect();
                let ys: Vec<i32> = n.sinks.iter().map(|p| p.y).collect();
                ((xs.iter().max().unwrap() - xs.iter().min().unwrap())
                    + (ys.iter().max().unwrap() - ys.iter().min().unwrap())) as f64
            })
            .sum::<f64>()
            / chip.nets.len() as f64;
        assert!(avg_span > side, "fanout nets too clustered: avg span {avg_span}, side {side}");
        // and the mixed profile is untouched (same RNG path as before)
        let mixed = ChipSpec::small_test(11).generate();
        assert_eq!(mixed.nets, ChipSpec::small_test(11).generate().nets);
    }
}
