//! A conservative, name-resolution-free call graph over the whole
//! workspace.
//!
//! # Soundness argument
//!
//! The graph is built purely from names: a call site `foo(..)` or
//! `.foo(..)` gets an edge to **every** non-test definition named
//! `foo` in the workspace. A qualified call `Q::foo(..)` is resolved
//! more precisely — edges only to definitions whose enclosing
//! `impl`/`trait` names include `Q` — but *falls back to every
//! same-named definition* when no owner matches (aliases, generic
//! parameters, fully-qualified std paths). `Self::foo` resolves `Self`
//! to the caller's enclosing impl before the same procedure.
//!
//! The result strictly over-approximates the true call graph on
//! workspace-internal calls: wherever real dispatch could land (any
//! receiver type, any trait impl, any shadowed same-name fn), a
//! name-matched edge exists. Over-approximation is exactly the right
//! direction for the reachability rules, which prove **negative**
//! properties ("the hot set cannot reach an allocation", "every
//! reachable panic site carries an argued invariant"): extra edges can
//! only produce false findings — which the run surfaces and a human
//! adjudicates — never false proofs.
//!
//! What the graph cannot see, accepted and documented in DESIGN.md:
//! calls *into* `std`/external code (their internals are out of scope
//! by construction; the site-level token rules cover the allocating
//! and panicking entry points we care about), function pointers and
//! closures called through variables (the closure's *body* is scanned
//! as part of its defining fn, which is where its sites are
//! attributed), and macro-generated calls outside the recognized macro
//! set (scanned token-wise).

use crate::parser::FileModel;
use std::collections::BTreeMap;

/// Qualifiers that name `std`/`core` items, not workspace types. A
/// qualified call through one of these with **no** matching workspace
/// owner targets the standard library, so it gets no fallback edges —
/// without this, every `Vec::new()` would edge to every workspace fn
/// named `new`, collapsing the graph into one blob. A workspace type
/// that *shares* one of these names still gets its owner-matched edges
/// (the prune only applies when no owner matches). Blind spot, accepted
/// and documented: `type Vec = Workspace;`-style shadowing would evade
/// the graph — the site-level token rules still see the sites
/// themselves, and the convention ban on std-name aliases covers the
/// rest.
const STD_QUALIFIERS: &[&str] = &[
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "str",
    "BinaryHeap",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "Rc",
    "Arc",
    "Option",
    "Result",
    "Ordering",
    "Reverse",
    "Instant",
    "Duration",
    "SystemTime",
    "PhantomData",
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "Condvar",
    "Cow",
    "Path",
    "PathBuf",
    "OsStr",
    "OsString",
    "Default",
    "Clone",
    "Iterator",
    "From",
    "Into",
    "TryFrom",
    "FromStr",
    "PoisonError",
    "ExitCode",
    "TcpListener",
    "TcpStream",
    "std",
    "core",
    "alloc",
    "mem",
    "ptr",
    "cmp",
    "fmt",
    "iter",
    "slice",
    "array",
    "char",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "bool",
    "thread",
    "process",
    "env",
    "fs",
    "io",
    "time",
    "collections",
    "ops",
    "convert",
    "num",
];

/// One definition in the graph: `(file index, fn index)` into the
/// parsed models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefRef {
    /// Index into the slice of [`FileModel`]s the graph was built from.
    pub file: usize,
    /// Index into that file's [`FileModel::fns`].
    pub fn_idx: usize,
}

/// The workspace call graph. Test definitions are excluded entirely:
/// they are neither sources nor targets.
#[derive(Debug)]
pub struct CallGraph {
    /// Every non-test definition, in (file, source) order.
    pub defs: Vec<DefRef>,
    /// def id → callee def ids, deduplicated and sorted.
    edges: Vec<Vec<usize>>,
    /// fn name → def ids bearing it.
    by_name: BTreeMap<String, Vec<usize>>,
    /// (file, fn_idx) → def id.
    def_id: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Builds the graph from every parsed file.
    #[must_use]
    pub fn build(models: &[FileModel]) -> CallGraph {
        let mut defs = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut def_id = BTreeMap::new();
        for (fi, m) in models.iter().enumerate() {
            for (di, f) in m.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = defs.len();
                defs.push(DefRef { file: fi, fn_idx: di });
                by_name.entry(f.name.clone()).or_default().push(id);
                def_id.insert((fi, di), id);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
        for (fi, m) in models.iter().enumerate() {
            for call in &m.calls {
                let Some(&caller) = def_id.get(&(fi, call.caller)) else {
                    continue; // test fn: its calls stay out of the graph
                };
                let Some(candidates) = by_name.get(&call.name) else {
                    continue; // std/external callee: no workspace def
                };
                let targets: Vec<usize> = match call.qualifier.as_deref() {
                    Some(q) => {
                        let owned: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&id| {
                                let d = defs[id];
                                models[d.file].fns[d.fn_idx].owners.iter().any(|o| o == q)
                            })
                            .collect();
                        // no owner carries this qualifier: a std
                        // qualifier targets the standard library (no
                        // edges); anything else (alias, generic param)
                        // falls back to every same-named def —
                        // imprecise but sound
                        if !owned.is_empty() {
                            owned
                        } else if STD_QUALIFIERS.contains(&q) {
                            Vec::new()
                        } else {
                            candidates.clone()
                        }
                    }
                    None => candidates.clone(),
                };
                edges[caller].extend(targets);
            }
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        CallGraph { defs, edges, by_name, def_id }
    }

    /// The def id of `(file, fn_idx)`, if it is in the graph (non-test).
    #[must_use]
    pub fn id_of(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.def_id.get(&(file, fn_idx)).copied()
    }

    /// Def ids matching `pattern`: either a bare fn name (`push`) or an
    /// owner-qualified `Owner::name` (`BucketQueue::push`).
    #[must_use]
    pub fn find(&self, models: &[FileModel], pattern: &str) -> Vec<usize> {
        let (owner, name) = match pattern.rsplit_once("::") {
            Some((o, n)) => (Some(o), n),
            None => (None, pattern),
        };
        let Some(candidates) = self.by_name.get(name) else {
            return Vec::new();
        };
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let d = self.defs[id];
                match owner {
                    Some(o) => models[d.file].fns[d.fn_idx].owners.iter().any(|x| x == o),
                    None => true,
                }
            })
            .collect()
    }

    /// BFS over call edges from `entries`. Returns, per def id,
    /// `Some(parent)` when reachable (entries are their own parent) and
    /// `None` otherwise — the parent pointers reconstruct a shortest
    /// witness chain for diagnostics.
    #[must_use]
    pub fn reachable(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.defs.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if e < self.defs.len() && parent[e].is_none() {
                parent[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The witness chain entry → … → `target` as qualified fn names,
    /// given the parent map from [`CallGraph::reachable`].
    #[must_use]
    pub fn chain(
        &self,
        models: &[FileModel],
        parent: &[Option<usize>],
        target: usize,
    ) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = target;
        // the chain is at most defs.len() long; the bound also guards
        // against a malformed parent map
        for _ in 0..=self.defs.len() {
            let d = self.defs[cur];
            chain.push(models[d.file].fns[d.fn_idx].qualified());
            match parent.get(cur).copied().flatten() {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(srcs: &[&str]) -> (Vec<FileModel>, CallGraph) {
        let models: Vec<FileModel> = srcs.iter().map(|s| parse_file(s)).collect();
        let g = CallGraph::build(&models);
        (models, g)
    }

    #[test]
    fn bare_calls_edge_to_every_same_named_def() {
        // two shadowed `helper` defs in different impls: an unqualified
        // call must reach both (the over-approximation property)
        let (models, g) = graph(&[
            "impl A { fn helper(&self) { boom(); } }",
            "impl B { fn helper(&self) {} }",
            "fn entry() { helper(); } fn boom() { panic!(\"x\") }",
        ]);
        let entry = g.find(&models, "entry");
        assert_eq!(entry.len(), 1);
        let parent = g.reachable(&entry);
        let a = g.find(&models, "A::helper")[0];
        let b = g.find(&models, "B::helper")[0];
        let boom = g.find(&models, "boom")[0];
        assert!(parent[a].is_some(), "A::helper must be reachable");
        assert!(parent[b].is_some(), "B::helper must be reachable");
        assert!(parent[boom].is_some(), "panic through A::helper must be reachable");
        assert_eq!(g.chain(&models, &parent, boom), vec!["entry", "A::helper", "boom"]);
    }

    #[test]
    fn qualified_calls_prune_to_owner_matches() {
        let (models, g) = graph(&[
            "impl A { fn make() { spicy(); } } impl B { fn make() {} }",
            "fn entry() { B::make(); } fn spicy() {}",
        ]);
        let parent = g.reachable(&g.find(&models, "entry"));
        let spicy = g.find(&models, "spicy")[0];
        assert!(parent[spicy].is_none(), "B::make does not call spicy; A::make is pruned");
    }

    #[test]
    fn unknown_qualifier_falls_back_to_all_defs() {
        let (models, g) = graph(&[
            "impl A { fn make() { spicy(); } }",
            "fn entry() { alias::make(); } fn spicy() {}",
        ]);
        let parent = g.reachable(&g.find(&models, "entry"));
        let spicy = g.find(&models, "spicy")[0];
        assert!(parent[spicy].is_some(), "unresolvable qualifier must not prune edges");
    }

    #[test]
    fn method_calls_edge_to_every_impl() {
        let (models, g) = graph(&[
            "impl A { fn route(&self) { a_only(); } } impl B { fn route(&self) { b_only(); } }",
            "fn entry(x: &dyn T) { x.route(); } fn a_only() {} fn b_only() {}",
        ]);
        let parent = g.reachable(&g.find(&models, "entry"));
        assert!(parent[g.find(&models, "a_only")[0]].is_some());
        assert!(parent[g.find(&models, "b_only")[0]].is_some());
    }

    #[test]
    fn test_defs_are_not_targets() {
        let (models, g) = graph(&[
            "fn entry() { helper(); }\n#[cfg(test)]\nmod t { fn helper() { panic!(\"t\") } }",
        ]);
        assert!(g.find(&models, "helper").is_empty());
        let parent = g.reachable(&g.find(&models, "entry"));
        assert_eq!(parent.iter().filter(|p| p.is_some()).count(), 1);
    }
}
