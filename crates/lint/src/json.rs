//! `--json` output: machine-readable diagnostics for editor and CI
//! integration. Hand-rolled emitter (the crate is dependency-free);
//! the shape is covered by a golden snapshot test in `tests/json.rs`.

use crate::{rule, Finding, LintConfig, LintReport};

/// Serializes one lint run as a JSON object:
///
/// ```json
/// {
///   "files": 63,
///   "clean": false,
///   "findings": [
///     { "rule": "solve-path-panic-reachability",
///       "path": "crates/core/src/solver.rs",
///       "line": 877, "col": 14, "token": "expect",
///       "rationale": "this panic site is transitively reachable …",
///       "chain": ["Solver::solve_into", "State::expand_once"] }
///   ],
///   "suppressed": [ { …finding…, "allow_line": 12 } ],
///   "stale_allow_lines": [34],
///   "stale_hot_lines": []
/// }
/// ```
///
/// Key order is fixed and arrays keep the report's deterministic
/// ordering, so the output is directly diffable and snapshot-testable.
#[must_use]
pub fn report_json(report: &LintReport, config: &LintConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files\": {},\n", report.files));
    out.push_str(&format!("  \"clean\": {},\n", report.clean()));

    out.push_str("  \"findings\": [");
    push_findings(&mut out, report.findings.iter().map(|f| (f, None)));
    out.push_str("],\n");

    out.push_str("  \"suppressed\": [");
    push_findings(
        &mut out,
        report
            .suppressed
            .iter()
            .map(|(f, i)| (f, Some(config.allow.get(*i).map_or(0, |e| e.line)))),
    );
    out.push_str("],\n");

    let stale_allow: Vec<String> = report
        .stale
        .iter()
        .map(|&i| config.allow.get(i).map_or(0, |e| e.line).to_string())
        .collect();
    out.push_str(&format!("  \"stale_allow_lines\": [{}],\n", stale_allow.join(", ")));
    let stale_hot: Vec<String> = report
        .stale_hot
        .iter()
        .map(|&i| config.hot.get(i).map_or(0, |e| e.line).to_string())
        .collect();
    out.push_str(&format!("  \"stale_hot_lines\": [{}]\n", stale_hot.join(", ")));
    out.push('}');
    out
}

/// Appends a comma-separated run of finding objects (no surrounding
/// brackets). `allow_line` is present only for suppressed findings.
fn push_findings<'a>(out: &mut String, items: impl Iterator<Item = (&'a Finding, Option<u32>)>) {
    let mut first = true;
    for (f, allow_line) in items {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("    { ");
        out.push_str(&format!("\"rule\": {}, ", quote(f.rule)));
        out.push_str(&format!("\"path\": {}, ", quote(&f.path)));
        out.push_str(&format!("\"line\": {}, \"col\": {}, ", f.line, f.col));
        out.push_str(&format!("\"token\": {}, ", quote(&f.token)));
        let rationale = rule(f.rule).map_or("", |r| r.rationale);
        out.push_str(&format!("\"rationale\": {}, ", quote(rationale)));
        let chain: Vec<String> = f.chain.iter().map(|c| quote(c)).collect();
        out.push_str(&format!("\"chain\": [{}]", chain.join(", ")));
        if let Some(line) = allow_line {
            out.push_str(&format!(", \"allow_line\": {line}"));
        }
        out.push_str(" }");
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// A JSON string literal for `s` (quotes, backslashes, and control
/// characters escaped).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_config;

    #[test]
    fn escapes_and_shape() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let files = vec![(
            "crates/core/src/a.rs".to_string(),
            "use std::collections::HashMap;\n".to_string(),
        )];
        let config = LintConfig::default();
        let report = run_config(&files, &config);
        let json = report_json(&report, &config);
        assert!(json.contains("\"rule\": \"no-hash-on-solve-path\""));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"chain\": []"));
    }
}
