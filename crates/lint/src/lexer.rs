//! A hand-rolled Rust lexer, built for static analysis rather than
//! compilation.
//!
//! The environment is offline (no `syn`, no `proc-macro2`), so the lint
//! pass carries its own tokenizer. It handles the parts of Rust's
//! lexical grammar that make naive `grep`-style scanning wrong:
//!
//! * nested block comments (`/* a /* b */ c */`),
//! * raw strings with arbitrary hash fences (`r##"has "# inside"##`),
//! * byte / C strings and their raw forms (`b"…"`, `br#"…"#`, `c"…"`),
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#type`),
//! * numeric literals with exponents and suffixes (`1.0e-5f64`).
//!
//! Two properties are load-bearing and proptest-enforced (see
//! `tests/lexer.rs`):
//!
//! 1. **Totality** — `lex` never panics, on any input.
//! 2. **Tiling** — token spans are contiguous, start at 0, end at
//!    `src.len()`, and every span boundary is a UTF-8 char boundary, so
//!    every token can be sliced back out of the source.
//!
//! The lexer does not validate: invalid Rust still tokenizes (an
//! unterminated string or comment simply runs to end of input). Lint
//! rules only need identifiers, punctuation, and trivia classification
//! to be right on *valid* Rust, which this grammar subset guarantees.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A maximal run of whitespace.
    Whitespace,
    /// `// …` to end of line. Doc comments are [`TokenKind::DocComment`];
    /// `//// …` (four or more slashes) is a plain comment again, per
    /// the reference.
    LineComment,
    /// `/* … */` with nesting; unterminated runs to end of input.
    BlockComment,
    /// Documentation: `/// …`, `//! …`, `/** … */`, `/*! … */`. Kept
    /// distinct from plain comments so marker scans (`// SAFETY:`,
    /// `// INVARIANT:`) cannot be satisfied by prose in rustdoc.
    DocComment,
    /// `#!…` on the very first line of a file (not `#![…]`, which is an
    /// inner attribute). Trivia, like the comment it effectively is.
    Shebang,
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// Raw identifier `r#ident`.
    RawIdent,
    /// Lifetime `'ident` (no closing quote).
    Lifetime,
    /// Char literal `'x'`, escapes included.
    CharLit,
    /// Byte literal `b'x'`.
    ByteLit,
    /// String literal `"…"`.
    StrLit,
    /// Raw string `r"…"` / `r#"…"#`.
    RawStrLit,
    /// Byte string `b"…"`.
    ByteStrLit,
    /// Raw byte string `br#"…"#`.
    RawByteStrLit,
    /// C string `c"…"`.
    CStrLit,
    /// Raw C string `cr#"…"#`.
    RawCStrLit,
    /// Numeric literal, suffix included (`0xFF`, `1.0e-5f64`).
    Number,
    /// One ASCII punctuation character.
    Punct,
    /// Any other single character (robustness catch-all).
    Unknown,
}

/// One token: a classified byte span of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset past the last byte (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whitespace or comment — insignificant to every lint rule except
    /// the `SAFETY:`/`INVARIANT:` comment scans (which additionally
    /// require a *plain* comment, not a [`TokenKind::DocComment`]).
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace
                | TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
                | TokenKind::Shebang
        )
    }
}

/// 1-based `(line, column)` of a byte offset; the column counts chars.
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (u32, u32) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let line_start = before.rfind('\n').map_or(0, |p| p + 1);
    let col = src[line_start..offset].chars().count() as u32 + 1;
    (line, col)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || (!c.is_ascii() && !c.is_whitespace())
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || (!c.is_ascii() && !c.is_whitespace())
}

/// The char starting at byte `pos`, if in bounds. `pos` is always a
/// char boundary by construction of the scan loops.
fn char_at(src: &str, pos: usize) -> Option<char> {
    src.get(pos..).and_then(|s| s.chars().next())
}

fn byte_at(src: &str, pos: usize) -> Option<u8> {
    src.as_bytes().get(pos).copied()
}

/// End of the identifier run starting at `pos` (which must start one).
fn scan_ident(src: &str, pos: usize) -> usize {
    let mut i = pos;
    while let Some(c) = char_at(src, i) {
        if is_ident_continue(c) {
            i += c.len_utf8();
        } else {
            break;
        }
    }
    i
}

/// End of a `"…"`-style literal whose opening delimiter ends at `pos`.
/// Backslash escapes one byte; ASCII delimiters and `\` are never UTF-8
/// continuation bytes, so byte-wise scanning preserves char boundaries.
/// `stop_at_newline` bounds char literals so a stray apostrophe cannot
/// swallow the rest of the file.
fn scan_quoted(src: &str, pos: usize, quote: u8, stop_at_newline: bool) -> usize {
    let mut i = pos;
    loop {
        match byte_at(src, i) {
            None => return src.len(),
            Some(b'\\') => {
                i += 1;
                if let Some(c) = char_at(src, i) {
                    i += c.len_utf8();
                } else if byte_at(src, i).is_some() {
                    // mid-char position after escaping into a multibyte
                    // char: step one byte; the loop realigns at the
                    // next ASCII delimiter
                    i += 1;
                }
            }
            Some(b) if b == quote => return i + 1,
            Some(b'\n') if stop_at_newline => return i,
            Some(_) => i += 1,
        }
    }
}

/// End of a raw literal `…"body"##` whose opening `"` is at `pos` and
/// whose fence is `hashes` `#` characters.
fn scan_raw(src: &str, pos: usize, hashes: usize) -> usize {
    let bytes = src.as_bytes();
    let mut i = pos + 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes.get(i + 1..i + 1 + hashes).is_some_and(|h| h.iter().all(|&b| b == b'#'))
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    src.len()
}

/// End of a block comment whose `/*` starts at `pos`, honoring nesting.
fn scan_block_comment(src: &str, pos: usize) -> usize {
    let bytes = src.as_bytes();
    let mut i = pos + 2;
    let mut depth = 1usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    src.len()
}

/// End of the numeric literal starting at `pos` (an ASCII digit).
/// Consumes digit/letter/underscore runs, one fractional part when a
/// digit follows the dot (so `0..n` ranges and `2.max(x)` method calls
/// are not swallowed), and signed exponents (`1.0e-5`).
fn scan_number(src: &str, pos: usize) -> usize {
    let mut i = pos;
    let mut fraction_done = false;
    loop {
        match byte_at(src, i) {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                if (b == b'e' || b == b'E')
                    && matches!(byte_at(src, i + 1), Some(b'+') | Some(b'-'))
                    && byte_at(src, i + 2).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 2; // exponent sign
                } else {
                    i += 1;
                }
            }
            Some(b'.')
                if !fraction_done && byte_at(src, i + 1).is_some_and(|d| d.is_ascii_digit()) =>
            {
                fraction_done = true;
                i += 1;
            }
            _ => return i,
        }
    }
}

/// Raw-literal lookahead: from `pos` (just past `r`, `br`, or `cr`),
/// counts the `#` fence; returns `(hashes, quote_pos)` when a `"`
/// follows the fence.
fn raw_fence(src: &str, pos: usize) -> Option<(usize, usize)> {
    let mut i = pos;
    while byte_at(src, i) == Some(b'#') {
        i += 1;
    }
    (byte_at(src, i) == Some(b'"')).then_some((i - pos, i))
}

/// Tokenizes `src` completely. Never panics; the returned spans tile
/// `[0, src.len())` in order.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while let Some(c) = char_at(src, pos) {
        let (kind, end) = next_token(src, pos, c);
        debug_assert!(end > pos, "lexer must make progress");
        tokens.push(Token { kind, start: pos, end });
        pos = end;
    }
    tokens
}

/// Classifies and measures the single token starting at `pos`.
fn next_token(src: &str, pos: usize, c: char) -> (TokenKind, usize) {
    if c.is_whitespace() {
        let mut i = pos;
        while let Some(w) = char_at(src, i) {
            if w.is_whitespace() {
                i += w.len_utf8();
            } else {
                break;
            }
        }
        return (TokenKind::Whitespace, i);
    }
    match c {
        '#' if pos == 0 && byte_at(src, 1) == Some(b'!') && byte_at(src, 2) != Some(b'[') => {
            // `#!/usr/bin/env …` on line 1 is a shebang; `#![…]` is an
            // inner attribute and stays Punct-by-Punct
            let end = src.find('\n').unwrap_or(src.len());
            (TokenKind::Shebang, end)
        }
        '/' if byte_at(src, pos + 1) == Some(b'/') => {
            let end = src[pos..].find('\n').map_or(src.len(), |n| pos + n);
            let text = &src.as_bytes()[pos..end];
            // `///x` (but not `////`) and `//!` are doc comments
            let doc = (text.get(2) == Some(&b'/') && text.get(3) != Some(&b'/'))
                || text.get(2) == Some(&b'!');
            (if doc { TokenKind::DocComment } else { TokenKind::LineComment }, end)
        }
        '/' if byte_at(src, pos + 1) == Some(b'*') => {
            let end = scan_block_comment(src, pos);
            let text = &src.as_bytes()[pos..end];
            // `/**x…*/` (but not `/**/` or `/***`) and `/*!…*/` are doc
            let doc = (text.get(2) == Some(&b'*')
                && text.get(3).is_some_and(|&b| b != b'*' && b != b'/'))
                || text.get(2) == Some(&b'!');
            (if doc { TokenKind::DocComment } else { TokenKind::BlockComment }, end)
        }
        'r' => match raw_fence(src, pos + 1) {
            Some((h, q)) => (TokenKind::RawStrLit, scan_raw(src, q, h)),
            None => {
                if byte_at(src, pos + 1) == Some(b'#')
                    && char_at(src, pos + 2).is_some_and(is_ident_start)
                {
                    (TokenKind::RawIdent, scan_ident(src, pos + 2))
                } else {
                    (TokenKind::Ident, scan_ident(src, pos))
                }
            }
        },
        'b' => match byte_at(src, pos + 1) {
            Some(b'\'') => (TokenKind::ByteLit, scan_quoted(src, pos + 2, b'\'', true)),
            Some(b'"') => (TokenKind::ByteStrLit, scan_quoted(src, pos + 2, b'"', false)),
            Some(b'r') => match raw_fence(src, pos + 2) {
                Some((h, q)) => (TokenKind::RawByteStrLit, scan_raw(src, q, h)),
                None => (TokenKind::Ident, scan_ident(src, pos)),
            },
            _ => (TokenKind::Ident, scan_ident(src, pos)),
        },
        'c' => match byte_at(src, pos + 1) {
            Some(b'"') => (TokenKind::CStrLit, scan_quoted(src, pos + 2, b'"', false)),
            Some(b'r') => match raw_fence(src, pos + 2) {
                Some((h, q)) => (TokenKind::RawCStrLit, scan_raw(src, q, h)),
                None => (TokenKind::Ident, scan_ident(src, pos)),
            },
            _ => (TokenKind::Ident, scan_ident(src, pos)),
        },
        '\'' => {
            // lifetime iff an identifier follows and no quote closes it
            if let Some(n) = char_at(src, pos + 1) {
                if is_ident_start(n) && n != '\'' {
                    let id_end = scan_ident(src, pos + 1);
                    if byte_at(src, id_end) == Some(b'\'') {
                        return (TokenKind::CharLit, id_end + 1);
                    }
                    return (TokenKind::Lifetime, id_end);
                }
            }
            (TokenKind::CharLit, scan_quoted(src, pos + 1, b'\'', true))
        }
        '"' => (TokenKind::StrLit, scan_quoted(src, pos + 1, b'"', false)),
        _ if c.is_ascii_digit() => (TokenKind::Number, scan_number(src, pos)),
        _ if is_ident_start(c) => (TokenKind::Ident, scan_ident(src, pos)),
        _ if c.is_ascii() => (TokenKind::Punct, pos + 1),
        _ => (TokenKind::Unknown, pos + c.len_utf8()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn significant(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().filter(|t| !t.is_trivia()).map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            significant("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(kinds(src)[2], (TokenKind::BlockComment, "/* x /* y */ z */"));
        assert_eq!(significant(src).len(), 2);
    }

    #[test]
    fn raw_string_with_hash_fence() {
        let src = r####"r##"has "# inside"## tail"####;
        let toks = significant(src);
        assert_eq!(toks[0], (TokenKind::RawStrLit, r####"r##"has "# inside"##"####));
        assert_eq!(toks[1], (TokenKind::Ident, "tail"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        assert_eq!(
            significant("&'a str 'b' '_ '_' '\\'' '\\n'"),
            vec![
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Ident, "str"),
                (TokenKind::CharLit, "'b'"),
                (TokenKind::Lifetime, "'_"),
                (TokenKind::CharLit, "'_'"),
                (TokenKind::CharLit, "'\\''"),
                (TokenKind::CharLit, "'\\n'"),
            ]
        );
    }

    #[test]
    fn byte_and_c_literals() {
        assert_eq!(
            significant(r##"b'x' b"bs" br#"raw"# c"cs" cr"craw" break crate"##),
            vec![
                (TokenKind::ByteLit, "b'x'"),
                (TokenKind::ByteStrLit, "b\"bs\""),
                (TokenKind::RawByteStrLit, "br#\"raw\"#"),
                (TokenKind::CStrLit, "c\"cs\""),
                (TokenKind::RawCStrLit, "cr\"craw\""),
                (TokenKind::Ident, "break"),
                (TokenKind::Ident, "crate"),
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(
            significant("r#type r#fn x"),
            vec![
                (TokenKind::RawIdent, "r#type"),
                (TokenKind::RawIdent, "r#fn"),
                (TokenKind::Ident, "x"),
            ]
        );
    }

    #[test]
    fn numbers_with_exponents_ranges_and_methods() {
        assert_eq!(
            significant("1.0e-5f64 0xFF 0..10 2.max(3)"),
            vec![
                (TokenKind::Number, "1.0e-5f64"),
                (TokenKind::Number, "0xFF"),
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "10"),
                (TokenKind::Number, "2"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "max"),
                (TokenKind::Punct, "("),
                (TokenKind::Number, "3"),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn forbidden_names_inside_strings_and_comments_are_invisible() {
        let src = r#"let s = "HashMap::new()"; // HashMap here too
            /* and unsafe { HashSet } */ let t = 1;"#;
        let idents: Vec<&str> =
            lex(src).iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src)).collect();
        assert_eq!(idents, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn unterminated_constructs_run_to_eof_without_panicking() {
        for src in ["\"abc", "/* abc", "r#\"abc", "br##\"abc", "b\"abc", "'\\"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "input {src:?}");
        }
    }

    #[test]
    fn spans_tile_ascii_and_unicode() {
        for src in ["", "fn main() {}", "é → 'λ' \"α\" /*β*/ r#\"γ\"#", "∀x∃y"] {
            let toks = lex(src);
            let mut pos = 0;
            for t in &toks {
                assert_eq!(t.start, pos);
                assert!(t.end > t.start);
                let _ = t.text(src); // must not panic: char boundaries
                pos = t.end;
            }
            assert_eq!(pos, src.len());
        }
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 5), (2, 3));
        assert_eq!(line_col(src, 7), (3, 1));
    }
}
