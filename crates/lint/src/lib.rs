#![forbid(unsafe_code)]
//! `cds-lint` — determinism & robustness static analysis for the cdst
//! workspace.
//!
//! Every PR so far defends the determinism contract (bit-identical
//! checksums across thread counts, window backends, and queue
//! implementations) *dynamically*: goldens, proptests, release sweeps.
//! This crate enforces it *statically*, so a violation is caught at the
//! source line that introduces it instead of surfacing later as an
//! unexplained golden drift. Zero dependencies, hand-rolled lexer
//! ([`lexer`]) — the environment is offline, so no `syn`.
//!
//! # Rules
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-hash-on-solve-path` | `core`, `heap`, `graph`, `topo`, `router` | `HashMap` / `HashSet` outside `#[cfg(test)]` — iteration order is the #1 nondeterminism hazard |
//! | `no-wall-clock-on-solve-path` | every crate | `Instant::now` / `SystemTime` outside allowlisted observability sites |
//! | `no-rng-outside-instgen` | every crate but `instgen` | `rand` / `Rng` / `StdRng` / `SeedableRng` outside tests |
//! | `unsafe-needs-safety-comment` | every crate | an `unsafe` token not preceded by a `// SAFETY:` comment |
//! | `no-panic-in-serve` | `serve` | `unwrap()` / `expect(` / `panic!` / `todo!` outside tests — a request-path panic must be a mapped error response |
//! | `solve-path-panic-reachability` | whole workspace | a panic site transitively reachable (conservative call graph, [`callgraph`]) from `Solver::solve_into` / `Router::run_with` / any `route_into` without an argued `// INVARIANT:` comment |
//! | `steady-state-no-alloc` | whole workspace | an allocating constructor transitively reachable from a `[[hot]]` function listed in `lint.toml` |
//! | `no-lock-across-blocking-io` | `serve` | a Mutex/Condvar guard live across a blocking `read`/`write`/`accept` in the same block |
//!
//! # Allowlist
//!
//! Suppressions live in a checked-in `lint.toml` at the workspace root:
//!
//! ```toml
//! [[allow]]
//! rule = "no-rng-outside-instgen"
//! path = "crates/core/src/solver.rs"
//! pattern = "Rng"
//! reason = "seeded StdRng per request; part of the paper's §II algorithm"
//! ```
//!
//! `path` is a prefix of the repo-relative file path, `pattern` a
//! substring of the offending token (empty matches any token of the
//! rule), and `reason` is mandatory and non-empty. **A stale entry —
//! one that suppresses nothing — fails the run** (rule
//! `stale-allowlist-is-an-error`), so the allowlist cannot rot: delete
//! the code and the lint forces you to delete its excuse.
//!
//! # Exit status
//!
//! The `cds-lint` binary exits 1 on any unsuppressed finding, stale
//! allowlist entry, or malformed allowlist; 0 on a clean workspace.

pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod parser;

use callgraph::CallGraph;
use lexer::{lex, line_col, Token, TokenKind};
use parser::FileModel;

/// A named rule: identifier, scope note, and the rationale printed
/// under each finding.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Stable rule name, as referenced by `lint.toml`.
    pub name: &'static str,
    /// One-line rationale shown with each finding.
    pub rationale: &'static str,
}

/// Every rule the pass knows, in evaluation order.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "no-hash-on-solve-path",
        rationale: "HashMap/HashSet iteration order is nondeterministic across runs; on the \
                    solve path use dense slabs, BTree maps, or an allowlist entry arguing \
                    order-independence",
    },
    RuleDef {
        name: "no-wall-clock-on-solve-path",
        rationale: "wall-clock reads feed nondeterminism into anything they touch; only \
                    allowlisted observability sites (stats timing, serve/client latency) may \
                    read the clock",
    },
    RuleDef {
        name: "no-rng-outside-instgen",
        rationale: "randomness belongs to instance generation; anywhere else it must be a \
                    seeded, per-request RNG with an allowlist entry stating why results stay \
                    deterministic",
    },
    RuleDef {
        name: "unsafe-needs-safety-comment",
        rationale: "every unsafe block or fn must be immediately preceded by a `// SAFETY:` \
                    comment stating the invariant that makes it sound",
    },
    RuleDef {
        name: "no-panic-in-serve",
        rationale: "a panic on the serve request path kills the job instead of mapping to a \
                    4xx/500 response; return an error and let the handler map it",
    },
    RuleDef {
        name: "solve-path-panic-reachability",
        rationale: "this panic site is transitively reachable (conservative name-matched call \
                    graph) from a solve entry point (Solver::solve_into, Router::run_with, or a \
                    SteinerOracle::route_into impl); add a `// INVARIANT:` comment arguing why \
                    it cannot fire, or refactor the panic away",
    },
    RuleDef {
        name: "steady-state-no-alloc",
        rationale: "a `[[hot]]` function in lint.toml (queue ops, relax/settle kernel, rip-up \
                    inner loop) transitively reaches an allocating constructor; steady-state \
                    routing must run allocation-free on a warm workspace",
    },
    RuleDef {
        name: "no-lock-across-blocking-io",
        rationale: "a Mutex/Condvar guard is live across a blocking read/write/accept call in \
                    crates/serve: a stalled peer would hold the lock and wedge every other \
                    connection and worker; drop or scope the guard before touching the socket",
    },
];

/// Crates whose sources the hash rule covers: the deterministic solve
/// path from the kernel out to the router.
const HASH_SCOPE: &[&str] = &["core", "heap", "graph", "topo", "router"];

/// Looks up a rule by name.
#[must_use]
pub fn rule(name: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.name == name)
}

/// One violation: where, what token, which rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (see [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (chars) of the offending token.
    pub col: u32,
    /// The offending token text (e.g. `HashMap`, `Instant::now`).
    pub token: String,
    /// For call-graph rules: the witness chain of qualified fn names
    /// from an entry point to the function containing the site. Empty
    /// for token-level rules.
    pub chain: Vec<String>,
}

impl Finding {
    /// The ready-to-paste `lint.toml` recipe for this finding.
    #[must_use]
    pub fn allow_recipe(&self) -> String {
        format!(
            "[[allow]] with rule = \"{}\", path = \"{}\", pattern = \"{}\", and a reason \
             arguing why this site cannot break determinism/robustness",
            self.rule, self.path, self.token
        )
    }
}

/// One parsed `lint.toml` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Repo-relative path prefix the entry covers.
    pub path: String,
    /// Substring of the offending token; empty matches any token.
    pub pattern: String,
    /// Mandatory, non-empty justification.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

impl AllowEntry {
    /// Whether this entry suppresses `f`.
    #[must_use]
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && f.path.starts_with(&self.path) && f.token.contains(&self.pattern)
    }
}

/// One parsed `[[hot]]` entry from `lint.toml`: a function that must be
/// statically allocation-free together with everything it can reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotEntry {
    /// `Owner::name` (or bare `name`) of the hot function.
    pub function: String,
    /// Mandatory, non-empty statement of why this function is hot.
    pub reason: String,
    /// 1-based line of the `[[hot]]` header, for diagnostics.
    pub line: u32,
}

/// Everything `lint.toml` configures: suppressions and the hot set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// `[[allow]]` suppressions.
    pub allow: Vec<AllowEntry>,
    /// `[[hot]]` functions for `steady-state-no-alloc`.
    pub hot: Vec<HotEntry>,
}

/// Everything one lint run produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Unsuppressed violations — each one fails the run.
    pub findings: Vec<Finding>,
    /// Violations an allowlist entry covered, with the entry's index.
    pub suppressed: Vec<(Finding, usize)>,
    /// Indices of allowlist entries that matched nothing — each one
    /// fails the run (`stale-allowlist-is-an-error`).
    pub stale: Vec<usize>,
    /// Indices of `[[hot]]` entries naming no known function — stale
    /// config is an error for the same reason stale suppressions are.
    pub stale_hot: Vec<usize>,
    /// Number of files scanned.
    pub files: usize,
}

impl LintReport {
    /// True when the run found nothing to complain about.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty() && self.stale_hot.is_empty()
    }
}

/// Parses the `[[allow]]` tables of `lint.toml` (compatibility wrapper
/// over [`parse_config`]; `[[hot]]` entries are parsed and dropped).
///
/// # Errors
///
/// Same as [`parse_config`].
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    parse_config(text).map(|c| c.allow)
}

/// Parses the `lint.toml` subset: `[[allow]]` and `[[hot]]` tables with
/// double-quoted string values, `#` comments.
///
/// # Errors
///
/// A message naming the 1-based line for: unknown keys or rules,
/// missing fields, an empty `reason`, or syntax outside the subset.
pub fn parse_config(text: &str) -> Result<LintConfig, String> {
    #[derive(Default)]
    struct Partial {
        is_hot: bool,
        rule: Option<String>,
        path: Option<String>,
        pattern: Option<String>,
        function: Option<String>,
        reason: Option<String>,
        line: u32,
    }
    let mut config = LintConfig::default();
    let mut cur: Option<Partial> = None;
    let finish = |p: Partial, config: &mut LintConfig| -> Result<(), String> {
        let table = if p.is_hot { "[[hot]]" } else { "[[allow]]" };
        let get = |v: Option<String>, k: &str| {
            v.ok_or_else(|| format!("lint.toml:{}: {table} entry is missing `{k}`", p.line))
        };
        let reason = get(p.reason.clone(), "reason")?;
        if reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{}: empty `reason` — every entry must say why it is sound",
                p.line
            ));
        }
        if p.is_hot {
            config.hot.push(HotEntry {
                function: get(p.function.clone(), "function")?,
                reason,
                line: p.line,
            });
            return Ok(());
        }
        let entry = AllowEntry {
            rule: get(p.rule.clone(), "rule")?,
            path: get(p.path.clone(), "path")?,
            pattern: get(p.pattern.clone(), "pattern")?,
            reason,
            line: p.line,
        };
        if rule(&entry.rule).is_none() {
            return Err(format!(
                "lint.toml:{}: unknown rule `{}` (known: {})",
                p.line,
                entry.rule,
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
        }
        config.allow.push(entry);
        Ok(())
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" || line == "[[hot]]" {
            if let Some(p) = cur.take() {
                finish(p, &mut config)?;
            }
            cur = Some(Partial { is_hot: line == "[[hot]]", line: lineno, ..Partial::default() });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint.toml:{lineno}: expected `key = \"value\"`, [[allow]], or [[hot]]"
            ));
        };
        let value = parse_toml_string(value.trim())
            .ok_or_else(|| format!("lint.toml:{lineno}: value must be a double-quoted string"))?;
        let Some(p) = cur.as_mut() else {
            return Err(format!("lint.toml:{lineno}: key outside an [[allow]]/[[hot]] table"));
        };
        let slot = match (key.trim(), p.is_hot) {
            ("rule", false) => &mut p.rule,
            ("path", false) => &mut p.path,
            ("pattern", false) => &mut p.pattern,
            ("function", true) => &mut p.function,
            ("reason", _) => &mut p.reason,
            (other, is_hot) => {
                let expected = if is_hot { "function/reason" } else { "rule/path/pattern/reason" };
                return Err(format!(
                    "lint.toml:{lineno}: unknown key `{other}` (expected {expected})"
                ));
            }
        };
        if slot.replace(value).is_some() {
            return Err(format!("lint.toml:{lineno}: duplicate key `{}`", key.trim()));
        }
    }
    if let Some(p) = cur.take() {
        finish(p, &mut config)?;
    }
    Ok(config)
}

/// A double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_toml_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // unescaped quote: not a single string
        }
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Byte spans of `#[cfg(test)]`-gated code (attribute through the end
/// of the item it gates), plus everything after a `#![cfg(test)]` inner
/// attribute. Tracks item extent by brace depth on the token stream, so
/// strings and comments containing braces cannot confuse it.
#[must_use]
pub fn test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let text = |t: &Token| t.text(src);
    let is_punct =
        |i: usize, c: &str| sig.get(i).is_some_and(|t| t.kind == TokenKind::Punct && text(t) == c);
    // index of the token matching the opener at `open` over (`open_c`, `close_c`)
    let matching = |open: usize, open_c: &str, close_c: &str| -> Option<usize> {
        let mut depth = 0i64;
        for (j, t) in sig.iter().enumerate().skip(open) {
            if t.kind == TokenKind::Punct {
                let s = text(t);
                if s == open_c {
                    depth += 1;
                } else if s == close_c {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
            }
        }
        None
    };
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if !is_punct(i, "#") {
            i += 1;
            continue;
        }
        let inner = is_punct(i + 1, "!");
        let open = if inner { i + 2 } else { i + 1 };
        if !is_punct(open, "[") {
            i += 1;
            continue;
        }
        let Some(close) = matching(open, "[", "]") else {
            break; // unbalanced brackets: stop rather than guess
        };
        let attr = &sig[open + 1..close];
        let first_ident = attr.iter().find(|t| t.kind == TokenKind::Ident);
        let gates_test = first_ident.is_some_and(|t| text(t) == "cfg")
            && attr.iter().any(|t| t.kind == TokenKind::Ident && text(t) == "test");
        if !gates_test {
            i = close + 1;
            continue;
        }
        let start = sig[i].start;
        if inner {
            // `#![cfg(test)]`: the whole rest of the file is test code
            regions.push((start, src.len()));
            return regions;
        }
        // skip any further attributes between the cfg and its item
        let mut k = close + 1;
        while is_punct(k, "#") && is_punct(k + 1, "[") {
            match matching(k + 1, "[", "]") {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // the gated item ends at the matching `}` of its first brace,
        // or at the first top-level `;` (e.g. `#[cfg(test)] use x;`)
        let mut end = src.len();
        let mut m = k;
        while m < sig.len() {
            let t = sig[m];
            if t.kind == TokenKind::Punct {
                let s = text(t);
                if s == ";" {
                    end = t.end;
                    break;
                }
                if s == "{" {
                    end = matching(m, "{", "}").map_or(src.len(), |c| sig[c].end);
                    break;
                }
            }
            m += 1;
        }
        regions.push((start, end));
        // resume scanning after the region
        while i < sig.len() && sig[i].start < end {
            i += 1;
        }
    }
    regions
}

/// The crate a repo-relative path belongs to: `crates/<name>/…` maps to
/// `<name>`, anything else to its first path segment.
#[must_use]
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some(first) => first,
        None => "",
    }
}

/// Lints one file's source, returning raw (un-allowlisted) findings.
#[must_use]
pub fn lint_file(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let regions = test_regions(src, &tokens);
    let in_test = |t: &Token| regions.iter().any(|&(s, e)| t.start >= s && t.start < e);
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let krate = crate_of(path);
    // `crates/<name>/src/…` strips the full crate name; bare `cds-lint`
    // test fixtures pass paths like `core/src/lib.rs` too
    let crate_short = krate.strip_prefix("cds-").unwrap_or(krate);

    let mut out = Vec::new();
    let mut push = |rule: &'static str, t: &Token, token_text: String| {
        let (line, col) = line_col(src, t.start);
        out.push(Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            token: token_text,
            chain: Vec::new(),
        });
    };
    let ident = |i: usize| -> Option<&str> {
        sig.get(i).and_then(|t| (t.kind == TokenKind::Ident).then(|| t.text(src)))
    };
    let punct = |i: usize, c: &str| -> bool {
        sig.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == c)
    };

    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        let test = in_test(t);

        // no-hash-on-solve-path
        if !test && HASH_SCOPE.contains(&crate_short) && (name == "HashMap" || name == "HashSet") {
            push("no-hash-on-solve-path", t, name.to_string());
        }

        // no-wall-clock-on-solve-path: `Instant::now` and `SystemTime`
        if !test {
            if name == "Instant"
                && punct(i + 1, ":")
                && punct(i + 2, ":")
                && ident(i + 3) == Some("now")
            {
                push("no-wall-clock-on-solve-path", t, "Instant::now".to_string());
            }
            if name == "SystemTime" {
                push("no-wall-clock-on-solve-path", t, name.to_string());
            }
        }

        // no-rng-outside-instgen
        if !test
            && crate_short != "instgen"
            && matches!(name, "rand" | "Rng" | "StdRng" | "SeedableRng")
        {
            push("no-rng-outside-instgen", t, name.to_string());
        }

        // unsafe-needs-safety-comment: applies to test code too
        if name == "unsafe" && !has_safety_comment(src, &tokens, t.start) {
            push("unsafe-needs-safety-comment", t, name.to_string());
        }

        // no-panic-in-serve
        if !test && crate_short == "serve" {
            let panicky = ((name == "unwrap" || name == "expect") && punct(i + 1, "("))
                || ((name == "panic" || name == "todo") && punct(i + 1, "!"));
            if panicky {
                push("no-panic-in-serve", t, name.to_string());
            }
        }
    }
    out
}

/// Whether the trivia run immediately before the token at `start`
/// contains a comment with `SAFETY:`. Attributes between the comment
/// and the token are not skipped — the comment must sit against the
/// `unsafe` it justifies.
fn has_safety_comment(src: &str, tokens: &[Token], start: usize) -> bool {
    let idx = match tokens.iter().position(|t| t.start == start) {
        Some(i) => i,
        None => return false,
    };
    tokens[..idx].iter().rev().take_while(|t| t.is_trivia()).any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && t.text(src).contains("SAFETY:")
    })
}

/// [`run_config`] with an empty hot set — the pre-`[[hot]]` entry
/// point, kept for callers that only carry suppressions.
#[must_use]
pub fn run_lint(files: &[(String, String)], allow: &[AllowEntry]) -> LintReport {
    run_config(files, &LintConfig { allow: allow.to_vec(), hot: Vec::new() })
}

/// Entry-point patterns for `solve-path-panic-reachability`: the solve
/// kernel, the experiment driver, and every `route_into` definition
/// (the trait default plus each oracle impl — matched by bare name so a
/// new impl is covered the day it is written).
const PANIC_ENTRY_PATTERNS: &[&str] = &["Solver::solve_into", "Router::run_with", "route_into"];

/// Runs the token rules and the whole-workspace reachability rules over
/// `(path, source)` pairs, then applies the allowlist. Stale `[[allow]]`
/// entries land in [`LintReport::stale`], stale `[[hot]]` entries in
/// [`LintReport::stale_hot`]; both fail the run.
#[must_use]
pub fn run_config(files: &[(String, String)], config: &LintConfig) -> LintReport {
    let mut raw: Vec<Finding> = Vec::new();
    for (path, src) in files {
        raw.extend(lint_file(path, src));
    }

    // whole-workspace pass: parse every file once, build the graph
    let models: Vec<FileModel> = files.iter().map(|(_, src)| parser::parse_file(src)).collect();
    let graph = CallGraph::build(&models);
    let finding = |fi: usize, rule: &'static str, pos: usize, token: &str, chain: Vec<String>| {
        let (line, col) = line_col(&files[fi].1, pos);
        Finding { rule, path: files[fi].0.clone(), line, col, token: token.to_string(), chain }
    };

    // solve-path-panic-reachability
    let entries: Vec<usize> =
        PANIC_ENTRY_PATTERNS.iter().flat_map(|p| graph.find(&models, p)).collect();
    let parent = graph.reachable(&entries);
    for (fi, m) in models.iter().enumerate() {
        for site in &m.panics {
            if site.has_invariant {
                continue;
            }
            let Some(id) = graph.id_of(fi, site.caller) else { continue };
            if parent[id].is_some() {
                let chain = graph.chain(&models, &parent, id);
                raw.push(finding(
                    fi,
                    "solve-path-panic-reachability",
                    site.pos,
                    &site.token,
                    chain,
                ));
            }
        }
    }

    // steady-state-no-alloc
    let mut stale_hot = Vec::new();
    let mut hot_ids = Vec::new();
    for (idx, h) in config.hot.iter().enumerate() {
        let ids = graph.find(&models, &h.function);
        if ids.is_empty() {
            stale_hot.push(idx);
        } else {
            hot_ids.extend(ids);
        }
    }
    let parent = graph.reachable(&hot_ids);
    for (fi, m) in models.iter().enumerate() {
        for site in &m.allocs {
            let Some(id) = graph.id_of(fi, site.caller) else { continue };
            if parent[id].is_some() {
                let chain = graph.chain(&models, &parent, id);
                raw.push(finding(fi, "steady-state-no-alloc", site.pos, &site.token, chain));
            }
        }
    }

    // no-lock-across-blocking-io: serve crate only
    for (fi, m) in models.iter().enumerate() {
        let krate = crate_of(&files[fi].0);
        if krate.strip_prefix("cds-").unwrap_or(krate) != "serve" {
            continue;
        }
        for site in &m.lock_io {
            let holder =
                format!("{} (guard `{}` live)", m.fns[site.caller].qualified(), site.guard);
            raw.push(finding(
                fi,
                "no-lock-across-blocking-io",
                site.pos,
                &site.token,
                vec![holder],
            ));
        }
    }

    // deterministic output order regardless of which pass found what
    raw.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut report = LintReport { files: files.len(), stale_hot, ..LintReport::default() };
    let mut used = vec![false; config.allow.len()];
    for f in raw {
        match config.allow.iter().position(|e| e.matches(&f)) {
            Some(i) => {
                used[i] = true;
                report.suppressed.push((f, i));
            }
            None => report.findings.push(f),
        }
    }
    report.stale = used.iter().enumerate().filter(|(_, &u)| !u).map(|(i, _)| i).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<(String, String)> {
        lint_file(path, src).into_iter().map(|f| (f.rule.to_string(), f.token)).collect()
    }

    #[test]
    fn hash_rule_fires_only_on_solve_path_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u32>; }\n";
        assert_eq!(
            findings("crates/core/src/lib.rs", src),
            vec![
                ("no-hash-on-solve-path".into(), "HashMap".into()),
                ("no-hash-on-solve-path".into(), "HashSet".into()),
            ]
        );
        assert!(findings("crates/serve/src/server.rs", src).is_empty());
        assert!(findings("crates/instgen/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let t = std::time::Instant::now(); }\n}\n";
        assert!(findings("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_not_exempt() {
        let src = "#[cfg(test)]\nmod tests { }\nuse std::collections::HashMap;\n";
        assert_eq!(findings("crates/topo/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn cfg_attr_does_not_gate() {
        // cfg_attr(test, …) changes attributes, not compilation — the
        // item still exists in release builds
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn f() { let m: HashMap<u32, u32>; }\n";
        assert_eq!(findings("crates/router/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn inner_cfg_test_gates_the_whole_file() {
        let src = "#![cfg(test)]\nuse std::collections::HashMap;\n";
        assert!(findings("crates/heap/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nested_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    mod inner { fn f() { let m: HashMap<u8, u8>; } }\n}\nfn after() { let s: HashSet<u8>; }\n";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(f, vec![("no-hash-on-solve-path".into(), "HashSet".into())]);
    }

    #[test]
    fn wall_clock_rule_catches_now_but_not_the_import() {
        let src = "use std::time::{Duration, Instant};\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(
            findings("crates/delay/src/lib.rs", src),
            vec![("no-wall-clock-on-solve-path".into(), "Instant::now".into())]
        );
        let sys = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
        assert_eq!(findings("crates/delay/src/lib.rs", sys).len(), 2);
    }

    #[test]
    fn rng_rule_exempts_instgen() {
        let src = "use rand::rngs::StdRng;\nuse rand::{Rng, SeedableRng};\n";
        assert!(findings("crates/instgen/src/lib.rs", src).is_empty());
        let hits = findings("crates/core/src/solver.rs", src);
        assert_eq!(hits.len(), 5); // rand, StdRng, rand, Rng, SeedableRng
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        assert_eq!(
            findings("crates/core/src/x.rs", bad),
            vec![("unsafe-needs-safety-comment".into(), "unsafe".into())]
        );
        let good =
            "fn f() {\n    // SAFETY: g upholds its contract because …\n    unsafe { g() }\n}\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
        let block = "fn f() {\n    /* SAFETY: sound because … */ unsafe { g() }\n}\n";
        assert!(findings("crates/core/src/x.rs", block).is_empty());
        // a comment with other text between does not count
        let far = "// SAFETY: too far away\nfn f() { unsafe { g() } }\n";
        assert_eq!(findings("crates/core/src/x.rs", far).len(), 1);
    }

    #[test]
    fn panic_rule_is_serve_only_and_skips_lookalikes() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let v = x.unwrap();\n    let w = x.expect(\"w\");\n    if v > w { panic!(\"boom\") } else { todo!() }\n}\n";
        let hits = findings("crates/serve/src/server.rs", src);
        assert_eq!(hits.len(), 4);
        assert!(findings("crates/cli/src/main.rs", src).is_empty());
        // unwrap_or_else / a field named unwrap are different tokens
        let ok = "fn f() { m.lock().unwrap_or_else(PoisonError::into_inner); }\n";
        assert!(findings("crates/serve/src/server.rs", ok).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap Instant::now unsafe\nconst S: &str = \"HashMap unsafe panic!\";\nconst R: &str = r#\"SystemTime rand\"#;\n";
        assert!(findings("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_suppresses_and_flags_stale() {
        let files = vec![(
            "crates/core/src/a.rs".to_string(),
            "use std::collections::HashMap;\n".to_string(),
        )];
        let allow = parse_allowlist(
            "[[allow]]\nrule = \"no-hash-on-solve-path\"\npath = \"crates/core/src/a.rs\"\n\
             pattern = \"HashMap\"\nreason = \"test: never iterated\"\n\n\
             [[allow]]\nrule = \"no-panic-in-serve\"\npath = \"crates/serve\"\n\
             pattern = \"unwrap\"\nreason = \"stale on purpose\"\n",
        )
        .expect("parses");
        let report = run_lint(&files, &allow);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.stale, vec![1]);
        assert!(!report.clean());
        // dropping the stale entry makes it clean
        let report = run_lint(&files, &allow[..1]);
        assert!(report.clean());
        // dropping the used entry resurfaces the finding
        let report = run_lint(&files, &[]);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn allowlist_rejects_bad_entries() {
        assert!(parse_allowlist(
            "[[allow]]\nrule = \"no-such-rule\"\npath = \"x\"\npattern = \"y\"\nreason = \"z\"\n"
        )
        .unwrap_err()
        .contains("unknown rule"));
        assert!(parse_allowlist("[[allow]]\nrule = \"no-panic-in-serve\"\npath = \"x\"\npattern = \"y\"\nreason = \"  \"\n")
            .unwrap_err()
            .contains("empty `reason`"));
        assert!(parse_allowlist(
            "[[allow]]\nrule = \"no-panic-in-serve\"\npath = \"x\"\nreason = \"z\"\n"
        )
        .unwrap_err()
        .contains("missing `pattern`"));
        assert!(parse_allowlist("key = \"outside\"\n").unwrap_err().contains("outside"));
        assert!(parse_allowlist("[[allow]]\nrule = unquoted\n")
            .unwrap_err()
            .contains("double-quoted"));
        // comments and blank lines are fine
        assert_eq!(parse_allowlist("# just a comment\n\n").expect("ok").len(), 0);
    }

    #[test]
    fn empty_pattern_matches_any_token_of_the_rule() {
        let files = vec![(
            "crates/core/src/solver.rs".to_string(),
            "use rand::{Rng, SeedableRng};\n".to_string(),
        )];
        let allow = parse_allowlist(
            "[[allow]]\nrule = \"no-rng-outside-instgen\"\npath = \"crates/core/src/solver.rs\"\n\
             pattern = \"\"\nreason = \"seeded per request\"\n",
        )
        .expect("parses");
        let report = run_lint(&files, &allow);
        assert!(report.clean());
        assert_eq!(report.suppressed.len(), 3);
    }
}
