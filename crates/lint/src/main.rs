#![forbid(unsafe_code)]
//! `cds-lint` — the workspace's determinism & robustness lint binary.
//!
//! ```text
//! cds-lint [--workspace] [--root DIR] [--allowlist FILE] [FILES…]
//! ```
//!
//! With `--workspace` (the default when no files are given) it walks
//! every `crates/*/src/**/*.rs` under the workspace root, applies the
//! rules in [`cds_lint::RULES`], subtracts `lint.toml` suppressions,
//! and exits 1 on any unsuppressed finding or stale allowlist entry.
//! Diagnostics print `file:line:col`, the offending token, the rule,
//! and the allowlist recipe.

use cds_lint::json::report_json;
use cds_lint::{parse_config, rule, run_config, LintConfig, LintReport, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects `.rs` files under `dir` recursively, sorted for a
/// deterministic scan (and therefore deterministic diagnostics order).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// The workspace scan set: every `crates/*/src/**/*.rs`, repo-relative.
fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut crates: Vec<PathBuf> = match std::fs::read_dir(root.join("crates")) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => Vec::new(),
    };
    crates.sort();
    let mut files = Vec::new();
    for krate in crates {
        collect_rs(&krate.join("src"), &mut files);
    }
    files
}

struct Args {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    files: Vec<PathBuf>,
    list_rules: bool,
    json: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args =
        Args { root: None, allowlist: None, files: Vec::new(), list_rules: false, json: false };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {} // the default; accepted for CI clarity
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file")?;
                args.allowlist = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err("usage: cds-lint [--workspace] [--root DIR] [--allowlist FILE] \
                            [--list-rules] [--json] [FILES…]"
                    .into())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

/// Repo-relative forward-slash rendering of `path` under `root`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

fn print_report(report: &LintReport, config: &LintConfig) {
    for f in &report.findings {
        println!("{}:{}:{}: {}: forbidden `{}`", f.path, f.line, f.col, f.rule, f.token);
        if let Some(r) = rule(f.rule) {
            println!("  {}", r.rationale);
        }
        if !f.chain.is_empty() {
            println!("  reached via {}", f.chain.join(" -> "));
        }
        println!("  suppress with {}", f.allow_recipe());
    }
    for &i in &report.stale {
        let e = &config.allow[i];
        println!(
            "lint.toml:{}: stale-allowlist-is-an-error: entry (rule `{}`, path `{}`, pattern \
             `{}`) suppresses nothing — delete it or fix its path/pattern",
            e.line, e.rule, e.path, e.pattern
        );
    }
    for &i in &report.stale_hot {
        let e = &config.hot[i];
        println!(
            "lint.toml:{}: stale [[hot]] entry: `{}` names no known function — delete it or fix \
             the name",
            e.line, e.function
        );
    }
    // per-rule counts, every rule every run, so CI logs diff cleanly
    for r in RULES {
        let found = report.findings.iter().filter(|f| f.rule == r.name).count();
        let supp = report.suppressed.iter().filter(|(f, _)| f.rule == r.name).count();
        println!("cds-lint: rule {:<32} {found} findings, {supp} suppressed", r.name);
    }
    println!(
        "cds-lint: {} files, {} findings, {} suppressed, {} stale allowlist entries, {} stale \
         hot entries",
        report.files,
        report.findings.len(),
        report.suppressed.len(),
        report.stale.len(),
        report.stale_hot.len()
    );
}

fn run(argv: &[String]) -> Result<bool, String> {
    let args = parse_args(argv)?;
    if args.list_rules {
        for r in cds_lint::RULES {
            println!("{}\n  {}", r.name, r.rationale);
        }
        return Ok(true);
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = match args.root {
        Some(r) => r,
        None => find_workspace_root(&cwd).ok_or(
            "no workspace root (Cargo.toml with [workspace]) above the current dir; \
                    pass --root",
        )?,
    };
    let paths = if args.files.is_empty() { workspace_files(&root) } else { args.files };
    if paths.is_empty() {
        return Err(format!("no .rs files under {}/crates/*/src", root.display()));
    }
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        files.push((relative(&root, &p), text));
    }
    let allow_path = args.allowlist.unwrap_or_else(|| root.join("lint.toml"));
    let config = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_config(&text)?,
        Err(_) => LintConfig::default(), // no config: nothing suppressed, no hot set
    };
    let report = run_config(&files, &config);
    if args.json {
        println!("{}", report_json(&report, &config));
    } else {
        print_report(&report, &config);
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("cds-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let a = parse_args(&["--workspace".into()]).expect("ok");
        assert!(a.files.is_empty() && a.root.is_none());
        let a = parse_args(&["--root".into(), "/tmp".into(), "x.rs".into()]).expect("ok");
        assert_eq!(a.root.as_deref(), Some(Path::new("/tmp")));
        assert_eq!(a.files, vec![PathBuf::from("x.rs")]);
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--root".into()]).is_err());
    }

    #[test]
    fn relative_renders_forward_slashes() {
        let root = Path::new("/repo");
        assert_eq!(
            relative(root, Path::new("/repo/crates/core/src/lib.rs")),
            "crates/core/src/lib.rs"
        );
        assert_eq!(relative(root, Path::new("other/file.rs")), "other/file.rs");
    }
}
