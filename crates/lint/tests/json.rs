//! Golden snapshot of the `--json` output shape, and proof that the
//! flag changes only the serialization, never the exit code.
//!
//! The snapshot is a full byte-for-byte `assert_eq!` against a fixture
//! run — if the JSON shape changes, this test's expected string is the
//! one place to update, and the diff *is* the changelog for downstream
//! consumers (CI annotators, editor plugins).

use cds_lint::json::report_json;
use cds_lint::{parse_config, run_config};
use std::path::Path;
use std::process::Command;

#[test]
fn golden_snapshot_of_a_fixture_run() {
    let config = parse_config(
        "[[allow]]\n\
         rule = \"no-hash-on-solve-path\"\n\
         path = \"crates/core/src/fixture.rs\"\n\
         pattern = \"HashSet\"\n\
         reason = \"fixture suppression\"\n\
         \n\
         [[allow]]\n\
         rule = \"no-rng-outside-instgen\"\n\
         path = \"crates/core/src/nowhere.rs\"\n\
         pattern = \"\"\n\
         reason = \"stale on purpose\"\n\
         \n\
         [[hot]]\n\
         function = \"Hot::push\"\n\
         reason = \"fixture hot fn\"\n\
         \n\
         [[hot]]\n\
         function = \"Ghost::pop\"\n\
         reason = \"stale hot entry on purpose\"\n",
    )
    .expect("fixture config parses");
    let files = vec![(
        "crates/core/src/fixture.rs".to_string(),
        "use std::collections::HashSet;\n\
             impl Solver { pub fn solve_into(&self) { helper(); } }\n\
             fn helper() { oops().unwrap(); }\n\
             fn oops() -> Option<u32> { None }\n\
             pub struct Hot;\n\
             impl Hot { pub fn push(&mut self) { let _ = vec![1u32]; } }\n"
            .to_string(),
    )];
    let report = run_config(&files, &config);
    let json = report_json(&report, &config);
    let expected = r#"{
  "files": 1,
  "clean": false,
  "findings": [
    { "rule": "solve-path-panic-reachability", "path": "crates/core/src/fixture.rs", "line": 3, "col": 22, "token": "unwrap", "rationale": "this panic site is transitively reachable (conservative name-matched call graph) from a solve entry point (Solver::solve_into, Router::run_with, or a SteinerOracle::route_into impl); add a `// INVARIANT:` comment arguing why it cannot fire, or refactor the panic away", "chain": ["Solver::solve_into", "helper"] },
    { "rule": "steady-state-no-alloc", "path": "crates/core/src/fixture.rs", "line": 6, "col": 45, "token": "vec!", "rationale": "a `[[hot]]` function in lint.toml (queue ops, relax/settle kernel, rip-up inner loop) transitively reaches an allocating constructor; steady-state routing must run allocation-free on a warm workspace", "chain": ["Hot::push"] }
  ],
  "suppressed": [
    { "rule": "no-hash-on-solve-path", "path": "crates/core/src/fixture.rs", "line": 1, "col": 23, "token": "HashSet", "rationale": "HashMap/HashSet iteration order is nondeterministic across runs; on the solve path use dense slabs, BTree maps, or an allowlist entry arguing order-independence", "chain": [], "allow_line": 1 }
  ],
  "stale_allow_lines": [7],
  "stale_hot_lines": [17]
}"#;
    assert_eq!(json, expected, "JSON snapshot drifted — update deliberately");
}

#[test]
fn the_json_flag_does_not_change_exit_codes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists");
    let run = |extra: &[&str]| {
        let mut args = vec!["--root", root.to_str().expect("utf-8 root"), "--workspace"];
        args.extend_from_slice(extra);
        Command::new(env!("CARGO_BIN_EXE_cds-lint")).args(&args).output().expect("binary runs")
    };
    let plain = run(&[]);
    let json = run(&["--json"]);
    assert_eq!(plain.status.code(), json.status.code(), "--json must not change the exit code");
    assert_eq!(json.status.code(), Some(0), "the tree is clean");
    let out = String::from_utf8_lossy(&json.stdout);
    assert!(out.trim_start().starts_with('{') && out.trim_end().ends_with('}'), "JSON envelope");
    assert!(out.contains("\"clean\": true"), "clean tree reported in JSON:\n{out}");
    assert!(!out.contains("cds-lint:"), "no human-readable lines mixed into --json output");
}
