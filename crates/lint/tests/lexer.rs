//! Adversarial corpus + property tests for the hand-rolled lexer.
//!
//! The lint pass is only as trustworthy as its tokenizer, so this suite
//! attacks exactly the constructs that break grep-grade scanners —
//! nested block comments, raw strings with hash fences, lifetimes vs
//! char literals, `cfg(test)` nesting — and then property-tests the two
//! load-bearing invariants on fragment soup and raw byte noise:
//!
//! 1. `lex` never panics, on any input;
//! 2. token spans tile the input exactly (contiguous, in order,
//!    starting at 0, ending at `len`, every boundary a char boundary).

use cds_lint::lexer::{lex, Token, TokenKind};
use cds_lint::{lint_file, test_regions};
use proptest::prelude::*;

/// Asserts the tiling invariant and returns the tokens.
fn assert_tiles(src: &str) -> Vec<Token> {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} of {src:?}");
        assert!(t.end > t.start, "empty token at {pos} of {src:?}");
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        let _ = t.text(src); // must slice cleanly
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover all of {src:?}");
    toks
}

fn idents(src: &str) -> Vec<&str> {
    lex(src).iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src)).collect()
}

#[test]
fn nested_block_comments_hide_their_contents() {
    let src = "before /* a /* HashMap */ unsafe /* b /* c */ */ */ after";
    assert_tiles(src);
    assert_eq!(idents(src), vec!["before", "after"]);
}

#[test]
fn unbalanced_comment_openers_swallow_the_rest() {
    let src = "x /* never closed /* deeper\nHashMap unsafe";
    assert_tiles(src);
    assert_eq!(idents(src), vec!["x"]);
}

#[test]
fn raw_strings_with_fences_hide_quotes_and_comment_markers() {
    let cases = [
        (r####"r##"has "# inside, and // and /*"## x"####, vec!["x"]),
        (r####"r#""# y"####, vec!["y"]),
        ("r\"plain raw\" z", vec!["z"]),
        (r####"br##"bytes "# too"## w"####, vec!["w"]),
    ];
    for (src, want) in cases {
        assert_tiles(src);
        assert_eq!(idents(src), want, "input {src:?}");
    }
}

#[test]
fn a_hash_fence_longer_than_the_opener_does_not_close_early() {
    // the body contains `"###` but the opener used two hashes — the
    // first `"##` inside `"###` closes it; what matters is tiling and
    // that the tail after the true close is still tokenized
    let src = "r##\"body \"# more\"## tail";
    assert_tiles(src);
    assert_eq!(idents(src), vec!["tail"]);
}

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; let s = 'q'; }";
    assert_tiles(src);
    let lifetimes: Vec<&str> =
        lex(src).iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| t.text(src)).collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    let chars: Vec<&str> =
        lex(src).iter().filter(|t| t.kind == TokenKind::CharLit).map(|t| t.text(src)).collect();
    assert_eq!(chars, vec!["'x'", "'\\''", "'q'"]);
}

#[test]
fn a_stray_apostrophe_stops_at_the_line_end() {
    // robustness: an unterminated char literal must not swallow the
    // next line (where a real violation could hide)
    let src = "let x = '\nuse std::collections::HashMap;";
    assert_tiles(src);
    assert!(idents(src).contains(&"HashMap"));
}

#[test]
fn cfg_test_nesting_and_following_code() {
    let src = "\
mod live { pub fn f() {} }
#[cfg(test)]
mod tests {
    use super::*;
    mod nested { /* } sneaky brace in comment */ fn g() { let s = \"}\"; } }
    #[test]
    fn t() {}
}
fn after_region() {}
#[cfg(all(test, feature = \"x\"))]
fn gated_too() {}
fn also_live() {}
";
    let toks = assert_tiles(src);
    let regions = test_regions(src, &toks);
    assert_eq!(regions.len(), 2);
    let in_test = |name: &str| {
        let at = src.find(name).expect("present");
        regions.iter().any(|&(s, e)| at >= s && at < e)
    };
    assert!(!in_test("live"));
    assert!(in_test("nested"));
    assert!(in_test("sneaky"));
    assert!(!in_test("after_region"));
    assert!(in_test("gated_too"));
    assert!(!in_test("also_live"));
}

#[test]
fn cfg_test_on_a_braceless_item_ends_at_the_semicolon() {
    let src = "#[cfg(test)]\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
    let f = lint_file("crates/core/src/x.rs", src);
    // the gated import is exempt; the live one right after is not
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].token, "HashSet");
}

#[test]
fn shebang_and_leading_inner_attrs_tokenize() {
    for src in ["#!/usr/bin/env rust\nfn main() {}", "#![allow(dead_code)]\nfn f() {}"] {
        assert_tiles(src);
    }
}

fn kinds_of(src: &str, kind: TokenKind) -> Vec<String> {
    lex(src).iter().filter(|t| t.kind == kind).map(|t| t.text(src).to_string()).collect()
}

#[test]
fn a_shebang_is_one_trivia_token_only_at_file_start() {
    let src = "#!/usr/bin/env rust\nfn main() {}";
    let toks = assert_tiles(src);
    assert_eq!(toks[0].kind, TokenKind::Shebang);
    assert_eq!(toks[0].text(src), "#!/usr/bin/env rust");
    assert!(toks[0].is_trivia(), "a shebang is trivia, like the comment it is");
    // `#![…]` at position 0 is an inner attribute, not a shebang
    assert!(lex("#![allow(x)]\n").iter().all(|t| t.kind != TokenKind::Shebang));
    // `#!` past position 0 is punctuation soup, not a shebang
    assert!(lex("fn f() {}\n#!/bin/sh\n").iter().all(|t| t.kind != TokenKind::Shebang));
}

#[test]
fn doc_comments_are_classified_distinctly_from_plain_comments() {
    let src = "/// outer doc\n//! inner doc\n// plain\n//// four slashes is plain\n/** block doc */\n/*! inner block doc */\n/* plain block */\n/**/\n/*** not doc ***/\nfn f() {}";
    assert_tiles(src);
    assert_eq!(
        kinds_of(src, TokenKind::DocComment),
        vec!["/// outer doc", "//! inner doc", "/** block doc */", "/*! inner block doc */"]
    );
    assert_eq!(
        kinds_of(src, TokenKind::LineComment),
        vec!["// plain", "//// four slashes is plain"]
    );
    // `/**/` and `/***…` are degenerate forms the reference keeps plain
    assert_eq!(
        kinds_of(src, TokenKind::BlockComment),
        vec!["/* plain block */", "/**/", "/*** not doc ***/"]
    );
}

#[test]
fn doc_comments_cannot_spoof_safety_markers() {
    // the unsafe-needs-comment rule accepts `// SAFETY:` but must not be
    // satisfied by rustdoc prose that merely mentions the word
    let spoofed = "pub fn f(p: *const u32) -> u32 {\n    /// SAFETY: this doc comment is prose, not an argument\n    unsafe { *p }\n}\n";
    let findings = lint_file("crates/core/src/x.rs", spoofed);
    assert!(
        findings.iter().any(|f| f.rule == "unsafe-needs-safety-comment"),
        "a doc comment must not satisfy the SAFETY marker"
    );
    let argued = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert!(
        !lint_file("crates/core/src/x.rs", argued)
            .iter()
            .any(|f| f.rule == "unsafe-needs-safety-comment"),
        "a plain comment still satisfies the marker"
    );
}

/// Fragments chosen to collide: fence openers/closers, escapes, half
/// comments, attribute pieces, and the identifiers the rules look for.
const FRAGMENTS: &[&str] = &[
    "r#\"", "\"#", "r##\"", "\"##", "\"", "\\\"", "\\", "'", "'a", "'a'", "'\\''", "b'", "b\"",
    "br#\"", "c\"", "cr#\"", "//", "/*", "*/", "/**/", "\n", " ", "\t", "#", "!", "[", "]", "{",
    "}", "(", ")", ";", ":", "::", "cfg", "test", "mod", "fn", "unsafe", "HashMap", "Instant",
    "now", "0.5e-3", "1..=9", "0xFF", "r#type", "é∀", "SAFETY:", "unwrap", "panic",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Fragment soup: concatenations of mutually hostile lexical
    /// fragments never panic the lexer and always tile, and every
    /// downstream consumer (test_regions, lint_file) survives them.
    #[test]
    fn fragment_soup_lexes_totally(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..80)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let toks = assert_tiles(&src);
        let _ = test_regions(&src, &toks);
        let _ = lint_file("crates/core/src/fuzz.rs", &src);
    }

    /// Raw byte noise (lossily decoded): same totality guarantees on
    /// arbitrary non-fragment input, multibyte chars included.
    #[test]
    fn byte_noise_lexes_totally(bytes in proptest::collection::vec(0u32..256, 0..200)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw).into_owned();
        let toks = assert_tiles(&src);
        let _ = test_regions(&src, &toks);
        let _ = lint_file("crates/serve/src/fuzz.rs", &src);
    }
}
