//! Property and golden tests for the item parser and call graph.
//!
//! The reachability rules trust two things the unit tests cannot fully
//! establish: that [`parse_file`] is *total* (never panics, whatever
//! bytes it is fed — the lint runs over every file in the tree,
//! including ones mid-edit), and that the model it extracts has sane
//! geometry (fn spans nest or are disjoint, bodies sit inside their
//! spans, sites sit inside their callers). The golden test pins the
//! call graph's shadowed-name semantics at the workspace fixture level:
//! same-named fns in different impls all receive edges from an
//! unqualified call, qualified calls prune to the owning impl, and std
//! qualifiers with no workspace owner produce no edges.

use cds_lint::callgraph::CallGraph;
use cds_lint::parser::{parse_file, FileModel};
use cds_lint::{parse_config, run_config};
use proptest::prelude::*;

/// Asserts the model's span geometry and returns it.
fn assert_model_geometry(src: &str) -> FileModel {
    let m = parse_file(src);
    for f in &m.fns {
        let (s, e) = f.span;
        assert!(s <= e && e <= src.len(), "fn span out of bounds in {src:?}");
        assert!(src.is_char_boundary(s) && src.is_char_boundary(e));
        if let Some((bs, be)) = f.body {
            assert!(s <= bs && bs <= be && be <= e, "body escapes its fn span in {src:?}");
        }
    }
    // spans of distinct fns are disjoint or properly nested (nested
    // items: a fn defined inside another fn's body)
    for (i, a) in m.fns.iter().enumerate() {
        for b in m.fns.iter().skip(i + 1) {
            let (as_, ae) = a.span;
            let (bs, be) = b.span;
            let disjoint = ae <= bs || be <= as_;
            let nested = (as_ <= bs && be <= ae) || (bs <= as_ && ae <= be);
            assert!(disjoint || nested, "fn spans cross: {:?} vs {:?} in {src:?}", a.span, b.span);
        }
    }
    // every recorded site names a caller that exists and sits inside it
    for (caller, pos) in m
        .calls
        .iter()
        .map(|c| (c.caller, None))
        .chain(m.panics.iter().map(|s| (s.caller, Some(s.pos))))
        .chain(m.allocs.iter().map(|s| (s.caller, Some(s.pos))))
        .chain(m.lock_io.iter().map(|s| (s.caller, Some(s.pos))))
    {
        let f = &m.fns[caller];
        if let Some(p) = pos {
            let (s, e) = f.span;
            assert!(s <= p && p < e, "site at {p} outside its caller {:?} in {src:?}", f.span);
        }
    }
    m
}

#[test]
fn nested_fns_and_impls_produce_nested_spans() {
    let src = "impl A { fn outer(&self) { fn inner() { x.unwrap(); } inner(); } }\nfn free() {}";
    let m = assert_model_geometry(src);
    let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["outer", "inner", "free"]);
    assert_eq!(m.fns[0].owners, vec!["A".to_string()]);
    let (os, oe) = m.fns[0].span;
    let (is_, ie) = m.fns[1].span;
    assert!(os < is_ && ie <= oe, "inner fn must nest inside outer");
}

#[test]
fn doc_comments_cannot_spoof_invariant_markers() {
    // rustdoc prose mentioning INVARIANT must not silence the panic rule
    let spoofed = "impl Solver { pub fn solve_into(&self) {\n    /// INVARIANT: prose, not an argument\n    self.x.unwrap();\n} }\n";
    let m = parse_file(spoofed);
    assert_eq!(m.panics.len(), 1);
    assert!(!m.panics[0].has_invariant, "a doc comment must not satisfy the INVARIANT marker");
    let argued = spoofed.replace("///", "//");
    let m = parse_file(&argued);
    assert!(m.panics[0].has_invariant, "the same text as a plain comment does satisfy it");
}

#[test]
fn trailing_invariant_comments_do_not_leak_to_the_next_line() {
    let src = "fn f(a: Option<u32>, b: Option<u32>) {\n    let x = a.unwrap(); // INVARIANT: a is Some by construction\n    let y = b.unwrap();\n}\n";
    let m = parse_file(src);
    assert_eq!(m.panics.len(), 2);
    assert!(m.panics[0].has_invariant, "trailing comment covers its own line");
    assert!(!m.panics[1].has_invariant, "and must not cover the line after");
}

/// Golden call-graph fixture: three files with shadowed same-name fns.
/// Pins the exact edge semantics the reachability rules rely on.
#[test]
fn callgraph_golden_shadowed_names() {
    let files = [
        // two `push` defs in different impls, one allocating
        "pub struct Hot;\nimpl Hot { pub fn push(&mut self) { self.grow(); } fn grow(&mut self) {} }",
        "pub struct Cold;\nimpl Cold { pub fn push(&mut self) { let v: Vec<u32> = Vec::new(); drop(v); } }",
        // entry calls `.push()` (method: edges to both), `Hot::push`
        // (qualified: edges to Hot only), and `Vec::new()` (std
        // qualifier, no workspace owner: no edges at all)
        "pub fn entry_method(q: &mut dyn Q) { q.push(); }\npub fn entry_qualified(h: &mut Hot) { Hot::push(h); }\npub fn entry_std() { let _: Vec<u32> = Vec::new(); }",
    ];
    let models: Vec<FileModel> = files.iter().map(|s| parse_file(s)).collect();
    let g = CallGraph::build(&models);

    let one = |pat: &str| -> usize {
        let ids = g.find(&models, pat);
        assert_eq!(ids.len(), 1, "pattern {pat} must match exactly one def");
        ids[0]
    };
    let hot_push = one("Hot::push");
    let cold_push = one("Cold::push");
    let grow = one("Hot::grow");
    assert_eq!(g.find(&models, "push").len(), 2, "bare pattern matches both shadowed defs");

    // method call: edges to every same-named def, transitively onward
    let parent = g.reachable(&[one("entry_method")]);
    assert!(parent[hot_push].is_some() && parent[cold_push].is_some());
    assert!(parent[grow].is_some(), "transitive edge through Hot::push");
    assert_eq!(
        g.chain(&models, &parent, grow),
        vec!["entry_method", "Hot::push", "Hot::grow"],
        "witness chain reconstructs the shortest path"
    );

    // qualified call: pruned to the owning impl
    let parent = g.reachable(&[one("entry_qualified")]);
    assert!(parent[hot_push].is_some() && parent[cold_push].is_none());

    // std qualifier with no workspace owner: no edges (Vec::new would
    // otherwise drag in every workspace `new`)
    let parent = g.reachable(&[one("entry_std")]);
    let reached = parent.iter().filter(|p| p.is_some()).count();
    assert_eq!(reached, 1, "entry_std reaches only itself");
    // ...but the allocation *site* is still recorded in the caller
    assert!(models[2].allocs.iter().any(|s| s.token == "Vec::new"));
}

/// End-to-end over a miniature workspace: the three graph rules fire on
/// a fixture and name the right sites.
#[test]
fn run_config_fires_all_three_graph_rules_on_a_fixture() {
    let config = parse_config("[[hot]]\nfunction = \"Hot::push\"\nreason = \"fixture hot fn\"\n")
        .expect("fixture config parses");
    let files = vec![
        (
            "crates/core/src/a.rs".to_string(),
            "impl Solver { pub fn solve_into(&self) { helper(); } }\nfn helper() { oops().unwrap(); }\nfn oops() -> Option<u32> { None }\n".to_string(),
        ),
        (
            "crates/heap/src/b.rs".to_string(),
            "pub struct Hot;\nimpl Hot { pub fn push(&mut self) { let _ = vec![1u32]; } }\n".to_string(),
        ),
        (
            "crates/serve/src/c.rs".to_string(),
            "use std::io::Write;\npub fn f(m: &std::sync::Mutex<u32>, s: &mut std::net::TcpStream) {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    let _ = s.write_all(b\"x\");\n    drop(g);\n}\n".to_string(),
        ),
    ];
    let report = run_config(&files, &config);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"solve-path-panic-reachability"), "got {rules:?}");
    assert!(rules.contains(&"steady-state-no-alloc"), "got {rules:?}");
    assert!(rules.contains(&"no-lock-across-blocking-io"), "got {rules:?}");
    let panic = report
        .findings
        .iter()
        .find(|f| f.rule == "solve-path-panic-reachability")
        .expect("checked above");
    assert_eq!(panic.chain, vec!["Solver::solve_into", "helper"], "witness chain is reported");
}

/// Fragments that collide with item syntax: fn/impl/trait headers,
/// generics with nested angle brackets, where clauses, attributes, and
/// the site tokens the rules scan for.
const FRAGMENTS: &[&str] = &[
    "fn",
    "impl",
    "trait",
    "for",
    "where",
    "mod",
    "pub",
    "unsafe",
    "extern",
    "\"C\"",
    "<",
    ">",
    "<T>",
    "<'a, T: Ord>",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    "->",
    "::",
    ".",
    "#[test]",
    "#[cfg(test)]",
    "#[inline]",
    "Self",
    "self",
    "dyn",
    "Vec::new",
    "unwrap",
    "expect",
    "panic!",
    "vec!",
    "lock",
    "write_all",
    "let",
    "=",
    "x",
    "Q",
    "// INVARIANT: x",
    "/// INVARIANT: x",
    "\n",
    " ",
    "r#\"",
    "\"#",
    "'a",
    "'x'",
    "0.5",
    "…",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Item-syntax soup: the parser is total and its model geometry
    /// holds on concatenations of mutually hostile item fragments.
    #[test]
    fn fragment_soup_parses_totally(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..80)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let m = assert_model_geometry(&src);
        // the graph and the full pipeline must also survive the soup
        let models = vec![m];
        let _ = CallGraph::build(&models);
        let files = vec![("crates/core/src/fuzz.rs".to_string(), src)];
        let _ = run_config(&files, &cds_lint::LintConfig::default());
    }

    /// Raw byte noise (lossily decoded): same totality guarantees.
    #[test]
    fn byte_noise_parses_totally(bytes in proptest::collection::vec(0u32..256, 0..200)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw).into_owned();
        let _ = assert_model_geometry(&src);
    }
}
