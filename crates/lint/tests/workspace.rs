//! Acceptance tests against the real workspace: the tree is lint-clean
//! with the checked-in `lint.toml`, every allowlist entry is
//! load-bearing (deleting any one of them fails the run), and a
//! reintroduced representative violation is caught. These are the
//! guarantees CI relies on when it runs `cds-lint --workspace`.

use cds_lint::{parse_config, run_config, AllowEntry, LintConfig, LintReport};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir).expect("readable dir").map(|e| e.expect("dir entry").path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Loads every `crates/*/src/**/*.rs` as (repo-relative path, contents),
/// mirroring what the `cds-lint --workspace` binary feeds `run_lint`.
fn workspace_files() -> Vec<(String, String)> {
    let root = repo_root();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .expect("crates/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let mut paths = Vec::new();
        collect_rs(&dir.join("src"), &mut paths);
        for p in paths {
            let rel =
                p.strip_prefix(&root).expect("under root").to_string_lossy().replace('\\', "/");
            files.push((rel, fs::read_to_string(&p).expect("readable source file")));
        }
    }
    assert!(files.len() > 40, "workspace walk found only {} files", files.len());
    files
}

fn checked_in_config() -> LintConfig {
    let text = fs::read_to_string(repo_root().join("lint.toml")).expect("lint.toml exists");
    parse_config(&text).expect("checked-in lint.toml parses")
}

fn describe(report: &LintReport) -> String {
    report
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} {} [{}]", f.path, f.line, f.col, f.token, f.rule))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn the_workspace_is_lint_clean_under_the_checked_in_allowlist() {
    let report = run_config(&workspace_files(), &checked_in_config());
    assert!(report.clean(), "unexpected findings:\n{}", describe(&report));
    assert!(report.stale.is_empty(), "stale allowlist entries: {:?}", report.stale);
    assert!(report.stale_hot.is_empty(), "stale hot entries: {:?}", report.stale_hot);
    assert!(!report.suppressed.is_empty(), "the allowlist should be doing real work");
    assert!(!report.findings.iter().any(|_| true), "{}", describe(&report));
}

#[test]
fn every_allowlist_entry_is_load_bearing() {
    let files = workspace_files();
    let config = checked_in_config();
    for drop in 0..config.allow.len() {
        let pruned = LintConfig {
            allow: config
                .allow
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, e)| e.clone())
                .collect(),
            hot: config.hot.clone(),
        };
        let report = run_config(&files, &pruned);
        assert!(
            !report.findings.is_empty() && !report.clean(),
            "deleting lint.toml entry #{drop} ({} / {} / {:?}) suppressed nothing — it is stale",
            config.allow[drop].rule,
            config.allow[drop].path,
            config.allow[drop].pattern,
        );
    }
}

#[test]
fn a_reintroduced_hashmap_in_core_fails_the_run() {
    let mut files = workspace_files();
    files.push((
        "crates/core/src/reintroduced.rs".to_string(),
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n"
            .to_string(),
    ));
    let report = run_config(&files, &checked_in_config());
    assert!(!report.clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "no-hash-on-solve-path"
                && f.path == "crates/core/src/reintroduced.rs"),
        "expected a no-hash-on-solve-path finding, got:\n{}",
        describe(&report)
    );
}

#[test]
fn a_reintroduced_unwrap_in_serve_fails_the_run() {
    let mut files = workspace_files();
    files.push((
        "crates/serve/src/reintroduced.rs".to_string(),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
    ));
    let report = run_config(&files, &checked_in_config());
    assert!(report.findings.iter().any(|f| f.rule == "no-panic-in-serve"));
}

#[test]
fn an_unmatched_allowlist_entry_is_reported_stale() {
    let mut config = checked_in_config();
    config.allow.push(AllowEntry {
        rule: "no-hash-on-solve-path".to_string(),
        path: "crates/core/src/nonexistent.rs".to_string(),
        pattern: String::new(),
        reason: "bogus entry that can never match".to_string(),
        line: 999,
    });
    let report = run_config(&workspace_files(), &config);
    assert_eq!(report.stale, vec![config.allow.len() - 1], "exactly the bogus entry is stale");
    assert!(!report.clean(), "a stale entry must fail the run");
}

#[test]
fn a_reintroduced_panic_reachable_from_solve_into_fails_the_run() {
    // A free fn named `expand_once` shadows `State::expand_once`: the
    // conservative graph edges the solver's `self.expand_once()` method
    // call to *every* same-named def, so the uncommented `.unwrap()`
    // inside becomes a reachable panic site with no invariant comment.
    let mut files = workspace_files();
    files.push((
        "crates/core/src/reintroduced_panic.rs".to_string(),
        "pub fn expand_once(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
    ));
    let report = run_config(&files, &checked_in_config());
    assert!(
        report.findings.iter().any(|f| f.rule == "solve-path-panic-reachability"
            && f.path == "crates/core/src/reintroduced_panic.rs"
            && f.token == "unwrap"
            && !f.chain.is_empty()),
        "expected a solve-path-panic-reachability finding with a witness chain, got:\n{}",
        describe(&report)
    );
}

#[test]
fn a_reintroduced_allocation_in_a_hot_fn_fails_the_run() {
    // A second def named `TwoLevelHeap::push`: the `[[hot]]` pattern
    // matches both defs, so the planted `Vec::new()` is an allocation
    // inside the hot set.
    let mut files = workspace_files();
    files.push((
        "crates/heap/src/reintroduced_alloc.rs".to_string(),
        "pub struct TwoLevelHeap;\nimpl TwoLevelHeap {\n    pub fn push(&mut self) -> Vec<u32> { Vec::new() }\n}\n"
            .to_string(),
    ));
    let report = run_config(&files, &checked_in_config());
    assert!(
        report.findings.iter().any(|f| f.rule == "steady-state-no-alloc"
            && f.path == "crates/heap/src/reintroduced_alloc.rs"
            && f.token == "Vec::new"),
        "expected a steady-state-no-alloc finding, got:\n{}",
        describe(&report)
    );
}

#[test]
fn a_reintroduced_guard_across_blocking_io_fails_the_run() {
    // `unwrap_or_else` keeps the planted file clean under
    // no-panic-in-serve; the held `g` across `write_all` is the only
    // violation, so the finding isolates the new rule.
    let mut files = workspace_files();
    files.push((
        "crates/serve/src/reintroduced_lockio.rs".to_string(),
        "use std::io::Write;\nuse std::sync::Mutex;\npub fn f(m: &Mutex<u32>, s: &mut std::net::TcpStream) {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    let _ = s.write_all(b\"x\");\n    drop(g);\n}\n"
            .to_string(),
    ));
    let report = run_config(&files, &checked_in_config());
    assert!(
        report.findings.iter().any(|f| f.rule == "no-lock-across-blocking-io"
            && f.path == "crates/serve/src/reintroduced_lockio.rs"
            && f.token == "write_all"),
        "expected a no-lock-across-blocking-io finding, got:\n{}",
        describe(&report)
    );
}

#[test]
fn deleting_any_invariant_comment_makes_the_tree_dirty() {
    // Every `// INVARIANT:` comment outside crates/lint must be
    // load-bearing: deleting the line that starts one flips the run to
    // dirty. (The lint crate's own sources mention INVARIANT in string
    // fixtures and rationale text, which are not annotations.)
    let files = workspace_files();
    let config = checked_in_config();
    let mut checked = 0usize;
    for (fi, (path, src)) in files.iter().enumerate() {
        if path.starts_with("crates/lint/") {
            continue;
        }
        let lines: Vec<&str> = src.lines().collect();
        for (li, line) in lines.iter().enumerate() {
            if !line.trim_start().starts_with("// INVARIANT") {
                continue;
            }
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != li)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let mut mutated_files = files.clone();
            mutated_files[fi].1 = mutated;
            let report = run_config(&mutated_files, &config);
            assert!(
                report
                    .findings
                    .iter()
                    .any(|f| f.rule == "solve-path-panic-reachability" && &f.path == path),
                "deleting the INVARIANT comment at {path}:{} did not flip the run dirty",
                li + 1
            );
            checked += 1;
        }
    }
    assert!(checked >= 60, "only {checked} INVARIANT comments exercised — walk broken?");
}

#[test]
fn the_binary_exits_zero_on_the_real_workspace_and_one_on_a_stale_allowlist() {
    let root = repo_root();
    let ok = Command::new(env!("CARGO_BIN_EXE_cds-lint"))
        .args(["--root", root.to_str().expect("utf-8 root"), "--workspace"])
        .output()
        .expect("binary runs");
    assert!(
        ok.status.success(),
        "expected exit 0, got {:?}\n{}",
        ok.status.code(),
        String::from_utf8_lossy(&ok.stdout)
    );

    let stale = root.join("target").join(format!("stale-allow-{}.toml", std::process::id()));
    fs::write(
        &stale,
        "[[allow]]\nrule = \"no-rng-outside-instgen\"\npath = \"crates/nowhere\"\n\
         pattern = \"\"\nreason = \"x\"\n",
    )
    .expect("temp allowlist written");
    let bad = Command::new(env!("CARGO_BIN_EXE_cds-lint"))
        .args([
            "--root",
            root.to_str().expect("utf-8 root"),
            "--workspace",
            "--allowlist",
            stale.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    let _ = fs::remove_file(&stale);
    assert_eq!(bad.status.code(), Some(1), "a stale allowlist entry must exit 1");
    let out = String::from_utf8_lossy(&bad.stdout);
    assert!(out.contains("stale-allowlist-is-an-error"), "diagnostic names the rule:\n{out}");
}
