#![forbid(unsafe_code)]
//! Routability and routing-quality metrics.
//!
//! Implements the congestion metrics the paper reports in Tables IV/V:
//! **ACE(x)** — "the average congestion of the x% most critical global
//! routing edges" \[19\] — and the composite
//! `ACE4 = (ACE(0.5) + ACE(1) + ACE(2) + ACE(5)) / 4`, plus wirelength
//! and via accounting. An ACE4 of 93% is usually considered routable;
//! detailed routing degrades noticeably above 90%.
//!
//! # Examples
//!
//! ```
//! use cds_metrics::{ace, ace4};
//!
//! // congestion ratios (usage/capacity) per edge
//! let cong = vec![1.2, 0.9, 0.5, 0.1];
//! assert!((ace(&cong, 25.0) - 120.0).abs() < 1e-9); // top 25% = the 1.2 edge
//! assert!(ace4(&cong) >= 100.0); // dominated by the overflowing edge
//! ```

use cds_graph::{EdgeKind, Graph};

/// ACE(x): average congestion (in percent) of the x% most congested
/// edges. `congestion` holds usage/capacity ratios; at least one edge is
/// always averaged.
///
/// # Panics
///
/// Panics if `congestion` is empty or `x_percent` is not in (0, 100].
pub fn ace(congestion: &[f64], x_percent: f64) -> f64 {
    assert!(!congestion.is_empty(), "ACE of no edges");
    assert!(x_percent > 0.0 && x_percent <= 100.0, "x must be in (0, 100]");
    let mut sorted: Vec<f64> = congestion.to_vec();
    // INVARIANT: congestion values are usage/capacity ratios with positive capacities - finite, so every pair compares.
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite congestion"));
    let k = ((sorted.len() as f64) * x_percent / 100.0).ceil().max(1.0) as usize;
    let k = k.min(sorted.len());
    let avg: f64 = sorted[..k].iter().sum::<f64>() / k as f64;
    avg * 100.0
}

/// The composite ACE4 metric of \[19\]:
/// `(ACE(0.5) + ACE(1) + ACE(2) + ACE(5)) / 4`, in percent.
pub fn ace4(congestion: &[f64]) -> f64 {
    (ace(congestion, 0.5) + ace(congestion, 1.0) + ace(congestion, 2.0) + ace(congestion, 5.0))
        / 4.0
}

/// Per-edge congestion ratios (usage / capacity) of the *wire* edges of
/// a graph — vias are excluded from ACE, matching \[19\].
pub fn wire_congestion(g: &Graph, usage: &[f64]) -> Vec<f64> {
    g.edge_ids()
        .filter(|&e| g.edge(e).kind == EdgeKind::Wire)
        .map(|e| usage[e as usize] / g.edge(e).capacity.max(1e-12))
        .collect()
}

/// Slack before an edge counts as overflowed — absorbs the float noise
/// of capacity calibration, not of usage accumulation (track counts are
/// integer-valued).
pub const OVERFLOW_EPS: f64 = 1e-9;

/// Whether one edge's usage exceeds its capacity.
#[inline]
pub fn edge_overflowed(g: &Graph, usage: &[f64], e: cds_graph::EdgeId) -> bool {
    usage[e as usize] > g.edge(e).capacity + OVERFLOW_EPS
}

/// Number of edges with usage exceeding capacity.
pub fn overflowed_edges(g: &Graph, usage: &[f64]) -> usize {
    g.edge_ids().filter(|&e| edge_overflowed(g, usage, e)).count()
}

/// Per-edge overflow flags (`usage > capacity`), indexed by edge id —
/// the dirty-net scheduler's bulk query: compute once per iteration,
/// then test each net's used edges in O(1).
pub fn overflow_flags(g: &Graph, usage: &[f64]) -> Vec<bool> {
    g.edge_ids().map(|e| edge_overflowed(g, usage, e)).collect()
}

/// Aggregate result metrics of one routing run (one row of Table IV/V).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Worst slack (ps).
    pub ws: f64,
    /// Total negative slack (ps).
    pub tns: f64,
    /// ACE4 (percent).
    pub ace4: f64,
    /// Total wirelength (metres).
    pub wl_m: f64,
    /// Via count.
    pub vias: usize,
    /// Wall time (seconds).
    pub walltime_s: f64,
}

impl RunMetrics {
    /// Formats the row the way the paper's tables do.
    pub fn table_row(&self, chip: &str, run: &str) -> String {
        format!(
            "{chip:>4} {run:>3} {ws:>9.0} {tns:>12.0} {ace4:>7.2} {wl:>9.4} {vias:>10} {wt:>9.1}",
            ws = self.ws,
            tns = self.tns,
            ace4 = self.ace4,
            wl = self.wl_m,
            vias = self.vias,
            wt = self.walltime_s,
        )
    }
}

/// Gcell wirelength to metres given the gcell pitch in µm.
pub fn wirelength_meters(gcells: f64, gcell_um: f64) -> f64 {
    gcells * gcell_um * 1e-6
}

/// Total wirelength (gcells) and via count across a routed forest —
/// one linear pass over the arena's per-tree summary directory, in net
/// order, with nothing materialized. The router's Table IV/V
/// `wirelength`/`vias` columns come from here.
pub fn forest_totals(forest: &cds_topo::RoutedForest) -> (f64, usize) {
    let mut wl_gcells = 0.0f64;
    let mut vias = 0usize;
    for slot in 0..forest.num_slots() {
        wl_gcells += forest.wirelength_gcells(slot);
        vias += forest.vias(slot);
    }
    (wl_gcells, vias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{EdgeAttrs, GraphBuilder};
    use proptest::prelude::*;

    #[test]
    fn ace_of_uniform_is_uniform() {
        let c = vec![0.5; 100];
        for x in [0.5, 1.0, 2.0, 5.0, 100.0] {
            assert!((ace(&c, x) - 50.0).abs() < 1e-9);
        }
        assert!((ace4(&c) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ace_top_percentile_takes_worst() {
        let mut c = vec![0.1; 199];
        c.push(2.0);
        // 0.5% of 200 = 1 edge: the 2.0 one
        assert!((ace(&c, 0.5) - 200.0).abs() < 1e-9);
        // 100%: average = (199*0.1 + 2.0)/200
        let want = (199.0 * 0.1 + 2.0) / 200.0 * 100.0;
        assert!((ace(&c, 100.0) - want).abs() < 1e-9);
    }

    #[test]
    fn wire_congestion_skips_vias() {
        let mut b = GraphBuilder::new(3);
        let mut wire = EdgeAttrs::wire(1.0, 1.0);
        wire.capacity = 2.0;
        b.add_edge(0, 1, wire);
        b.add_edge(1, 2, EdgeAttrs::via(1.0, 1.0, 0));
        let g = b.build();
        let usage = vec![1.0, 5.0];
        let cong = wire_congestion(&g, &usage);
        assert_eq!(cong, vec![0.5]);
        assert_eq!(overflowed_edges(&g, &usage), 1);
        assert_eq!(overflow_flags(&g, &usage), vec![false, true]);
        assert!(!edge_overflowed(&g, &usage, 0));
        assert!(edge_overflowed(&g, &usage, 1));
    }

    #[test]
    fn metres_conversion() {
        // 1000 gcells at 50 µm = 0.05 m
        assert!((wirelength_meters(1000.0, 50.0) - 0.05).abs() < 1e-12);
    }

    proptest! {
        /// ACE is monotone: a smaller percentile never averages lower
        /// congestion than a larger one.
        #[test]
        fn ace_monotone_in_percentile(c in proptest::collection::vec(0.0f64..2.0, 1..100)) {
            let a05 = ace(&c, 0.5);
            let a1 = ace(&c, 1.0);
            let a2 = ace(&c, 2.0);
            let a5 = ace(&c, 5.0);
            let a100 = ace(&c, 100.0);
            prop_assert!(a05 >= a1 - 1e-9);
            prop_assert!(a1 >= a2 - 1e-9);
            prop_assert!(a2 >= a5 - 1e-9);
            prop_assert!(a5 >= a100 - 1e-9);
            let a4 = ace4(&c);
            prop_assert!(a4 >= a100 - 1e-9 && a4 <= a05 + 1e-9);
        }
    }
}
