#![forbid(unsafe_code)]
//! Timing-constrained global routing with a Steiner tree oracle.
//!
//! A laptop-scale reproduction of the routing framework the paper
//! evaluates in (§IV, after Held et al. \[13\]): Lagrangean relaxation of
//! the global timing and routing constraints turns the per-net subproblem
//! into exactly the cost-distance Steiner tree problem of Eq. (1) — edge
//! prices `c(e)` from congestion, sink delay weights `w(t)` from timing
//! criticality. The loop:
//!
//! 1. price every edge from current usage (multiplicative weights,
//!    prices never drop below base cost so A* stays admissible),
//! 2. rip-up & re-route with the configured oracle (L1/SL/PD/CD, §IV-A)
//!    inside a bounding-box window, in parallel — every net in the
//!    first iteration, then (by default) only *dirty* nets: overflow
//!    touchers, negative-slack nets, and nets whose window prices /
//!    weights / budgets drifted beyond [`RouterConfig::price_tol`]
//!    (clean nets keep their routes; see the `schedule` module docs),
//! 3. run STA over the chip's timing chains — incrementally, only the
//!    cones of changed arcs — and update the delay weights from
//!    slacks, repeat.
//!
//! Outputs are the paper's Table IV/V columns: WS, TNS, ACE4, wirelength,
//! vias, walltime, plus [`RouterStats`] (how much rip-up actually ran).
//!
//! # Examples
//!
//! ```no_run
//! use cds_instgen::ChipSpec;
//! use cds_router::{Router, RouterConfig, SteinerMethod};
//!
//! let chip = ChipSpec::small_test(1).generate();
//! let config = RouterConfig { method: SteinerMethod::Cd, ..RouterConfig::default() };
//! let outcome = Router::new(&chip, config).run();
//! println!("WS {:.0}ps TNS {:.0}ps ACE4 {:.1}%", outcome.metrics.ws,
//!          outcome.metrics.tns, outcome.metrics.ace4);
//! ```

pub mod oracle;
pub mod report;
mod schedule;

/// Re-exported so `RouterConfig { queue, .. }` is usable without a
/// direct `cds-core` dependency.
pub use cds_core::QueueKind;
pub use oracle::{
    route_net, CdOracle, L1Oracle, OracleRequest, OracleWorkspace, PdOracle, SlOracle,
    SteinerMethod, SteinerOracle, UnknownMethod,
};

use cds_core::{SessionConfig, SolveStats};
use cds_geom::Point;
use cds_graph::{
    window_bounds, EdgeAttrs, EdgeId, EdgeIndex, EdgeKind, GridWindow, RoutingSurface, ShardGrid,
    WindowView,
};
use cds_instgen::io::doc::{StateNet, StateSection, StateStats, StateTree};
use cds_instgen::Chip;
use cds_metrics::{
    ace4, forest_totals, overflow_flags, wire_congestion, wirelength_meters, RunMetrics,
};
use cds_sta::{IncrementalSta, TimingGraph, TimingReport};
use cds_topo::{BifurcationConfig, NodeKind, RoutedForest, TreeDump, TreeView};
use schedule::{DirtyCause, DirtyTracker};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Cooperative run control shared between a [`Router::run_with`] call
/// and whoever may want to stop it (another thread, a server's
/// `DELETE /jobs/:id` handler, a signal hook).
///
/// Cancellation is checked once per rip-up iteration, *before*
/// iterations `1..`: the first iteration always completes, so a
/// cancelled run still returns a [`RoutingOutcome`] in which every net
/// has a route, final metrics/STA are consistent with the routed state,
/// and [`RouterStats::cancelled`] is set with the per-iteration
/// counters covering exactly the iterations that ran.
#[derive(Debug, Default)]
pub struct RunControl {
    cancelled: AtomicBool,
}

impl RunControl {
    /// A fresh, uncancelled control.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; the run stops before its next rip-up
    /// iteration. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Persistent warm routing state: one [`OracleWorkspace`] plus one
/// scratch [`RoutedForest`] per worker thread, reusable across
/// [`Router::run_with`] calls — and across *chips*: the slabs are
/// cleared, never shrunk, so a long-running server keeps routing jobs
/// without returning arenas to the allocator. Reuse cannot change
/// results: per-net outputs depend only on per-net inputs (the
/// workspace contract of [`SteinerOracle`]), which is the same argument
/// that makes the dynamic work queue deterministic.
#[derive(Debug, Default)]
pub struct WorkerPool {
    workers: Vec<RouteWorker>,
}

impl WorkerPool {
    /// An empty pool; workers are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of warm workers currently held.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no warm workers yet.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Total bytes reserved across all scratch forests (observability).
    pub fn arena_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.forest.arena_bytes()).sum()
    }

    /// Grows the pool to at least `n` workers (never shrinks — a pool
    /// shared across jobs keeps the largest worker set it ever needed).
    fn ensure(&mut self, n: usize) {
        if self.workers.len() < n {
            self.workers.resize_with(n, RouteWorker::default);
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Which Steiner oracle to use.
    pub method: SteinerMethod,
    /// Rip-up & re-route iterations.
    pub iterations: usize,
    /// Worker threads (the paper uses 16).
    pub threads: usize,
    /// Use the calibrated bifurcation penalty (`d_bif > 0` tables) or not.
    pub use_dbif: bool,
    /// λ shielding limit η.
    pub eta: f64,
    /// RNG seed (forwarded to CD's randomized placement).
    pub seed: u64,
    /// Routing window margin around each net's bounding box (gcells).
    pub window_margin: u32,
    /// Congestion price exponent per unit utilization, scaled by the
    /// iteration number.
    pub price_alpha: f64,
    /// Temperature (ps) of the slack → delay-weight update.
    pub weight_tau_ps: f64,
    /// Collect final-iteration instances for the Table I/II comparisons.
    pub harvest: bool,
    /// Route over materialized per-net window graphs instead of the
    /// default zero-copy [`WindowView`]s. The two backends are
    /// bit-identical (pinned by `tests/determinism.rs`); materializing
    /// costs a graph build plus price/delay slices per net and exists as
    /// the reference/validation backend.
    pub materialize_windows: bool,
    /// Incremental rip-up & re-route: after the first full iteration,
    /// reroute only *dirty* nets — a net touching an overflowed edge, a
    /// net with a negative-slack sink, or a net whose window prices /
    /// delay weights / budgets moved beyond [`price_tol`](Self::price_tol)
    /// since it was last routed — while clean nets keep their previous
    /// [`RoutedNet`] verbatim, with incremental usage accounting and
    /// incremental STA. `false` is the full-reroute reference backend
    /// (every net, every iteration), which incremental mode reproduces
    /// bit-identically at `price_tol: 0.0` (pinned by
    /// `tests/incremental.rs`).
    pub incremental: bool,
    /// Dirtiness tolerance of incremental mode: a clean net's window
    /// prices, delay weights and budgets (when the oracle reads them)
    /// must have stayed within this accumulated relative change since
    /// the net was last routed. `0.0` means "rip up on any bit of
    /// change" — exact but rarely skipping, because the sharpening
    /// price schedule (`alpha = price_alpha · iteration`) moves every
    /// used edge's price every iteration by roughly
    /// `exp(utilization) − 1`. The default of `2.0` lets a clean net's
    /// window prices move up to ~3× before a refresh reroute, which on
    /// a converging chip means quiet nets are revisited every few
    /// iterations while overflow/negative-slack nets (the nets that
    /// matter) are ripped up unconditionally every iteration.
    pub price_tol: f64,
    /// Every `recount_every` iterations incremental mode recomputes the
    /// usage vector exactly from all routed nets (and asserts the
    /// incremental accounting matched), bounding float drift from
    /// subtract/add cycles. `0` disables periodic recounts.
    pub recount_every: usize,
    /// Which label queue drives the CD solver's searches
    /// (`queue=heap|bucket`). Both kinds pop the identical total order
    /// `(key, search, vertex)`, so this is purely a performance knob:
    /// results are bit-identical (pinned by `tests/chipdoc.rs`). Only
    /// the CD oracle has a search kernel; the knob is inert for the
    /// plane-topology baselines.
    pub queue: QueueKind,
    /// Batched multi-sink search for the CD oracle: member searches
    /// survive sink–sink merges instead of restarting one labelling
    /// from each new Steiner terminal. Changes which trees are found —
    /// off by default so the pinned goldens stay put.
    pub batch: bool,
    /// Region-parallel routing: partition the die into this many
    /// rectangular shards ([`ShardGrid`]) and schedule each iteration's
    /// rip-up in two phases — nets whose routing window lies entirely
    /// inside one shard are claimed a whole shard at a time
    /// (embarrassingly parallel, good worker locality), then the
    /// boundary-crossing nets run through the plain per-net work queue.
    /// Purely a scheduling knob: per-net results depend only on per-net
    /// inputs and the merge stays in global net order, so results are
    /// bit-identical across shard counts (pinned alongside the thread
    /// pins). `1` (the default) is the unsharded work queue.
    pub shards: usize,
    /// Emit a resumable checkpoint (`cdst/2` `state` section) after
    /// every this many completed rip-up iterations, except after the
    /// final one. `0` (the default) disables checkpointing. A run
    /// resumed from such a checkpoint reproduces the uninterrupted
    /// run's checksum bit-for-bit (see [`Router::run_checkpointed`]).
    pub checkpoint_every: usize,
}

impl RouterConfig {
    /// Sets one knob from a textual `key value` pair — the interpreter
    /// of a `cdst/1` document's `config` records and `cds-cli`'s
    /// `--set` overrides. Keys are the field names of this struct
    /// (`oracle` is accepted as an alias for `method`); booleans accept
    /// `true/false/1/0/on/off`.
    ///
    /// # Errors
    ///
    /// An unknown key or an unparsable value, as a human-readable
    /// message.
    pub fn set_knob(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value {v} for {key}"))
        }
        fn boolean(key: &str, v: &str) -> Result<bool, String> {
            match v {
                "true" | "1" | "on" => Ok(true),
                "false" | "0" | "off" => Ok(false),
                _ => Err(format!("bad boolean {v} for {key} (want true/false/1/0/on/off)")),
            }
        }
        match key {
            "method" | "oracle" => self.method = value.parse().map_err(|e| format!("{e}"))?,
            "iterations" => self.iterations = num(key, value)?,
            "threads" => self.threads = num(key, value)?,
            "use_dbif" => self.use_dbif = boolean(key, value)?,
            "eta" => self.eta = num(key, value)?,
            "seed" => self.seed = num(key, value)?,
            "window_margin" => self.window_margin = num(key, value)?,
            "price_alpha" => self.price_alpha = num(key, value)?,
            "weight_tau_ps" => self.weight_tau_ps = num(key, value)?,
            "harvest" => self.harvest = boolean(key, value)?,
            "materialize_windows" => self.materialize_windows = boolean(key, value)?,
            "incremental" => self.incremental = boolean(key, value)?,
            "price_tol" => self.price_tol = num(key, value)?,
            "recount_every" => self.recount_every = num(key, value)?,
            "queue" => self.queue = value.parse()?,
            "batch" => self.batch = boolean(key, value)?,
            "shards" => self.shards = num(key, value)?,
            "checkpoint_every" => self.checkpoint_every = num(key, value)?,
            _ => return Err(format!("unknown router knob {key}")),
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            method: SteinerMethod::Cd,
            iterations: 5,
            threads: std::thread::available_parallelism().map_or(8, |p| p.get()).min(16),
            use_dbif: false,
            eta: 0.25,
            seed: 0xC0FFEE,
            window_margin: 6,
            price_alpha: 1.0,
            weight_tau_ps: 250.0,
            harvest: false,
            materialize_windows: false,
            incremental: true,
            price_tol: 2.0,
            recount_every: 4,
            queue: QueueKind::default(),
            batch: false,
            shards: 1,
            checkpoint_every: 0,
        }
    }
}

/// Result of routing one net (window-independent owned summary) — the
/// compatibility form returned by [`Router::route_one`]. Inside
/// [`Router::run`] nothing is materialized per net: every tree and
/// summary span lives in the [`RoutingOutcome::forest`] arena, read
/// through [`NetView`]s.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// Wirelength in gcells.
    pub wirelength_gcells: f64,
    /// Vias used.
    pub vias: usize,
    /// Delay per sink (ps), including λ penalties.
    pub sink_delays: Vec<f64>,
    /// Global edge ids used, with the tracks each use consumes.
    pub used_edges: Vec<(EdgeId, f64)>,
}

/// Borrowed per-net summary over the outcome's forest: the same fields
/// as [`RoutedNet`], zero-copy.
#[derive(Debug, Clone, Copy)]
pub struct NetView<'a> {
    /// Wirelength in gcells.
    pub wirelength_gcells: f64,
    /// Vias used.
    pub vias: usize,
    /// Delay per sink (ps), including λ penalties.
    pub sink_delays: &'a [f64],
    /// Global edge ids used, with the tracks each use consumes.
    pub used_edges: &'a [(EdgeId, f64)],
    /// The routed tree itself (global edge ids on both window backends).
    pub tree: TreeView<'a>,
}

/// Sums every net's used edges into `out` (cleared first) — the one
/// definition of "usage" that the full sweep, the periodic recount,
/// and the accounting tests all share. Walks the forest's contiguous
/// used-edge spans in net order.
fn accumulate_usage(forest: &RoutedForest, out: &mut [f64]) {
    out.fill(0.0);
    for slot in 0..forest.num_slots() {
        for &(e, tracks) in forest.used_edges(slot) {
            out[e as usize] += tracks;
        }
    }
}

/// Decodes a serialized checkpoint tree into the forest's structural
/// dump form (`cdst/2` kind codes: `-1` root, `-2` Steiner, `>= 0` the
/// sink index). Importing the dump reproduces node ids, CSR layout and
/// enumeration order bit-for-bit.
fn state_tree_to_dump(st: &StateTree) -> TreeDump {
    TreeDump {
        kinds: st
            .kinds
            .iter()
            .map(|&k| match k {
                -1 => NodeKind::Root,
                -2 => NodeKind::Steiner,
                j if j >= 0 => NodeKind::Sink(j as usize),
                // INVARIANT: validate_state_tree rejected any code below -2 at parse time.
                k => panic!("bad checkpoint node kind code {k}"),
            })
            .collect(),
        vertices: st.vertices.clone(),
        parents: st.parents.clone(),
        path_len: st.path_len.clone(),
        path_edges: st.path_edges.clone(),
    }
}

/// The inverse of [`state_tree_to_dump`], plus the summary spans the
/// dump does not carry (delays, wirelength, vias).
fn dump_to_state_tree(dump: TreeDump, sink_delays: &[f64], wl: f64, vias: usize) -> StateTree {
    StateTree {
        kinds: dump
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::Root => -1,
                NodeKind::Steiner => -2,
                NodeKind::Sink(j) => *j as i64,
            })
            .collect(),
        vertices: dump.vertices,
        parents: dump.parents,
        path_len: dump.path_len,
        path_edges: dump.path_edges,
        sink_delays: sink_delays.to_vec(),
        wirelength_gcells: wl,
        vias: vias as u64,
    }
}

/// A cost-distance instance captured during routing, for the Table I/II
/// apples-to-apples comparisons ("instances … as they were generated
/// during timing-constrained global routing").
#[derive(Debug, Clone)]
pub struct HarvestedInstance {
    /// Net index into the chip.
    pub net: usize,
    /// The delay weights this net's *committed* route was produced
    /// with: the values in effect when the net was last ripped up —
    /// the final iteration's pre-update weights in full-reroute mode,
    /// or (in incremental mode) the weights of whichever iteration
    /// produced the kept route. Never the output of the closing slack
    /// update, which routes nothing.
    pub weights: Vec<f64>,
    /// The SL delay budgets in effect when the net was last ripped up;
    /// empty when no budgets existed yet (single-iteration runs, where
    /// routing precedes the first STA-derived budgets).
    pub budgets: Vec<f64>,
}

/// Work accounting of one router run — how much rip-up the dirty-net
/// scheduler actually performed (full-reroute runs report every net in
/// every iteration), plus per-iteration wall clock and peak arena
/// footprint.
///
/// Equality compares only the *deterministic* fields: wall-clock times
/// ([`iter_wall_s`](Self::iter_wall_s)) and arena capacities
/// ([`peak_arena_bytes`](Self::peak_arena_bytes), a function of
/// allocator growth and worker count) are observability counters, not
/// part of the reproducibility contract.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Nets rerouted in each iteration (`[0]` is always the full sweep).
    pub rerouted_per_iter: Vec<usize>,
    /// Nets routed because they had never been routed (includes every
    /// net of every full-reroute iteration).
    pub dirty_fresh: usize,
    /// Reroutes caused by a used edge exceeding capacity.
    pub dirty_overflow: usize,
    /// Reroutes caused by a negative-slack sink.
    pub dirty_timing: usize,
    /// Reroutes caused by window price drift beyond tolerance.
    pub dirty_price: usize,
    /// Reroutes caused by delay-weight drift beyond tolerance.
    pub dirty_weight: usize,
    /// Reroutes caused by budget drift beyond tolerance.
    pub dirty_budget: usize,
    /// Exact usage recounts performed (drift bounding).
    pub usage_recounts: usize,
    /// Timing nodes re-propagated by the incremental STA engine
    /// (`0` in full-reroute mode, which re-analyzes the whole DAG).
    pub sta_nodes_retimed: u64,
    /// Search-kernel labels settled (popped and expanded) across every
    /// oracle call of the run. Like the rest of the kernel counters
    /// below this is an order-independent integer sum, so it is
    /// deterministic across worker counts and part of `==`. The
    /// plane-topology baselines have no search kernel and leave all
    /// five counters at zero.
    pub kernel_settled: u64,
    /// Search-kernel labels pushed into the queue.
    pub kernel_pushed: u64,
    /// Search-kernel labels popped (settled plus stale lazy deletions).
    pub kernel_popped: u64,
    /// Pushes that improved an already-finite label (decrease-keys).
    pub kernel_decreased: u64,
    /// Empty buckets scanned by the bucket queue's cursor (`0` under
    /// `queue=heap`).
    pub kernel_bucket_scans: u64,
    /// Wall-clock seconds per rip-up iteration (excluded from `==`).
    pub iter_wall_s: Vec<f64>,
    /// Peak bytes reserved across all forest arenas — the chip-wide
    /// routed forest plus every worker's scratch forest (excluded from
    /// `==`).
    pub peak_arena_bytes: u64,
    /// Whether the run was stopped early by [`RunControl::cancel`];
    /// the per-iteration counters then cover exactly the iterations
    /// that completed before the cancellation point.
    pub cancelled: bool,
}

impl PartialEq for RouterStats {
    /// Deterministic fields only (see the type docs).
    fn eq(&self, o: &Self) -> bool {
        self.rerouted_per_iter == o.rerouted_per_iter
            && self.dirty_fresh == o.dirty_fresh
            && self.dirty_overflow == o.dirty_overflow
            && self.dirty_timing == o.dirty_timing
            && self.dirty_price == o.dirty_price
            && self.dirty_weight == o.dirty_weight
            && self.dirty_budget == o.dirty_budget
            && self.usage_recounts == o.usage_recounts
            && self.sta_nodes_retimed == o.sta_nodes_retimed
            && self.kernel_settled == o.kernel_settled
            && self.kernel_pushed == o.kernel_pushed
            && self.kernel_popped == o.kernel_popped
            && self.kernel_decreased == o.kernel_decreased
            && self.kernel_bucket_scans == o.kernel_bucket_scans
            && self.cancelled == o.cancelled
    }
}

impl RouterStats {
    /// Total oracle calls across all iterations.
    pub fn total_rerouted(&self) -> usize {
        self.rerouted_per_iter.iter().sum()
    }

    /// Rip-up iterations that actually ran (equals the configured
    /// iteration count unless the run was cancelled).
    pub fn iterations_completed(&self) -> usize {
        self.rerouted_per_iter.len()
    }

    /// Sum of the per-iteration wall clocks (the routing loop's share
    /// of the total wall time).
    pub fn route_wall_s(&self) -> f64 {
        self.iter_wall_s.iter().sum()
    }

    pub(crate) fn add_kernel(&mut self, s: SolveStats) {
        self.kernel_settled += s.settled as u64;
        self.kernel_pushed += s.pushed as u64;
        self.kernel_popped += s.popped as u64;
        self.kernel_decreased += s.decreased as u64;
        self.kernel_bucket_scans += s.bucket_scans;
    }

    pub(crate) fn note(&mut self, cause: DirtyCause) {
        match cause {
            DirtyCause::Fresh => self.dirty_fresh += 1,
            DirtyCause::Overflow => self.dirty_overflow += 1,
            DirtyCause::Timing => self.dirty_timing += 1,
            DirtyCause::Price => self.dirty_price += 1,
            DirtyCause::Weight => self.dirty_weight += 1,
            DirtyCause::Budget => self.dirty_budget += 1,
        }
    }
}

/// Everything a router run produces.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// The Table IV/V row.
    pub metrics: RunMetrics,
    /// Final timing report.
    pub timing: TimingReport,
    /// Final edge usage (tracks) per global edge.
    pub usage: Vec<f64>,
    /// Edge prices implied by the final usage history — the vector one
    /// more iteration would route on, recomputed *after* the loop so it
    /// is consistent with the returned `usage`. (Earlier versions
    /// returned the stale vector the last iteration had routed on,
    /// which was derived from the previous iteration's usage.) Table
    /// harness replays of harvested instances happen under this
    /// post-loop vector — identical for all compared methods, which is
    /// what the apples-to-apples comparison requires.
    pub prices: Vec<f64>,
    /// Every net's routed tree and summary spans, in net order, in one
    /// struct-of-arrays arena (see [`cds_topo::forest`]); read per-net
    /// data through [`nets`](Self::nets) / [`net`](Self::net), or
    /// materialize an owned [`RoutedNet`] with
    /// [`routed_net`](Self::routed_net).
    pub forest: RoutedForest,
    /// Harvested instances (nets with ≥ 3 sinks), when requested: each
    /// net's committed route with the weights/budgets it was last
    /// ripped up with — the final iteration's in full-reroute mode, or
    /// whichever iteration produced the kept route in incremental mode
    /// (see [`HarvestedInstance`]).
    pub harvest: Vec<HarvestedInstance>,
    /// Rip-up work accounting.
    pub stats: RouterStats,
}

impl RoutingOutcome {
    /// Number of routed nets (forest slots).
    pub fn num_nets(&self) -> usize {
        self.forest.num_slots()
    }

    /// Borrowed summary of net `i` (zero-copy over the forest).
    pub fn net(&self, i: usize) -> NetView<'_> {
        NetView {
            wirelength_gcells: self.forest.wirelength_gcells(i),
            vias: self.forest.vias(i),
            sink_delays: self.forest.sink_delays(i),
            used_edges: self.forest.used_edges(i),
            tree: self.forest.view(i),
        }
    }

    /// Borrowed summaries of all nets, in net order.
    pub fn nets(&self) -> impl Iterator<Item = NetView<'_>> {
        (0..self.forest.num_slots()).map(|i| self.net(i))
    }

    /// Owned [`RoutedNet`] materialization of net `i` (compat bridge).
    pub fn routed_net(&self, i: usize) -> RoutedNet {
        RoutedNet {
            wirelength_gcells: self.forest.wirelength_gcells(i),
            vias: self.forest.vias(i),
            sink_delays: self.forest.sink_delays(i).to_vec(),
            used_edges: self.forest.used_edges(i).to_vec(),
        }
    }

    /// FNV-1a checksum over the bit-exact routing result: the quality
    /// metrics (wall time excluded), every net's tree (edges, tracks,
    /// sink delays, via/wirelength accounting), the usage vector, the
    /// final slacks, and — when instance harvesting ran — the harvested
    /// weights/budgets archive, so `cds-cli verify` also catches
    /// harvest drift. Runs without harvesting produce exactly the
    /// historical (pre-harvest-folding) value, which is what the pinned
    /// fixture goldens compare against. Deterministic runs — any thread
    /// count, either window backend — produce the same checksum.
    pub fn checksum(&self) -> u64 {
        fn eat(h: &mut u64, x: u64) {
            *h ^= x;
            *h = h.wrapping_mul(0x100000001b3);
        }
        let mut h = 0xcbf29ce484222325u64;
        eat(&mut h, self.metrics.ws.to_bits());
        eat(&mut h, self.metrics.tns.to_bits());
        eat(&mut h, self.metrics.ace4.to_bits());
        eat(&mut h, self.metrics.wl_m.to_bits());
        eat(&mut h, self.metrics.vias as u64);
        for i in 0..self.forest.num_slots() {
            eat(&mut h, self.forest.wirelength_gcells(i).to_bits());
            eat(&mut h, self.forest.vias(i) as u64);
            for &d in self.forest.sink_delays(i) {
                eat(&mut h, d.to_bits());
            }
            for &(e, tracks) in self.forest.used_edges(i) {
                eat(&mut h, u64::from(e) + 1);
                eat(&mut h, tracks.to_bits());
            }
        }
        for &u in &self.usage {
            eat(&mut h, u.to_bits());
        }
        for &s in &self.timing.slack {
            eat(&mut h, s.to_bits());
        }
        if !self.harvest.is_empty() {
            eat(&mut h, self.harvest.len() as u64);
            for inst in &self.harvest {
                eat(&mut h, inst.net as u64 + 1);
                for &w in &inst.weights {
                    eat(&mut h, w.to_bits());
                }
                // separator keeps (weights | budgets) framing unambiguous
                eat(&mut h, u64::MAX);
                for &b in &inst.budgets {
                    eat(&mut h, b.to_bits());
                }
            }
        }
        h
    }
}

/// The timing-constrained global router.
///
/// Dispatches every per-net routing call through a
/// [`SteinerOracle`] trait object: [`new`](Router::new) resolves the
/// configured [`SteinerMethod`] to its built-in oracle, and
/// [`with_oracle`](Router::with_oracle) accepts any external
/// implementation — the router itself never inspects the method again.
pub struct Router<'a> {
    chip: &'a Chip,
    config: RouterConfig,
    /// Global (endpoints, flavour) → edge id lookup; only the
    /// materialized-window backend needs it.
    edge_index: Option<EdgeIndex>,
    /// Chip-wide per-edge delays, computed once — window views index
    /// them directly with global edge ids, so no per-net delay vector
    /// is ever built.
    delays: Vec<f64>,
    oracle: Box<dyn SteinerOracle>,
}

impl<'a> Router<'a> {
    /// Prepares a router for `chip` with the built-in oracle named by
    /// `config.method`.
    pub fn new(chip: &'a Chip, config: RouterConfig) -> Self {
        let defaults = RouterConfig::default();
        let oracle: Box<dyn SteinerOracle> = if config.method == SteinerMethod::Cd
            && (config.queue != defaults.queue || config.batch != defaults.batch)
        {
            // The static singleton behind `method.oracle()` is baked
            // with the default session config; kernel knobs need a
            // per-router oracle.
            Box::new(CdOracle::with_config(SessionConfig {
                queue: config.queue,
                batch: config.batch,
                ..SessionConfig::DEFAULT
            }))
        } else {
            Box::new(config.method.oracle())
        };
        Self::with_oracle(chip, config, oracle)
    }

    /// Prepares a router that routes every net with the given oracle
    /// (`config.method` is ignored for routing and kept only for
    /// labels).
    pub fn with_oracle(
        chip: &'a Chip,
        config: RouterConfig,
        oracle: Box<dyn SteinerOracle>,
    ) -> Self {
        let edge_index = config.materialize_windows.then(|| EdgeIndex::new(&chip.grid));
        let delays = chip.grid.graph().delays();
        Router { chip, config, edge_index, delays, oracle }
    }

    /// The oracle this router dispatches to.
    pub fn oracle(&self) -> &dyn SteinerOracle {
        self.oracle.as_ref()
    }

    /// The bifurcation config this run uses.
    pub fn bif(&self) -> BifurcationConfig {
        if self.config.use_dbif {
            BifurcationConfig::new(self.chip.delay_model.dbif_ps(), self.config.eta)
        } else {
            BifurcationConfig::ZERO
        }
    }

    /// Runs the full rip-up & re-route loop.
    ///
    /// With [`RouterConfig::incremental`] (the default), iterations
    /// after the first rip up only the nets the dirty-net scheduler
    /// marks (see [`RouterConfig::price_tol`]); clean nets keep their
    /// previous [`RoutedNet`] verbatim, usage is maintained by
    /// subtracting a ripped net's old edges and adding its new ones
    /// (with periodic exact recounts), and timing is refreshed by
    /// re-propagating only the cones of the arcs that changed
    /// ([`IncrementalSta`]). Determinism is preserved: the schedule is
    /// derived from shared per-iteration state, every per-net result
    /// depends only on that net's inputs, and results are identical
    /// across thread counts and window backends.
    pub fn run(&self) -> RoutingOutcome {
        self.run_with(&mut WorkerPool::new(), &RunControl::new(), &mut |_, _| {})
    }

    /// [`run`](Self::run) with externally-owned warm state and
    /// cooperative control — the form a long-running service drives:
    ///
    /// * `pool` supplies the per-thread oracle workspaces and scratch
    ///   forests, kept warm across calls (and across different chips);
    ///   [`run`](Self::run) is exactly this with a throwaway pool.
    ///   Reuse is bit-identical to a fresh pool.
    /// * `ctrl` is polled between rip-up iterations; see [`RunControl`]
    ///   for the partial-result contract of a cancelled run.
    /// * `progress` is called after every completed iteration with the
    ///   iteration index and the stats accumulated so far (its
    ///   `rerouted_per_iter`/`iter_wall_s` tails are that iteration's
    ///   entries) — a server's status endpoint reads its snapshots.
    pub fn run_with(
        &self,
        pool: &mut WorkerPool,
        ctrl: &RunControl,
        progress: &mut dyn FnMut(usize, &RouterStats),
    ) -> RoutingOutcome {
        self.run_checkpointed(pool, ctrl, progress, None, &mut |_, _| {})
    }

    /// [`run_with`](Self::run_with) plus the checkpoint/resume surface:
    ///
    /// * with [`RouterConfig::checkpoint_every`] set, `on_checkpoint`
    ///   receives `(completed_iterations, state)` after every K-th
    ///   completed rip-up iteration (never after the final one — a
    ///   finished run has nothing to resume). The [`StateSection`] is
    ///   the `cdst/2` `state` payload: ledgers, per-net scheduler
    ///   state, every routed tree, and the deterministic work counters.
    /// * with `resume` set, the loop restores that state and continues
    ///   from its absolute iteration number — preserving the price
    ///   schedule (`alpha = price_alpha · iteration`), the recount
    ///   phase, and the dirty tracker's references — so the resumed
    ///   run's outcome checksum is bit-for-bit the uninterrupted run's
    ///   (pinned by `checkpoint_resume_reproduces_the_uninterrupted_checksum`).
    ///
    /// # Panics
    ///
    /// Panics if `resume` does not belong to this chip/config (ledger
    /// or arity mismatch). Parse-level validation (`cdst/2` documents)
    /// catches malformed state before it gets here.
    pub fn run_checkpointed(
        &self,
        pool: &mut WorkerPool,
        ctrl: &RunControl,
        progress: &mut dyn FnMut(usize, &RouterStats),
        resume: Option<&StateSection>,
        on_checkpoint: &mut dyn FnMut(usize, StateSection),
    ) -> RoutingOutcome {
        let start = Instant::now();
        let chip = self.chip;
        let g = chip.grid.graph();
        let m = g.num_edges();
        let n = chip.nets.len();
        let base: Vec<f64> = g.base_costs();
        let bif = self.bif();
        let incremental = self.config.incremental;

        // timing: the DAG skeleton, analyzed fully every iteration in
        // the reference path, or held by the incremental engine
        let (tg_template, net_nodes) = self.build_timing_graph();
        let mut tg = tg_template;

        // Per-sink delay weights (Lagrange multipliers). The floor keeps
        // every sink's delay weakly priced — TNS counts all endpoints, so
        // a zero-weight sink would otherwise be free to meander.
        let mut weights: Vec<Vec<f64>> =
            chip.nets.iter().map(|n| vec![0.05; n.sinks.len()]).collect();
        // per-sink budgets for SL (None before the first STA)
        let mut budgets: Vec<Option<Vec<f64>>> = vec![None; n];

        let mut usage = vec![0.0f64; m];
        let mut usage_hist = vec![0.0f64; m];
        // every net's routed tree + summary spans, double-buffered;
        // replaced spans become garbage and are compacted when they
        // outgrow the live data
        let mut forest = RoutedForest::with_slots(n);
        let mut stats = RouterStats::default();
        let mut tracker = incremental
            .then(|| DirtyTracker::new(chip, self.config.window_margin, self.config.price_tol));

        // restore a checkpoint: ledgers and weights verbatim, trees by
        // structural import (attachment order reproduces node ids and
        // enumeration bit-for-bit), used-edge spans recomputed from the
        // imported paths by the same rule the route path uses
        let start_iter = resume.map_or(0, |s| s.iteration);
        if let Some(s) = resume {
            assert!(
                s.iteration >= 1 && s.usage.len() == m && s.nets.len() == n,
                "resume state does not match this chip"
            );
            usage.copy_from_slice(&s.usage);
            usage_hist.copy_from_slice(&s.usage_hist);
            for (i, sn) in s.nets.iter().enumerate() {
                weights[i].clone_from(&sn.weights);
                budgets[i].clone_from(&sn.budgets);
            }
            for &(id, ref st) in &s.trees {
                forest.import_tree(id, &state_tree_to_dump(st));
                forest.set_sink_delays(id, &st.sink_delays);
                forest.set_used_from_paths(id, |e| (e, Self::tracks(g.edge(e))));
                forest.set_summary(id, st.wirelength_gcells, st.vias as usize);
            }
            stats.rerouted_per_iter.clone_from(&s.stats.rerouted_per_iter);
            [
                stats.dirty_fresh,
                stats.dirty_overflow,
                stats.dirty_timing,
                stats.dirty_price,
                stats.dirty_weight,
                stats.dirty_budget,
            ] = s.stats.dirty;
            stats.usage_recounts = s.stats.usage_recounts;
            stats.sta_nodes_retimed = s.stats.sta_nodes_retimed as u64;
            [
                stats.kernel_settled,
                stats.kernel_pushed,
                stats.kernel_popped,
                stats.kernel_decreased,
                stats.kernel_bucket_scans,
            ] = s.stats.kernel;
            // restored iterations have no wall-clock record; pad so the
            // per-iteration arrays stay aligned with the counters
            stats.iter_wall_s.resize(s.iteration, 0.0);
            // arcs carry exactly the kept routes' delays (every arc was
            // last written by the iteration that routed its net, whose
            // route the forest holds), so rebuilding them from the
            // forest reproduces the engine's timing state
            for i in 0..n {
                tg.set_arc_delays(&net_nodes.sink_arc[i], forest.sink_delays(i));
            }
        }

        let mut sta = incremental.then(|| IncrementalSta::new(&tg));
        // full-reroute mode's report; incremental mode always reads the
        // engine's (which analyzed fully at construction)
        let mut report = (!incremental).then(|| tg.analyze());
        // continuity of the cumulative retime counter across a resume:
        // the engine's deltas after the checkpoint are identical in the
        // resumed and uninterrupted runs (pure function of arc changes),
        // so checkpoint value + post-construction deltas matches
        let (retimed_base, retimed_initial) = match resume {
            Some(s) => {
                (s.stats.sta_nodes_retimed as u64, sta.as_ref().map_or(0, |e| e.total_retimed()))
            }
            None => (0, 0),
        };
        if let (Some(s), Some(t)) = (resume, &mut tracker) {
            t.prime_prices(&s.prices);
            for (i, sn) in s.nets.iter().enumerate() {
                t.restore_net(i, sn.routed, sn.drift, &sn.weight_ref, sn.budget_ref.as_deref());
            }
            // the overflow/negative-slack flags are derived state:
            // recompute them from the restored usage and timing exactly
            // as the checkpointing iteration's tail did
            let overflowed = overflow_flags(g, &usage);
            t.set_overflow_touch(&forest, &overflowed);
            if let Some(engine) = &sta {
                t.set_neg_slack(&net_nodes.sink_node, engine.report());
            }
        }

        // weights/budgets as routed by the *final* iteration, for harvest
        let mut harvest_weights: Vec<Vec<f64>> = Vec::new();
        let mut harvest_budgets: Vec<Option<Vec<f64>>> = Vec::new();
        if self.config.harvest {
            harvest_weights = weights.clone();
            harvest_budgets = budgets.clone();
        }

        // one warm worker per thread — oracle workspace plus a scratch
        // forest the worker routes into — reused across nets, rip-up
        // iterations, and (through the caller's pool) whole jobs;
        // results are merged into the chip-wide forest in deterministic
        // net order by span copies
        pool.ensure(self.config.threads.max(1));
        let workers = &mut pool.workers;

        for iter in start_iter..self.config.iterations {
            // cooperative cancellation point: iteration 0 always runs,
            // so even a cancelled outcome has every net routed
            if iter > 0 && ctrl.is_cancelled() {
                stats.cancelled = true;
                break;
            }
            let iter_start = Instant::now();
            // 1. prices from damped usage (history smoothing avoids the
            //    herding oscillation of cost-seeking oracles on frozen
            //    prices)
            let prices = self.compute_prices(&base, &usage_hist, iter);

            // 1b. schedule: which nets this iteration rips up. The first
            //     iteration (and every full-reroute iteration) takes all
            //     of them; afterwards only dirty nets.
            let dirty: Vec<usize> = match &mut tracker {
                Some(t) if iter > 0 => {
                    t.accumulate_drift(&chip.grid, &prices);
                    let budget_sensitive = self.oracle.uses_budgets();
                    (0..n)
                        .filter(|&i| {
                            match t.dirty_cause(
                                i,
                                &weights[i],
                                budgets[i].as_deref(),
                                budget_sensitive,
                            ) {
                                Some(cause) => {
                                    stats.note(cause);
                                    true
                                }
                                None => false,
                            }
                        })
                        .collect()
                }
                _ => {
                    if let Some(t) = &mut tracker {
                        t.prime_prices(&prices);
                    }
                    stats.dirty_fresh += n;
                    (0..n).collect()
                }
            };
            stats.rerouted_per_iter.push(dirty.len());

            // 2. route the scheduled nets in parallel on frozen prices
            //    (into per-worker scratch forests), then merge into the
            //    chip-wide forest in deterministic net order
            let (placements, kernel) =
                self.route_ids_into(&dirty, &prices, &weights, &budgets, bif, workers);
            stats.add_kernel(kernel);

            // 3. usage accounting: full sweeps recompute from scratch
            //    (the reference rule); partial sweeps subtract each
            //    ripped net's old span and add its new one — both walk
            //    contiguous span memory
            if dirty.len() == n {
                forest.clear_trees();
                for (k, &(wi, wslot)) in placements.iter().enumerate() {
                    forest.copy_tree_from(&workers[wi].forest, wslot, dirty[k]);
                }
                accumulate_usage(&forest, &mut usage);
            } else {
                for (k, &(wi, wslot)) in placements.iter().enumerate() {
                    let i = dirty[k];
                    for &(e, tracks) in forest.used_edges(i) {
                        usage[e as usize] -= tracks;
                    }
                    forest.copy_tree_from(&workers[wi].forest, wslot, i);
                    for &(e, tracks) in forest.used_edges(i) {
                        usage[e as usize] += tracks;
                    }
                }
                // periodic exact recount bounds float drift from the
                // subtract/add cycles and asserts the incremental
                // accounting stayed consistent
                if self.config.recount_every > 0 && (iter + 1) % self.config.recount_every == 0 {
                    let mut recount = vec![0.0f64; m];
                    accumulate_usage(&forest, &mut recount);
                    for (e, (&r, &u)) in recount.iter().zip(&usage).enumerate() {
                        assert!(
                            (r - u).abs() <= 1e-6 * r.abs().max(u.abs()).max(1.0),
                            "incremental usage drifted at edge {e}: {u} vs recount {r}"
                        );
                    }
                    usage = recount;
                    stats.usage_recounts += 1;
                }
            }

            // snapshot the inputs the ripped nets were routed with (the
            // dirtiness reference for later iterations), and flag nets
            // now touching overflowed edges
            if let Some(t) = &mut tracker {
                for &i in &dirty {
                    t.note_routed(i, &weights[i], budgets[i].as_deref());
                }
                let overflowed = overflow_flags(g, &usage);
                t.set_overflow_touch(&forest, &overflowed);
            }

            // blend into the pricing history
            for (h, &u) in usage_hist.iter_mut().zip(&usage) {
                *h = if iter == 0 { u } else { 0.5 * *h + 0.5 * u };
            }

            // 4. timing update: the reference path rewrites every arc
            //    and re-analyzes the DAG; the incremental engine takes
            //    only the ripped nets' arcs and re-propagates their cones
            match &mut sta {
                Some(s) => {
                    for &i in &dirty {
                        s.set_arc_delays(&net_nodes.sink_arc[i], forest.sink_delays(i));
                    }
                    s.refresh();
                    stats.sta_nodes_retimed = retimed_base + (s.total_retimed() - retimed_initial);
                }
                None => {
                    for i in 0..n {
                        tg.set_arc_delays(&net_nodes.sink_arc[i], forest.sink_delays(i));
                    }
                    report = Some(tg.analyze());
                }
            }
            // this iteration's report — borrowed from the engine in
            // incremental mode, no per-iteration clone
            let rep: &TimingReport = match (&sta, &report) {
                (Some(s), _) => s.report(),
                (None, Some(r)) => r,
                // INVARIANT: full mode computed report before the loop and incremental mode owns an sta, so one arm above always matches.
                (None, None) => unreachable!("full mode analyzed above"),
            };
            if let Some(t) = &mut tracker {
                t.set_neg_slack(&net_nodes.sink_node, rep);
            }

            // the final iteration's weights/budgets are harvested *as
            // routed*, before the closing slack update below rewrites
            // them (the update's output never routes anything)
            if self.config.harvest && iter + 1 == self.config.iterations {
                harvest_weights.clone_from(&weights);
                harvest_budgets.clone_from(&budgets);
            }

            // 5. weight & budget updates from slacks
            for (i, net) in chip.nets.iter().enumerate() {
                let mut b = Vec::with_capacity(net.sinks.len());
                // j indexes three parallel arrays; an iterator zip would
                // only obscure that
                #[allow(clippy::needless_range_loop)]
                for j in 0..net.sinks.len() {
                    let node = net_nodes.sink_node[i][j];
                    let slack = rep.slack[node as usize];
                    if slack.is_finite() {
                        let f = (-slack / self.config.weight_tau_ps).exp();
                        weights[i][j] = (weights[i][j] * f).clamp(1e-3, 2.0);
                    }
                    // absolute budget: what timing actually allows this
                    // sink — achieved delay plus its slack (floored at
                    // the direct-connection delay, which is always
                    // achievable)
                    let direct = net.root.l1(net.sinks[j]) as f64 * chip.grid.min_delay_per_gcell()
                        + 2.0 * chip.grid.spec().via_delay; // true lower bound
                    let achieved = forest.sink_delays(i)[j];
                    let allowed = if slack.is_finite() { achieved + slack } else { f64::MAX / 4.0 };
                    b.push(allowed.max(direct));
                }
                budgets[i] = Some(b);
            }

            // arena upkeep: compact once replaced spans outweigh live
            // data (deterministic — a function of routed data only),
            // then record this iteration's observability counters
            if forest.garbage_ratio() > 0.5 {
                forest.compact();
            }
            let arena =
                forest.arena_bytes() + workers.iter().map(|w| w.forest.arena_bytes()).sum::<u64>();
            stats.peak_arena_bytes = stats.peak_arena_bytes.max(arena);
            stats.iter_wall_s.push(iter_start.elapsed().as_secs_f64());
            progress(iter, &stats);

            // periodic resumable checkpoint — after the weight/budget
            // update so the state is exactly the loop's carry into the
            // next iteration; the final iteration is skipped (a
            // finished run has nothing to resume)
            if self.config.checkpoint_every > 0
                && (iter + 1) % self.config.checkpoint_every == 0
                && iter + 1 < self.config.iterations
            {
                let state = self.export_state(
                    iter + 1,
                    &stats,
                    &usage,
                    &usage_hist,
                    if incremental { &prices } else { &[] },
                    &weights,
                    &budgets,
                    &forest,
                    tracker.as_ref(),
                );
                on_checkpoint(iter + 1, state);
            }
        }

        // final usage/price consistency: the returned prices are
        // recomputed from the final usage history, so they correspond to
        // the returned usage rather than to the previous iteration's
        // (cancelled runs price at the iteration they actually reached)
        let prices = self.compute_prices(&base, &usage_hist, stats.iterations_completed());
        let report = match &sta {
            Some(s) => s.report().clone(),
            // INVARIANT: sta is None exactly in full mode, which analyzed the DAG into report before the loop.
            None => report.expect("full mode analyzed the DAG before the loop"),
        };

        // final metrics, straight off the forest's summary directory
        let cong = wire_congestion(g, &usage);
        let (wl_gcells, vias) = forest_totals(&forest);
        let metrics = RunMetrics {
            ws: report.ws,
            tns: report.tns,
            ace4: ace4(&cong),
            wl_m: wirelength_meters(wl_gcells, chip.grid.spec().gcell_um),
            vias,
            walltime_s: start.elapsed().as_secs_f64(),
        };
        let harvest = if self.config.harvest {
            chip.nets
                .iter()
                .enumerate()
                .filter(|(_, n)| n.sinks.len() >= 3)
                .map(|(i, _)| {
                    // the inputs the *kept* route was actually produced
                    // with: the tracker's last-routed snapshot in
                    // incremental mode (a clean net's route may predate
                    // the final iteration), the pre-update
                    // final-iteration values in full-reroute mode
                    let (weights, budgets) = match &tracker {
                        Some(t) if t.has_routed(i) => (
                            t.last_routed_weights(i).to_vec(),
                            t.last_routed_budgets(i).map_or_else(Vec::new, <[f64]>::to_vec),
                        ),
                        _ => (
                            harvest_weights[i].clone(),
                            harvest_budgets[i].clone().unwrap_or_default(),
                        ),
                    };
                    HarvestedInstance { net: i, weights, budgets }
                })
                .collect()
        } else {
            Vec::new()
        };
        RoutingOutcome { metrics, timing: report, usage, prices, forest, harvest, stats }
    }

    /// Routes one net with a built-in method and a throwaway workspace —
    /// the convenience form of [`route_one_with`](Self::route_one_with)
    /// used by the table harnesses (which must present *identical*
    /// instances to all four methods).
    pub fn route_one(
        &self,
        net_id: usize,
        method: SteinerMethod,
        prices: &[f64],
        weights: &[f64],
        budgets: Option<&[f64]>,
        bif: BifurcationConfig,
    ) -> (RoutedNet, f64) {
        self.route_one_with(
            net_id,
            method.oracle(),
            prices,
            weights,
            budgets,
            bif,
            &mut OracleWorkspace::new(),
        )
    }

    /// Routes one net through an explicit oracle and workspace; shared
    /// by the main loop's worker threads and every harness.
    ///
    /// The default backend routes over a zero-copy [`WindowView`] of the
    /// global grid: no per-net graph is materialized, and `prices` plus
    /// the router's precomputed global delays are passed to the oracle
    /// unsliced (window edge ids *are* global edge ids). With
    /// [`RouterConfig::materialize_windows`] the net is routed over a
    /// materialized [`GridWindow`] instead, with prices/delays sliced
    /// into per-worker buffers — bit-identical results, kept as the
    /// reference backend.
    #[allow(clippy::too_many_arguments)]
    pub fn route_one_with(
        &self,
        net_id: usize,
        oracle: &dyn SteinerOracle,
        prices: &[f64],
        weights: &[f64],
        budgets: Option<&[f64]>,
        bif: BifurcationConfig,
        ws: &mut OracleWorkspace,
    ) -> (RoutedNet, f64) {
        let mut forest = RoutedForest::with_slots(1);
        let (total, _) =
            self.route_one_into(net_id, oracle, prices, weights, budgets, bif, ws, &mut forest, 0);
        let rn = RoutedNet {
            wirelength_gcells: forest.wirelength_gcells(0),
            vias: forest.vias(0),
            sink_delays: forest.sink_delays(0).to_vec(),
            used_edges: forest.used_edges(0).to_vec(),
        };
        (rn, total)
    }

    /// Routes one net through an explicit oracle and workspace straight
    /// into a [`RoutedForest`] slot — the arena path the main loop's
    /// worker threads drive: the tree, its per-sink delays, its
    /// used-edge list (global edge ids on both backends), and its
    /// wirelength/via summary all land in the forest's shared slabs;
    /// nothing per-net is materialized. Returns the net's objective
    /// value and the oracle's search-kernel counters (zero for the
    /// plane baselines). Bit-identical to
    /// [`route_one_with`](Self::route_one_with) (which now wraps this).
    #[allow(clippy::too_many_arguments)]
    fn route_one_into(
        &self,
        net_id: usize,
        oracle: &dyn SteinerOracle,
        prices: &[f64],
        weights: &[f64],
        budgets: Option<&[f64]>,
        bif: BifurcationConfig,
        ws: &mut OracleWorkspace,
        forest: &mut RoutedForest,
        slot: usize,
    ) -> (f64, SolveStats) {
        let chip = self.chip;
        let net = &chip.nets[net_id];
        let seed = self.config.seed ^ (net_id as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut pins = std::mem::take(&mut ws.pins);
        pins.clear();
        pins.push(net.root);
        pins.extend_from_slice(&net.sinks);
        let mut local_sinks = std::mem::take(&mut ws.local_sinks);
        let g = chip.grid.graph();

        let (total, kstats) = if self.config.materialize_windows {
            let index =
                // INVARIANT: the constructor builds edge_index whenever materialize_windows is set, and the flag never changes afterwards.
                self.edge_index.as_ref().expect("materialize_windows prebuilds the edge index");
            let window = GridWindow::around(&chip.grid, index, &pins, self.config.window_margin);
            let mut local_cost = std::mem::take(&mut ws.cost_buf);
            window.slice_into(prices, &mut local_cost);
            let mut local_delay = std::mem::take(&mut ws.delay_buf);
            window.slice_into(&self.delays, &mut local_delay);
            local_sinks.clear();
            local_sinks.extend(net.sinks.iter().map(|&p| window.localize(p)));
            let req = OracleRequest {
                surface: &window.grid,
                cost: &local_cost,
                delay: &local_delay,
                root: window.localize(net.root),
                sinks: &local_sinks,
                weights,
                budgets,
                bif,
                seed,
            };
            let kstats = oracle.route_into(&req, ws, forest, slot);
            // evaluate + summarize over window-local ids, then
            // globalize the stored paths so the forest's trees are
            // uniformly in global edge ids on both backends
            let mut eval = std::mem::take(&mut ws.eval);
            let (totals, wl, vias) = {
                let tv = forest.view(slot);
                let wg = window.grid.graph();
                (
                    tv.evaluate_into(&local_cost, &local_delay, weights, &bif, &mut eval),
                    tv.wirelength(wg),
                    tv.via_count(wg),
                )
            };
            forest.set_sink_delays(slot, &eval.sink_delays);
            forest.remap_path_edges(slot, &window.to_global_edge);
            forest.set_used_from_paths(slot, |e| (e, Self::tracks(g.edge(e))));
            forest.set_summary(slot, wl, vias);
            ws.eval = eval;
            ws.cost_buf = local_cost;
            ws.delay_buf = local_delay;
            (totals.total, kstats)
        } else {
            let view = WindowView::around(&chip.grid, &pins, self.config.window_margin);
            local_sinks.clear();
            local_sinks.extend(net.sinks.iter().map(|&p| view.localize(p)));
            let req = OracleRequest {
                surface: &view,
                cost: prices,
                delay: &self.delays,
                root: view.localize(net.root),
                sinks: &local_sinks,
                weights,
                budgets,
                bif,
                seed,
            };
            let kstats = oracle.route_into(&req, ws, forest, slot);
            // view edge ids are global: usage accumulation and
            // length/via metrics read the global graph directly
            let mut eval = std::mem::take(&mut ws.eval);
            let (totals, wl, vias) = {
                let tv = forest.view(slot);
                (
                    tv.evaluate_into(prices, &self.delays, weights, &bif, &mut eval),
                    tv.wirelength(g),
                    tv.via_count(g),
                )
            };
            forest.set_sink_delays(slot, &eval.sink_delays);
            forest.set_used_from_paths(slot, |e| (e, Self::tracks(g.edge(e))));
            forest.set_summary(slot, wl, vias);
            ws.eval = eval;
            (totals.total, kstats)
        };
        ws.pins = pins;
        ws.local_sinks = local_sinks;
        (total, kstats)
    }

    /// Snapshots the rip-up loop's carry state after `iteration`
    /// completed iterations as a `cdst/2` `state` section. Everything
    /// the loop reads at the top of the next iteration is captured:
    /// ledgers, current weights/budgets, the dirty tracker's
    /// references, every routed tree (structure + summary spans), and
    /// the deterministic work counters.
    #[allow(clippy::too_many_arguments)]
    fn export_state(
        &self,
        iteration: usize,
        stats: &RouterStats,
        usage: &[f64],
        usage_hist: &[f64],
        prices: &[f64],
        weights: &[Vec<f64>],
        budgets: &[Option<Vec<f64>>],
        forest: &RoutedForest,
        tracker: Option<&DirtyTracker>,
    ) -> StateSection {
        let n = self.chip.nets.len();
        let mut nets = Vec::with_capacity(n);
        let mut trees = Vec::with_capacity(n);
        for i in 0..n {
            let (routed, drift, weight_ref, budget_ref) = match tracker {
                Some(t) => (
                    t.has_routed(i),
                    t.drift(i),
                    t.last_routed_weights(i).to_vec(),
                    t.last_routed_budgets(i).map(<[f64]>::to_vec),
                ),
                // full-reroute mode has no scheduler state: every net
                // reroutes every iteration regardless
                None => (true, 0.0, Vec::new(), None),
            };
            nets.push(StateNet {
                routed,
                drift,
                weights: weights[i].clone(),
                budgets: budgets[i].clone(),
                weight_ref,
                budget_ref,
            });
            if routed {
                trees.push((
                    i,
                    dump_to_state_tree(
                        forest.export_tree(i),
                        forest.sink_delays(i),
                        forest.wirelength_gcells(i),
                        forest.vias(i),
                    ),
                ));
            }
        }
        StateSection {
            iteration,
            usage: usage.to_vec(),
            usage_hist: usage_hist.to_vec(),
            prices: prices.to_vec(),
            nets,
            trees,
            stats: StateStats {
                rerouted_per_iter: stats.rerouted_per_iter.clone(),
                dirty: [
                    stats.dirty_fresh,
                    stats.dirty_overflow,
                    stats.dirty_timing,
                    stats.dirty_price,
                    stats.dirty_weight,
                    stats.dirty_budget,
                ],
                usage_recounts: stats.usage_recounts,
                sta_nodes_retimed: stats.sta_nodes_retimed as usize,
                kernel: [
                    stats.kernel_settled,
                    stats.kernel_pushed,
                    stats.kernel_popped,
                    stats.kernel_decreased,
                    stats.kernel_bucket_scans,
                ],
            },
        }
    }

    /// Routing capacity one use of `e` consumes (wide wire types take
    /// two tracks).
    fn tracks(attrs: &EdgeAttrs) -> f64 {
        if attrs.kind == EdgeKind::Wire && attrs.wire_type == 1 {
            2.0
        } else {
            1.0
        }
    }

    /// Routes the given nets in parallel into the workers' scratch
    /// forests, returning `(worker, slot)` placements aligned with
    /// `ids` (the caller merges them into the chip-wide forest in net
    /// order — deterministic regardless of which worker routed what)
    /// plus the summed search-kernel counters of every routed net
    /// (order-independent integer sums, so equally deterministic).
    /// Work is distributed through a shared atomic counter: each
    /// worker claims the next unrouted index as soon as it finishes one,
    /// so a cluster of large nets landing together cannot idle the other
    /// workers (the previous contiguous `div_ceil` chunking could leave
    /// `threads − 1` workers parked behind one slow chunk). The dynamic
    /// schedule is determinism-safe: per-net results depend only on
    /// per-net inputs (the workspace contract of [`SteinerOracle`]), so
    /// which worker routes a net — and in what order — cannot change any
    /// result, only which warm workspace computes it (pinned by
    /// `deterministic_across_thread_counts`).
    fn route_ids_into(
        &self,
        ids: &[usize],
        prices: &[f64],
        weights: &[Vec<f64>],
        budgets: &[Option<Vec<f64>>],
        bif: BifurcationConfig,
        workers: &mut [RouteWorker],
    ) -> (Vec<(usize, usize)>, SolveStats) {
        if ids.is_empty() {
            return (Vec::new(), SolveStats::default());
        }
        if self.config.shards > 1 {
            return self.route_ids_sharded(ids, prices, weights, budgets, bif, workers);
        }
        let threads = self.config.threads.max(1).min(ids.len()).min(workers.len().max(1));
        let oracle = self.oracle.as_ref();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut placements: Vec<Option<(usize, usize)>> = vec![None; ids.len()];
        let mut kernel = SolveStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .take(threads)
                .enumerate()
                .map(|(wi, w)| {
                    let next = &next;
                    scope.spawn(move || {
                        // slabs stay warm across iterations; only the
                        // previous iteration's spans are dropped
                        w.forest.clear();
                        let mut routed: Vec<(usize, usize)> = Vec::new();
                        let mut ksum = SolveStats::default();
                        loop {
                            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&net_id) = ids.get(k) else { break };
                            let slot = w.forest.alloc_slot();
                            let (_, ks) = self.route_one_into(
                                net_id,
                                oracle,
                                prices,
                                &weights[net_id],
                                budgets[net_id].as_deref(),
                                bif,
                                &mut w.ws,
                                &mut w.forest,
                                slot,
                            );
                            ksum.absorb(ks);
                            routed.push((k, slot));
                        }
                        (wi, routed, ksum)
                    })
                })
                .collect();
            for h in handles {
                // INVARIANT: join fails only when the worker panicked; re-panicking propagates that failure instead of silently dropping its nets.
                let (wi, routed, ksum) = h.join().expect("router worker panicked");
                kernel.absorb(ksum);
                for (k, slot) in routed {
                    placements[k] = Some((wi, slot));
                }
            }
        });
        let placements =
            // INVARIANT: each worker writes a placement for every net index it was scheduled before exiting, and all workers were joined above.
            placements.into_iter().map(|p| p.expect("all scheduled nets routed")).collect();
        (placements, kernel)
    }

    /// The region-parallel variant of [`route_ids_into`](Self::route_ids_into)
    /// (`shards > 1`): classify each scheduled net by its routing
    /// window's [`ShardGrid`] region, then run two claim phases over
    /// the same worker set —
    ///
    /// 1. **interior nets, a shard at a time**: workers atomically
    ///    claim whole shard groups and route each group's nets in
    ///    schedule order, so one worker's consecutive oracle calls
    ///    share a die region (warm window locality) and never contend
    ///    with another shard's;
    /// 2. **boundary nets**: nets whose window crosses a shard split
    ///    drain through the plain per-net atomic queue (the
    ///    reconciliation pass).
    ///
    /// Worker scratch forests are cleared once up front and survive
    /// both phases. The returned placements stay aligned with `ids`, so
    /// the caller's merge runs in global schedule order exactly as in
    /// the unsharded path — which is why results are bit-identical
    /// across shard counts: per-net results depend only on per-net
    /// inputs, and neither the usage fold nor the forest merge ever
    /// sees the claim order.
    fn route_ids_sharded(
        &self,
        ids: &[usize],
        prices: &[f64],
        weights: &[Vec<f64>],
        budgets: &[Option<Vec<f64>>],
        bif: BifurcationConfig,
        workers: &mut [RouteWorker],
    ) -> (Vec<(usize, usize)>, SolveStats) {
        let spec = self.chip.grid.spec();
        let grid = ShardGrid::new(spec.nx, spec.ny, self.config.shards);
        // classify by window rectangle — the same single source of
        // truth WindowView::around routes in, so "interior" really
        // means the net's whole search space is inside one shard
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); grid.num_shards()];
        let mut boundary: Vec<usize> = Vec::new();
        let mut pins = Vec::new();
        for (k, &net_id) in ids.iter().enumerate() {
            let net = &self.chip.nets[net_id];
            pins.clear();
            pins.push(net.root);
            pins.extend_from_slice(&net.sinks);
            let (x0, y0, x1, y1) =
                window_bounds(&pins, self.config.window_margin, spec.nx, spec.ny);
            match grid.shard_of_rect(x0, y0, x1, y1) {
                Some(s) => groups[s].push(k),
                None => boundary.push(k),
            }
        }
        let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();

        let threads = self.config.threads.max(1).min(ids.len()).min(workers.len().max(1));
        let oracle = self.oracle.as_ref();
        let next_group = std::sync::atomic::AtomicUsize::new(0);
        let next_boundary = std::sync::atomic::AtomicUsize::new(0);
        let mut placements: Vec<Option<(usize, usize)>> = vec![None; ids.len()];
        let mut kernel = SolveStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .take(threads)
                .enumerate()
                .map(|(wi, w)| {
                    let (next_group, next_boundary) = (&next_group, &next_boundary);
                    let (groups, boundary) = (&groups, &boundary);
                    scope.spawn(move || {
                        w.forest.clear();
                        let mut routed: Vec<(usize, usize)> = Vec::new();
                        let mut ksum = SolveStats::default();
                        let mut route_k = |k: usize, w: &mut RouteWorker| {
                            let net_id = ids[k];
                            let slot = w.forest.alloc_slot();
                            let (_, ks) = self.route_one_into(
                                net_id,
                                oracle,
                                prices,
                                &weights[net_id],
                                budgets[net_id].as_deref(),
                                bif,
                                &mut w.ws,
                                &mut w.forest,
                                slot,
                            );
                            ksum.absorb(ks);
                            routed.push((k, slot));
                        };
                        // phase 1: whole shard groups
                        loop {
                            let gi = next_group.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(group) = groups.get(gi) else { break };
                            for &k in group {
                                route_k(k, w);
                            }
                        }
                        // phase 2: boundary reconciliation, per net
                        loop {
                            let bi =
                                next_boundary.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&k) = boundary.get(bi) else { break };
                            route_k(k, w);
                        }
                        (wi, routed, ksum)
                    })
                })
                .collect();
            for h in handles {
                // INVARIANT: join fails only when the worker panicked; re-panicking propagates that failure instead of silently dropping its nets.
                let (wi, routed, ksum) = h.join().expect("router worker panicked");
                kernel.absorb(ksum);
                for (k, slot) in routed {
                    placements[k] = Some((wi, slot));
                }
            }
        });
        let placements =
            // INVARIANT: every scheduled index is in exactly one shard group or the boundary list, each was claimed exactly once, and all workers were joined above.
            placements.into_iter().map(|p| p.expect("all scheduled nets routed")).collect();
        (placements, kernel)
    }

    /// Multiplicative-weight congestion pricing: price never drops below
    /// base cost (A* admissibility) and grows exponentially with
    /// utilization, sharpening each iteration.
    fn compute_prices(&self, base: &[f64], usage: &[f64], iteration: usize) -> Vec<f64> {
        let g = self.chip.grid.graph();
        let alpha = self.config.price_alpha * iteration as f64;
        base.iter()
            .enumerate()
            .map(|(e, &b)| {
                let cap = g.edge(e as EdgeId).capacity.max(1e-9);
                // cap the exponent so hopeless hot spots do not destroy
                // the price landscape for everyone else
                b * (alpha * usage[e] / cap).min(6.0).exp()
            })
            .collect()
    }

    /// Builds the chip's timing DAG: one node per net root and per sink,
    /// net arcs (updated every iteration) and fixed cell arcs along the
    /// chains; ATs at chain heads, RATs at all true endpoints.
    fn build_timing_graph(&self) -> (TimingGraph, NetNodes) {
        let chip = self.chip;
        let mut count = 0u32;
        let mut root_node = Vec::with_capacity(chip.nets.len());
        let mut sink_node = Vec::with_capacity(chip.nets.len());
        for net in &chip.nets {
            root_node.push(count);
            count += 1;
            let mut s = Vec::with_capacity(net.sinks.len());
            for _ in &net.sinks {
                s.push(count);
                count += 1;
            }
            sink_node.push(s);
        }
        let mut tg = TimingGraph::new(count as usize);
        // net arcs with placeholder direct-delay estimates, matching the
        // generator's typical-layer model so RAT distribution is sane
        let typ = cds_instgen::typical_delay_per_gcell(&chip.delay_model);
        let est = |a: Point, b: Point| -> f64 {
            a.l1(b) as f64 * typ * 1.15 + 2.0 * chip.grid.spec().via_delay
        };
        let mut sink_arc = Vec::with_capacity(chip.nets.len());
        for (i, net) in chip.nets.iter().enumerate() {
            let mut arcs = Vec::with_capacity(net.sinks.len());
            for (j, &s) in net.sinks.iter().enumerate() {
                arcs.push(tg.add_arc(root_node[i], sink_node[i][j], est(net.root, s)));
            }
            sink_arc.push(arcs);
        }
        // chains: cell arcs, inputs, RATs
        for chain in &chip.chains {
            // INVARIANT: workload validation rejects empty chains at parse time.
            let first = chain.links.first().expect("chains are nonempty");
            tg.set_input(root_node[first.net], 0.0);
            // prefix of estimated stage delays, for distributing the RAT
            // over intermediate endpoints. A chain of L links crosses
            // L−1 cells (between consecutive stages); the terminal link
            // ends at true endpoints with no downstream cell, so neither
            // the total nor the terminal endpoints' RAT positions may
            // count one.
            let mut prefix = 0.0;
            let mut est_total = 0.0;
            for (li, link) in chain.links.iter().enumerate() {
                let net = &chip.nets[link.net];
                let stage_sink = match link.cont_sink {
                    Some(s) => net.sinks[s],
                    None => {
                        // INVARIANT: workload validation rejects nets without sinks at parse time.
                        *net.sinks.iter().max_by_key(|&&s| s.l1(net.root)).expect("nets have sinks")
                    }
                };
                let cell = if li + 1 == chain.links.len() { 0.0 } else { chip.cell_delay_ps };
                est_total += est(net.root, stage_sink) + cell;
            }
            let scale = chain.rat_ps / est_total.max(1e-9);
            for (li, link) in chain.links.iter().enumerate() {
                let net = &chip.nets[link.net];
                let downstream_cell =
                    if li + 1 == chain.links.len() { 0.0 } else { chip.cell_delay_ps };
                for (j, &s) in net.sinks.iter().enumerate() {
                    let is_cont = link.cont_sink == Some(j);
                    if is_cont {
                        // cell arc to the next stage's root
                        let next = chain.links[li + 1].net;
                        tg.add_arc(sink_node[link.net][j], root_node[next], chip.cell_delay_ps);
                    } else {
                        // endpoint: RAT proportional to its estimated
                        // position on the chain
                        let rat = (prefix + est(net.root, s) + downstream_cell) * scale;
                        tg.set_required(sink_node[link.net][j], rat);
                    }
                }
                let stage_sink = match link.cont_sink {
                    Some(s) => net.sinks[s],
                    None => {
                        // INVARIANT: workload validation rejects nets without sinks at parse time.
                        *net.sinks.iter().max_by_key(|&&s| s.l1(net.root)).expect("nets have sinks")
                    }
                };
                prefix += est(net.root, stage_sink) + chip.cell_delay_ps;
            }
        }
        (tg, NetNodes { root_node, sink_node, sink_arc })
    }
}

/// One router worker's persistent state: a warm oracle workspace plus
/// the scratch forest it routes into each iteration (merged into the
/// chip-wide forest by the main thread, in net order).
#[derive(Debug, Default)]
struct RouteWorker {
    ws: OracleWorkspace,
    forest: RoutedForest,
}

/// Timing-node bookkeeping per net.
struct NetNodes {
    #[allow(dead_code)]
    root_node: Vec<u32>,
    sink_node: Vec<Vec<u32>>,
    sink_arc: Vec<Vec<u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_instgen::ChipSpec;

    fn tiny_chip() -> cds_instgen::Chip {
        ChipSpec { num_nets: 30, ..ChipSpec::small_test(5) }.generate()
    }

    #[test]
    fn router_runs_all_methods() {
        let chip = tiny_chip();
        for method in SteinerMethod::ALL {
            let config = RouterConfig { method, iterations: 2, threads: 2, ..Default::default() };
            let out = Router::new(&chip, config).run();
            assert!(out.metrics.wl_m > 0.0, "{method}: no wirelength");
            assert!(out.metrics.ace4 >= 0.0);
            assert_eq!(out.num_nets(), chip.nets.len());
            for (i, rn) in out.nets().enumerate() {
                assert_eq!(rn.sink_delays.len(), chip.nets[i].sinks.len());
                assert!(rn.sink_delays.iter().all(|d| d.is_finite() && *d >= 0.0));
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // covers the atomic work-queue scheduler: whatever interleaving
        // the counter produces at 1/2/4/8 workers, results (and their
        // checksum) are bit-identical
        let chip = tiny_chip();
        let mk = |threads| {
            Router::new(&chip, RouterConfig { threads, iterations: 2, ..Default::default() }).run()
        };
        let a = mk(1);
        for threads in [2, 4, 8] {
            let b = mk(threads);
            assert_eq!(a.metrics.ws.to_bits(), b.metrics.ws.to_bits(), "{threads} threads");
            assert_eq!(a.metrics.tns.to_bits(), b.metrics.tns.to_bits(), "{threads} threads");
            assert_eq!(a.metrics.vias, b.metrics.vias, "{threads} threads");
            assert_eq!(a.metrics.wl_m.to_bits(), b.metrics.wl_m.to_bits(), "{threads} threads");
            assert_eq!(a.usage, b.usage, "{threads} threads");
            assert_eq!(a.checksum(), b.checksum(), "{threads} threads");
        }
    }

    #[test]
    fn work_queue_routes_every_net_when_nets_outnumber_threads_unevenly() {
        // 30 nets over 7 workers: the counter hands out 30 claims and 7
        // exhausted claims; every slot must be filled exactly once
        let chip = tiny_chip();
        let out =
            Router::new(&chip, RouterConfig { threads: 7, iterations: 1, ..Default::default() })
                .run();
        assert_eq!(out.num_nets(), chip.nets.len());
        assert!(out.nets().all(|rn| !rn.used_edges.is_empty() || rn.vias == 0));
    }

    #[test]
    fn set_knob_round_trips_the_config_surface() {
        let mut c = RouterConfig::default();
        for (k, v) in [
            ("oracle", "sl"),
            ("iterations", "9"),
            ("threads", "3"),
            ("use_dbif", "on"),
            ("eta", "0.125"),
            ("seed", "42"),
            ("window_margin", "2"),
            ("price_alpha", "1.5"),
            ("weight_tau_ps", "100.0"),
            ("harvest", "true"),
            ("materialize_windows", "1"),
            ("incremental", "false"),
            ("price_tol", "0.25"),
            ("recount_every", "0"),
            ("queue", "heap"),
            ("batch", "on"),
            ("shards", "4"),
            ("checkpoint_every", "2"),
        ] {
            c.set_knob(k, v).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
        assert_eq!(c.method, SteinerMethod::Sl);
        assert_eq!(c.iterations, 9);
        assert_eq!(c.threads, 3);
        assert!(c.use_dbif && c.harvest && c.materialize_windows && !c.incremental);
        assert_eq!(c.eta, 0.125);
        assert_eq!(c.price_tol, 0.25);
        assert_eq!(c.queue, QueueKind::Heap);
        assert!(c.batch);
        assert_eq!(c.shards, 4);
        assert_eq!(c.checkpoint_every, 2);
        c.set_knob("queue", "bucket").unwrap();
        assert_eq!(c.queue, QueueKind::Bucket);
        assert!(c.set_knob("bogus", "1").unwrap_err().contains("unknown"));
        assert!(c.set_knob("oracle", "astar").unwrap_err().contains("astar"));
        assert!(c.set_knob("incremental", "maybe").unwrap_err().contains("boolean"));
        assert!(c.set_knob("queue", "fifo").unwrap_err().contains("fifo"));
    }

    #[test]
    fn sharded_routing_is_bit_identical_across_shard_and_thread_counts() {
        // the tentpole determinism contract: region-parallel scheduling
        // changes only which worker routes a net and in what order;
        // merge and usage folds run in global schedule order, so every
        // shard count × thread count lands on the same checksum (and
        // the same deterministic stats)
        let chip = tiny_chip();
        let mk = |shards, threads| {
            Router::new(
                &chip,
                RouterConfig { shards, threads, iterations: 2, ..Default::default() },
            )
            .run()
        };
        let base = mk(1, 1);
        for shards in [2, 4, 8] {
            for threads in [1, 4] {
                let out = mk(shards, threads);
                assert_eq!(base.checksum(), out.checksum(), "{shards} shards × {threads} threads");
                assert_eq!(base.stats, out.stats, "{shards} shards × {threads} threads");
                assert_eq!(base.usage, out.usage, "{shards} shards × {threads} threads");
            }
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_checksum() {
        let chip = tiny_chip();
        for incremental in [true, false] {
            let cfg = RouterConfig {
                iterations: 4,
                checkpoint_every: 2,
                incremental,
                ..Default::default()
            };
            let router = Router::new(&chip, cfg);
            let full = router.run();
            let mut cps: Vec<(usize, StateSection)> = Vec::new();
            let mut pool = WorkerPool::new();
            let out = router.run_checkpointed(
                &mut pool,
                &RunControl::new(),
                &mut |_, _| {},
                None,
                &mut |it, s| cps.push((it, s)),
            );
            // checkpointing changes nothing about the run itself
            assert_eq!(out.checksum(), full.checksum(), "incremental={incremental}");
            // 4 iterations every 2: one checkpoint, after iteration 2
            // (the final iteration never checkpoints)
            assert_eq!(cps.len(), 1, "incremental={incremental}");
            let (it, state) = cps.pop().unwrap();
            assert_eq!(it, 2);
            assert_eq!(state.iteration, 2);
            assert_eq!(state.stats.rerouted_per_iter.len(), 2);
            let resumed = router.run_checkpointed(
                &mut pool,
                &RunControl::new(),
                &mut |_, _| {},
                Some(&state),
                &mut |_, _| {},
            );
            assert_eq!(resumed.checksum(), full.checksum(), "incremental={incremental}");
            assert_eq!(resumed.stats, full.stats, "incremental={incremental}");
            assert_eq!(resumed.usage, full.usage, "incremental={incremental}");
            assert_eq!(resumed.prices, full.prices, "incremental={incremental}");
        }
    }

    #[test]
    fn resume_after_cancel_matches_uninterrupted() {
        // the cds-cli `--resume` contract end to end at the library
        // level: cancel a checkpointing run mid-flight, resume from its
        // last checkpoint, land on the uninterrupted checksum
        let chip = tiny_chip();
        let cfg = RouterConfig { iterations: 5, checkpoint_every: 2, ..Default::default() };
        let router = Router::new(&chip, cfg);
        let full = router.run();
        let ctrl = RunControl::new();
        let mut pool = WorkerPool::new();
        let mut cps: Vec<(usize, StateSection)> = Vec::new();
        let cancelled = router.run_checkpointed(
            &mut pool,
            &ctrl,
            &mut |iter, _| {
                if iter == 2 {
                    ctrl.cancel();
                }
            },
            None,
            &mut |it, s| cps.push((it, s)),
        );
        assert!(cancelled.stats.cancelled);
        assert_eq!(cancelled.stats.iterations_completed(), 3);
        let (_, state) = cps.last().expect("a checkpoint was written before the cancel");
        let resumed = router.run_checkpointed(
            &mut pool,
            &RunControl::new(),
            &mut |_, _| {},
            Some(state),
            &mut |_, _| {},
        );
        assert_eq!(resumed.checksum(), full.checksum());
        assert_eq!(resumed.stats, full.stats);
    }

    #[test]
    fn checkpoint_state_round_trips_through_the_document_format() {
        // the state section a checkpoint emits must survive the cdst/2
        // writer/parser loop unchanged — otherwise `--resume` from a
        // file could diverge from an in-memory resume
        use cds_instgen::io::doc::{chip_doc_to_string, parse_chip_doc, ChipDoc};
        let chip = ChipSpec { num_nets: 24, ..ChipSpec::small_test(7) }.generate();
        let cfg = RouterConfig {
            iterations: 3,
            checkpoint_every: 2,
            harvest: true,
            ..Default::default()
        };
        let router = Router::new(&chip, cfg);
        let mut cps = Vec::new();
        let full = router.run_checkpointed(
            &mut WorkerPool::new(),
            &RunControl::new(),
            &mut |_, _| {},
            None,
            &mut |_, s| cps.push(s),
        );
        let mut doc = ChipDoc::from_chip(&chip).expect("chip documents");
        doc.state = Some(cps.pop().expect("one checkpoint at iteration 2"));
        let text = chip_doc_to_string(&doc).expect("checkpointed document serializes");
        let parsed = parse_chip_doc(&text).expect("checkpointed document parses");
        let state = parsed.state.expect("state section survived");
        assert_eq!(Some(&state), doc.state.as_ref());
        let resumed = router.run_checkpointed(
            &mut WorkerPool::new(),
            &RunControl::new(),
            &mut |_, _| {},
            Some(&state),
            &mut |_, _| {},
        );
        assert_eq!(resumed.checksum(), full.checksum());
    }

    #[test]
    fn bucket_and_heap_queues_route_bit_identically() {
        let chip = tiny_chip();
        let run = |queue| {
            let config = RouterConfig {
                method: SteinerMethod::Cd,
                iterations: 2,
                queue,
                ..Default::default()
            };
            Router::new(&chip, config).run()
        };
        let heap = run(QueueKind::Heap);
        let bucket = run(QueueKind::Bucket);
        // Same total pop order (key, search, vertex) on both queues ⇒
        // identical routes and identical kernel work; only the
        // bucket-scan counter may differ.
        assert_eq!(heap.checksum(), bucket.checksum());
        assert!(heap.stats.kernel_settled > 0, "CD oracle reports kernel work");
        assert_eq!(heap.stats.kernel_settled, bucket.stats.kernel_settled);
        assert_eq!(heap.stats.kernel_pushed, bucket.stats.kernel_pushed);
        assert_eq!(heap.stats.kernel_popped, bucket.stats.kernel_popped);
        assert_eq!(heap.stats.kernel_decreased, bucket.stats.kernel_decreased);
        assert_eq!(heap.stats.kernel_bucket_scans, 0, "heap backend never scans buckets");
    }

    #[test]
    fn steiner_method_display_from_str_round_trip() {
        for method in SteinerMethod::ALL {
            let parsed: SteinerMethod = method.to_string().parse().unwrap();
            assert_eq!(parsed, method);
        }
    }

    #[test]
    fn checksum_separates_different_outcomes() {
        let chip = tiny_chip();
        let run = |method| {
            Router::new(&chip, RouterConfig { method, iterations: 1, ..Default::default() })
                .run()
                .checksum()
        };
        assert_eq!(run(SteinerMethod::Cd), run(SteinerMethod::Cd), "checksum not deterministic");
        assert_ne!(run(SteinerMethod::Cd), run(SteinerMethod::L1), "checksum too coarse");
    }

    #[test]
    fn usage_matches_used_edges() {
        let chip = tiny_chip();
        let out = Router::new(&chip, RouterConfig { iterations: 1, ..Default::default() }).run();
        let mut recount = vec![0.0; chip.grid.graph().num_edges()];
        for rn in out.nets() {
            for &(e, t) in rn.used_edges {
                recount[e as usize] += t;
            }
        }
        assert_eq!(recount, out.usage);
    }

    #[test]
    fn checksum_folds_in_harvested_weights_and_budgets() {
        // `cds-cli verify` must catch harvest drift: perturbing one
        // harvested budget (or weight) changes the checksum. Runs
        // without harvesting keep the historical checksum value, which
        // the pinned fixture goldens depend on.
        let chip = tiny_chip();
        let run =
            Router::new(&chip, RouterConfig { iterations: 2, harvest: true, ..Default::default() })
                .run();
        assert!(!run.harvest.is_empty(), "test chip harvested nothing");
        let baseline = run.checksum();
        let mut perturbed = run.clone();
        perturbed.harvest[0].weights[0] += 1.0;
        assert_ne!(baseline, perturbed.checksum(), "weight drift not detected");
        let mut perturbed = run;
        let with_budgets = perturbed
            .harvest
            .iter()
            .position(|h| !h.budgets.is_empty())
            .expect("a 2-iteration harvest carries budgets");
        perturbed.harvest[with_budgets].budgets[0] += 1.0;
        assert_ne!(baseline, perturbed.checksum(), "budget drift not detected");
    }

    #[test]
    fn stats_surface_wall_clock_and_arena_counters() {
        let chip = tiny_chip();
        let out = Router::new(&chip, RouterConfig { iterations: 3, ..Default::default() }).run();
        assert_eq!(out.stats.iter_wall_s.len(), 3, "one wall-clock entry per iteration");
        assert!(out.stats.iter_wall_s.iter().all(|&s| s >= 0.0));
        assert!(out.stats.peak_arena_bytes > 0, "forest arenas must report their footprint");
        // the observability counters are excluded from equality
        let mut other = out.stats.clone();
        other.iter_wall_s.clear();
        other.peak_arena_bytes = 0;
        assert_eq!(out.stats, other);
    }

    #[test]
    fn cancellation_between_iterations_returns_partial_stats() {
        let chip = tiny_chip();
        let router = Router::new(&chip, RouterConfig { iterations: 5, ..Default::default() });
        let ctrl = RunControl::new();
        let mut pool = WorkerPool::new();
        let mut seen = Vec::new();
        let out = router.run_with(&mut pool, &ctrl, &mut |iter, stats| {
            seen.push((iter, stats.iterations_completed()));
            if iter == 1 {
                ctrl.cancel();
            }
        });
        // cancelled after iteration 1: exactly 2 iterations ran, the
        // progress hook saw each one with the stats accumulated so far
        assert!(out.stats.cancelled);
        assert_eq!(out.stats.iterations_completed(), 2);
        assert_eq!(out.stats.iter_wall_s.len(), 2);
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
        // the partial outcome is still a complete routing state
        assert_eq!(out.num_nets(), chip.nets.len());
        assert!(out.metrics.wl_m > 0.0);
        let mut recount = vec![0.0; chip.grid.graph().num_edges()];
        for rn in out.nets() {
            for &(e, t) in rn.used_edges {
                recount[e as usize] += t;
            }
        }
        assert_eq!(recount, out.usage, "cancelled outcome's usage inconsistent with its routes");

        // cancelling before the run still completes iteration 0
        let pre = RunControl::new();
        pre.cancel();
        let out = router.run_with(&mut pool, &pre, &mut |_, _| {});
        assert!(out.stats.cancelled);
        assert_eq!(out.stats.iterations_completed(), 1);
        assert_eq!(out.num_nets(), chip.nets.len());
    }

    #[test]
    fn uncancelled_run_with_matches_run_bit_for_bit() {
        let chip = tiny_chip();
        let config = RouterConfig { iterations: 3, ..Default::default() };
        let plain = Router::new(&chip, config.clone()).run();
        assert!(!plain.stats.cancelled);
        let mut pool = WorkerPool::new();
        let controlled =
            Router::new(&chip, config).run_with(&mut pool, &RunControl::new(), &mut |_, _| {});
        assert_eq!(plain.checksum(), controlled.checksum());
        assert_eq!(plain.stats, controlled.stats);
    }

    #[test]
    fn warm_pool_reuse_across_jobs_and_chips_is_bit_identical() {
        // the server contract: one worker's pool routes different chips
        // back to back, and every result matches a cold fresh-pool run
        let chip_a = tiny_chip();
        let chip_b = ChipSpec { num_nets: 20, ..ChipSpec::small_test(9) }.generate();
        let cfg = RouterConfig { iterations: 2, threads: 2, ..Default::default() };
        let cold_a = Router::new(&chip_a, cfg.clone()).run().checksum();
        let cold_b = Router::new(&chip_b, cfg.clone()).run().checksum();
        let mut pool = WorkerPool::new();
        for round in 0..3 {
            let a = Router::new(&chip_a, cfg.clone()).run_with(
                &mut pool,
                &RunControl::new(),
                &mut |_, _| {},
            );
            assert_eq!(a.checksum(), cold_a, "warm round {round} diverged on chip A");
            let b = Router::new(&chip_b, cfg.clone()).run_with(
                &mut pool,
                &RunControl::new(),
                &mut |_, _| {},
            );
            assert_eq!(b.checksum(), cold_b, "warm round {round} diverged on chip B");
        }
        assert_eq!(pool.len(), 2, "pool kept its warm workers");
        assert!(pool.arena_bytes() > 0, "warm scratch forests must retain their slabs");
    }

    #[test]
    fn prices_never_below_base() {
        let chip = tiny_chip();
        let out = Router::new(&chip, RouterConfig { iterations: 3, ..Default::default() }).run();
        let base = chip.grid.graph().base_costs();
        for (p, b) in out.prices.iter().zip(&base) {
            assert!(p >= b, "price {p} below base {b}");
        }
    }

    #[test]
    fn harvest_collects_multi_sink_nets() {
        let chip = tiny_chip();
        let out =
            Router::new(&chip, RouterConfig { iterations: 1, harvest: true, ..Default::default() })
                .run();
        let expect = chip.nets.iter().filter(|n| n.sinks.len() >= 3).count();
        assert_eq!(out.harvest.len(), expect);
        for h in &out.harvest {
            assert_eq!(h.weights.len(), chip.nets[h.net].sinks.len());
        }
    }

    #[test]
    fn terminal_chain_link_rat_has_no_downstream_cell_delay() {
        // Regression: est_total and terminal-link endpoint RAT positions
        // used to count a cell delay after the last link, where no
        // downstream cell exists, skewing the whole chain's RAT
        // distribution (scale = rat_ps / est_total).
        use cds_instgen::{Chain, ChainLink, Net};
        let mut chip = ChipSpec::small_test(1).generate();
        let net_a = Net { root: Point::new(0, 0), sinks: vec![Point::new(6, 0), Point::new(0, 4)] };
        let net_b =
            Net { root: Point::new(6, 0), sinks: vec![Point::new(10, 0), Point::new(6, 3)] };
        chip.nets = vec![net_a, net_b];
        chip.chains = vec![Chain {
            links: vec![
                ChainLink { net: 0, cont_sink: Some(0) },
                ChainLink { net: 1, cont_sink: None },
            ],
            rat_ps: 1000.0,
        }];
        let router = Router::new(&chip, RouterConfig::default());
        let (tg, nodes) = router.build_timing_graph();
        let rep = tg.analyze();

        let typ = cds_instgen::typical_delay_per_gcell(&chip.delay_model);
        let est = |d: u32| d as f64 * typ * 1.15 + 2.0 * chip.grid.spec().via_delay;
        let cell = chip.cell_delay_ps;
        // 2 links ⇒ exactly one cell between the stages
        let est_total = est(6) + cell + est(4);
        let scale = 1000.0 / est_total;

        // terminal stage sink sits at the end of the chain: RAT = rat_ps
        let t_far = nodes.sink_node[1][0] as usize;
        assert!((rep.rat[t_far] - 1000.0).abs() < 1e-9, "terminal RAT {}", rep.rat[t_far]);
        // the terminal link's other endpoint: no downstream cell either
        let t_near = nodes.sink_node[1][1] as usize;
        let want_near = (est(6) + cell + est(3)) * scale;
        assert!((rep.rat[t_near] - want_near).abs() < 1e-9, "{} vs {want_near}", rep.rat[t_near]);
        // intermediate endpoint keeps its downstream cell in the estimate
        let t_mid = nodes.sink_node[0][1] as usize;
        let want_mid = (est(4) + cell) * scale;
        assert!((rep.rat[t_mid] - want_mid).abs() < 1e-9, "{} vs {want_mid}", rep.rat[t_mid]);
    }

    #[test]
    fn more_iterations_do_not_explode_overflow() {
        // Pricing should spread congestion. On a chip large enough for
        // the capacity calibration to be meaningful, ACE4 after pricing
        // iterations must stay in the same ballpark as the unpriced
        // first pass (tiny chips are noisy, hence the generous bound).
        let chip = ChipSpec { num_nets: 150, ..ChipSpec::small_test(5) }.generate();
        let run = |iters| {
            Router::new(&chip, RouterConfig { iterations: iters, ..Default::default() })
                .run()
                .metrics
                .ace4
        };
        let one = run(1);
        let three = run(3);
        assert!(three <= 1.5 * one + 20.0, "ACE4 exploded under pricing: {one} → {three}");
    }
}
