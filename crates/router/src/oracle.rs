//! The four Steiner tree oracles of §IV-A, behind one interface.
//!
//! Every oracle answers the same question the Lagrangean router asks:
//! *given current edge prices `c`, delays `d`, and sink delay weights
//! `w`, produce an embedded tree for this net*. The three baselines
//! compute a plane topology first and embed it optimally (`cds-embed`);
//! CD solves the cost-distance problem directly on the graph.

use cds_baselines::{prim_dijkstra, shallow_light, PlaneCostModel, SlParams};
use cds_core::{solve, GridFutureCost, Instance, SolverOptions};
use cds_embed::{embed_topology, EmbedEnv};
use cds_geom::Point;
use cds_graph::{GridGraph, VertexId};
use cds_rsmt::rsmt_topology;
use cds_topo::{BifurcationConfig, EmbeddedTree};

/// Which Steiner tree construction a router run uses (the paper's table
/// row labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteinerMethod {
    /// Short rectilinear Steiner tree, embedded optimally.
    L1,
    /// Shallow-light arborescence, embedded optimally.
    Sl,
    /// Prim–Dijkstra trade-off tree, embedded optimally.
    Pd,
    /// The paper's cost-distance algorithm (with all enhancements).
    Cd,
}

impl SteinerMethod {
    /// All four methods in the paper's table order.
    pub const ALL: [SteinerMethod; 4] =
        [SteinerMethod::L1, SteinerMethod::Sl, SteinerMethod::Pd, SteinerMethod::Cd];
}

impl std::fmt::Display for SteinerMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SteinerMethod::L1 => "L1",
            SteinerMethod::Sl => "SL",
            SteinerMethod::Pd => "PD",
            SteinerMethod::Cd => "CD",
        };
        write!(f, "{s}")
    }
}

/// One oracle request: a net inside its routing window.
#[derive(Debug, Clone)]
pub struct OracleRequest<'a> {
    /// The (windowed) grid to route in.
    pub grid: &'a GridGraph,
    /// Edge prices `c(e)` in window edge order (≥ base costs, so grid
    /// future costs stay admissible).
    pub cost: &'a [f64],
    /// Edge delays `d(e)` in window edge order.
    pub delay: &'a [f64],
    /// Root pin (window coordinates).
    pub root: Point,
    /// Sink pins (window coordinates).
    pub sinks: &'a [Point],
    /// Delay weights `w(t)` per sink.
    pub weights: &'a [f64],
    /// Delay budgets per sink (ps) — used by SL only; `None` before the
    /// first timing iteration.
    pub budgets: Option<&'a [f64]>,
    /// Bifurcation penalty configuration.
    pub bif: BifurcationConfig,
    /// RNG seed for CD's randomized placement.
    pub seed: u64,
}

/// Runs one oracle, returning the embedded tree (in window edge ids).
///
/// # Panics
///
/// Panics on empty sinks or inconsistent slice lengths (the router
/// guarantees both).
pub fn route_net(method: SteinerMethod, req: &OracleRequest<'_>) -> EmbeddedTree {
    let root_v: VertexId = req.grid.vertex_at(req.root);
    let sink_vs: Vec<VertexId> = req.sinks.iter().map(|&p| req.grid.vertex_at(p)).collect();
    match method {
        SteinerMethod::Cd => {
            let mut terminals = sink_vs.clone();
            terminals.push(root_v);
            let fc = GridFutureCost::new(req.grid, &terminals);
            let inst = Instance {
                graph: req.grid.graph(),
                cost: req.cost,
                delay: req.delay,
                root: root_v,
                sink_vertices: &sink_vs,
                weights: req.weights,
                bif: req.bif,
            };
            let opts = SolverOptions { seed: req.seed, ..SolverOptions::enhanced(&fc) };
            solve(&inst, &opts).tree
        }
        _ => {
            let model = PlaneCostModel {
                cost_per_unit: req.grid.min_cost_per_gcell(),
                delay_per_unit: req.grid.min_delay_per_gcell(),
                bif: req.bif,
            };
            let topo = match method {
                SteinerMethod::L1 => rsmt_topology(req.root, req.sinks, 5).binarize(),
                SteinerMethod::Sl => shallow_light(
                    req.root,
                    req.sinks,
                    req.weights,
                    req.budgets,
                    &model,
                    &SlParams::default(),
                ),
                SteinerMethod::Pd => prim_dijkstra(req.root, req.sinks, req.weights, &model),
                SteinerMethod::Cd => unreachable!("handled above"),
            };
            let env = EmbedEnv {
                graph: req.grid.graph(),
                cost: req.cost,
                delay: req.delay,
                bif: req.bif,
            };
            embed_topology(&env, &topo, root_v, &sink_vs, req.weights)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::GridSpec;

    fn request_on<'a>(
        grid: &'a GridGraph,
        cost: &'a [f64],
        delay: &'a [f64],
        sinks: &'a [Point],
        weights: &'a [f64],
    ) -> OracleRequest<'a> {
        OracleRequest {
            grid,
            cost,
            delay,
            root: Point::new(0, 0),
            sinks,
            weights,
            budgets: None,
            bif: BifurcationConfig::new(5.0, 0.25),
            seed: 1,
        }
    }

    #[test]
    fn all_methods_produce_valid_trees() {
        let grid = GridSpec::uniform(9, 9, 4).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [Point::new(8, 0), Point::new(0, 8), Point::new(8, 8), Point::new(4, 4)];
        let w = [1.0, 2.0, 0.5, 4.0];
        let req = request_on(&grid, &c, &d, &sinks, &w);
        for m in SteinerMethod::ALL {
            let tree = route_net(m, &req);
            tree.validate(grid.graph(), sinks.len())
                .unwrap_or_else(|e| panic!("{m}: {e}"));
            let ev = tree.evaluate(&c, &d, &w, &req.bif);
            assert!(ev.total.is_finite() && ev.total > 0.0, "{m}: objective {}", ev.total);
        }
    }

    #[test]
    fn single_sink_all_methods_agree() {
        // one sink ⇒ the optimum is the c + w·d shortest path; every
        // method must find it (embedding is exact, CD is exact for t=1)
        let grid = GridSpec::uniform(7, 7, 3).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [Point::new(6, 6)];
        let w = [2.0];
        let req = request_on(&grid, &c, &d, &sinks, &w);
        let mut totals = Vec::new();
        for m in SteinerMethod::ALL {
            let tree = route_net(m, &req);
            totals.push(tree.evaluate(&c, &d, &w, &req.bif).total);
        }
        for t in &totals {
            assert!((t - totals[0]).abs() < 1e-6, "totals {totals:?}");
        }
    }

    #[test]
    fn method_display_matches_paper_labels() {
        let labels: Vec<String> = SteinerMethod::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(labels, vec!["L1", "SL", "PD", "CD"]);
    }
}
