//! The Steiner tree oracles of §IV-A, behind one *open* interface.
//!
//! Every oracle answers the same question the Lagrangean router asks:
//! *given current edge prices `c`, delays `d`, and sink delay weights
//! `w`, produce an embedded tree for this net*. The [`SteinerOracle`]
//! trait is that question as a type: the router, the table harnesses,
//! and the examples all dispatch through `&dyn SteinerOracle`, so new
//! oracles plug in without touching the router (implement the trait,
//! hand the router a box — see [`Router::with_oracle`]).
//!
//! Four implementations ship with the workspace, matching the paper's
//! table rows: [`CdOracle`] solves the cost-distance problem directly on
//! the graph (with a reusable [`SolverWorkspace`] session underneath);
//! [`L1Oracle`], [`SlOracle`], and [`PdOracle`] compute a plane topology
//! first and embed it optimally (`cds-embed`).
//!
//! Oracles are stateless (`&self`); all per-net scratch lives in the
//! [`OracleWorkspace`] the caller passes in, which is what lets the
//! router keep one warm workspace per worker thread across the whole
//! rip-up & re-route run.
//!
//! [`Router::with_oracle`]: crate::Router::with_oracle
//! [`SolverWorkspace`]: cds_core::SolverWorkspace

use cds_baselines::{prim_dijkstra, shallow_light, PlaneCostModel, SlParams};
use cds_core::{GridFutureCost, Request, SessionConfig, SolveStats, Solver, SolverWorkspace};
use cds_embed::{embed_topology, EmbedEnv};
use cds_geom::Point;
use cds_graph::{RoutingSurface, VertexId};
use cds_rsmt::rsmt_topology;
use cds_topo::{BifurcationConfig, EmbeddedTree, EvalScratch, RoutedForest, Topology};

/// Which built-in Steiner tree construction a router run uses (the
/// paper's table row labels). This enum is a *name*, not a dispatcher:
/// routing goes through [`SteinerOracle`], and
/// [`oracle`](SteinerMethod::oracle) maps each name to its singleton
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteinerMethod {
    /// Short rectilinear Steiner tree, embedded optimally.
    L1,
    /// Shallow-light arborescence, embedded optimally.
    Sl,
    /// Prim–Dijkstra trade-off tree, embedded optimally.
    Pd,
    /// The paper's cost-distance algorithm (with all enhancements).
    Cd,
}

impl SteinerMethod {
    /// All four methods in the paper's table order.
    pub const ALL: [SteinerMethod; 4] =
        [SteinerMethod::L1, SteinerMethod::Sl, SteinerMethod::Pd, SteinerMethod::Cd];

    /// The singleton oracle implementing this method.
    ///
    /// This factory is the only place a `SteinerMethod` value is
    /// inspected; everything downstream holds `&dyn SteinerOracle`.
    pub fn oracle(self) -> &'static dyn SteinerOracle {
        static L1: L1Oracle = L1Oracle;
        static SL: SlOracle = SlOracle;
        static PD: PdOracle = PdOracle;
        static CD: CdOracle = CdOracle::enhanced();
        match self {
            SteinerMethod::L1 => &L1,
            SteinerMethod::Sl => &SL,
            SteinerMethod::Pd => &PD,
            SteinerMethod::Cd => &CD,
        }
    }
}

impl std::fmt::Display for SteinerMethod {
    /// `Display` is the mapped oracle's [`name`](SteinerOracle::name),
    /// keeping the paper's labels in one place.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.oracle().name())
    }
}

/// Error from parsing an unknown [`SteinerMethod`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMethod(pub String);

impl std::fmt::Display for UnknownMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown Steiner method {:?} (want cd, l1, sl, or pd)", self.0)
    }
}

impl std::error::Error for UnknownMethod {}

impl std::str::FromStr for SteinerMethod {
    type Err = UnknownMethod;

    /// Parses the table labels case-insensitively (`cd`, `l1`, `sl`,
    /// `pd`) — the inverse of `Display`, used by `cds-cli --oracle` and
    /// `RouterConfig::set_knob`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cd" => Ok(SteinerMethod::Cd),
            "l1" => Ok(SteinerMethod::L1),
            "sl" => Ok(SteinerMethod::Sl),
            "pd" => Ok(SteinerMethod::Pd),
            _ => Err(UnknownMethod(s.to_string())),
        }
    }
}

/// One oracle request: a net inside its routing window.
///
/// The routing region travels as a `&dyn` [`RoutingSurface`], so one
/// request type covers both window backends: the router's default
/// zero-copy [`WindowView`](cds_graph::WindowView) (edge ids are global
/// — `cost`/`delay` are the chip-wide arrays, unsliced) and a
/// materialized window [`GridGraph`](cds_graph::GridGraph) (edge ids are
/// window-local — `cost`/`delay` are window slices).
#[derive(Clone)]
pub struct OracleRequest<'a> {
    /// The routing region (window view or materialized grid).
    pub surface: &'a dyn RoutingSurface,
    /// Edge prices `c(e)`, indexed by the surface's edge ids (≥ base
    /// costs, so grid future costs stay admissible).
    pub cost: &'a [f64],
    /// Edge delays `d(e)`, indexed by the surface's edge ids.
    pub delay: &'a [f64],
    /// Root pin (surface-local coordinates).
    pub root: Point,
    /// Sink pins (surface-local coordinates).
    pub sinks: &'a [Point],
    /// Delay weights `w(t)` per sink.
    pub weights: &'a [f64],
    /// Delay budgets per sink (ps) — used by SL only; `None` before the
    /// first timing iteration.
    pub budgets: Option<&'a [f64]>,
    /// Bifurcation penalty configuration.
    pub bif: BifurcationConfig,
    /// RNG seed for CD's randomized placement.
    pub seed: u64,
}

impl std::fmt::Debug for OracleRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleRequest")
            .field("root", &self.root)
            .field("sinks", &self.sinks)
            .field("weights", &self.weights)
            .field("bif", &self.bif)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl<'a> OracleRequest<'a> {
    /// Root and sinks as vertices of the routing surface.
    fn vertices(&self) -> (VertexId, Vec<VertexId>) {
        let root = self.surface.vertex_at(self.root);
        let sinks = self.sinks.iter().map(|&p| self.surface.vertex_at(p)).collect();
        (root, sinks)
    }
}

/// Reusable per-worker scratch for oracle calls.
///
/// Holds the CD solver's [`SolverWorkspace`] plus the per-net scratch
/// of the CD oracle itself (future-cost plane buffer, vertex lists);
/// the plane-topology baselines are allocation-light and currently keep
/// no scratch, but the workspace still travels through their calls so
/// the interface stays uniform (and so future baselines can add reuse
/// without an API break).
#[derive(Debug, Default)]
pub struct OracleWorkspace {
    /// The cost-distance solver's session workspace.
    pub solver: SolverWorkspace,
    /// Recycled plane buffer for [`GridFutureCost`].
    plane: Vec<std::sync::atomic::AtomicU32>,
    /// Recycled sink-vertex list.
    sinks: Vec<VertexId>,
    /// Recycled terminal-vertex list.
    terminals: Vec<VertexId>,
    /// Recycled pin list (root + sinks, global points) for the router's
    /// window construction.
    pub(crate) pins: Vec<Point>,
    /// Recycled localized sink-point list.
    pub(crate) local_sinks: Vec<Point>,
    /// Recycled window price slice (materialized backend only).
    pub(crate) cost_buf: Vec<f64>,
    /// Recycled window delay slice (materialized backend only).
    pub(crate) delay_buf: Vec<f64>,
    /// Recycled objective-evaluation scratch (DFS order, subtree
    /// weights, per-node delays, per-sink delay output).
    pub(crate) eval: EvalScratch,
}

impl OracleWorkspace {
    /// An empty workspace; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A per-net Steiner tree constructor, the open interface between the
/// router and the tree algorithms.
///
/// Implementations must be stateless across calls (`&self`, `Sync`):
/// the router shares one oracle between all worker threads and gives
/// each thread its own [`OracleWorkspace`]. Determinism contract: for a
/// fixed request, `route` must return the same tree regardless of the
/// workspace's history (the built-in oracles are bit-reproducible; see
/// `tests/determinism.rs`).
pub trait SteinerOracle: Send + Sync {
    /// The table label (`"CD"`, `"L1"`, …) of this oracle.
    fn name(&self) -> &str;

    /// Whether [`route`](Self::route) reads
    /// [`OracleRequest::budgets`]. The router's dirty-net scheduler
    /// uses this to decide if budget movement can change this oracle's
    /// output: an oracle returning `false` promises its result is
    /// independent of the budget slice, so clean nets need not be
    /// ripped up when only budgets moved. Defaults to `true` (the
    /// conservative answer — external oracles that ignore budgets may
    /// override). Of the built-ins only [`SlOracle`] reads budgets.
    fn uses_budgets(&self) -> bool {
        true
    }

    /// Routes one net, returning the embedded tree (window edge ids).
    ///
    /// # Panics
    ///
    /// May panic on empty sinks or inconsistent slice lengths (the
    /// router guarantees both).
    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree;

    /// Routes one net straight into a [`RoutedForest`] slot — the
    /// arena path the router's rip-up loop drives. The default
    /// implementation routes an owned tree via [`route`](Self::route)
    /// and copies it in (correct for any oracle); implementations that
    /// can write slabs directly (the built-in [`CdOracle`] does,
    /// through the solver session's `solve_into`) override this to skip
    /// the owned materialization entirely. The stored tree must be
    /// identical — node ids, child order, edge order — either way.
    ///
    /// Returns the search-kernel work counters of the call. Oracles
    /// without a label-propagation kernel (the plane-topology
    /// baselines) return the zero default; the router folds whatever
    /// comes back into its run-wide [`RouterStats`](crate::RouterStats).
    ///
    /// # Panics
    ///
    /// Same contract as [`route`](Self::route).
    fn route_into(
        &self,
        req: &OracleRequest<'_>,
        ws: &mut OracleWorkspace,
        forest: &mut RoutedForest,
        slot: usize,
    ) -> SolveStats {
        let tree = self.route(req, ws);
        forest.insert_embedded(slot, &tree);
        SolveStats::default()
    }
}

/// References to oracles are oracles, so `&'static dyn SteinerOracle`
/// (what [`SteinerMethod::oracle`] hands out) can be boxed into the
/// router's `Box<dyn SteinerOracle>` slot without an adapter type.
impl<T: SteinerOracle + ?Sized> SteinerOracle for &'static T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn uses_budgets(&self) -> bool {
        (**self).uses_budgets()
    }
    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree {
        (**self).route(req, ws)
    }
    fn route_into(
        &self,
        req: &OracleRequest<'_>,
        ws: &mut OracleWorkspace,
        forest: &mut RoutedForest,
        slot: usize,
    ) -> SolveStats {
        (**self).route_into(req, ws, forest, slot)
    }
}

/// The paper's cost-distance algorithm as an oracle, running on a
/// reusable solver session.
#[derive(Debug, Clone, Copy)]
pub struct CdOracle {
    /// Enhancement toggles for the underlying solver session.
    pub config: SessionConfig,
}

impl CdOracle {
    /// All §III enhancements on (the paper's "CD" rows).
    pub const fn enhanced() -> Self {
        CdOracle { config: SessionConfig::DEFAULT }
    }

    /// A CD oracle with explicit solver toggles (ablations).
    pub fn with_config(config: SessionConfig) -> Self {
        CdOracle { config }
    }
}

impl Default for CdOracle {
    fn default() -> Self {
        Self::enhanced()
    }
}

impl SteinerOracle for CdOracle {
    fn name(&self) -> &str {
        "CD"
    }

    /// CD prices sinks through delay weights only; the budget slice is
    /// never read.
    fn uses_budgets(&self) -> bool {
        false
    }

    fn route(&self, req: &OracleRequest<'_>, ws: &mut OracleWorkspace) -> EmbeddedTree {
        self.with_solver_request(req, ws, |config, solver_ws, request| {
            Solver::solve_with(config, solver_ws, request).tree
        })
    }

    /// The arena path: the solver session assembles the tree straight
    /// into the forest's slabs (`Solver::solve_into`) — on a warm
    /// workspace this routes a net without touching the allocator.
    fn route_into(
        &self,
        req: &OracleRequest<'_>,
        ws: &mut OracleWorkspace,
        forest: &mut RoutedForest,
        slot: usize,
    ) -> SolveStats {
        self.with_solver_request(req, ws, |config, solver_ws, request| {
            Solver::solve_into(config, solver_ws, request, forest, slot)
        })
    }
}

impl CdOracle {
    /// The shared front of both `route` paths: builds the solver
    /// request from workspace-pooled buffers (vertex lists, future-cost
    /// plane), hands it to `f` with the solver workspace, and returns
    /// the buffers afterwards. One implementation keeps the owned and
    /// arena paths bit-identical by construction — per-net scratch
    /// comes from (and returns to) the workspace, so a warm worker
    /// routes nets without allocating.
    fn with_solver_request<R>(
        &self,
        req: &OracleRequest<'_>,
        ws: &mut OracleWorkspace,
        f: impl for<'r> FnOnce(
            &SessionConfig,
            &mut SolverWorkspace,
            &Request<'r, dyn RoutingSurface + 'r>,
        ) -> R,
    ) -> R {
        let root = req.surface.vertex_at(req.root);
        let mut sinks = std::mem::take(&mut ws.sinks);
        sinks.clear();
        sinks.extend(req.sinks.iter().map(|&p| req.surface.vertex_at(p)));
        let mut terminals = std::mem::take(&mut ws.terminals);
        terminals.clear();
        terminals.extend_from_slice(&sinks);
        terminals.push(root);
        let fc =
            GridFutureCost::with_buffer(req.surface, &terminals, std::mem::take(&mut ws.plane));
        // The quantum hint keeps the bucket queue from scanning the
        // chip-wide cost arrays behind a WindowView: any positive value
        // is exact, and the surface's per-gcell floor is a lower bound
        // on every window edge price.
        let request = Request::new(req.surface, req.cost, req.delay, root, &sinks, req.weights)
            .with_bif(req.bif)
            .with_future(&fc)
            .with_seed(req.seed)
            .with_quantum(req.surface.min_cost_per_gcell());
        let out = f(&self.config, &mut ws.solver, &request);
        ws.plane = fc.into_buffer();
        ws.sinks = sinks;
        ws.terminals = terminals;
        out
    }
}

/// Shared tail of the three plane-topology baselines: the per-unit cost
/// model and the optimal embedding (directly over the surface — no
/// materialization either).
fn embed_plane_topology(req: &OracleRequest<'_>, topo: &Topology) -> EmbeddedTree {
    let (root, sinks) = req.vertices();
    let env = EmbedEnv { graph: req.surface, cost: req.cost, delay: req.delay, bif: req.bif };
    embed_topology(&env, topo, root, &sinks, req.weights)
}

fn plane_model(req: &OracleRequest<'_>) -> PlaneCostModel {
    PlaneCostModel {
        cost_per_unit: req.surface.min_cost_per_gcell(),
        delay_per_unit: req.surface.min_delay_per_gcell(),
        bif: req.bif,
    }
}

/// Short rectilinear Steiner trees (`cds-rsmt`), embedded optimally.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Oracle;

impl SteinerOracle for L1Oracle {
    fn name(&self) -> &str {
        "L1"
    }

    /// Pure rectilinear topology — budgets are never read.
    fn uses_budgets(&self) -> bool {
        false
    }

    fn route(&self, req: &OracleRequest<'_>, _ws: &mut OracleWorkspace) -> EmbeddedTree {
        let topo = rsmt_topology(req.root, req.sinks, 5).binarize();
        embed_plane_topology(req, &topo)
    }
}

/// Shallow-light arborescences, embedded optimally.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlOracle;

impl SteinerOracle for SlOracle {
    fn name(&self) -> &str {
        "SL"
    }

    fn route(&self, req: &OracleRequest<'_>, _ws: &mut OracleWorkspace) -> EmbeddedTree {
        let topo = shallow_light(
            req.root,
            req.sinks,
            req.weights,
            req.budgets,
            &plane_model(req),
            &SlParams::default(),
        );
        embed_plane_topology(req, &topo)
    }
}

/// Prim–Dijkstra trade-off trees, embedded optimally.
#[derive(Debug, Clone, Copy, Default)]
pub struct PdOracle;

impl SteinerOracle for PdOracle {
    fn name(&self) -> &str {
        "PD"
    }

    /// The Prim–Dijkstra trade-off uses weights only — budgets are
    /// never read.
    fn uses_budgets(&self) -> bool {
        false
    }

    fn route(&self, req: &OracleRequest<'_>, _ws: &mut OracleWorkspace) -> EmbeddedTree {
        let topo = prim_dijkstra(req.root, req.sinks, req.weights, &plane_model(req));
        embed_plane_topology(req, &topo)
    }
}

/// Runs one oracle with a throwaway workspace (compatibility wrapper;
/// hot loops should hold an [`OracleWorkspace`] and call
/// [`SteinerOracle::route`]).
///
/// # Panics
///
/// Panics on empty sinks or inconsistent slice lengths (the router
/// guarantees both).
pub fn route_net(method: SteinerMethod, req: &OracleRequest<'_>) -> EmbeddedTree {
    method.oracle().route(req, &mut OracleWorkspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_graph::{GridGraph, GridSpec};

    fn request_on<'a>(
        grid: &'a GridGraph,
        cost: &'a [f64],
        delay: &'a [f64],
        sinks: &'a [Point],
        weights: &'a [f64],
    ) -> OracleRequest<'a> {
        OracleRequest {
            surface: grid,
            cost,
            delay,
            root: Point::new(0, 0),
            sinks,
            weights,
            budgets: None,
            bif: BifurcationConfig::new(5.0, 0.25),
            seed: 1,
        }
    }

    #[test]
    fn all_methods_produce_valid_trees() {
        let grid = GridSpec::uniform(9, 9, 4).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [Point::new(8, 0), Point::new(0, 8), Point::new(8, 8), Point::new(4, 4)];
        let w = [1.0, 2.0, 0.5, 4.0];
        let req = request_on(&grid, &c, &d, &sinks, &w);
        for m in SteinerMethod::ALL {
            let tree = route_net(m, &req);
            tree.validate(grid.graph(), sinks.len()).unwrap_or_else(|e| panic!("{m}: {e}"));
            let ev = tree.evaluate(&c, &d, &w, &req.bif);
            assert!(ev.total.is_finite() && ev.total > 0.0, "{m}: objective {}", ev.total);
        }
    }

    #[test]
    fn single_sink_all_methods_agree() {
        // one sink ⇒ the optimum is the c + w·d shortest path; every
        // method must find it (embedding is exact, CD is exact for t=1)
        let grid = GridSpec::uniform(7, 7, 3).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [Point::new(6, 6)];
        let w = [2.0];
        let req = request_on(&grid, &c, &d, &sinks, &w);
        let mut totals = Vec::new();
        for m in SteinerMethod::ALL {
            let tree = route_net(m, &req);
            totals.push(tree.evaluate(&c, &d, &w, &req.bif).total);
        }
        for t in &totals {
            assert!((t - totals[0]).abs() < 1e-6, "totals {totals:?}");
        }
    }

    #[test]
    fn method_display_matches_paper_labels() {
        let labels: Vec<String> = SteinerMethod::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(labels, vec!["L1", "SL", "PD", "CD"]);
    }

    #[test]
    fn trait_objects_reuse_one_workspace_across_oracles() {
        // the smoke test for the open interface: all four oracles
        // through &dyn SteinerOracle, sharing one workspace
        let grid = GridSpec::uniform(8, 8, 2).build();
        let (c, d) = (grid.graph().base_costs(), grid.graph().delays());
        let sinks = [Point::new(7, 2), Point::new(3, 7)];
        let w = [1.5, 0.5];
        let req = request_on(&grid, &c, &d, &sinks, &w);
        let mut ws = OracleWorkspace::new();
        for m in SteinerMethod::ALL {
            let oracle: &dyn SteinerOracle = m.oracle();
            let tree = oracle.route(&req, &mut ws);
            tree.validate(grid.graph(), sinks.len())
                .unwrap_or_else(|e| panic!("{}: {e}", oracle.name()));
        }
        assert_eq!(ws.solver.solves(), 1, "only CD touches the solver workspace");
    }
}
