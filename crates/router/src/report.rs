//! Canonical JSON rendering of a [`RoutingOutcome`].
//!
//! One definition shared by every consumer that must agree
//! byte-for-byte: `cds-cli route` prints exactly this, and `cds-serve`
//! archives exactly this as a job's result — which is what makes "a job
//! submitted over HTTP returns the same JSON as a local route" a
//! testable contract rather than two formatters drifting apart. All
//! deterministic fields (metrics, stats counters, checksum) are
//! bit-stable across runs; the wall-clock and arena observability
//! fields (`walltime_s`, `iter_wall_s`, `route_wall_s`,
//! `peak_arena_bytes`) are the only ones that vary between identical
//! runs.

use crate::{RouterConfig, RouterStats, RoutingOutcome};
use cds_instgen::Chip;
use std::fmt::Write as _;

/// JSON-safe float: shortest-round-trip for finite values, `null`
/// otherwise (JSON has no inf/NaN literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// JSON string escaping — chip names are free-form tokens and may
/// contain `"` or `\`.
pub fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The run-level aggregates block: total wall seconds (whole run and
/// the routing loop's share), peak arena bytes across iterations, and
/// total oracle calls — the headline numbers per-iteration arrays bury.
fn totals_json(stats: &RouterStats, walltime_s: f64) -> String {
    format!(
        "{{\"wall_s\": {}, \"route_wall_s\": {}, \"peak_arena_bytes\": {}, \
         \"oracle_calls\": {}, \"iterations_completed\": {}}}",
        json_f64(walltime_s),
        json_f64(stats.route_wall_s()),
        stats.peak_arena_bytes,
        stats.total_rerouted(),
        stats.iterations_completed()
    )
}

/// Renders the full result document: chip/grid identification, the
/// resolved configuration, metrics, run-level totals, rip-up stats, and
/// the outcome checksum.
pub fn outcome_json(chip: &Chip, config: &RouterConfig, out: &RoutingOutcome) -> String {
    let spec = chip.grid.spec();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"chip\": \"{}\",\n  \"nets\": {},\n  \"grid\": {{\"nx\": {}, \"ny\": {}, \
         \"layers\": {}, \"edges\": {}}},\n",
        json_escape(&chip.name),
        chip.nets.len(),
        spec.nx,
        spec.ny,
        spec.layers.len(),
        chip.grid.graph().num_edges()
    );
    let _ = writeln!(
        s,
        "  \"config\": {{\"oracle\": \"{}\", \"threads\": {}, \"iterations\": {}, \
         \"incremental\": {}, \"price_tol\": {}, \"queue\": \"{}\", \"batch\": {}, \
         \"shards\": {}, \"checkpoint_every\": {}}},",
        config.method,
        config.threads,
        config.iterations,
        config.incremental,
        json_f64(config.price_tol),
        config.queue,
        config.batch,
        config.shards,
        config.checkpoint_every
    );
    let m = &out.metrics;
    let _ = writeln!(
        s,
        "  \"metrics\": {{\"ws_ps\": {}, \"tns_ps\": {}, \"ace4_pct\": {}, \
         \"wirelength_m\": {}, \"vias\": {}, \"walltime_s\": {}}},",
        json_f64(m.ws),
        json_f64(m.tns),
        json_f64(m.ace4),
        json_f64(m.wl_m),
        m.vias,
        json_f64(m.walltime_s)
    );
    let st = &out.stats;
    let _ = writeln!(s, "  \"totals\": {},", totals_json(st, m.walltime_s));
    let per: Vec<String> = st.rerouted_per_iter.iter().map(|r| r.to_string()).collect();
    let walls: Vec<String> = st.iter_wall_s.iter().map(|&w| json_f64(w)).collect();
    let _ = writeln!(
        s,
        "  \"stats\": {{\"rerouted_per_iter\": [{}], \"oracle_calls\": {}, \
         \"dirty\": {{\"fresh\": {}, \"overflow\": {}, \"timing\": {}, \"price\": {}, \
         \"weight\": {}, \"budget\": {}}}, \"usage_recounts\": {}, \"sta_nodes_retimed\": {}, \
         \"kernel\": {{\"settled\": {}, \"pushed\": {}, \"popped\": {}, \"decreased\": {}, \
         \"bucket_scans\": {}}}, \
         \"iter_wall_s\": [{}], \"peak_arena_bytes\": {}, \"cancelled\": {}}},",
        per.join(", "),
        st.total_rerouted(),
        st.dirty_fresh,
        st.dirty_overflow,
        st.dirty_timing,
        st.dirty_price,
        st.dirty_weight,
        st.dirty_budget,
        st.usage_recounts,
        st.sta_nodes_retimed,
        st.kernel_settled,
        st.kernel_pushed,
        st.kernel_popped,
        st.kernel_decreased,
        st.kernel_bucket_scans,
        walls.join(", "),
        st.peak_arena_bytes,
        st.cancelled
    );
    let _ = write!(s, "  \"checksum\": \"{:#018x}\"\n}}", out.checksum());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Router, RouterConfig};
    use cds_instgen::ChipSpec;

    #[test]
    fn outcome_json_carries_totals_and_checksum() {
        let chip = ChipSpec { num_nets: 12, ..ChipSpec::small_test(3) }.generate();
        let config = RouterConfig { iterations: 2, threads: 2, ..RouterConfig::default() };
        let out = Router::new(&chip, config.clone()).run();
        let json = outcome_json(&chip, &config, &out);
        for key in [
            "\"totals\":",
            "\"wall_s\":",
            "\"route_wall_s\":",
            "\"peak_arena_bytes\":",
            "\"oracle_calls\":",
            "\"iterations_completed\": 2",
            "\"cancelled\": false",
            "\"queue\":",
            "\"batch\": false",
            "\"shards\": 1",
            "\"checkpoint_every\": 0",
            "\"kernel\":",
            "\"settled\":",
            "\"bucket_scans\":",
        ] {
            assert!(json.contains(key), "missing {key} in: {json}");
        }
        assert!(json.contains(&format!("{:#018x}", out.checksum())));
        // The default config routes with the CD oracle, whose kernel
        // counters must be non-zero in the report.
        assert!(!json.contains("\"kernel\": {\"settled\": 0,"), "kernel counters stayed zero");
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
