//! Dirty-net scheduling for incremental rip-up & re-route.
//!
//! After the first full iteration, most of a Lagrangean routing run is
//! redundant: congestion localizes, and rerouting a net whose inputs
//! did not change reproduces the tree it already has. The
//! [`DirtyTracker`] decides, per iteration, which nets are *dirty* —
//! must be ripped up and rerouted — and which may keep their previous
//! [`RoutedNet`](crate::RoutedNet) verbatim.
//!
//! A net is dirty when any of these hold (checked in this order, which
//! is also the priority order of the stats counters):
//!
//! 1. **fresh** — it has never been routed;
//! 2. **overflow** — one of its used edges exceeds capacity
//!    (PathFinder's rip-up rule);
//! 3. **timing** — one of its sinks has negative slack;
//! 4. **price** — the accumulated relative price change inside its
//!    routing window since it was last routed exceeds
//!    [`RouterConfig::price_tol`](crate::RouterConfig::price_tol);
//! 5. **weight / budget** — its sink delay weights or SL budgets moved
//!    beyond the same tolerance relative to the values it was last
//!    routed with.
//!
//! # Exactness at `price_tol = 0`
//!
//! With a zero tolerance, conditions 4-5 degenerate to "any bit
//! changed", so a *clean* net is one whose oracle inputs (window
//! prices, weights, budgets — window, delays, penalty config and seed
//! are fixed per net) are bit-identical to the values it was last
//! routed with. Rerouting such a net would reproduce its tree exactly
//! (oracles are deterministic functions of the request), which is what
//! makes incremental mode provably bit-identical to the full-reroute
//! reference at `price_tol = 0` (pinned by `tests/incremental.rs`).
//! Conditions 1-3 only ever *add* reroutes and cannot break this.
//!
//! # Window price drift without per-net snapshots
//!
//! Storing each net's window price vector would cost more memory than
//! the routes themselves. Instead the tracker keeps one global copy of
//! the previous iteration's prices and a per-gcell *change plane*: each
//! iteration it stamps the maximum relative per-edge price change onto
//! both endpoint gcells (O(edges)), then folds the plane's maximum over
//! every net's window rectangle into that net's accumulated drift
//! (O(Σ window areas) of multiply-free compares — far below one oracle
//! call per net). Stamping both endpoints makes the test conservative:
//! every edge of the net's window view has both endpoints inside the
//! rectangle, so a zero drift certifies bit-identical window prices.

use cds_graph::{EdgeId, GridGraph};
use cds_instgen::Chip;
use cds_sta::TimingReport;
use cds_topo::RoutedForest;

/// Why a net was scheduled for rip-up (stats bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DirtyCause {
    /// Never routed (or full-reroute mode).
    Fresh,
    /// A used edge exceeds capacity.
    Overflow,
    /// A sink has negative slack.
    Timing,
    /// Window price drift beyond tolerance.
    Price,
    /// Delay weights moved beyond tolerance.
    Weight,
    /// SL budgets moved beyond tolerance (or appeared/vanished).
    Budget,
}

/// Relative change between two positive prices/budgets; zero iff the
/// values are equal, so a zero tolerance means "any change".
#[inline]
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-300)
}

/// Relative change between two delay weights. Weights clamp to
/// `[1e-3, 2]`, so the scale floor of 1 keeps the decay of an
/// already-tiny weight from reading as a huge relative change — the
/// absolute effect on the routing objective is what matters. Still zero
/// iff equal.
#[inline]
fn rel_weight(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Per-net dirtiness state for the incremental scheduler.
#[derive(Debug)]
pub(crate) struct DirtyTracker {
    price_tol: f64,
    nx: u32,
    /// Per-net window rectangle `(x0, y0, x1, y1)`, clamped — exactly
    /// the bounds `WindowView::around` derives from the net's pins.
    rects: Vec<(u32, u32, u32, u32)>,
    /// Accumulated window price drift since the net was last routed.
    drift: Vec<f64>,
    /// Weights the net was last routed with.
    weight_ref: Vec<Vec<f64>>,
    /// Budgets the net was last routed with.
    budget_ref: Vec<Option<Vec<f64>>>,
    routed: Vec<bool>,
    /// Net touches an overflowed edge (set after usage accounting).
    overflow_touch: Vec<bool>,
    /// Net has a negative-slack sink (set after STA).
    neg_slack: Vec<bool>,
    /// Previous iteration's full price vector.
    prev_prices: Vec<f64>,
    /// Per-gcell max relative price change this iteration (scratch).
    plane: Vec<f64>,
}

impl DirtyTracker {
    pub(crate) fn new(chip: &Chip, window_margin: u32, price_tol: f64) -> Self {
        let spec = chip.grid.spec();
        let (nx, ny) = (spec.nx, spec.ny);
        let n = chip.nets.len();
        // the exactness certificate requires these rects to cover
        // exactly the windows nets route in — derive them through the
        // same single source of truth WindowView::around uses
        let mut pins = Vec::new();
        let rects = chip
            .nets
            .iter()
            .map(|net| {
                pins.clear();
                pins.push(net.root);
                pins.extend_from_slice(&net.sinks);
                cds_graph::window_bounds(&pins, window_margin, nx, ny)
            })
            .collect();
        DirtyTracker {
            price_tol,
            nx,
            rects,
            drift: vec![0.0; n],
            weight_ref: vec![Vec::new(); n],
            budget_ref: vec![None; n],
            routed: vec![false; n],
            overflow_touch: vec![false; n],
            neg_slack: vec![false; n],
            prev_prices: Vec::new(),
            plane: vec![0.0; (nx * ny) as usize],
        }
    }

    /// Records the first iteration's price vector (nothing to diff yet).
    pub(crate) fn prime_prices(&mut self, prices: &[f64]) {
        self.prev_prices.clear();
        self.prev_prices.extend_from_slice(prices);
    }

    /// Folds this iteration's price movement into every net's
    /// accumulated drift (see the module docs for the plane trick).
    pub(crate) fn accumulate_drift(&mut self, grid: &GridGraph, prices: &[f64]) {
        let g = grid.graph();
        self.plane.fill(0.0);
        let mut any = false;
        for (e, (&old, &new)) in self.prev_prices.iter().zip(prices).enumerate() {
            let r = rel(old, new);
            if r > 0.0 {
                any = true;
                let ep = g.endpoints(e as EdgeId);
                for v in [ep.u, ep.v] {
                    let c = grid.coord(v);
                    let idx = (c.y * self.nx + c.x) as usize;
                    if r > self.plane[idx] {
                        self.plane[idx] = r;
                    }
                }
            }
        }
        if any {
            for (i, &(x0, y0, x1, y1)) in self.rects.iter().enumerate() {
                let mut mx = 0.0f64;
                for y in y0..=y1 {
                    let row = (y * self.nx) as usize;
                    for x in x0 as usize..=x1 as usize {
                        if self.plane[row + x] > mx {
                            mx = self.plane[row + x];
                        }
                    }
                }
                self.drift[i] += mx;
            }
        }
        self.prev_prices.copy_from_slice(prices);
    }

    /// Recomputes the per-net overflow flags from the current usage —
    /// a linear walk over each net's contiguous used-edge span in the
    /// forest, no per-net heap pointers chased.
    pub(crate) fn set_overflow_touch(&mut self, forest: &RoutedForest, overflowed: &[bool]) {
        for i in 0..forest.num_slots() {
            self.overflow_touch[i] =
                forest.used_edges(i).iter().any(|&(e, _)| overflowed[e as usize]);
        }
    }

    /// Recomputes the per-net negative-slack flags from a timing report.
    pub(crate) fn set_neg_slack(&mut self, sink_node: &[Vec<u32>], report: &TimingReport) {
        for (i, sinks) in sink_node.iter().enumerate() {
            self.neg_slack[i] = sinks.iter().any(|&s| {
                let sl = report.slack[s as usize];
                sl.is_finite() && sl < 0.0
            });
        }
    }

    /// Whether net `i` has been routed at least once.
    pub(crate) fn has_routed(&self, i: usize) -> bool {
        self.routed[i]
    }

    /// Net `i`'s accumulated window price drift since its last route
    /// (checkpoint serialization).
    pub(crate) fn drift(&self, i: usize) -> f64 {
        self.drift[i]
    }

    /// Restores net `i`'s scheduler state from a checkpoint: the
    /// routed flag, the accumulated drift, and the weight/budget
    /// references of its last actual route. The derived flags
    /// (overflow touch, negative slack) and the price baseline
    /// ([`prime_prices`](Self::prime_prices)) are restored separately —
    /// they are recomputable from the restored routing/timing state.
    pub(crate) fn restore_net(
        &mut self,
        i: usize,
        routed: bool,
        drift: f64,
        weight_ref: &[f64],
        budget_ref: Option<&[f64]>,
    ) {
        self.routed[i] = routed;
        self.drift[i] = drift;
        self.weight_ref[i].clear();
        self.weight_ref[i].extend_from_slice(weight_ref);
        self.budget_ref[i] = budget_ref.map(<[f64]>::to_vec);
    }

    /// The weights net `i` was last routed with (what a harvest must
    /// report for a net whose kept route predates the final iteration).
    pub(crate) fn last_routed_weights(&self, i: usize) -> &[f64] {
        &self.weight_ref[i]
    }

    /// The budgets net `i` was last routed with.
    pub(crate) fn last_routed_budgets(&self, i: usize) -> Option<&[f64]> {
        self.budget_ref[i].as_deref()
    }

    /// Snapshots the inputs net `i` was just routed with and clears its
    /// accumulated drift.
    pub(crate) fn note_routed(&mut self, i: usize, weights: &[f64], budgets: Option<&[f64]>) {
        self.routed[i] = true;
        self.drift[i] = 0.0;
        self.weight_ref[i].clear();
        self.weight_ref[i].extend_from_slice(weights);
        match (budgets, &mut self.budget_ref[i]) {
            (Some(b), Some(r)) => {
                r.clear();
                r.extend_from_slice(b);
            }
            (Some(b), slot @ None) => *slot = Some(b.to_vec()),
            (None, slot) => *slot = None,
        }
    }

    /// Whether net `i` must be rerouted this iteration, and why.
    /// `budget_sensitive` is the oracle's
    /// [`uses_budgets`](crate::SteinerOracle::uses_budgets): when the
    /// oracle never reads budgets, budget movement cannot change its
    /// output and is ignored.
    pub(crate) fn dirty_cause(
        &self,
        i: usize,
        weights: &[f64],
        budgets: Option<&[f64]>,
        budget_sensitive: bool,
    ) -> Option<DirtyCause> {
        if !self.routed[i] {
            return Some(DirtyCause::Fresh);
        }
        if self.overflow_touch[i] {
            return Some(DirtyCause::Overflow);
        }
        if self.neg_slack[i] {
            return Some(DirtyCause::Timing);
        }
        if self.drift[i] > self.price_tol {
            return Some(DirtyCause::Price);
        }
        let wd = self.weight_ref[i]
            .iter()
            .zip(weights)
            .map(|(&a, &b)| rel_weight(a, b))
            .fold(0.0f64, f64::max);
        if wd > self.price_tol {
            return Some(DirtyCause::Weight);
        }
        if budget_sensitive {
            let bd = match (self.budget_ref[i].as_deref(), budgets) {
                (None, None) => 0.0,
                (Some(r), Some(b)) => {
                    r.iter().zip(b).map(|(&a, &b)| rel(a, b)).fold(0.0f64, f64::max)
                }
                _ => f64::INFINITY,
            };
            if bd > self.price_tol {
                return Some(DirtyCause::Budget);
            }
        }
        None
    }
}
