//! Borah–Owens–Irwin edge-based rectilinear Steiner tree improvement.
//!
//! Start from the L1 MST; repeatedly find a (vertex `v`, tree edge
//! `(a, b)`) pair such that replacing `(a, b)` by a star through the
//! component-wise median `s = med(v, a, b)` — and deleting the longest
//! edge on the tree path from `v` to the `(a, b)` side it connects to —
//! shortens the tree. Apply the best positive-gain move, repeat until no
//! move improves. Quality is close to iterated 1-Steiner at a fraction of
//! the cost.

use crate::mst::{l1_mst, tree_length};
use cds_geom::{l1_dist, Point};

/// An unrooted rectilinear Steiner tree: original terminals first, then
/// added Steiner points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsmtResult {
    /// Terminal points (input order) followed by Steiner points.
    pub points: Vec<Point>,
    /// Tree edges as index pairs into `points`.
    pub edges: Vec<(u32, u32)>,
    /// Total L1 length.
    pub length: i64,
}

/// Component-wise median of three points — the meeting point of the
/// rectilinear star connecting them.
fn median3(a: Point, b: Point, c: Point) -> Point {
    let mx = {
        let mut xs = [a.x, b.x, c.x];
        xs.sort_unstable();
        xs[1]
    };
    let my = {
        let mut ys = [a.y, b.y, c.y];
        ys.sort_unstable();
        ys[1]
    };
    Point::new(mx, my)
}

/// Builds a short rectilinear Steiner tree over `points` (BOI heuristic).
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// ```
/// use cds_geom::Point;
/// use cds_rsmt::rectilinear_steiner_tree;
/// let pts = [Point::new(0, 0), Point::new(4, 0), Point::new(2, 3)];
/// let t = rectilinear_steiner_tree(&pts);
/// assert_eq!(t.length, 7); // star through (2, 0)
/// ```
pub fn rectilinear_steiner_tree(points: &[Point]) -> RsmtResult {
    assert!(!points.is_empty(), "RSMT of an empty point set");
    let mut pts: Vec<Point> = points.to_vec();
    let mut edges = l1_mst(&pts);
    // A bounded number of improvement rounds; each strictly reduces
    // length, so k rounds is a generous cap.
    for _ in 0..pts.len().max(4) {
        match best_boi_move(&pts, &edges) {
            Some(mv) if mv.gain > 0 => apply_move(&mut pts, &mut edges, mv),
            _ => break,
        }
    }
    prune_useless_steiner(&mut pts, &mut edges, points.len());
    let length = tree_length(&pts, &edges);
    RsmtResult { points: pts, edges, length }
}

#[derive(Debug, Clone, Copy)]
struct BoiMove {
    v: u32,
    edge_idx: usize,
    remove_idx: usize,
    steiner: Point,
    gain: i64,
}

/// Scans all (vertex, edge) pairs for the highest-gain BOI move.
fn best_boi_move(pts: &[Point], edges: &[(u32, u32)]) -> Option<BoiMove> {
    let k = pts.len();
    let mut adj: Vec<Vec<(u32, usize)>> = vec![Vec::new(); k];
    for (i, &(a, b)) in edges.iter().enumerate() {
        adj[a as usize].push((b, i));
        adj[b as usize].push((a, i));
    }
    let mut best: Option<BoiMove> = None;
    for (ei, &(a, b)) in edges.iter().enumerate() {
        // Split the tree at edge ei; find, for every vertex v, the
        // maximum edge on the path from v to this edge's nearer endpoint.
        // One DFS from each endpoint (skipping ei) gives both sides.
        let (side_a, max_a) = paths_from(pts, &adj, a, ei);
        let (side_b, max_b) = paths_from(pts, &adj, b, ei);
        for v in 0..k as u32 {
            if v == a || v == b {
                continue;
            }
            let s = median3(pts[v as usize], pts[a as usize], pts[b as usize]);
            let new_len = l1_dist(pts[v as usize], s)
                + l1_dist(pts[a as usize], s)
                + l1_dist(pts[b as usize], s);
            let old_edge = l1_dist(pts[a as usize], pts[b as usize]);
            // v sits on exactly one side; the cycle closes through that side
            let (reach, max_on_path) =
                if side_a[v as usize] { (&side_a, &max_a) } else { (&side_b, &max_b) };
            debug_assert!(reach[v as usize]);
            let (rm_len, rm_idx) = max_on_path[v as usize];
            let gain = old_edge + rm_len - new_len;
            if gain > 0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(BoiMove { v, edge_idx: ei, remove_idx: rm_idx, steiner: s, gain });
            }
        }
    }
    best
}

/// DFS from `start` avoiding edge `skip`; returns reachability plus, per
/// vertex, the longest edge (length, index) on the path from `start`.
#[allow(clippy::type_complexity)]
fn paths_from(
    pts: &[Point],
    adj: &[Vec<(u32, usize)>],
    start: u32,
    skip: usize,
) -> (Vec<bool>, Vec<(i64, usize)>) {
    let k = pts.len();
    let mut reach = vec![false; k];
    let mut max_edge = vec![(0i64, usize::MAX); k];
    let mut stack = vec![start];
    reach[start as usize] = true;
    while let Some(u) = stack.pop() {
        for &(w, ei) in &adj[u as usize] {
            if ei == skip || reach[w as usize] {
                continue;
            }
            reach[w as usize] = true;
            let len = l1_dist(pts[u as usize], pts[w as usize]);
            let cand = if len > max_edge[u as usize].0 { (len, ei) } else { max_edge[u as usize] };
            max_edge[w as usize] = cand;
            stack.push(w);
        }
    }
    (reach, max_edge)
}

fn apply_move(pts: &mut Vec<Point>, edges: &mut Vec<(u32, u32)>, mv: BoiMove) {
    let (a, b) = edges[mv.edge_idx];
    let s_idx = pts.len() as u32;
    pts.push(mv.steiner);
    // remove the split edge and the cycle's max edge (remove larger
    // index first so the smaller index stays valid)
    let (hi, lo) = if mv.edge_idx > mv.remove_idx {
        (mv.edge_idx, mv.remove_idx)
    } else {
        (mv.remove_idx, mv.edge_idx)
    };
    debug_assert_ne!(hi, lo, "cannot remove the same edge twice");
    edges.swap_remove(hi);
    edges.swap_remove(lo);
    edges.push((a, s_idx));
    edges.push((b, s_idx));
    edges.push((mv.v, s_idx));
}

/// Removes Steiner points of degree ≤ 2 (degree-2 ones are spliced; in
/// L1 a 3-point median guarantees no detour is introduced when the point
/// lies on the bounding box of its neighbours, which medians do).
fn prune_useless_steiner(pts: &mut Vec<Point>, edges: &mut Vec<(u32, u32)>, num_terminals: usize) {
    loop {
        let k = pts.len();
        let mut deg = vec![0usize; k];
        for &(a, b) in edges.iter() {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        // find a removable Steiner point
        let victim = (num_terminals..k).find(|&i| deg[i] <= 2);
        let Some(vi) = victim else { break };
        if deg[vi] == 0 {
            // isolated: drop point by swap with last, fixing indices
        } else if deg[vi] == 1 {
            edges.retain(|&(a, b)| a as usize != vi && b as usize != vi);
        } else {
            // splice: connect the two neighbours directly
            let nbrs: Vec<u32> = edges
                .iter()
                .filter(|&&(a, b)| a as usize == vi || b as usize == vi)
                .map(|&(a, b)| if a as usize == vi { b } else { a })
                .collect();
            edges.retain(|&(a, b)| a as usize != vi && b as usize != vi);
            edges.push((nbrs[0], nbrs[1]));
        }
        // remove the point: swap-remove and rename the moved index
        let last = pts.len() - 1;
        pts.swap_remove(vi);
        if vi != last {
            for e in edges.iter_mut() {
                if e.0 as usize == last {
                    e.0 = vi as u32;
                }
                if e.1 as usize == last {
                    e.1 = vi as u32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_geom::hpwl;
    use proptest::prelude::*;

    #[test]
    fn median_is_componentwise() {
        let m = median3(Point::new(0, 5), Point::new(3, 0), Point::new(7, 2));
        assert_eq!(m, Point::new(3, 2));
    }

    #[test]
    fn three_point_star() {
        let pts = [Point::new(0, 0), Point::new(4, 0), Point::new(2, 3)];
        let t = rectilinear_steiner_tree(&pts);
        // MST = 4 + 5 = 9; star through (2,0): 2 + 2 + 3 = 7
        assert_eq!(t.length, 7);
    }

    #[test]
    fn square_gains_over_mst() {
        let pts = [Point::new(0, 0), Point::new(4, 0), Point::new(0, 4), Point::new(4, 4)];
        let mst_len = tree_length(&pts, &l1_mst(&pts));
        let t = rectilinear_steiner_tree(&pts);
        assert_eq!(mst_len, 12);
        assert!(t.length <= 12, "BOI must not lose to MST");
    }

    fn assert_valid_tree(t: &RsmtResult, num_terminals: usize) {
        // spanning + acyclic over the points that appear
        let k = t.points.len();
        assert_eq!(t.edges.len(), k - 1, "tree edge count");
        let mut parent: Vec<u32> = (0..k as u32).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &(a, b) in &t.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            assert_ne!(ra, rb, "cycle");
            parent[ra as usize] = rb;
        }
        let r0 = find(&mut parent, 0);
        for i in 0..num_terminals as u32 {
            assert_eq!(find(&mut parent, i), r0, "terminal {i} disconnected");
        }
    }

    proptest! {
        /// BOI output is a valid tree over all terminals, never longer
        /// than the MST, and never shorter than half the HPWL.
        #[test]
        fn boi_invariants(raw in proptest::collection::vec((-40i32..40, -40i32..40), 1..16)) {
            let pts: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let mst_len = tree_length(&pts, &l1_mst(&pts));
            let t = rectilinear_steiner_tree(&pts);
            assert_valid_tree(&t, pts.len());
            prop_assert!(t.length <= mst_len);
            prop_assert!(2 * t.length >= hpwl(&pts));
        }
    }
}
