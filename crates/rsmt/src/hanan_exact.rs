//! Exact RSMT via Dreyfus–Wagner on the Hanan grid.
//!
//! By Hanan's theorem, some optimal rectilinear Steiner tree only uses
//! Steiner points on the grid induced by the terminals' coordinates, so
//! running the exact graph-Steiner algorithm on that grid solves the
//! plane problem exactly. Practical up to ~7 distinct terminals.

use crate::boi::RsmtResult;
use cds_exact::steiner_minimal_tree;
use cds_geom::{hanan_xs_ys, Point};
use cds_graph::{EdgeAttrs, GraphBuilder};

/// Exact rectilinear Steiner minimal tree over `points`.
///
/// The result keeps the input terminals (in order) followed by the grid
/// Steiner points the optimum uses.
///
/// # Panics
///
/// Panics if `points` is empty or has more than 16 distinct positions
/// (the underlying DP is exponential).
pub fn exact_rsmt(points: &[Point]) -> RsmtResult {
    assert!(!points.is_empty(), "RSMT of an empty point set");
    let (xs, ys) = hanan_xs_ys(points);
    let (nx, ny) = (xs.len(), ys.len());
    let idx = |xi: usize, yi: usize| (yi * nx + xi) as u32;
    // build the Hanan grid graph with L1 edge lengths
    let mut b = GraphBuilder::new(nx * ny);
    for yi in 0..ny {
        for xi in 0..nx {
            if xi + 1 < nx {
                let len = (xs[xi + 1] - xs[xi]) as f64;
                b.add_edge(idx(xi, yi), idx(xi + 1, yi), EdgeAttrs::wire(len, 0.0));
            }
            if yi + 1 < ny {
                let len = (ys[yi + 1] - ys[yi]) as f64;
                b.add_edge(idx(xi, yi), idx(xi, yi + 1), EdgeAttrs::wire(len, 0.0));
            }
        }
    }
    let g = b.build();
    let locate = |p: Point| {
        // INVARIANT: xs holds every terminal x coordinate by Hanan-grid construction.
        let xi = xs.binary_search(&p.x).expect("terminal x on grid");
        // INVARIANT: ys holds every terminal y coordinate by Hanan-grid construction.
        let yi = ys.binary_search(&p.y).expect("terminal y on grid");
        idx(xi, yi)
    };
    let mut terminals: Vec<u32> = points.iter().map(|&p| locate(p)).collect();
    terminals.sort_unstable();
    terminals.dedup();
    let smt = steiner_minimal_tree(&g, &terminals, |e| g.edge(e).base_cost);

    // Convert the grid edges back to a point tree. Grid vertices used by
    // the tree that are not terminals become Steiner points; degree-2
    // pass-throughs on straight segments remain (harmless).
    let vertex_point = |v: u32| {
        let (xi, yi) = ((v as usize) % nx, (v as usize) / nx);
        Point::new(xs[xi], ys[yi])
    };
    let mut out_points: Vec<Point> = points.to_vec();
    let mut index_of = std::collections::HashMap::new();
    // map each used grid vertex to an output index, preferring an input
    // terminal slot when the positions coincide
    let mut edges_out = Vec::with_capacity(smt.edges.len());
    let mut map_vertex = |v: u32, out_points: &mut Vec<Point>| -> u32 {
        *index_of.entry(v).or_insert_with(|| {
            let p = vertex_point(v);
            match points.iter().position(|&q| q == p) {
                Some(i) => i as u32,
                None => {
                    out_points.push(p);
                    (out_points.len() - 1) as u32
                }
            }
        })
    };
    for &e in &smt.edges {
        let ep = g.endpoints(e);
        let a = map_vertex(ep.u, &mut out_points);
        let bb = map_vertex(ep.v, &mut out_points);
        edges_out.push((a, bb));
    }
    // duplicate input points: connect them with zero-length edges to
    // their representative so every terminal index is in the tree
    let mut seen_pos = std::collections::HashMap::new();
    for (i, &p) in points.iter().enumerate() {
        match seen_pos.entry(p) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i as u32);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                edges_out.push((*e.get(), i as u32));
            }
        }
    }
    let length = smt.cost.round() as i64;
    RsmtResult { points: out_points, edges: edges_out, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boi::rectilinear_steiner_tree;
    use crate::mst::tree_length;
    use proptest::prelude::*;

    #[test]
    fn square_optimum_is_six() {
        let pts = [Point::new(0, 0), Point::new(2, 0), Point::new(0, 2), Point::new(2, 2)];
        let t = exact_rsmt(&pts);
        assert_eq!(t.length, 6);
        assert_eq!(tree_length(&t.points, &t.edges), 6);
    }

    #[test]
    fn cross_medians_help() {
        // plus-sign terminals: exact tree = 8 (through center)
        let pts = [Point::new(2, 0), Point::new(2, 4), Point::new(0, 2), Point::new(4, 2)];
        let t = exact_rsmt(&pts);
        assert_eq!(t.length, 8);
    }

    #[test]
    fn all_same_point() {
        let pts = [Point::new(3, 3); 3];
        let t = exact_rsmt(&pts);
        assert_eq!(t.length, 0);
        // all three indices connected via zero-length edges
        assert_eq!(t.edges.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The heuristic is never better than the exact optimum, and the
        /// exact result is a consistent tree.
        #[test]
        fn exact_lower_bounds_heuristic(
            raw in proptest::collection::hash_set((-10i32..10, -10i32..10), 2..6)
        ) {
            let pts: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let exact = exact_rsmt(&pts);
            let heur = rectilinear_steiner_tree(&pts);
            prop_assert!(exact.length <= heur.length,
                "exact {} > heuristic {}", exact.length, heur.length);
            prop_assert_eq!(tree_length(&exact.points, &exact.edges), exact.length);
        }
    }
}
