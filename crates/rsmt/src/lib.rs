#![forbid(unsafe_code)]
//! Rectilinear Steiner tree construction (the "L1" baseline of §IV-A).
//!
//! The first comparison routine of the paper "just computes a short L1
//! Steiner tree and embeds it optimally into the global routing graph".
//! This crate builds those short L1 trees:
//!
//! * [`l1_mst`] — Prim's algorithm over the L1 metric closure, the
//!   starting point (and a 1.5-approximation of the RSMT by Hwang's
//!   theorem);
//! * [`rectilinear_steiner_tree`] — Borah–Owens–Irwin edge-based
//!   improvement on top of the MST, introducing Steiner points at
//!   component-wise medians (within a few percent of optimal on random
//!   instances);
//! * [`exact_rsmt`] — exact RSMT via Dreyfus–Wagner on the Hanan grid for
//!   small terminal counts;
//! * [`rsmt_topology`] — the net-level entry point: an r-arborescence
//!   [`Topology`] for a root and sinks, exact when small, heuristic
//!   otherwise.
//!
//! # Examples
//!
//! ```
//! use cds_geom::Point;
//! use cds_rsmt::rectilinear_steiner_tree;
//!
//! // 4 corners of a square: the RSMT is 2 units shorter than the MST
//! let pts = [Point::new(0, 0), Point::new(2, 0), Point::new(0, 2), Point::new(2, 2)];
//! let t = rectilinear_steiner_tree(&pts);
//! assert!(t.length <= 6);
//! ```

pub mod boi;
pub mod hanan_exact;
pub mod mst;

pub use boi::{rectilinear_steiner_tree, RsmtResult};
pub use hanan_exact::exact_rsmt;
pub use mst::l1_mst;

use cds_geom::Point;
use cds_topo::{NodeId, Topology};

/// Builds an r-arborescence topology connecting `root` to `sinks` with a
/// short rectilinear Steiner tree: exact (Dreyfus–Wagner on the Hanan
/// grid) when `root + sinks` has at most `exact_threshold` distinct
/// points, Borah–Owens–Irwin heuristic otherwise.
///
/// Sinks at identical positions are all attached; sink `i` of the result
/// corresponds to `sinks[i]`.
///
/// # Panics
///
/// Panics if `sinks` is empty.
pub fn rsmt_topology(root: Point, sinks: &[Point], exact_threshold: usize) -> Topology {
    assert!(!sinks.is_empty(), "a net needs at least one sink");
    let mut pts = Vec::with_capacity(sinks.len() + 1);
    pts.push(root);
    pts.extend_from_slice(sinks);
    let mut distinct = pts.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let result = if distinct.len() <= exact_threshold.min(7) {
        exact_rsmt(&pts)
    } else {
        rectilinear_steiner_tree(&pts)
    };
    result_to_topology(&result, sinks.len())
}

/// Roots an unrooted [`RsmtResult`] at point 0 and labels points
/// `1..=num_sinks` as sinks.
fn result_to_topology(r: &RsmtResult, num_sinks: usize) -> Topology {
    // adjacency over result points
    let n = r.points.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &r.edges {
        adj[a as usize].push(b as usize);
        adj[b as usize].push(a as usize);
    }
    let mut topo = Topology::new(r.points[0]);
    let mut node_of: Vec<Option<NodeId>> = vec![None; n];
    node_of[0] = Some(topo.root());
    // BFS from the root point
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut visited = vec![false; n];
    visited[0] = true;
    while let Some(u) = queue.pop_front() {
        // INVARIANT: a node is mapped when enqueued (the root before the loop, others at discovery).
        let parent_node = node_of[u].expect("visited nodes are mapped");
        for &v in &adj[u].clone() {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            let node = if v >= 1 && v <= num_sinks {
                // sink point: it may carry a subtree, so hang a Steiner
                // twin first if it has further neighbours
                if adj[v].len() > 1 {
                    let tw = topo.add_steiner(r.points[v], parent_node);
                    topo.add_sink(v - 1, r.points[v], tw);
                    tw
                } else {
                    topo.add_sink(v - 1, r.points[v], parent_node)
                }
            } else {
                topo.add_steiner(r.points[v], parent_node)
            };
            node_of[v] = Some(node);
            queue.push_back(v);
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_topo::NodeKind;

    #[test]
    fn topology_contains_all_sinks() {
        let sinks = [Point::new(3, 0), Point::new(0, 3), Point::new(3, 3)];
        let t = rsmt_topology(Point::new(0, 0), &sinks, 0);
        t.validate().unwrap();
        let mut found: Vec<usize> = t.sink_nodes().iter().map(|&(s, _)| s).collect();
        found.sort_unstable();
        assert_eq!(found, vec![0, 1, 2]);
        assert_eq!(t.node_kind(t.root()), NodeKind::Root);
    }

    #[test]
    fn exact_mode_is_no_longer_than_heuristic() {
        let sinks = [Point::new(4, 0), Point::new(0, 4), Point::new(4, 4), Point::new(2, 2)];
        let heur = rsmt_topology(Point::new(0, 0), &sinks, 0);
        let exact = rsmt_topology(Point::new(0, 0), &sinks, 7);
        assert!(exact.length() <= heur.length());
    }

    #[test]
    fn coincident_sink_and_root() {
        let sinks = [Point::new(0, 0), Point::new(5, 5)];
        let t = rsmt_topology(Point::new(0, 0), &sinks, 7);
        t.validate().unwrap();
        assert_eq!(t.sink_nodes().len(), 2);
        assert_eq!(t.length(), 10);
    }

    #[test]
    fn single_sink_is_direct() {
        let t = rsmt_topology(Point::new(1, 1), &[Point::new(4, 5)], 7);
        t.validate().unwrap();
        assert_eq!(t.length(), 7);
    }
}
