//! Minimum spanning trees in the L1 plane.

use cds_geom::{l1_dist, Point};

/// Prim's algorithm over the L1 metric closure, `O(k²)` — fast enough for
/// any realistic net size and allocation-light.
///
/// Returns the MST edges as index pairs into `points`.
///
/// # Panics
///
/// Panics if `points` is empty.
///
/// ```
/// use cds_geom::Point;
/// use cds_rsmt::l1_mst;
/// let pts = [Point::new(0, 0), Point::new(1, 0), Point::new(9, 9)];
/// let mst = l1_mst(&pts);
/// assert_eq!(mst.len(), 2);
/// ```
pub fn l1_mst(points: &[Point]) -> Vec<(u32, u32)> {
    assert!(!points.is_empty(), "MST of an empty point set");
    let k = points.len();
    let mut in_tree = vec![false; k];
    let mut best_dist = vec![i64::MAX; k];
    let mut best_to = vec![0u32; k];
    let mut edges = Vec::with_capacity(k - 1);
    in_tree[0] = true;
    for j in 1..k {
        best_dist[j] = l1_dist(points[0], points[j]);
        best_to[j] = 0;
    }
    for _ in 1..k {
        let mut pick = usize::MAX;
        let mut pick_d = i64::MAX;
        for j in 0..k {
            if !in_tree[j] && best_dist[j] < pick_d {
                pick_d = best_dist[j];
                pick = j;
            }
        }
        in_tree[pick] = true;
        edges.push((best_to[pick], pick as u32));
        for j in 0..k {
            if !in_tree[j] {
                let d = l1_dist(points[pick], points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_to[j] = pick as u32;
                }
            }
        }
    }
    edges
}

/// Total L1 length of an edge list over `points`.
pub fn tree_length(points: &[Point], edges: &[(u32, u32)]) -> i64 {
    edges.iter().map(|&(a, b)| l1_dist(points[a as usize], points[b as usize])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_geom::hpwl;
    use proptest::prelude::*;

    #[test]
    fn collinear_points_chain() {
        let pts = [Point::new(0, 0), Point::new(5, 0), Point::new(2, 0)];
        let mst = l1_mst(&pts);
        assert_eq!(tree_length(&pts, &mst), 5);
    }

    #[test]
    fn single_point_has_no_edges() {
        assert!(l1_mst(&[Point::new(3, 3)]).is_empty());
    }

    #[test]
    fn duplicate_points_cost_zero() {
        let pts = [Point::new(1, 1), Point::new(1, 1), Point::new(4, 1)];
        let mst = l1_mst(&pts);
        assert_eq!(tree_length(&pts, &mst), 3);
    }

    proptest! {
        /// The MST spans all points, has k−1 edges, is at least HPWL/...
        /// well, at least half the HPWL (a weak but always-valid bound),
        /// and no single edge swap improves it.
        #[test]
        fn mst_invariants(raw in proptest::collection::vec((-50i32..50, -50i32..50), 1..24)) {
            let pts: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let mst = l1_mst(&pts);
            prop_assert_eq!(mst.len(), pts.len() - 1);
            // connectivity via union-find
            let mut parent: Vec<u32> = (0..pts.len() as u32).collect();
            fn find(p: &mut Vec<u32>, x: u32) -> u32 {
                if p[x as usize] != x { let r = find(p, p[x as usize]); p[x as usize] = r; }
                p[x as usize]
            }
            for &(a, b) in &mst {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                prop_assert_ne!(ra, rb, "MST must be acyclic");
                parent[ra as usize] = rb;
            }
            // length ≥ hpwl/2 sanity (any spanning tree is)
            prop_assert!(2 * tree_length(&pts, &mst) >= hpwl(&pts));
        }

        /// Cut property spot check: the MST is no longer than the
        /// path-through-order tree.
        #[test]
        fn mst_beats_path_tree(raw in proptest::collection::vec((-50i32..50, -50i32..50), 2..20)) {
            let pts: Vec<Point> = raw.into_iter().map(Point::from).collect();
            let mst = l1_mst(&pts);
            let path: Vec<(u32, u32)> =
                (0..pts.len() as u32 - 1).map(|i| (i, i + 1)).collect();
            prop_assert!(tree_length(&pts, &mst) <= tree_length(&pts, &path));
        }
    }
}
