//! Blocking client for the `cds-serve` daemon, plus the load-test
//! harness that drives it from N concurrent submitter threads.
//!
//! Everything here speaks the same hand-rolled HTTP/1.1 as the server
//! (`Connection: close`, one request per connection) and extracts the
//! handful of JSON fields it needs with small scanners rather than a
//! full parser — the server's bodies are machine-generated and flat.

use crate::http::{read_response, Response};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One round trip: connect, send, read the full response.
///
/// # Errors
///
/// A human-readable message on connect/transport/parse failure.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    request_on(stream, addr, method, path, body)
}

/// Like [`request`] but retries the connect for up to `timeout` — for
/// racing a daemon that is still binding its listener.
///
/// # Errors
///
/// The last connect error once the deadline passes, or any
/// transport/parse failure after connecting.
pub fn request_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Response, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return request_on(stream, addr, method, path, body),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

fn request_on(
    mut stream: TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n")
        .map_err(|e| format!("send: {e}"))?;
    write!(stream, "Content-Length: {}\r\nConnection: close\r\n\r\n", body.len())
        .map_err(|e| format!("send: {e}"))?;
    stream.write_all(body).map_err(|e| format!("send: {e}"))?;
    stream.flush().map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).map_err(|e| format!("response from {addr}: {e}"))
}

/// Scans `"name": <uint>` out of flat JSON.
#[must_use]
pub fn json_u64(json: &str, name: &str) -> Option<u64> {
    let tail = field_tail(json, name)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Scans `"name": true|false` out of flat JSON.
#[must_use]
pub fn json_bool(json: &str, name: &str) -> Option<bool> {
    let tail = field_tail(json, name)?;
    if tail.starts_with("true") {
        Some(true)
    } else if tail.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Scans `"name": "<value>"` out of flat JSON (no unescaping — the
/// fields we read back never contain escapes).
#[must_use]
pub fn json_str<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tail = field_tail(json, name)?;
    let tail = tail.strip_prefix('"')?;
    tail.split('"').next()
}

fn field_tail<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)?;
    Some(json[at + needle.len()..].trim_start())
}

/// What one submit-poll-fetch cycle produced.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id assigned by the daemon.
    pub job: u64,
    /// Whether the submission was served from the result cache.
    pub cached: bool,
    /// Terminal state (`done`, `cancelled`, `failed`).
    pub state: String,
    /// The full result JSON body.
    pub result_json: String,
    /// Routing checksum parsed from the result.
    pub checksum: String,
    /// Submit-to-result wall time in seconds.
    pub latency_s: f64,
}

/// Submits a document, polls status every `poll`, fetches the result.
///
/// `query` is appended verbatim to `/jobs` (e.g. `"?threads=2"`).
///
/// # Errors
///
/// Any non-2xx response or transport failure, with the server's error
/// body included.
pub fn submit_and_wait(
    addr: &str,
    doc: &str,
    query: &str,
    poll: Duration,
) -> Result<JobResult, String> {
    let t0 = Instant::now();
    // retry the connect: callers often race a daemon that is still
    // binding its listener (the CI smoke step starts both at once)
    let resp = request_retry(
        addr,
        "POST",
        &format!("/jobs{query}"),
        doc.as_bytes(),
        Duration::from_secs(10),
    )?;
    if resp.status != 200 && resp.status != 201 {
        return Err(format!("submit: HTTP {}: {}", resp.status, resp.text()));
    }
    let body = resp.text();
    let job = json_u64(&body, "job").ok_or_else(|| format!("submit: no job id in {body}"))?;
    let cached = json_bool(&body, "cached").unwrap_or(false);
    let mut state = json_str(&body, "state").unwrap_or("queued").to_string();
    while state == "queued" || state == "running" {
        std::thread::sleep(poll);
        let resp = request(addr, "GET", &format!("/jobs/{job}"), b"")?;
        if resp.status != 200 {
            return Err(format!("status: HTTP {}: {}", resp.status, resp.text()));
        }
        let body = resp.text();
        state = json_str(&body, "state").unwrap_or("failed").to_string();
    }
    let resp = request(addr, "GET", &format!("/jobs/{job}/result"), b"")?;
    if resp.status != 200 {
        return Err(format!("result: HTTP {}: {}", resp.status, resp.text()));
    }
    let result_json = resp.text();
    let checksum = json_str(&result_json, "checksum").unwrap_or("").to_string();
    Ok(JobResult {
        job,
        cached,
        state,
        result_json,
        checksum,
        latency_s: t0.elapsed().as_secs_f64(),
    })
}

/// Aggregate numbers from one load-test run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Successfully completed jobs.
    pub jobs: usize,
    /// Submissions that errored (transport or non-2xx).
    pub failures: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Median submit-to-result latency in seconds.
    pub p50_s: f64,
    /// 99th-percentile latency in seconds.
    pub p99_s: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_s: f64,
    /// Total wall time of the run in seconds.
    pub wall_s: f64,
    /// Distinct checksums observed (a deterministic server yields one
    /// per distinct document).
    pub checksums: Vec<String>,
}

/// Drives the daemon with `clients` concurrent submitter threads, each
/// sending `requests_per_client` submissions round-robined over `docs`.
///
/// Resubmissions of the same document are the point: the first
/// submission of each document routes for real, the rest should hit
/// the cache, and the p50/p99 split makes the difference visible.
#[must_use]
pub fn loadtest(
    addr: &str,
    docs: &[String],
    clients: usize,
    requests_per_client: usize,
    query: &str,
    poll: Duration,
) -> LoadtestReport {
    let t0 = Instant::now();
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let checksums: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let cache_hits = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latencies = Arc::clone(&latencies);
            let checksums = Arc::clone(&checksums);
            let cache_hits = Arc::clone(&cache_hits);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                for r in 0..requests_per_client {
                    let doc = &docs[(c * requests_per_client + r) % docs.len()];
                    match submit_and_wait(addr, doc, query, poll) {
                        Ok(res) => {
                            latencies
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(res.latency_s);
                            if res.cached {
                                cache_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            let mut cs =
                                checksums.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            if !res.checksum.is_empty() && !cs.contains(&res.checksum) {
                                cs.push(res.checksum);
                            }
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut lat = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .unwrap_or_default();
    lat.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    let jobs = lat.len();
    let mut checksums = Arc::try_unwrap(checksums)
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .unwrap_or_default();
    checksums.sort();
    LoadtestReport {
        jobs,
        failures: failures.load(Ordering::Relaxed),
        cache_hits: cache_hits.load(Ordering::Relaxed),
        p50_s: pct(0.50),
        p99_s: pct(0.99),
        jobs_per_s: if wall_s > 0.0 { jobs as f64 / wall_s } else { 0.0 },
        wall_s,
        checksums,
    }
}

/// Renders a [`LoadtestReport`] as the flat JSON the CLI prints and
/// the CI smoke step greps.
#[must_use]
pub fn loadtest_json(r: &LoadtestReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"jobs\": {}, \"failures\": {}, \"cache_hits\": {}, \"p50_s\": {:.6}, \
         \"p99_s\": {:.6}, \"jobs_per_s\": {:.3}, \"wall_s\": {:.6}, \"checksums\": [",
        r.jobs, r.failures, r.cache_hits, r.p50_s, r.p99_s, r.jobs_per_s, r.wall_s
    );
    for (i, c) in r.checksums.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{c}\"");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scanners_extract_fields() {
        let body = "{\"job\": 17, \"state\": \"done\", \"cached\": true}";
        assert_eq!(json_u64(body, "job"), Some(17));
        assert_eq!(json_str(body, "state"), Some("done"));
        assert_eq!(json_bool(body, "cached"), Some(true));
        assert_eq!(json_u64(body, "missing"), None);
        assert_eq!(json_bool(body, "state"), None);
    }

    #[test]
    fn loadtest_json_is_flat_and_complete() {
        let r = LoadtestReport {
            jobs: 4,
            failures: 0,
            cache_hits: 3,
            p50_s: 0.01,
            p99_s: 0.5,
            jobs_per_s: 8.0,
            wall_s: 0.5,
            checksums: vec!["0xdead".into()],
        };
        let s = loadtest_json(&r);
        assert_eq!(json_u64(&s, "jobs"), Some(4));
        assert_eq!(json_u64(&s, "cache_hits"), Some(3));
        assert!(s.contains("\"checksums\": [\"0xdead\"]"));
    }
}
