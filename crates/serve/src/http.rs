//! A minimal, bounded HTTP/1.1 subset over [`std::io`] — no crates.io
//! in this environment, so the daemon speaks exactly the slice of the
//! protocol it needs: one request per connection (`Connection: close`),
//! `Content-Length` bodies, percent-encoded paths and query strings.
//!
//! Every size is bounded *before* allocation: request/header lines at
//! [`MAX_LINE`] bytes, header count at [`MAX_HEADERS`], and the body at
//! the caller's limit — an oversized or malformed request is rejected
//! with a typed [`HttpError`] that maps onto a 4xx status, never an
//! unbounded read.

use std::io::{BufRead, Write};

/// Longest accepted request or header line, in bytes (excluding CRLF).
pub const MAX_LINE: usize = 8 * 1024;
/// Most header lines accepted per request.
pub const MAX_HEADERS: usize = 100;

/// Why a request (or a client-side response) could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The first line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// A request or header line exceeded [`MAX_LINE`] bytes.
    LineTooLong,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line without `:`, or non-UTF-8 bytes in a line.
    BadHeader(String),
    /// `Content-Length` present but unparsable.
    BadContentLength(String),
    /// The declared body length exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        length: usize,
        /// The configured acceptance limit.
        limit: usize,
    },
    /// The peer closed the connection mid-request.
    UnexpectedEof,
    /// Underlying transport error.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine(l) => write!(f, "malformed request line: {l}"),
            HttpError::LineTooLong => write!(f, "request line or header exceeds {MAX_LINE} bytes"),
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadHeader(h) => write!(f, "malformed header: {h}"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length: {v}"),
            HttpError::BodyTooLarge { length, limit } => {
                write!(f, "body of {length} bytes exceeds the {limit}-byte limit")
            }
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The HTTP status this parse failure maps onto.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::LineTooLong | HttpError::TooManyHeaders => 431,
            _ => 400,
        }
    }
}

/// One parsed request: method, decoded path, decoded query pairs, and
/// the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded path, query stripped.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in
    /// order; a bare `key` decodes to an empty value.
    pub query: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

/// Reads one line (terminated by `\n`, `\r\n` accepted) with a hard
/// byte cap, so a hostile peer cannot grow a buffer unboundedly.
fn read_line_bounded<R: BufRead>(r: &mut R, max: usize) -> Result<String, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Err(HttpError::UnexpectedEof),
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= max {
                    return Err(HttpError::LineTooLong);
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadHeader("non-UTF-8 bytes".into()))
}

/// Percent-decoding; `+` becomes a space only in query components.
fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes one query key or value (everything but unreserved
/// characters), the inverse of the server's decoding — clients use it
/// to build `?key=value` overrides.
#[must_use]
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("%{b:02X}"));
            }
        }
    }
    out
}

/// Splits a raw query string into decoded pairs.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect()
}

/// Parses one request from `r`, accepting at most `max_body` body
/// bytes.
///
/// # Errors
///
/// Any [`HttpError`]; the server maps it to a status via
/// [`HttpError::status`] and closes the connection.
pub fn parse_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let line = read_line_bounded(r, MAX_LINE)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine(line.clone()));
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine(line.clone()));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !raw_path.starts_with('/') {
        return Err(HttpError::BadRequestLine(line.clone()));
    }

    let mut content_length: Option<usize> = None;
    for _ in 0..MAX_HEADERS {
        let h = read_line_bounded(r, MAX_LINE)?;
        if h.is_empty() {
            let body = match content_length {
                None | Some(0) => Vec::new(),
                Some(len) => {
                    if len > max_body {
                        return Err(HttpError::BodyTooLarge { length: len, limit: max_body });
                    }
                    let mut body = vec![0u8; len];
                    r.read_exact(&mut body).map_err(|e| {
                        if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            HttpError::UnexpectedEof
                        } else {
                            HttpError::Io(e.to_string())
                        }
                    })?;
                    body
                }
            };
            return Ok(Request {
                method: method.to_string(),
                path: percent_decode(raw_path, false),
                query: parse_query(raw_query),
                body,
            });
        }
        let (name, value) = h.split_once(':').ok_or_else(|| HttpError::BadHeader(h.clone()))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            let v = value.trim();
            content_length =
                Some(v.parse().map_err(|_| HttpError::BadContentLength(v.to_string()))?);
        }
    }
    Err(HttpError::TooManyHeaders)
}

/// Reason phrase for the handful of statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete response with `Content-Length` framing and
/// `Connection: close`, plus any extra headers.
///
/// # Errors
///
/// Propagates transport errors (the caller just drops the connection).
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
    write!(
        w,
        "Content-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        content_type,
        body.len()
    )?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// One parsed response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length` framed, or read to EOF).
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — our own bodies are always valid).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response: status line, headers, then `Content-Length`
/// bytes (or everything to EOF if the header is absent).
///
/// # Errors
///
/// Any [`HttpError`] — the client surfaces it as a request failure.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response, HttpError> {
    let line = read_line_bounded(r, MAX_LINE)?;
    let mut parts = line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => {
            code.parse().map_err(|_| HttpError::BadRequestLine(line.clone()))?
        }
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        if headers.len() > MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let h = read_line_bounded(r, MAX_LINE)?;
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').ok_or_else(|| HttpError::BadHeader(h.clone()))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            let v = value.trim();
            content_length =
                Some(v.parse().map_err(|_| HttpError::BadContentLength(v.to_string()))?);
        }
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            r.read_exact(&mut body).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    HttpError::UnexpectedEof
                } else {
                    HttpError::Io(e.to_string())
                }
            })?;
        }
        None => {
            r.read_to_end(&mut body).map_err(|e| HttpError::Io(e.to_string()))?;
        }
    }
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(text: &str) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(text.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let r = req("POST /jobs?oracle=cd&iterations=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(
            r.query,
            vec![("oracle".into(), "cd".into()), ("iterations".into(), "3".into())]
        );
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let r = req("GET /jobs/1%2Fresult?k=a%20b&flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/jobs/1/result");
        assert_eq!(r.query, vec![("k".into(), "a b".into()), ("flag".into(), String::new())]);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(req("GARBAGE\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(req("GET /x HTTP/2 extra\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(req("get /x HTTP/1.1\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(req("GET x HTTP/1.1\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let e = req("POST /jobs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(e, HttpError::BodyTooLarge { length: 9999, limit: 1024 });
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn rejects_truncated_bodies_and_overlong_lines() {
        assert_eq!(
            req("POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::UnexpectedEof)
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert_eq!(req(&long), Err(HttpError::LineTooLong));
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let mut wire = Vec::new();
        write_response(&mut wire, 201, "application/json", b"{\"job\": 7}", &[("X-Test", "yes")])
            .unwrap();
        let resp = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.header("x-test"), Some("yes"));
        assert_eq!(resp.text(), "{\"job\": 7}");
    }
}
