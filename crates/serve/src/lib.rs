#![forbid(unsafe_code)]
//! Routing-as-a-service for the cdst workspace.
//!
//! This crate turns the batch router into a long-running daemon:
//! submit a `cdst/1` chip document over HTTP, poll per-iteration
//! progress, fetch a result JSON that is byte-for-byte what
//! `cds-cli route` prints (wall-clock fields aside), cancel
//! cooperatively, and resubmit identical work for a free cache hit.
//! The whole stack is `std`-only — the HTTP layer is a bounded
//! hand-rolled HTTP/1.1 parser over [`std::net::TcpListener`], not a
//! framework.
//!
//! - [`http`] — bounded request/response parsing and writing.
//! - [`server`] — the daemon: job table, FIFO queue, warm-workspace
//!   workers, result cache, graceful drain.
//! - [`client`] — blocking client and the concurrent load-test
//!   harness.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use cds_serve::{Server, ServeConfig, client};
//! use cds_instgen::{io::doc::ChipDoc, ChipSpec};
//! use std::time::Duration;
//!
//! let handle = Server::start(ServeConfig::default()).unwrap();
//! let addr = handle.addr().to_string();
//! let doc = ChipDoc::from_chip(&ChipSpec::small_test(7).generate()).unwrap();
//! let text = cds_instgen::io::doc::chip_doc_to_string(&doc).unwrap();
//! let first = client::submit_and_wait(&addr, &text, "", Duration::from_millis(5)).unwrap();
//! let again = client::submit_and_wait(&addr, &text, "", Duration::from_millis(5)).unwrap();
//! assert!(!first.cached && again.cached);
//! assert_eq!(first.result_json, again.result_json);
//! let report = handle.shutdown();
//! assert_eq!(report.done, 2);
//! ```

pub mod client;
pub mod http;
pub mod server;

pub use client::{loadtest, loadtest_json, submit_and_wait, JobResult, LoadtestReport};
pub use server::{DrainReport, JobState, ServeConfig, Server, ServerHandle};
